//! GROPHECY++ — GPU performance projection with data transfer modeling.
//!
//! Umbrella crate re-exporting the full framework. See the individual
//! component crates for details:
//!
//! * [`brs`] — bounded regular section algebra,
//! * [`skeleton`] — the code-skeleton IR GROPHECY consumes,
//! * [`pcie`] — PCIe bus simulator + empirical linear transfer model,
//! * [`cpu_sim`] / [`gpu_sim`] — the simulated "measured" hardware,
//! * [`gpu_model`] — the analytic GPU kernel-time projection,
//! * [`datausage`] — the data usage analyzer,
//! * [`core`] — the integrated GROPHECY++ projector.

pub use gpp_brs as brs;
pub use gpp_cpu_sim as cpu_sim;
pub use gpp_datausage as datausage;
pub use gpp_gpu_model as gpu_model;
pub use gpp_gpu_sim as gpu_sim;
pub use gpp_pcie as pcie;
pub use gpp_skeleton as skeleton;
pub use gpp_workloads as workloads;
pub use grophecy as core;
