#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 gate.
# Usage: ./ci.sh  (add CARGO_FLAGS=--offline when the registry is absent)
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=${CARGO_FLAGS:---offline}

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy $CARGO_FLAGS --workspace --all-targets -- -D warnings

echo "== benches compile"
cargo bench $CARGO_FLAGS --no-run

echo "== workspace builds warning-free"
RUSTFLAGS="-D warnings" cargo build $CARGO_FLAGS --workspace

echo "== tier-1: build + tests"
cargo build $CARGO_FLAGS --release
cargo test $CARGO_FLAGS -q

echo "== gpp lint (committed skeletons, deny warnings)"
cargo build $CARGO_FLAGS --release -p gpp-cli
target/release/gpp lint skeletons/*.gsk --deny warnings

echo "== gpp lint --fix (program corpus: fixes converge and are idempotent)"
# Every whole-program fixture must (a) re-lint clean after one --fix run
# (exit 0 under --deny warnings) and (b) be a byte-for-byte no-op on the
# second run. A drifting fix-it engine fails here before it ships.
FIX_TMP=$(mktemp -d)
for f in fixtures/bad/gpp01*_program_*.gsk; do
    cp "$f" "$FIX_TMP/work.gsk"
    target/release/gpp lint --fix "$FIX_TMP/work.gsk" --deny warnings 2>/dev/null
    cp "$FIX_TMP/work.gsk" "$FIX_TMP/once.gsk"
    target/release/gpp lint --fix "$FIX_TMP/work.gsk" --deny warnings 2>/dev/null
    cmp "$FIX_TMP/once.gsk" "$FIX_TMP/work.gsk" \
        || { echo "non-idempotent fix for $f"; exit 1; }
done
rm -rf "$FIX_TMP"

echo "== gpp machines (committed datasheets round-trip)"
target/release/gpp machines --check fixtures/machines/*.gmach

echo "== cross-fleet matrix (multi-GPU fixtures, pinned seed)"
# The crossfleet experiment loads every committed .gmach — including the
# multi-GPU dual-v2/quad-v2 nodes — under the pinned evaluation seed.
# Every machine column must quote an overlap delta, and the multi-GPU
# columns must carry their data-parallel split totals.
cargo build $CARGO_FLAGS --release -p gpp-bench --bin repro
CROSSFLEET=$(target/release/repro crossfleet)
for needle in "dual-v2:" "quad-v2:" " split2 " " split4 " " ov "; do
    grep -qF -- "$needle" <<<"$CROSSFLEET" \
        || { echo "crossfleet output lacks \`$needle\`"; exit 1; }
done

echo "== perf-regression gate (min-of-N vs committed BENCH_*.json)"
# Re-measure both bench harnesses to temporary files and fail on >25%
# regression against the committed baselines. Both harnesses report
# min-of-N, so a single noisy round cannot trip the gate — only a
# consistent slowdown across every round does.
PERF_TMP=$(mktemp -d)
trap 'rm -rf "$PERF_TMP"' EXIT
GPP_BENCH_OUT="$PERF_TMP/project.json" \
    cargo bench $CARGO_FLAGS -p gpp-bench --bench project_throughput >/dev/null
GPP_BENCH_OUT="$PERF_TMP/serve.json" \
    cargo bench $CARGO_FLAGS -p gpp-bench --bench serve_throughput >/dev/null
cargo build $CARGO_FLAGS --release -p gpp-bench --bin perfgate
target/release/perfgate BENCH_project.json "$PERF_TMP/project.json" --max-regress 0.25
target/release/perfgate BENCH_serve.json "$PERF_TMP/serve.json" --max-regress 0.25

echo "== chaos suite (pinned fault plan)"
# The chaos tests pin their own seeds (7, 42, 2013); the env var pins the
# plan for anything that consults GPP_FAULT_PLAN during the run.
GPP_FAULT_PLAN='seed=2013;pcie.transfer.error:p=0.02' \
    cargo test $CARGO_FLAGS -q -p gpp-serve --test chaos

echo "== gateway chaos suite (shard kills mid-load, pinned fault plan)"
# Seeds 7/42/2013 are pinned inside the tests (injected shard-down plans
# plus a real shard shutdown under concurrent clients); the env var pins
# the plan for anything that consults GPP_FAULT_PLAN during the run.
GPP_FAULT_PLAN='seed=7;gateway.shard.down@shard1:after=2' \
    cargo test $CARGO_FLAGS -q -p gpp-gateway --test chaos

echo "== overload chaos suites (deadlines, shedding, hedging; pinned plans)"
# Serve side: deadline admission against the observed median, mid-flight
# deadline enforcement under an injected compute stall, retry pacing on
# server hints. Gateway side: a slow shard under propagated deadlines —
# hedged goodput must beat the no-hedge baseline, no ok reply may land
# past its deadline, and fault-free replies stay bit-identical. The suites
# pin their own plans; the env var pins anything else consulted mid-run.
GPP_FAULT_PLAN='seed=7;serve.compute.slow:always,factor=40' \
    cargo test $CARGO_FLAGS -q -p gpp-serve --test overload --test retries
GPP_FAULT_PLAN='seed=7;gateway.shard.slow@shard1:after=2,factor=300' \
    cargo test $CARGO_FLAGS -q -p gpp-gateway --test overload

echo "CI OK"
