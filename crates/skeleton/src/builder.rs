//! Fluent construction of code skeletons.
//!
//! The builder mirrors how a GROPHECY++ user transcribes their CPU code:
//! declare the arrays, then for each candidate kernel describe its loop
//! nest, the array references of its body, and the arithmetic per
//! iteration. [`ProgramBuilder::build`] validates the result (index
//! dimensionality, loop references, trip counts) so malformed skeletons are
//! rejected at construction time rather than producing nonsense
//! projections.

use crate::expr::{AffineExpr, IndexExpr, LoopId};
use crate::ir::{
    ArrayDecl, ArrayRef, ElemType, Flops, Kernel, Loop, Program, Statement, TransferDecl,
    TransferKind,
};
use crate::validate::{validate, ValidationErrors};
use gpp_brs::{AccessKind, ArrayId};

/// Shorthand for the affine expression `1·loop + 0`, for use in index
/// lists: `&[idx(i), idx(j) + 1]`.
pub fn idx(loop_id: LoopId) -> AffineExpr {
    AffineExpr::var(loop_id)
}

/// Shorthand for a constant index.
pub fn cst(c: i64) -> AffineExpr {
    AffineExpr::constant(c)
}

/// Shorthand for a data-dependent (irregular) index.
pub fn irr() -> IndexExpr {
    IndexExpr::Irregular
}

/// Shorthand for a data-dependent index with locality: consecutive
/// threads land within `span` rows of each other.
pub fn irrb(span: u32) -> IndexExpr {
    IndexExpr::IrregularBounded(span)
}

/// Builds a [`Program`] incrementally.
pub struct ProgramBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    kernels: Vec<Kernel>,
    transfers: Vec<TransferDecl>,
}

impl ProgramBuilder {
    /// Starts a new program skeleton.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            arrays: Vec::new(),
            kernels: Vec::new(),
            transfers: Vec::new(),
        }
    }

    /// Declares a dense array and returns its id.
    pub fn array(&mut self, name: impl Into<String>, elem: ElemType, extents: &[usize]) -> ArrayId {
        self.declare(name, elem, extents, false)
    }

    /// Declares a sparse/irregular array (CSR values, index vectors...).
    /// The data usage analyzer falls back to whole-array transfers for
    /// these unless hints narrow them (paper §III-B).
    pub fn sparse_array(
        &mut self,
        name: impl Into<String>,
        elem: ElemType,
        extents: &[usize],
    ) -> ArrayId {
        self.declare(name, elem, extents, true)
    }

    /// Declares a device-side temporary: an array whose final contents
    /// never return to the host, so the analyzer skips its D2H transfer
    /// without needing a per-invocation `--temporary` hint.
    pub fn temporary_array(
        &mut self,
        name: impl Into<String>,
        elem: ElemType,
        extents: &[usize],
    ) -> ArrayId {
        let id = self.declare(name, elem, extents, false);
        self.arrays[id.index()].temporary = true;
        id
    }

    /// Marks an already-declared array as a device-side temporary (used
    /// by the text parser, where attributes follow the declaration).
    pub fn set_temporary(&mut self, id: ArrayId) {
        self.arrays[id.index()].temporary = true;
    }

    fn declare(
        &mut self,
        name: impl Into<String>,
        elem: ElemType,
        extents: &[usize],
        sparse: bool,
    ) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            id,
            name: name.into(),
            elem,
            extents: extents.to_vec(),
            sparse,
            temporary: false,
        });
        id
    }

    /// Resolves a declared array id by name (used by the text parser and
    /// by callers scheduling explicit transfers).
    pub fn array_id(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().find(|a| a.name == name).map(|a| a.id)
    }

    /// Appends an explicit whole-array transfer at the current program
    /// position (after every kernel finished so far).
    pub fn transfer(&mut self, array: ArrayId, kind: TransferKind) {
        let pos = self.kernels.len();
        self.transfer_at(array, kind, pos);
    }

    /// Appends an explicit transfer at an explicit position (number of
    /// kernels preceding it). Positions must be non-decreasing across
    /// calls so the schedule stays in program order.
    pub fn transfer_at(&mut self, array: ArrayId, kind: TransferKind, pos: usize) {
        self.transfer_with(array, kind, pos, 0, 1);
    }

    /// [`ProgramBuilder::transfer_at`] with stream/pipelining annotations:
    /// `stream` 0 is the default synchronous stream, `chunks` 1 a single
    /// unchunked copy (see [`TransferDecl`]).
    pub fn transfer_with(
        &mut self,
        array: ArrayId,
        kind: TransferKind,
        pos: usize,
        stream: u32,
        chunks: u32,
    ) {
        self.transfers.push(TransferDecl {
            array,
            kind,
            pos,
            stream,
            chunks,
        });
    }

    /// Opens a kernel builder. Call [`KernelBuilder::finish`] to append the
    /// kernel to the program.
    pub fn kernel(&mut self, name: impl Into<String>) -> KernelBuilder<'_> {
        KernelBuilder {
            program: self,
            name: name.into(),
            loops: Vec::new(),
            statements: Vec::new(),
            gpu_compute_scale: 1.0,
            cpu_compute_scale: 1.0,
        }
    }

    /// Validates and produces the program. On failure, **every**
    /// structural problem is returned, not just the first.
    pub fn build(self) -> Result<Program, ValidationErrors> {
        let p = self.build_unchecked();
        validate(&p)?;
        Ok(p)
    }

    /// Produces the program without validating it. Used by tooling that
    /// wants to analyze malformed programs (the linter reports structural
    /// errors itself, with source spans).
    pub fn build_unchecked(self) -> Program {
        Program {
            name: self.name,
            arrays: self.arrays,
            kernels: self.kernels,
            transfers: self.transfers,
        }
    }

    /// Number of kernels added so far.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }
}

/// Builds one [`Kernel`]; created by [`ProgramBuilder::kernel`].
pub struct KernelBuilder<'p> {
    program: &'p mut ProgramBuilder,
    name: String,
    loops: Vec<Loop>,
    statements: Vec<Statement>,
    gpu_compute_scale: f64,
    cpu_compute_scale: f64,
}

impl<'p> KernelBuilder<'p> {
    /// Adds a parallel loop (iterations independent — GPU thread dimension).
    pub fn parallel_loop(&mut self, name: impl Into<String>, trip: u64) -> LoopId {
        self.add_loop(name, trip, true)
    }

    /// Adds a sequential loop (runs inside each GPU thread).
    pub fn serial_loop(&mut self, name: impl Into<String>, trip: u64) -> LoopId {
        self.add_loop(name, trip, false)
    }

    fn add_loop(&mut self, name: impl Into<String>, trip: u64, parallel: bool) -> LoopId {
        let id = LoopId(self.loops.len() as u32);
        self.loops.push(Loop {
            name: name.into(),
            trip,
            parallel,
        });
        id
    }

    /// Sets the GPU arithmetic expansion factor (see
    /// [`Kernel::gpu_compute_scale`]). Default 1.0.
    ///
    /// # Panics
    /// Panics if `scale < 1.0`.
    pub fn gpu_compute_scale(&mut self, scale: f64) {
        assert!(scale >= 1.0, "gpu_compute_scale must be >= 1, got {scale}");
        self.gpu_compute_scale = scale;
    }

    /// Sets the CPU issue-efficiency scale (see
    /// [`Kernel::cpu_compute_scale`]). Default 1.0.
    ///
    /// # Panics
    /// Panics if `scale <= 0`.
    pub fn cpu_compute_scale(&mut self, scale: f64) {
        assert!(
            scale > 0.0,
            "cpu_compute_scale must be positive, got {scale}"
        );
        self.cpu_compute_scale = scale;
    }

    /// Opens a statement builder.
    pub fn statement(&mut self) -> StatementBuilder<'_, 'p> {
        StatementBuilder {
            kernel: self,
            refs: Vec::new(),
            flops: Flops::default(),
            active_fraction: 1.0,
        }
    }

    /// Appends the kernel to the program.
    pub fn finish(self) {
        self.program.kernels.push(Kernel {
            name: self.name,
            loops: self.loops,
            statements: self.statements,
            gpu_compute_scale: self.gpu_compute_scale,
            cpu_compute_scale: self.cpu_compute_scale,
        });
    }
}

/// Builds one [`Statement`]; created by [`KernelBuilder::statement`].
pub struct StatementBuilder<'k, 'p> {
    kernel: &'k mut KernelBuilder<'p>,
    refs: Vec<ArrayRef>,
    flops: Flops,
    active_fraction: f64,
}

impl StatementBuilder<'_, '_> {
    /// Resolves an array id by name (used by the text-format parser).
    pub fn lookup_array(&self, name: &str) -> Option<ArrayId> {
        self.kernel
            .program
            .arrays
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.id)
    }

    /// Adds a read of `array` at the given affine indices.
    pub fn read(mut self, array: ArrayId, index: &[AffineExpr]) -> Self {
        self.refs.push(ArrayRef {
            array,
            index: index.iter().cloned().map(IndexExpr::Affine).collect(),
            kind: AccessKind::Read,
        });
        self
    }

    /// Adds a write of `array` at the given affine indices.
    pub fn write(mut self, array: ArrayId, index: &[AffineExpr]) -> Self {
        self.refs.push(ArrayRef {
            array,
            index: index.iter().cloned().map(IndexExpr::Affine).collect(),
            kind: AccessKind::Write,
        });
        self
    }

    /// Adds a read with arbitrary (possibly irregular) indices.
    pub fn read_ix(mut self, array: ArrayId, index: &[IndexExpr]) -> Self {
        self.refs.push(ArrayRef {
            array,
            index: index.to_vec(),
            kind: AccessKind::Read,
        });
        self
    }

    /// Adds a write with arbitrary (possibly irregular) indices.
    pub fn write_ix(mut self, array: ArrayId, index: &[IndexExpr]) -> Self {
        self.refs.push(ArrayRef {
            array,
            index: index.to_vec(),
            kind: AccessKind::Write,
        });
        self
    }

    /// Sets the arithmetic performed per execution.
    pub fn flops(mut self, flops: Flops) -> Self {
        self.flops = flops;
        self
    }

    /// Sets the fraction of iterations that execute the statement
    /// (models control-flow divergence; default 1.0).
    ///
    /// # Panics
    /// Panics if outside `(0, 1]`.
    pub fn active(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "active fraction must be in (0, 1], got {fraction}"
        );
        self.active_fraction = fraction;
        self
    }

    /// Appends the statement to the kernel.
    pub fn finish(self) {
        self.kernel.statements.push(Statement {
            refs: self.refs,
            flops: self.flops,
            active_fraction: self.active_fraction,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_valid_program() {
        let mut p = ProgramBuilder::new("vadd");
        let a = p.array("a", ElemType::F32, &[1024]);
        let b = p.array("b", ElemType::F32, &[1024]);
        let c = p.array("c", ElemType::F32, &[1024]);
        let mut k = p.kernel("add");
        let i = k.parallel_loop("i", 1024);
        k.statement()
            .read(a, &[idx(i)])
            .read(b, &[idx(i)])
            .write(c, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        assert_eq!(prog.kernels.len(), 1);
        assert_eq!(prog.arrays.len(), 3);
        assert_eq!(prog.kernels[0].statements[0].refs.len(), 3);
        assert_eq!(prog.kernels[0].parallel_tasks(), 1024);
    }

    #[test]
    fn irregular_reads_via_read_ix() {
        let mut p = ProgramBuilder::new("spmv");
        let x = p.array("x", ElemType::F64, &[132]);
        let mut k = p.kernel("gather");
        let i = k.parallel_loop("i", 132);
        k.statement()
            .read_ix(x, &[irr()])
            .write(x, &[idx(i)])
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        assert!(prog.kernels[0].statements[0].refs[0].is_irregular());
    }

    #[test]
    fn sparse_array_flag() {
        let mut p = ProgramBuilder::new("s");
        let v = p.sparse_array("vals", ElemType::F64, &[500]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 10);
        k.statement().read(v, &[idx(i)]).finish();
        k.finish();
        let prog = p.build().unwrap();
        assert!(prog.array(v).sparse);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut p = ProgramBuilder::new("bad");
        let a = p.array("a", ElemType::F32, &[10, 10]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 10);
        k.statement().read(a, &[idx(i)]).finish(); // 1 index for 2-D array
        k.finish();
        assert!(p.build().is_err());
    }

    #[test]
    fn zero_trip_rejected() {
        let mut p = ProgramBuilder::new("bad");
        let a = p.array("a", ElemType::F32, &[10]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 0);
        k.statement().read(a, &[idx(i)]).finish();
        k.finish();
        assert!(p.build().is_err());
    }

    #[test]
    #[should_panic(expected = "active fraction")]
    fn bad_active_fraction_panics() {
        let mut p = ProgramBuilder::new("bad");
        let a = p.array("a", ElemType::F32, &[10]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 10);
        k.statement().read(a, &[idx(i)]).active(1.5).finish();
    }

    #[test]
    fn explicit_transfers_record_position() {
        let mut p = ProgramBuilder::new("xfer");
        let a = p.array("a", ElemType::F32, &[16]);
        let b = p.array("b", ElemType::F32, &[16]);
        assert_eq!(p.array_id("a"), Some(a));
        assert_eq!(p.array_id("nope"), None);
        p.transfer(a, TransferKind::HostToDevice); // pos 0
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 16);
        k.statement()
            .read(a, &[idx(i)])
            .write(b, &[idx(i)])
            .finish();
        k.finish();
        p.transfer(b, TransferKind::DeviceToHost); // pos 1
        let prog = p.build().unwrap();
        assert_eq!(prog.transfers.len(), 2);
        assert_eq!(prog.transfers[0].pos, 0);
        assert_eq!(prog.transfers[0].kind, TransferKind::HostToDevice);
        assert_eq!(prog.transfers[1].pos, 1);
        assert_eq!(prog.transfers[1].array, b);
    }

    #[test]
    fn helpers() {
        assert_eq!(idx(LoopId(2)).coeff(LoopId(2)), 1);
        assert_eq!(cst(9).offset, 9);
        assert!(irr().is_irregular());
    }
}
