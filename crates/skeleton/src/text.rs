//! A plain-text format for code skeletons — the `.gsk` files the CLI
//! consumes.
//!
//! GROPHECY's users author skeletons by hand from their CPU code; a small
//! declarative format keeps that workflow out of Rust source. The format
//! is line-oriented; `#` starts a comment. Example:
//!
//! ```text
//! program hotspot-1024
//! array temp     f32 [1024, 1024]
//! array power    f32 [1024, 1024]
//! array temp_out f32 [1024, 1024]
//!
//! kernel hotspot_step
//!   parallel i 1024
//!   parallel j 1024
//!   stmt adds=10 muls=6
//!     read  temp  [i-1, j]
//!     read  temp  [i+1, j]
//!     read  temp  [i, j-1]
//!     read  temp  [i, j+1]
//!     read  temp  [i, j]
//!     read  power [i, j]
//!     write temp_out [i, j]
//! ```
//!
//! Grammar (indentation is ignored; nesting is implied by order):
//!
//! ```text
//! program <name>
//! array <name> <f32|f64|i32|i64|c64|c128> [e1, e2, ...] [sparse]
//! kernel <name> [gpu_scale=<x>] [cpu_scale=<x>]
//!   parallel <var> <trip> | serial <var> <trip>
//!   stmt [adds=N] [muls=N] [divs=N] [specials=N] [compares=N] [active=F]
//!     read|write <array> [<index>, <index>, ...]
//! ```
//!
//! Index expressions: affine combinations of loop variables and integers
//! (`i`, `i+1`, `2*i-3`, `4*i+j`, `7`), `?` for an irregular index, or
//! `?<span>` for a bounded-irregular one (e.g. `?8`).
//!
//! [`to_text`] writes the same format back out; `parse(to_text(p)) == p`.

use crate::expr::{AffineExpr, IndexExpr, LoopId};
use crate::ir::{ElemType, Flops, Program};
use crate::ProgramBuilder;
use gpp_brs::AccessKind;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a `.gsk` skeleton document.
pub fn parse(input: &str) -> Result<Program, ParseError> {
    let mut builder: Option<ProgramBuilder> = None;
    // Kernel under construction: (name, gpu_scale, cpu_scale, loops,
    // statements).
    struct PendStmt {
        flops: Flops,
        active: f64,
        refs: Vec<(String, Vec<IndexExpr>, AccessKind, usize)>,
    }
    struct PendKernel {
        name: String,
        gpu_scale: f64,
        cpu_scale: f64,
        loops: Vec<(String, u64, bool)>,
        stmts: Vec<PendStmt>,
    }
    let mut kernel: Option<PendKernel> = None;
    let mut done: Vec<PendKernel> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let head = words.next().expect("nonempty line has a word");
        match head {
            "program" => {
                if builder.is_some() {
                    return Err(err(lineno, "duplicate `program` line"));
                }
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "program needs a name"))?;
                builder = Some(ProgramBuilder::new(name));
            }
            "array" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`array` before `program`"))?;
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "array needs a name"))?
                    .to_string();
                let elem = match words.next() {
                    Some("f32") => ElemType::F32,
                    Some("f64") => ElemType::F64,
                    Some("i32") => ElemType::I32,
                    Some("i64") => ElemType::I64,
                    Some("c64") => ElemType::C64,
                    Some("c128") => ElemType::C128,
                    other => {
                        return Err(err(lineno, format!("unknown element type {other:?}")));
                    }
                };
                let rest: String = words.collect::<Vec<_>>().join(" ");
                let (extents_src, sparse) = match rest.strip_suffix("sparse") {
                    Some(pre) => (pre.trim(), true),
                    None => (rest.as_str(), false),
                };
                let extents = parse_extents(extents_src, lineno)?;
                if sparse {
                    b.sparse_array(name, elem, &extents);
                } else {
                    b.array(name, elem, &extents);
                }
            }
            "kernel" => {
                if builder.is_none() {
                    return Err(err(lineno, "`kernel` before `program`"));
                }
                if let Some(k) = kernel.take() {
                    done.push(k);
                }
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "kernel needs a name"))?
                    .to_string();
                let mut gpu_scale = 1.0;
                let mut cpu_scale = 1.0;
                for w in words {
                    if let Some(v) = w.strip_prefix("gpu_scale=") {
                        gpu_scale = v
                            .parse()
                            .map_err(|_| err(lineno, format!("bad gpu_scale `{v}`")))?;
                    } else if let Some(v) = w.strip_prefix("cpu_scale=") {
                        cpu_scale = v
                            .parse()
                            .map_err(|_| err(lineno, format!("bad cpu_scale `{v}`")))?;
                    } else {
                        return Err(err(lineno, format!("unknown kernel option `{w}`")));
                    }
                }
                kernel = Some(PendKernel {
                    name,
                    gpu_scale,
                    cpu_scale,
                    loops: Vec::new(),
                    stmts: Vec::new(),
                });
            }
            "parallel" | "serial" => {
                let k = kernel
                    .as_mut()
                    .ok_or_else(|| err(lineno, format!("`{head}` outside a kernel")))?;
                if !k.stmts.is_empty() {
                    return Err(err(lineno, "loops must precede statements"));
                }
                let var = words
                    .next()
                    .ok_or_else(|| err(lineno, "loop needs a variable name"))?;
                let trip: u64 = words
                    .next()
                    .ok_or_else(|| err(lineno, "loop needs a trip count"))?
                    .parse()
                    .map_err(|_| err(lineno, "trip count must be an integer"))?;
                k.loops.push((var.to_string(), trip, head == "parallel"));
            }
            "stmt" => {
                let k = kernel
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`stmt` outside a kernel"))?;
                let mut flops = Flops::default();
                let mut active = 1.0f64;
                for w in words {
                    let (key, val) = w
                        .split_once('=')
                        .ok_or_else(|| err(lineno, format!("expected key=value, got `{w}`")))?;
                    match key {
                        "active" => {
                            active = val
                                .parse()
                                .map_err(|_| err(lineno, format!("bad active `{val}`")))?
                        }
                        _ => {
                            let n: u32 = val
                                .parse()
                                .map_err(|_| err(lineno, format!("bad count `{val}`")))?;
                            match key {
                                "adds" => flops.adds = n,
                                "muls" => flops.muls = n,
                                "divs" => flops.divs = n,
                                "specials" => flops.specials = n,
                                "compares" => flops.compares = n,
                                _ => return Err(err(lineno, format!("unknown stmt key `{key}`"))),
                            }
                        }
                    }
                }
                k.stmts.push(PendStmt {
                    flops,
                    active,
                    refs: Vec::new(),
                });
            }
            "read" | "write" => {
                let k = kernel
                    .as_mut()
                    .ok_or_else(|| err(lineno, format!("`{head}` outside a kernel")))?;
                let stmt = k
                    .stmts
                    .last_mut()
                    .ok_or_else(|| err(lineno, format!("`{head}` before any `stmt`")))?;
                let array = words
                    .next()
                    .ok_or_else(|| err(lineno, "reference needs an array"))?;
                let rest: String = words.collect::<Vec<_>>().join(" ");
                let loop_names: Vec<&str> = k.loops.iter().map(|(n, _, _)| n.as_str()).collect();
                let index = parse_index_list(&rest, &loop_names, lineno)?;
                let kind = if head == "read" {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                };
                stmt.refs.push((array.to_string(), index, kind, lineno));
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }
    if let Some(k) = kernel.take() {
        done.push(k);
    }

    let mut b = builder.ok_or_else(|| err(1, "missing `program` line"))?;
    for pk in done {
        let mut kb = b.kernel(&pk.name);
        kb.gpu_compute_scale(pk.gpu_scale);
        kb.cpu_compute_scale(pk.cpu_scale);
        for (name, trip, parallel) in &pk.loops {
            if *parallel {
                kb.parallel_loop(name.clone(), *trip);
            } else {
                kb.serial_loop(name.clone(), *trip);
            }
        }
        for st in pk.stmts {
            let mut sb = kb.statement().flops(st.flops);
            if st.active != 1.0 {
                sb = sb.active(st.active);
            }
            for (array, index, kind, line) in st.refs {
                let id = resolve_array(&mut sb, &array, line)?;
                sb = match kind {
                    AccessKind::Read => sb.read_ix(id, &index),
                    AccessKind::Write => sb.write_ix(id, &index),
                };
            }
            sb.finish();
        }
        kb.finish();
    }
    b.build()
        .map_err(|e| err(0, format!("validation failed: {e}")))
}

/// Looks an array up by name through the statement builder's program.
fn resolve_array(
    sb: &mut crate::builder::StatementBuilder<'_, '_>,
    name: &str,
    line: usize,
) -> Result<gpp_brs::ArrayId, ParseError> {
    sb.lookup_array(name)
        .ok_or_else(|| err(line, format!("unknown array `{name}`")))
}

fn parse_extents(src: &str, line: usize) -> Result<Vec<usize>, ParseError> {
    let src = src.trim();
    let inner = src
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("extents must be bracketed, got `{src}`")))?;
    inner
        .split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| err(line, format!("bad extent `{}`", p.trim())))
        })
        .collect()
}

fn parse_index_list(src: &str, loops: &[&str], line: usize) -> Result<Vec<IndexExpr>, ParseError> {
    let src = src.trim();
    let inner = src
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("index list must be bracketed, got `{src}`")))?;
    inner
        .split(',')
        .map(|p| parse_index(p.trim(), loops, line))
        .collect()
}

/// Parses one index expression: `?`, `?<span>`, or an affine combination
/// like `2*i - 3 + j`.
fn parse_index(src: &str, loops: &[&str], line: usize) -> Result<IndexExpr, ParseError> {
    if src == "?" {
        return Ok(IndexExpr::Irregular);
    }
    if let Some(span) = src.strip_prefix('?') {
        let span: u32 = span
            .parse()
            .map_err(|_| err(line, format!("bad irregular span `{span}`")))?;
        return Ok(IndexExpr::IrregularBounded(span));
    }
    // Tokenize into signed terms.
    let mut expr = AffineExpr::constant(0);
    // Normalize: ensure a leading sign, then split on +/- keeping signs.
    let cleaned: String = src.chars().filter(|c| !c.is_whitespace()).collect();
    if cleaned.is_empty() {
        return Err(err(line, "empty index expression"));
    }
    let mut terms = Vec::new();
    let mut current = String::new();
    for (k, ch) in cleaned.char_indices() {
        if (ch == '+' || ch == '-') && k != 0 {
            terms.push(std::mem::take(&mut current));
        }
        current.push(ch);
    }
    terms.push(current);
    for t in terms {
        let (sign, body) = match t.strip_prefix('-') {
            Some(b) => (-1i64, b),
            None => (1, t.strip_prefix('+').unwrap_or(&t)),
        };
        if body.is_empty() {
            return Err(err(line, format!("dangling sign in `{src}`")));
        }
        // Forms: `<int>`, `<var>`, `<int>*<var>`.
        if let Some((coeff, var)) = body.split_once('*') {
            let c: i64 = coeff
                .parse()
                .map_err(|_| err(line, format!("bad coefficient `{coeff}`")))?;
            let li = loop_index(var, loops, line, src)?;
            expr.add_term(LoopId(li as u32), sign * c);
        } else if let Ok(c) = body.parse::<i64>() {
            expr.offset += sign * c;
        } else {
            let li = loop_index(body, loops, line, src)?;
            expr.add_term(LoopId(li as u32), sign);
        }
    }
    Ok(IndexExpr::Affine(expr))
}

fn loop_index(var: &str, loops: &[&str], line: usize, ctx: &str) -> Result<usize, ParseError> {
    loops
        .iter()
        .position(|l| *l == var)
        .ok_or_else(|| err(line, format!("unknown loop variable `{var}` in `{ctx}`")))
}

/// Renders a program back to the text format. `parse(to_text(p))`
/// reproduces `p` (modulo whitespace).
pub fn to_text(p: &Program) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "program {}", p.name);
    for a in &p.arrays {
        let elem = match a.elem {
            ElemType::F32 => "f32",
            ElemType::F64 => "f64",
            ElemType::I32 => "i32",
            ElemType::I64 => "i64",
            ElemType::C64 => "c64",
            ElemType::C128 => "c128",
        };
        let extents: Vec<String> = a.extents.iter().map(usize::to_string).collect();
        let _ = writeln!(
            s,
            "array {} {} [{}]{}",
            a.name,
            elem,
            extents.join(", "),
            if a.sparse { " sparse" } else { "" }
        );
    }
    for k in &p.kernels {
        let _ = write!(s, "\nkernel {}", k.name);
        if k.gpu_compute_scale != 1.0 {
            let _ = write!(s, " gpu_scale={}", k.gpu_compute_scale);
        }
        if k.cpu_compute_scale != 1.0 {
            let _ = write!(s, " cpu_scale={}", k.cpu_compute_scale);
        }
        let _ = writeln!(s);
        for l in &k.loops {
            let _ = writeln!(
                s,
                "  {} {} {}",
                if l.parallel { "parallel" } else { "serial" },
                l.name,
                l.trip
            );
        }
        for st in &k.statements {
            let f = &st.flops;
            let _ = write!(s, "  stmt");
            for (key, v) in [
                ("adds", f.adds),
                ("muls", f.muls),
                ("divs", f.divs),
                ("specials", f.specials),
                ("compares", f.compares),
            ] {
                if v > 0 {
                    let _ = write!(s, " {key}={v}");
                }
            }
            if st.active_fraction != 1.0 {
                let _ = write!(s, " active={}", st.active_fraction);
            }
            let _ = writeln!(s);
            for r in &st.refs {
                let kind = if r.kind.is_read() { "read " } else { "write" };
                let ix: Vec<String> = r
                    .index
                    .iter()
                    .map(|e| match e {
                        IndexExpr::Irregular => "?".to_string(),
                        IndexExpr::IrregularBounded(sp) => format!("?{sp}"),
                        IndexExpr::Affine(a) => render_affine(a, &k.loops),
                    })
                    .collect();
                let _ = writeln!(
                    s,
                    "    {kind} {} [{}]",
                    p.array(r.array).name,
                    ix.join(", ")
                );
            }
        }
    }
    s
}

fn render_affine(e: &AffineExpr, loops: &[crate::ir::Loop]) -> String {
    if e.terms.is_empty() {
        return e.offset.to_string();
    }
    let mut s = String::new();
    for (k, (l, c)) in e.terms.iter().enumerate() {
        let var = &loops[l.index()].name;
        match (k, *c) {
            (0, 1) => s.push_str(var),
            (0, -1) => {
                s.push('-');
                s.push_str(var);
            }
            (0, c) => s.push_str(&format!("{c}*{var}")),
            (_, 1) => s.push_str(&format!("+{var}")),
            (_, -1) => s.push_str(&format!("-{var}")),
            (_, c) if c > 0 => s.push_str(&format!("+{c}*{var}")),
            (_, c) => s.push_str(&format!("{c}*{var}")),
        }
    }
    match e.offset {
        0 => {}
        o if o > 0 => s.push_str(&format!("+{o}")),
        o => s.push_str(&o.to_string()),
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoalesceClass;

    const HOTSPOT: &str = r#"
# A HotSpot-like stencil.
program hotspot-64
array temp     f32 [64, 64]
array power    f32 [64, 64]
array temp_out f32 [64, 64]

kernel hotspot_step
  parallel i 64
  parallel j 64
  stmt adds=10 muls=6
    read  temp  [i-1, j]
    read  temp  [i+1, j]
    read  temp  [i, j-1]
    read  temp  [i, j+1]
    read  temp  [i, j]
    read  power [i, j]
    write temp_out [i, j]
"#;

    #[test]
    fn parses_hotspot() {
        let p = parse(HOTSPOT).unwrap();
        assert_eq!(p.name, "hotspot-64");
        assert_eq!(p.arrays.len(), 3);
        assert_eq!(p.kernels.len(), 1);
        let k = &p.kernels[0];
        assert_eq!(k.parallel_tasks(), 64 * 64);
        assert_eq!(k.statements[0].refs.len(), 7);
        let chars = k.characteristics(&p);
        assert!(chars.sharable_load_fraction > 0.5);
    }

    #[test]
    fn roundtrip_identity() {
        let p = parse(HOTSPOT).unwrap();
        let text = to_text(&p);
        let p2 = parse(&text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn roundtrips_every_paper_feature() {
        let src = r#"
program full
array a f32 [100]
array b c128 [10, 20]
array v f64 [345] sparse

kernel k1 gpu_scale=38 cpu_scale=0.45
  parallel r 10
  parallel c 20
  serial k 5
  stmt adds=4 muls=4 active=0.85
    read v [10*r+k]
    read b [?8, c]
    read a [?]
    write b [r, c]
  stmt divs=1 specials=2 compares=3
    read a [2*r-1]
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.kernels[0].gpu_compute_scale, 38.0);
        assert_eq!(p.kernels[0].cpu_compute_scale, 0.45);
        let text = to_text(&p);
        assert_eq!(parse(&text).unwrap(), p);
    }

    #[test]
    fn index_expression_parsing() {
        let loops = ["i", "j"];
        let ix = parse_index("2*i - 3 + j", &loops, 1).unwrap();
        let IndexExpr::Affine(e) = ix else {
            panic!("expected affine")
        };
        assert_eq!(e.coeff(LoopId(0)), 2);
        assert_eq!(e.coeff(LoopId(1)), 1);
        assert_eq!(e.offset, -3);
        assert_eq!(parse_index("?", &loops, 1).unwrap(), IndexExpr::Irregular);
        assert_eq!(
            parse_index("?16", &loops, 1).unwrap(),
            IndexExpr::IrregularBounded(16)
        );
        assert!(matches!(
            parse_index("7", &loops, 1).unwrap(),
            IndexExpr::Affine(e) if e.is_constant() && e.offset == 7
        ));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad =
            "program x\narray a f32 [10]\nkernel k\n  parallel i 10\n  stmt\n    read zzz [i]\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 6);
        assert!(e.to_string().contains("zzz"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse("").is_err());
        assert!(parse("array a f32 [10]").is_err()); // before program
        assert!(parse("program p\nfoo bar").is_err());
        assert!(parse("program p\narray a f32 10").is_err()); // no brackets
        assert!(parse("program p\narray a f32 [10]\nkernel k\n  stmt\n").is_err()); // no loops
        let e = parse("program p\narray a f32 [10]\nkernel k\n  parallel i 10\n  read a [i]\n")
            .unwrap_err();
        assert!(e.message.contains("before any `stmt`"));
    }

    #[test]
    fn parsed_skeleton_classifies_like_builder() {
        let p = parse(HOTSPOT).unwrap();
        let chars = p.kernels[0].characteristics(&p);
        // Row-offset reads are misaligned-coalesced, center is aligned.
        let coalesced = chars
            .accesses
            .iter()
            .filter(|a| a.class == CoalesceClass::Coalesced)
            .count();
        assert_eq!(coalesced, 7);
        assert!(chars.accesses.iter().any(|a| a.aligned));
        assert!(chars.accesses.iter().any(|a| !a.aligned));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# top\nprogram p # trailing\n\narray a f32 [4] # comment\nkernel k\n  parallel i 4\n  stmt adds=1\n    read a [i]\n";
        assert!(parse(src).is_ok());
    }
}
