//! A plain-text format for code skeletons — the `.gsk` files the CLI
//! consumes.
//!
//! GROPHECY's users author skeletons by hand from their CPU code; a small
//! declarative format keeps that workflow out of Rust source. The format
//! is line-oriented; `#` starts a comment. Example:
//!
//! ```text
//! program hotspot-1024
//! array temp     f32 [1024, 1024]
//! array power    f32 [1024, 1024]
//! array temp_out f32 [1024, 1024]
//!
//! kernel hotspot_step
//!   parallel i 1024
//!   parallel j 1024
//!   stmt adds=10 muls=6
//!     read  temp  [i-1, j]
//!     read  temp  [i+1, j]
//!     read  temp  [i, j-1]
//!     read  temp  [i, j+1]
//!     read  temp  [i, j]
//!     read  power [i, j]
//!     write temp_out [i, j]
//! ```
//!
//! Grammar (indentation is ignored; nesting is implied by order):
//!
//! ```text
//! program <name>
//! array <name> <f32|f64|i32|i64|c64|c128> [e1, e2, ...] [sparse] [temporary]
//! h2d <array> [async | stream <N>] [chunks=<K>]
//! d2h <array> [async | stream <N>] [chunks=<K>]
//! kernel <name> [gpu_scale=<x>] [cpu_scale=<x>]
//!   parallel <var> <trip> | serial <var> <trip>
//!   stmt [adds=N] [muls=N] [divs=N] [specials=N] [compares=N] [active=F]
//!     read|write <array> [<index>, <index>, ...]
//! ```
//!
//! `h2d`/`d2h` lines are top-level directives that may appear anywhere
//! between kernels: they pin an *explicit* whole-array transfer schedule
//! (priced as written by the analyzer) instead of letting the data usage
//! analysis derive the minimal plan. A transfer line closes the kernel
//! being parsed, exactly like a `kernel` line does.
//!
//! Transfer annotations opt into stream/overlap semantics: `stream <N>`
//! enqueues the copy on stream N (`async` is shorthand for stream 1;
//! stream 0 is the default synchronous stream), and `chunks=<K>` splits
//! the copy into K pipelined chunks for double-buffered overlap with the
//! adjacent kernel. Both are rendered back only when non-default.
//!
//! Index expressions: affine combinations of loop variables and integers
//! (`i`, `i+1`, `2*i-3`, `4*i+j`, `7`), `?` for an irregular index, or
//! `?<span>` for a bounded-irregular one (e.g. `?8`).
//!
//! [`to_text`] writes the same format back out; `parse(to_text(p)) == p`.
//!
//! [`parse_with_spans`] additionally returns a [`SourceMap`]: the source
//! location of every array declaration, kernel, loop, statement, and
//! array reference, so diagnostics (`gpp lint`) can point at real text.
//! Spans live in a side table rather than on IR nodes, keeping the
//! `parse(to_text(p)) == p` identity exact.

use crate::expr::{AffineExpr, IndexExpr, LoopId};
use crate::ir::{ElemType, Flops, Program, TransferKind};
use crate::ProgramBuilder;
use gpp_brs::AccessKind;

/// A location in `.gsk` source: 1-based line and column plus the length
/// (in bytes) of the spanned directive text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the first non-blank character.
    pub col: usize,
    /// Length of the spanned text in bytes.
    pub len: usize,
}

impl Span {
    /// A span covering nothing (used when no source text exists, e.g.
    /// builder-constructed programs).
    pub fn none() -> Span {
        Span::default()
    }

    /// True when this span points at real source text.
    pub fn is_real(&self) -> bool {
        self.line > 0
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Source locations for one statement: the `stmt` directive and each
/// `read`/`write` reference in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StmtSpans {
    /// The `stmt` line.
    pub span: Span,
    /// One span per array reference, in statement order.
    pub refs: Vec<Span>,
}

/// Source locations for one kernel: the `kernel` directive, each loop
/// line, and each statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelSpans {
    /// The `kernel` line.
    pub span: Span,
    /// One span per loop, in nest order.
    pub loops: Vec<Span>,
    /// One entry per statement.
    pub stmts: Vec<StmtSpans>,
}

/// Side table mapping IR nodes back to `.gsk` source locations, produced
/// by [`parse_with_spans`]. Indexed in parallel with the [`Program`]:
/// `arrays[id.index()]`, `kernels[k].stmts[s].refs[r]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    /// The `program` line.
    pub program: Span,
    /// One span per array declaration, in [`gpp_brs::ArrayId`] order.
    pub arrays: Vec<Span>,
    /// One entry per kernel, in program order.
    pub kernels: Vec<KernelSpans>,
    /// One span per explicit `h2d`/`d2h` directive, parallel to
    /// [`Program::transfers`].
    pub transfers: Vec<Span>,
}

impl SourceMap {
    /// The span of an array declaration, if recorded.
    pub fn array_span(&self, id: gpp_brs::ArrayId) -> Span {
        self.arrays.get(id.index()).copied().unwrap_or_default()
    }

    /// The span of a reference, if recorded.
    pub fn ref_span(&self, kernel: usize, stmt: usize, r: usize) -> Span {
        self.kernels
            .get(kernel)
            .and_then(|k| k.stmts.get(stmt))
            .and_then(|s| s.refs.get(r))
            .copied()
            .unwrap_or_default()
    }

    /// The span of a kernel directive, if recorded.
    pub fn kernel_span(&self, kernel: usize) -> Span {
        self.kernels.get(kernel).map(|k| k.span).unwrap_or_default()
    }

    /// The span of the `i`-th explicit transfer directive, if recorded.
    pub fn transfer_span(&self, i: usize) -> Span {
        self.transfers.get(i).copied().unwrap_or_default()
    }
}

/// A parse failure with its 1-based line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// 1-based column of the offending directive (0 when unknown).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        col: if line == 0 { 0 } else { 1 },
        message: message.into(),
    }
}

fn err_at(at: Span, message: impl Into<String>) -> ParseError {
    ParseError {
        line: at.line,
        col: at.col,
        message: message.into(),
    }
}

/// Parses a `.gsk` skeleton document and validates the result.
pub fn parse(input: &str) -> Result<Program, ParseError> {
    let (p, _) = parse_with_spans(input)?;
    crate::validate::validate(&p).map_err(|e| err(0, format!("validation failed: {e}")))?;
    Ok(p)
}

/// Parses a `.gsk` skeleton document **without** validating it, returning
/// the program plus a [`SourceMap`] of every IR node's source location.
///
/// This is the linter's entry point: structural problems (the ones
/// [`crate::validate::validate`] reports) are left in the IR so they can
/// be diagnosed with spans instead of aborting the parse.
pub fn parse_with_spans(input: &str) -> Result<(Program, SourceMap), ParseError> {
    let mut builder: Option<ProgramBuilder> = None;
    // Kernel under construction: (name, gpu_scale, cpu_scale, loops,
    // statements), each with the span of its directive line.
    struct PendStmt {
        flops: Flops,
        active: f64,
        refs: Vec<(String, Vec<IndexExpr>, AccessKind, Span)>,
        span: Span,
    }
    struct PendKernel {
        name: String,
        gpu_scale: f64,
        cpu_scale: f64,
        loops: Vec<(String, u64, bool)>,
        loop_spans: Vec<Span>,
        stmts: Vec<PendStmt>,
        span: Span,
    }
    let mut kernel: Option<PendKernel> = None;
    let mut done: Vec<PendKernel> = Vec::new();
    let mut program_span = Span::none();
    let mut array_spans: Vec<Span> = Vec::new();
    // Explicit transfers: (array, kind, stream, chunks, kernels-before-it,
    // span).
    let mut transfers: Vec<(gpp_brs::ArrayId, TransferKind, u32, u32, usize, Span)> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let pre = raw.split('#').next().unwrap_or("");
        let line = pre.trim();
        if line.is_empty() {
            continue;
        }
        let at = Span {
            line: lineno,
            col: pre.len() - pre.trim_start().len() + 1,
            len: line.len(),
        };
        let mut words = line.split_whitespace();
        let head = words.next().expect("nonempty line has a word");
        match head {
            "program" => {
                if builder.is_some() {
                    return Err(err_at(at, "duplicate `program` line"));
                }
                let name = words
                    .next()
                    .ok_or_else(|| err_at(at, "program needs a name"))?;
                builder = Some(ProgramBuilder::new(name));
                program_span = at;
            }
            "array" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err_at(at, "`array` before `program`"))?;
                let name = words
                    .next()
                    .ok_or_else(|| err_at(at, "array needs a name"))?
                    .to_string();
                let elem = match words.next() {
                    Some("f32") => ElemType::F32,
                    Some("f64") => ElemType::F64,
                    Some("i32") => ElemType::I32,
                    Some("i64") => ElemType::I64,
                    Some("c64") => ElemType::C64,
                    Some("c128") => ElemType::C128,
                    other => {
                        return Err(err_at(at, format!("unknown element type {other:?}")));
                    }
                };
                let rest: String = words.collect::<Vec<_>>().join(" ");
                // Attributes (`sparse`, `temporary`, in any order) follow
                // the bracketed extents.
                let (extents_src, attrs) = match rest.rfind(']') {
                    Some(k) => (&rest[..=k], rest[k + 1..].trim()),
                    None => (rest.as_str(), ""),
                };
                let extents = parse_extents(extents_src, at)?;
                let mut sparse = false;
                let mut temporary = false;
                for w in attrs.split_whitespace() {
                    match w {
                        "sparse" => sparse = true,
                        "temporary" => temporary = true,
                        other => {
                            return Err(err_at(at, format!("unknown array attribute `{other}`")))
                        }
                    }
                }
                let id = if sparse {
                    b.sparse_array(name, elem, &extents)
                } else {
                    b.array(name, elem, &extents)
                };
                if temporary {
                    b.set_temporary(id);
                }
                array_spans.push(at);
            }
            "h2d" | "d2h" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err_at(at, format!("`{head}` before `program`")))?;
                // A transfer directive sits between kernels: close the one
                // being parsed, exactly like a `kernel` line.
                if let Some(k) = kernel.take() {
                    done.push(k);
                }
                let name = words
                    .next()
                    .ok_or_else(|| err_at(at, format!("`{head}` needs an array name")))?;
                // Optional annotations: `async` (shorthand for stream 1),
                // `stream <N>`, and `chunks=<K>`, in any order.
                let mut stream = 0u32;
                let mut chunks = 1u32;
                while let Some(w) = words.next() {
                    if w == "async" {
                        stream = 1;
                    } else if w == "stream" {
                        let v = words.next().ok_or_else(|| {
                            err_at(at, format!("`stream` needs a number after `{head} {name}`"))
                        })?;
                        stream = v
                            .parse()
                            .map_err(|_| err_at(at, format!("bad stream `{v}`")))?;
                    } else if let Some(v) = w.strip_prefix("chunks=") {
                        chunks = v
                            .parse()
                            .map_err(|_| err_at(at, format!("bad chunks `{v}`")))?;
                    } else {
                        return Err(err_at(
                            at,
                            format!("unexpected `{w}` after `{head} {name}`"),
                        ));
                    }
                }
                let id = b
                    .array_id(name)
                    .ok_or_else(|| err_at(at, format!("unknown array `{name}`")))?;
                let kind = if head == "h2d" {
                    TransferKind::HostToDevice
                } else {
                    TransferKind::DeviceToHost
                };
                transfers.push((id, kind, stream, chunks, done.len(), at));
            }
            "kernel" => {
                if builder.is_none() {
                    return Err(err_at(at, "`kernel` before `program`"));
                }
                if let Some(k) = kernel.take() {
                    done.push(k);
                }
                let name = words
                    .next()
                    .ok_or_else(|| err_at(at, "kernel needs a name"))?
                    .to_string();
                let mut gpu_scale = 1.0;
                let mut cpu_scale = 1.0;
                for w in words {
                    if let Some(v) = w.strip_prefix("gpu_scale=") {
                        gpu_scale = v
                            .parse()
                            .map_err(|_| err_at(at, format!("bad gpu_scale `{v}`")))?;
                    } else if let Some(v) = w.strip_prefix("cpu_scale=") {
                        cpu_scale = v
                            .parse()
                            .map_err(|_| err_at(at, format!("bad cpu_scale `{v}`")))?;
                    } else {
                        return Err(err_at(at, format!("unknown kernel option `{w}`")));
                    }
                }
                kernel = Some(PendKernel {
                    name,
                    gpu_scale,
                    cpu_scale,
                    loops: Vec::new(),
                    loop_spans: Vec::new(),
                    stmts: Vec::new(),
                    span: at,
                });
            }
            "parallel" | "serial" => {
                let k = kernel
                    .as_mut()
                    .ok_or_else(|| err_at(at, format!("`{head}` outside a kernel")))?;
                if !k.stmts.is_empty() {
                    return Err(err_at(at, "loops must precede statements"));
                }
                let var = words
                    .next()
                    .ok_or_else(|| err_at(at, "loop needs a variable name"))?;
                let trip: u64 = words
                    .next()
                    .ok_or_else(|| err_at(at, "loop needs a trip count"))?
                    .parse()
                    .map_err(|_| err_at(at, "trip count must be an integer"))?;
                k.loops.push((var.to_string(), trip, head == "parallel"));
                k.loop_spans.push(at);
            }
            "stmt" => {
                let k = kernel
                    .as_mut()
                    .ok_or_else(|| err_at(at, "`stmt` outside a kernel"))?;
                let mut flops = Flops::default();
                let mut active = 1.0f64;
                for w in words {
                    let (key, val) = w
                        .split_once('=')
                        .ok_or_else(|| err_at(at, format!("expected key=value, got `{w}`")))?;
                    match key {
                        "active" => {
                            active = val
                                .parse()
                                .map_err(|_| err_at(at, format!("bad active `{val}`")))?
                        }
                        _ => {
                            let n: u32 = val
                                .parse()
                                .map_err(|_| err_at(at, format!("bad count `{val}`")))?;
                            match key {
                                "adds" => flops.adds = n,
                                "muls" => flops.muls = n,
                                "divs" => flops.divs = n,
                                "specials" => flops.specials = n,
                                "compares" => flops.compares = n,
                                _ => return Err(err_at(at, format!("unknown stmt key `{key}`"))),
                            }
                        }
                    }
                }
                k.stmts.push(PendStmt {
                    flops,
                    active,
                    refs: Vec::new(),
                    span: at,
                });
            }
            "read" | "write" => {
                let k = kernel
                    .as_mut()
                    .ok_or_else(|| err_at(at, format!("`{head}` outside a kernel")))?;
                let stmt = k
                    .stmts
                    .last_mut()
                    .ok_or_else(|| err_at(at, format!("`{head}` before any `stmt`")))?;
                let array = words
                    .next()
                    .ok_or_else(|| err_at(at, "reference needs an array"))?;
                let rest: String = words.collect::<Vec<_>>().join(" ");
                let loop_names: Vec<&str> = k.loops.iter().map(|(n, _, _)| n.as_str()).collect();
                let index = parse_index_list(&rest, &loop_names, at)?;
                let kind = if head == "read" {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                };
                stmt.refs.push((array.to_string(), index, kind, at));
            }
            other => return Err(err_at(at, format!("unknown directive `{other}`"))),
        }
    }
    if let Some(k) = kernel.take() {
        done.push(k);
    }

    let mut b = builder.ok_or_else(|| err(1, "missing `program` line"))?;
    let mut map = SourceMap {
        program: program_span,
        arrays: array_spans,
        kernels: Vec::new(),
        transfers: Vec::new(),
    };
    for (id, kind, stream, chunks, pos, at) in transfers {
        b.transfer_with(id, kind, pos, stream, chunks);
        map.transfers.push(at);
    }
    for pk in done {
        let mut ks = KernelSpans {
            span: pk.span,
            loops: pk.loop_spans,
            stmts: Vec::new(),
        };
        let mut kb = b.kernel(&pk.name);
        kb.gpu_compute_scale(pk.gpu_scale);
        kb.cpu_compute_scale(pk.cpu_scale);
        for (name, trip, parallel) in &pk.loops {
            if *parallel {
                kb.parallel_loop(name.clone(), *trip);
            } else {
                kb.serial_loop(name.clone(), *trip);
            }
        }
        for st in pk.stmts {
            let mut ss = StmtSpans {
                span: st.span,
                refs: Vec::new(),
            };
            let mut sb = kb.statement().flops(st.flops);
            if st.active != 1.0 {
                sb = sb.active(st.active);
            }
            for (array, index, kind, at) in st.refs {
                let id = resolve_array(&mut sb, &array, at)?;
                sb = match kind {
                    AccessKind::Read => sb.read_ix(id, &index),
                    AccessKind::Write => sb.write_ix(id, &index),
                };
                ss.refs.push(at);
            }
            sb.finish();
            ks.stmts.push(ss);
        }
        kb.finish();
        map.kernels.push(ks);
    }
    Ok((b.build_unchecked(), map))
}

/// Looks an array up by name through the statement builder's program.
fn resolve_array(
    sb: &mut crate::builder::StatementBuilder<'_, '_>,
    name: &str,
    at: Span,
) -> Result<gpp_brs::ArrayId, ParseError> {
    sb.lookup_array(name)
        .ok_or_else(|| err_at(at, format!("unknown array `{name}`")))
}

fn parse_extents(src: &str, at: Span) -> Result<Vec<usize>, ParseError> {
    let src = src.trim();
    let inner = src
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err_at(at, format!("extents must be bracketed, got `{src}`")))?;
    inner
        .split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| err_at(at, format!("bad extent `{}`", p.trim())))
        })
        .collect()
}

fn parse_index_list(src: &str, loops: &[&str], at: Span) -> Result<Vec<IndexExpr>, ParseError> {
    let src = src.trim();
    let inner = src
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err_at(at, format!("index list must be bracketed, got `{src}`")))?;
    inner
        .split(',')
        .map(|p| parse_index(p.trim(), loops, at))
        .collect()
}

/// Parses one index expression: `?`, `?<span>`, or an affine combination
/// like `2*i - 3 + j`.
fn parse_index(src: &str, loops: &[&str], at: Span) -> Result<IndexExpr, ParseError> {
    if src == "?" {
        return Ok(IndexExpr::Irregular);
    }
    if let Some(span) = src.strip_prefix('?') {
        let span: u32 = span
            .parse()
            .map_err(|_| err_at(at, format!("bad irregular span `{span}`")))?;
        return Ok(IndexExpr::IrregularBounded(span));
    }
    // Tokenize into signed terms.
    let mut expr = AffineExpr::constant(0);
    // Normalize: ensure a leading sign, then split on +/- keeping signs.
    let cleaned: String = src.chars().filter(|c| !c.is_whitespace()).collect();
    if cleaned.is_empty() {
        return Err(err_at(at, "empty index expression"));
    }
    let mut terms = Vec::new();
    let mut current = String::new();
    for (k, ch) in cleaned.char_indices() {
        if (ch == '+' || ch == '-') && k != 0 {
            terms.push(std::mem::take(&mut current));
        }
        current.push(ch);
    }
    terms.push(current);
    for t in terms {
        let (sign, body) = match t.strip_prefix('-') {
            Some(b) => (-1i64, b),
            None => (1, t.strip_prefix('+').unwrap_or(&t)),
        };
        if body.is_empty() {
            return Err(err_at(at, format!("dangling sign in `{src}`")));
        }
        // Forms: `<int>`, `<var>`, `<int>*<var>`.
        if let Some((coeff, var)) = body.split_once('*') {
            let c: i64 = coeff
                .parse()
                .map_err(|_| err_at(at, format!("bad coefficient `{coeff}`")))?;
            let li = loop_index(var, loops, at, src)?;
            expr.add_term(LoopId(li as u32), sign * c);
        } else if let Ok(c) = body.parse::<i64>() {
            expr.offset += sign * c;
        } else {
            let li = loop_index(body, loops, at, src)?;
            expr.add_term(LoopId(li as u32), sign);
        }
    }
    Ok(IndexExpr::Affine(expr))
}

fn loop_index(var: &str, loops: &[&str], at: Span, ctx: &str) -> Result<usize, ParseError> {
    loops
        .iter()
        .position(|l| *l == var)
        .ok_or_else(|| err_at(at, format!("unknown loop variable `{var}` in `{ctx}`")))
}

/// Renders a program back to the text format. `parse(to_text(p))`
/// reproduces `p` (modulo whitespace).
pub fn to_text(p: &Program) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "program {}", p.name);
    for a in &p.arrays {
        let elem = match a.elem {
            ElemType::F32 => "f32",
            ElemType::F64 => "f64",
            ElemType::I32 => "i32",
            ElemType::I64 => "i64",
            ElemType::C64 => "c64",
            ElemType::C128 => "c128",
        };
        let extents: Vec<String> = a.extents.iter().map(usize::to_string).collect();
        let _ = writeln!(
            s,
            "array {} {} [{}]{}{}",
            a.name,
            elem,
            extents.join(", "),
            if a.sparse { " sparse" } else { "" },
            if a.temporary { " temporary" } else { "" }
        );
    }
    let transfer_line = |s: &mut String, t: &crate::ir::TransferDecl| {
        let dir = match t.kind {
            TransferKind::HostToDevice => "h2d",
            TransferKind::DeviceToHost => "d2h",
        };
        let _ = write!(s, "\n{dir} {}", p.array(t.array).name);
        // Annotations are emitted only when non-default, so pre-stream
        // skeletons render byte-for-byte as they always did.
        if t.stream != 0 {
            let _ = write!(s, " stream {}", t.stream);
        }
        if t.chunks > 1 {
            let _ = write!(s, " chunks={}", t.chunks);
        }
        let _ = writeln!(s);
    };
    let mut ti = 0; // next explicit transfer to emit, in program order
    for (ki, k) in p.kernels.iter().enumerate() {
        while ti < p.transfers.len() && p.transfers[ti].pos <= ki {
            transfer_line(&mut s, &p.transfers[ti]);
            ti += 1;
        }
        let _ = write!(s, "\nkernel {}", k.name);
        if k.gpu_compute_scale != 1.0 {
            let _ = write!(s, " gpu_scale={}", k.gpu_compute_scale);
        }
        if k.cpu_compute_scale != 1.0 {
            let _ = write!(s, " cpu_scale={}", k.cpu_compute_scale);
        }
        let _ = writeln!(s);
        for l in &k.loops {
            let _ = writeln!(
                s,
                "  {} {} {}",
                if l.parallel { "parallel" } else { "serial" },
                l.name,
                l.trip
            );
        }
        for st in &k.statements {
            let f = &st.flops;
            let _ = write!(s, "  stmt");
            for (key, v) in [
                ("adds", f.adds),
                ("muls", f.muls),
                ("divs", f.divs),
                ("specials", f.specials),
                ("compares", f.compares),
            ] {
                if v > 0 {
                    let _ = write!(s, " {key}={v}");
                }
            }
            if st.active_fraction != 1.0 {
                let _ = write!(s, " active={}", st.active_fraction);
            }
            let _ = writeln!(s);
            for r in &st.refs {
                let kind = if r.kind.is_read() { "read " } else { "write" };
                let ix: Vec<String> = r
                    .index
                    .iter()
                    .map(|e| match e {
                        IndexExpr::Irregular => "?".to_string(),
                        IndexExpr::IrregularBounded(sp) => format!("?{sp}"),
                        IndexExpr::Affine(a) => render_affine(a, &k.loops),
                    })
                    .collect();
                let _ = writeln!(
                    s,
                    "    {kind} {} [{}]",
                    p.array(r.array).name,
                    ix.join(", ")
                );
            }
        }
    }
    while ti < p.transfers.len() {
        transfer_line(&mut s, &p.transfers[ti]);
        ti += 1;
    }
    s
}

fn render_affine(e: &AffineExpr, loops: &[crate::ir::Loop]) -> String {
    if e.terms.is_empty() {
        return e.offset.to_string();
    }
    let mut s = String::new();
    for (k, (l, c)) in e.terms.iter().enumerate() {
        let var = &loops[l.index()].name;
        match (k, *c) {
            (0, 1) => s.push_str(var),
            (0, -1) => {
                s.push('-');
                s.push_str(var);
            }
            (0, c) => s.push_str(&format!("{c}*{var}")),
            (_, 1) => s.push_str(&format!("+{var}")),
            (_, -1) => s.push_str(&format!("-{var}")),
            (_, c) if c > 0 => s.push_str(&format!("+{c}*{var}")),
            (_, c) => s.push_str(&format!("{c}*{var}")),
        }
    }
    match e.offset {
        0 => {}
        o if o > 0 => s.push_str(&format!("+{o}")),
        o => s.push_str(&o.to_string()),
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoalesceClass;

    const HOTSPOT: &str = r#"
# A HotSpot-like stencil.
program hotspot-64
array temp     f32 [64, 64]
array power    f32 [64, 64]
array temp_out f32 [64, 64]

kernel hotspot_step
  parallel i 64
  parallel j 64
  stmt adds=10 muls=6
    read  temp  [i-1, j]
    read  temp  [i+1, j]
    read  temp  [i, j-1]
    read  temp  [i, j+1]
    read  temp  [i, j]
    read  power [i, j]
    write temp_out [i, j]
"#;

    #[test]
    fn parses_hotspot() {
        let p = parse(HOTSPOT).unwrap();
        assert_eq!(p.name, "hotspot-64");
        assert_eq!(p.arrays.len(), 3);
        assert_eq!(p.kernels.len(), 1);
        let k = &p.kernels[0];
        assert_eq!(k.parallel_tasks(), 64 * 64);
        assert_eq!(k.statements[0].refs.len(), 7);
        let chars = k.characteristics(&p);
        assert!(chars.sharable_load_fraction > 0.5);
    }

    #[test]
    fn roundtrip_identity() {
        let p = parse(HOTSPOT).unwrap();
        let text = to_text(&p);
        let p2 = parse(&text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn roundtrips_every_paper_feature() {
        let src = r#"
program full
array a f32 [100]
array b c128 [10, 20]
array v f64 [345] sparse
array scratch f32 [64] temporary
array sv i32 [99] sparse temporary

kernel k1 gpu_scale=38 cpu_scale=0.45
  parallel r 10
  parallel c 20
  serial k 5
  stmt adds=4 muls=4 active=0.85
    read v [10*r+k]
    read b [?8, c]
    read a [?]
    write b [r, c]
    write scratch [2*r]
    write sv [?]
  stmt divs=1 specials=2 compares=3
    read a [2*r-1]
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.kernels[0].gpu_compute_scale, 38.0);
        assert_eq!(p.kernels[0].cpu_compute_scale, 0.45);
        let scratch = p.array_by_name("scratch").unwrap();
        assert!(scratch.temporary && !scratch.sparse);
        let sv = p.array_by_name("sv").unwrap();
        assert!(sv.temporary && sv.sparse);
        let text = to_text(&p);
        assert!(text.contains("[64] temporary"), "{text}");
        assert!(text.contains("[99] sparse temporary"), "{text}");
        assert_eq!(parse(&text).unwrap(), p);
    }

    #[test]
    fn index_expression_parsing() {
        let loops = ["i", "j"];
        let at = Span {
            line: 1,
            col: 1,
            len: 0,
        };
        let ix = parse_index("2*i - 3 + j", &loops, at).unwrap();
        let IndexExpr::Affine(e) = ix else {
            panic!("expected affine")
        };
        assert_eq!(e.coeff(LoopId(0)), 2);
        assert_eq!(e.coeff(LoopId(1)), 1);
        assert_eq!(e.offset, -3);
        assert_eq!(parse_index("?", &loops, at).unwrap(), IndexExpr::Irregular);
        assert_eq!(
            parse_index("?16", &loops, at).unwrap(),
            IndexExpr::IrregularBounded(16)
        );
        assert!(matches!(
            parse_index("7", &loops, at).unwrap(),
            IndexExpr::Affine(e) if e.is_constant() && e.offset == 7
        ));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad =
            "program x\narray a f32 [10]\nkernel k\n  parallel i 10\n  stmt\n    read zzz [i]\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 6);
        assert_eq!(e.col, 5);
        assert!(e.to_string().contains("zzz"));
        assert!(e.to_string().contains("line 6, col 5"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse("").is_err());
        assert!(parse("array a f32 [10]").is_err()); // before program
        assert!(parse("program p\nfoo bar").is_err());
        assert!(parse("program p\narray a f32 10").is_err()); // no brackets
        assert!(parse("program p\narray a f32 [10] shiny").is_err()); // bad attr
        assert!(parse("program p\narray a f32 [10]\nkernel k\n  stmt\n").is_err()); // no loops
        let e = parse("program p\narray a f32 [10]\nkernel k\n  parallel i 10\n  read a [i]\n")
            .unwrap_err();
        assert!(e.message.contains("before any `stmt`"));
    }

    #[test]
    fn parse_with_spans_maps_every_node() {
        let (p, map) = parse_with_spans(HOTSPOT).unwrap();
        assert_eq!(map.program.line, 3);
        assert_eq!(map.arrays.len(), p.arrays.len());
        assert_eq!(map.arrays[0].line, 4);
        assert_eq!(map.arrays[2].line, 6);
        assert_eq!(map.kernels.len(), 1);
        let k = &map.kernels[0];
        assert_eq!(k.span.line, 8);
        assert_eq!(k.loops.len(), 2);
        assert_eq!(
            k.loops[0],
            Span {
                line: 9,
                col: 3,
                len: 13
            }
        );
        assert_eq!(k.stmts.len(), 1);
        assert_eq!(k.stmts[0].span.line, 11);
        assert_eq!(k.stmts[0].refs.len(), 7);
        // First ref: `read  temp  [i-1, j]` on line 12, col 5.
        let r0 = k.stmts[0].refs[0];
        assert_eq!((r0.line, r0.col), (12, 5));
        assert_eq!(r0.len, "read  temp  [i-1, j]".len());
        // Accessors agree.
        assert_eq!(map.ref_span(0, 0, 6).line, 18);
        assert_eq!(map.array_span(p.arrays[1].id).line, 5);
        assert_eq!(map.kernel_span(0).line, 8);
        // Out-of-range lookups degrade to the empty span.
        assert!(!map.ref_span(9, 9, 9).is_real());
    }

    #[test]
    fn parse_with_spans_keeps_invalid_programs() {
        // A dimension mismatch parses fine (spans available for lint);
        // plain `parse` rejects it via validation.
        let src =
            "program p\narray a f32 [10, 10]\nkernel k\n  parallel i 10\n  stmt\n    read a [i]\n";
        let (p, map) = parse_with_spans(src).unwrap();
        assert_eq!(p.kernels[0].statements[0].refs[0].index.len(), 1);
        assert_eq!(map.ref_span(0, 0, 0).line, 6);
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.to_string().contains("validation failed"), "{e}");
    }

    #[test]
    fn parsed_skeleton_classifies_like_builder() {
        let p = parse(HOTSPOT).unwrap();
        let chars = p.kernels[0].characteristics(&p);
        // Row-offset reads are misaligned-coalesced, center is aligned.
        let coalesced = chars
            .accesses
            .iter()
            .filter(|a| a.class == CoalesceClass::Coalesced)
            .count();
        assert_eq!(coalesced, 7);
        assert!(chars.accesses.iter().any(|a| a.aligned));
        assert!(chars.accesses.iter().any(|a| !a.aligned));
    }

    const STAGED: &str = r#"
program staged
array a f32 [128]
array b f32 [128]

h2d a

kernel k1
  parallel i 128
  stmt adds=1
    read  a [i]
    write b [i]

h2d a

kernel k2
  parallel i 128
  stmt adds=1
    read  a [i]
    write b [i]

d2h b
"#;

    #[test]
    fn explicit_transfers_parse_with_positions_and_spans() {
        let (p, map) = parse_with_spans(STAGED).unwrap();
        assert_eq!(p.transfers.len(), 3);
        let a = p.array_by_name("a").unwrap().id;
        let b = p.array_by_name("b").unwrap().id;
        assert_eq!(
            (
                p.transfers[0].array,
                p.transfers[0].kind,
                p.transfers[0].pos
            ),
            (a, TransferKind::HostToDevice, 0)
        );
        assert_eq!(
            (
                p.transfers[1].array,
                p.transfers[1].kind,
                p.transfers[1].pos
            ),
            (a, TransferKind::HostToDevice, 1)
        );
        assert_eq!(
            (
                p.transfers[2].array,
                p.transfers[2].kind,
                p.transfers[2].pos
            ),
            (b, TransferKind::DeviceToHost, 2)
        );
        assert_eq!(map.transfers.len(), 3);
        assert_eq!(map.transfer_span(0).line, 6);
        assert_eq!(map.transfer_span(1).line, 14);
        assert_eq!(map.transfer_span(2).line, 22);
        assert_eq!(map.transfer_span(0).len, "h2d a".len());
        assert!(!map.transfer_span(9).is_real());
    }

    #[test]
    fn explicit_transfers_roundtrip() {
        let p = parse(STAGED).unwrap();
        let text = to_text(&p);
        assert!(text.contains("\nh2d a\n"), "{text}");
        assert!(text.contains("\nd2h b\n"), "{text}");
        assert_eq!(parse(&text).unwrap(), p);
        // And the rendered form re-parses to identical positions.
        let p2 = parse(&text).unwrap();
        assert_eq!(p2.transfers, p.transfers);
    }

    const STREAMED: &str = r#"
program streamed
array a f32 [128]
array b f32 [128]
array c f32 [128]

h2d a stream 2 chunks=4
h2d c async

kernel k1
  parallel i 128
  stmt adds=1
    read  a [i]
    read  c [i]
    write b [i]

d2h b chunks=8
"#;

    #[test]
    fn stream_annotations_parse() {
        let p = parse(STREAMED).unwrap();
        assert_eq!(p.transfers.len(), 3);
        assert_eq!((p.transfers[0].stream, p.transfers[0].chunks), (2, 4));
        // `async` is shorthand for stream 1.
        assert_eq!((p.transfers[1].stream, p.transfers[1].chunks), (1, 1));
        assert_eq!((p.transfers[2].stream, p.transfers[2].chunks), (0, 8));
        assert!(p.has_stream_annotations());
    }

    #[test]
    fn stream_annotations_roundtrip() {
        let p = parse(STREAMED).unwrap();
        let text = to_text(&p);
        assert!(text.contains("\nh2d a stream 2 chunks=4\n"), "{text}");
        // Canonical rendering spells `async` as `stream 1`.
        assert!(text.contains("\nh2d c stream 1\n"), "{text}");
        assert!(text.contains("\nd2h b chunks=8\n"), "{text}");
        assert_eq!(parse(&text).unwrap(), p);
        // The canonical form is a fixed point of the writer.
        assert_eq!(to_text(&parse(&text).unwrap()), text);
    }

    #[test]
    fn stream_annotation_errors_are_spanned() {
        let e = parse("program p\narray a f32 [4]\nh2d a stream\n").unwrap_err();
        assert!(e.message.contains("`stream` needs a number"), "{e}");
        let e = parse("program p\narray a f32 [4]\nh2d a stream x\n").unwrap_err();
        assert!(e.message.contains("bad stream `x`"), "{e}");
        let e = parse("program p\narray a f32 [4]\nh2d a chunks=zero\n").unwrap_err();
        assert!(e.message.contains("bad chunks `zero`"), "{e}");
        // chunks=0 parses but fails validation.
        let e = parse("program p\narray a f32 [4]\nh2d a chunks=0\nkernel k\n  parallel i 4\n  stmt adds=1\n    read a [i]\n")
            .unwrap_err();
        assert!(e.message.contains("zero chunks"), "{e}");
    }

    #[test]
    fn transfer_errors_are_spanned() {
        let e = parse("program p\narray a f32 [4]\nh2d ghost\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown array `ghost`"), "{e}");
        let e = parse("h2d a\n").unwrap_err();
        assert!(e.message.contains("before `program`"), "{e}");
        let e = parse("program p\narray a f32 [4]\nd2h\n").unwrap_err();
        assert!(e.message.contains("needs an array name"), "{e}");
        let e = parse("program p\narray a f32 [4]\nh2d a extra\n").unwrap_err();
        assert!(e.message.contains("unexpected `extra`"), "{e}");
    }

    #[test]
    fn transfer_closes_open_kernel() {
        // A `d2h` between two kernels closes the first, like `kernel` does.
        let src = "program p\narray a f32 [8]\narray b f32 [8]\nkernel k1\n  parallel i 8\n  stmt adds=1\n    read a [i]\n    write b [i]\nd2h b\nkernel k2\n  parallel i 8\n  stmt adds=1\n    read b [i]\n    write a [i]\n";
        let p = parse(src).unwrap();
        assert_eq!(p.kernels.len(), 2);
        assert_eq!(p.transfers.len(), 1);
        assert_eq!(p.transfers[0].pos, 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# top\nprogram p # trailing\n\narray a f32 [4] # comment\nkernel k\n  parallel i 4\n  stmt adds=1\n    read a [i]\n";
        assert!(parse(src).is_ok());
    }
}
