//! Code skeletons — the input language of GROPHECY and GROPHECY++.
//!
//! A *code skeleton* (paper §II-C, citing the SC'11 GROPHECY paper) is a
//! simplified description of CPU code that captures exactly the high-level
//! semantics a GPU performance projection needs: loop nests, available
//! parallelism, computational intensity, and data access patterns — while
//! eliding everything else (actual arithmetic, scalar bookkeeping, I/O).
//!
//! This crate provides:
//!
//! * the IR itself ([`Program`], [`Kernel`], [`Statement`], [`ArrayRef`],
//!   [`AffineExpr`]),
//! * a fluent [`builder`] for constructing skeletons by hand (the way a user
//!   of GROPHECY++ describes their CPU code),
//! * [`sections`] — extraction of the bounded regular sections each kernel
//!   reads and writes (feeding the `gpp-datausage` analyzer), and
//! * [`characteristics`] — synthesis of the per-kernel performance
//!   characteristics (threads, arithmetic intensity, coalescing classes,
//!   reuse) that both the analytic GPU model and the GPU timing simulator
//!   consume.
//!
//! # Example: a 5-point stencil skeleton
//!
//! ```
//! use gpp_skeleton::builder::{idx, ProgramBuilder};
//! use gpp_skeleton::{ElemType, Flops};
//!
//! let mut p = ProgramBuilder::new("hotspot-like");
//! let n = 512usize;
//! let t_in = p.array("temp_in", ElemType::F32, &[n, n]);
//! let t_out = p.array("temp_out", ElemType::F32, &[n, n]);
//!
//! let mut k = p.kernel("stencil");
//! let i = k.parallel_loop("i", (n - 2) as u64);
//! let j = k.parallel_loop("j", (n - 2) as u64);
//! k.statement()
//!     .read(t_in, &[idx(i), idx(j)])
//!     .read(t_in, &[idx(i) + 1, idx(j) + 1])
//!     .read(t_in, &[idx(i) + 2, idx(j) + 2])
//!     .write(t_out, &[idx(i) + 1, idx(j) + 1])
//!     .flops(Flops { adds: 6, muls: 4, ..Flops::default() })
//!     .finish();
//! k.finish();
//!
//! let program = p.build().unwrap();
//! assert_eq!(program.kernels.len(), 1);
//! let chars = program.kernels[0].characteristics(&program);
//! assert_eq!(chars.threads, ((n - 2) as u64).pow(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod characteristics;
pub mod expr;
pub mod ir;
pub mod sections;
pub mod text;
pub mod validate;

pub use builder::ProgramBuilder;
pub use characteristics::{
    synthesize_with_axis, CoalesceClass, KernelCharacteristics, MemAccessChar,
};
pub use expr::{AffineExpr, IndexExpr, LoopId};
pub use gpp_brs::{AccessKind, ArrayId};
pub use ir::{
    ArrayDecl, ArrayRef, ElemType, Flops, Kernel, Loop, Program, Statement, TransferDecl,
    TransferKind,
};
pub use text::{KernelSpans, SourceMap, Span, StmtSpans};
pub use validate::{ValidationError, ValidationErrors};
