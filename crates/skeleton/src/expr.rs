//! Affine index expressions over loop variables.

use serde::{Deserialize, Serialize};

/// Identifies a loop within a kernel's loop nest (outermost = 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LoopId(pub u32);

impl LoopId {
    /// Raw index into the kernel's loop vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An affine combination of loop variables: `Σ coeff·loop + offset`.
///
/// This is the index language of bounded regular section analysis: affine
/// indices over loops with known trip counts yield regular sections with
/// computable bounds and strides.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AffineExpr {
    /// `(loop, coefficient)` pairs; at most one entry per loop, coefficients
    /// never zero (normalized by the constructors).
    pub terms: Vec<(LoopId, i64)>,
    /// Constant offset.
    pub offset: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            terms: Vec::new(),
            offset: c,
        }
    }

    /// The expression `1·loop + 0`.
    pub fn var(loop_id: LoopId) -> Self {
        AffineExpr {
            terms: vec![(loop_id, 1)],
            offset: 0,
        }
    }

    /// The expression `coeff·loop + offset`.
    pub fn scaled(loop_id: LoopId, coeff: i64, offset: i64) -> Self {
        let mut e = AffineExpr {
            terms: Vec::new(),
            offset,
        };
        if coeff != 0 {
            e.terms.push((loop_id, coeff));
        }
        e
    }

    /// The coefficient of `loop_id` (0 if absent).
    pub fn coeff(&self, loop_id: LoopId) -> i64 {
        self.terms
            .iter()
            .find(|(l, _)| *l == loop_id)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// True if the expression does not mention any loop.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `coeff·loop_id` to the expression, normalizing zero
    /// coefficients away.
    pub fn add_term(&mut self, loop_id: LoopId, coeff: i64) {
        if let Some(entry) = self.terms.iter_mut().find(|(l, _)| *l == loop_id) {
            entry.1 += coeff;
            if entry.1 == 0 {
                self.terms.retain(|(l, _)| *l != loop_id);
            }
        } else if coeff != 0 {
            self.terms.push((loop_id, coeff));
        }
    }

    /// Evaluates the expression at a concrete loop-variable assignment
    /// (`values[l]` is the value of loop `l`).
    pub fn eval(&self, values: &[i64]) -> i64 {
        self.offset
            + self
                .terms
                .iter()
                .map(|&(l, c)| c * values[l.index()])
                .sum::<i64>()
    }

    /// The `(min, max)` of the expression given each loop's trip count
    /// (loop `l` ranges over `0 ..= trips[l]-1`).
    pub fn bounds(&self, trips: &[u64]) -> (i64, i64) {
        let mut lo = self.offset;
        let mut hi = self.offset;
        for &(l, c) in &self.terms {
            let last = trips[l.index()].saturating_sub(1) as i64;
            if c >= 0 {
                hi += c * last;
            } else {
                lo += c * last;
            }
        }
        (lo, hi)
    }

    /// A conservative stride for the value set of this expression: the gcd
    /// of all coefficients (1 for constants). The true value set may be
    /// sparser (sumsets), so this may under-estimate the stride — i.e.
    /// over-approximate the section — which is the safe direction.
    pub fn stride(&self) -> i64 {
        let mut g = 0i64;
        for &(_, c) in &self.terms {
            g = gcd(g, c.abs());
        }
        if g == 0 {
            1
        } else {
            g
        }
    }
}

impl std::ops::Add<i64> for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, rhs: i64) -> AffineExpr {
        self.offset += rhs;
        self
    }
}

impl std::ops::Sub<i64> for AffineExpr {
    type Output = AffineExpr;
    fn sub(mut self, rhs: i64) -> AffineExpr {
        self.offset -= rhs;
        self
    }
}

impl std::ops::Mul<i64> for AffineExpr {
    type Output = AffineExpr;
    fn mul(mut self, rhs: i64) -> AffineExpr {
        if rhs == 0 {
            return AffineExpr::constant(0);
        }
        for t in &mut self.terms {
            t.1 *= rhs;
        }
        self.offset *= rhs;
        self
    }
}

impl std::ops::Add<AffineExpr> for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, rhs: AffineExpr) -> AffineExpr {
        for (l, c) in rhs.terms {
            self.add_term(l, c);
        }
        self.offset += rhs.offset;
        self
    }
}

impl std::fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.offset);
        }
        for (i, (l, c)) in self.terms.iter().enumerate() {
            match (i, *c) {
                (0, 1) => write!(f, "i{}", l.0)?,
                (0, -1) => write!(f, "-i{}", l.0)?,
                (0, c) => write!(f, "{c}*i{}", l.0)?,
                (_, 1) => write!(f, "+i{}", l.0)?,
                (_, -1) => write!(f, "-i{}", l.0)?,
                (_, c) if c > 0 => write!(f, "+{c}*i{}", l.0)?,
                (_, c) => write!(f, "{c}*i{}", l.0)?,
            }
        }
        match self.offset {
            0 => Ok(()),
            o if o > 0 => write!(f, "+{o}"),
            o => write!(f, "{o}"),
        }
    }
}

/// An array index expression: affine, or data-dependent (irregular).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexExpr {
    /// A statically analyzable affine index.
    Affine(AffineExpr),
    /// A data-dependent index (e.g. CSR column indirection). The BRS is
    /// unknown; the analyzer conservatively assumes the whole dimension may
    /// be referenced (paper §III-B, sparse fallback).
    Irregular,
    /// A data-dependent index with *locality*: consecutive threads land
    /// within a window of the given span (e.g. unstructured-mesh neighbour
    /// lists after bandwidth-reducing renumbering). Still unbounded for
    /// section analysis, but coalescing degrades to `Strided(span)` rather
    /// than fully scattered — the kind of access-pattern annotation a
    /// GROPHECY code skeleton carries.
    IrregularBounded(u32),
}

impl IndexExpr {
    /// True for any data-dependent index.
    pub fn is_irregular(&self) -> bool {
        matches!(self, IndexExpr::Irregular | IndexExpr::IrregularBounded(_))
    }

    /// The affine payload, if regular.
    pub fn as_affine(&self) -> Option<&AffineExpr> {
        match self {
            IndexExpr::Affine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AffineExpr> for IndexExpr {
    fn from(e: AffineExpr) -> Self {
        IndexExpr::Affine(e)
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_expr() {
        let e = AffineExpr::constant(5);
        assert!(e.is_constant());
        assert_eq!(e.eval(&[]), 5);
        assert_eq!(e.bounds(&[]), (5, 5));
        assert_eq!(e.stride(), 1);
        assert_eq!(e.to_string(), "5");
    }

    #[test]
    fn var_and_ops() {
        let i = AffineExpr::var(LoopId(0));
        let e = (i.clone() * 4 + 3) + (AffineExpr::var(LoopId(1)) * 2);
        assert_eq!(e.coeff(LoopId(0)), 4);
        assert_eq!(e.coeff(LoopId(1)), 2);
        assert_eq!(e.offset, 3);
        assert_eq!(e.eval(&[2, 5]), 4 * 2 + 2 * 5 + 3);
        assert_eq!(e.to_string(), "4*i0+2*i1+3");
    }

    #[test]
    fn add_term_cancellation() {
        let mut e = AffineExpr::var(LoopId(0));
        e.add_term(LoopId(0), -1);
        assert!(e.is_constant());
        assert_eq!(e.coeff(LoopId(0)), 0);
    }

    #[test]
    fn bounds_with_negative_coeff() {
        // e = 10 - i, i in 0..8  =>  [3, 10]
        let e = AffineExpr::constant(10) + AffineExpr::scaled(LoopId(0), -1, 0);
        assert_eq!(e.bounds(&[8]), (3, 10));
    }

    #[test]
    fn bounds_multi_loop() {
        // e = 4i + j, i in 0..3, j in 0..4 => [0, 11]
        let e = AffineExpr::scaled(LoopId(0), 4, 0) + AffineExpr::var(LoopId(1));
        assert_eq!(e.bounds(&[3, 4]), (0, 11));
    }

    #[test]
    fn stride_gcd() {
        let e = AffineExpr::scaled(LoopId(0), 4, 0) + AffineExpr::scaled(LoopId(1), 6, 0);
        assert_eq!(e.stride(), 2);
        let dense = AffineExpr::scaled(LoopId(0), 4, 0) + AffineExpr::var(LoopId(1));
        assert_eq!(dense.stride(), 1);
    }

    #[test]
    fn mul_by_zero_collapses() {
        #[allow(clippy::erasing_op)] // exactly the behaviour under test
        let e = AffineExpr::var(LoopId(3)) * 0;
        assert!(e.is_constant());
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn sub_offset() {
        let e = AffineExpr::var(LoopId(0)) - 2;
        assert_eq!(e.offset, -2);
        assert_eq!(e.to_string(), "i0-2");
    }

    #[test]
    fn index_expr_conversions() {
        let ix: IndexExpr = AffineExpr::var(LoopId(0)).into();
        assert!(!ix.is_irregular());
        assert!(ix.as_affine().is_some());
        assert!(IndexExpr::Irregular.is_irregular());
        assert!(IndexExpr::Irregular.as_affine().is_none());
    }
}
