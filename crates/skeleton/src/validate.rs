//! Structural validation of programs.

use crate::expr::IndexExpr;
use crate::ir::Program;

/// Reasons a skeleton is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A reference names an array id not declared in the program.
    UnknownArray {
        /// Offending kernel.
        kernel: String,
        /// The raw id referenced.
        array: u32,
    },
    /// A reference's index count differs from the array's dimensionality.
    DimMismatch {
        /// Offending kernel.
        kernel: String,
        /// Array name.
        array: String,
        /// Declared dimensionality.
        expected: usize,
        /// Indices supplied.
        got: usize,
    },
    /// An index expression names a loop that does not exist in the kernel.
    UnknownLoop {
        /// Offending kernel.
        kernel: String,
        /// The raw loop id referenced.
        loop_id: u32,
    },
    /// A loop has a zero trip count.
    ZeroTrip {
        /// Offending kernel.
        kernel: String,
        /// Loop name.
        loop_name: String,
    },
    /// A kernel has no loops at all.
    EmptyLoopNest {
        /// Offending kernel.
        kernel: String,
    },
    /// A kernel has no parallel loop, so it cannot be offloaded.
    NoParallelism {
        /// Offending kernel.
        kernel: String,
    },
    /// An array is declared with a zero extent.
    ZeroExtent {
        /// Array name.
        array: String,
    },
    /// An explicit transfer asks for zero pipelined chunks.
    ZeroChunks {
        /// Array name.
        array: String,
    },
    /// Explicit transfer positions decrease — the schedule is not in
    /// program order.
    TransferOrder {
        /// Array name of the out-of-order transfer.
        array: String,
        /// Its position.
        pos: usize,
        /// The position of the transfer before it.
        prev: usize,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::UnknownArray { kernel, array } => {
                write!(
                    f,
                    "kernel `{kernel}` references undeclared array id {array}"
                )
            }
            ValidationError::DimMismatch {
                kernel,
                array,
                expected,
                got,
            } => write!(
                f,
                "kernel `{kernel}` indexes array `{array}` with {got} indices, \
                 but it has {expected} dimensions"
            ),
            ValidationError::UnknownLoop { kernel, loop_id } => {
                write!(
                    f,
                    "kernel `{kernel}` index expression uses unknown loop {loop_id}"
                )
            }
            ValidationError::ZeroTrip { kernel, loop_name } => {
                write!(
                    f,
                    "kernel `{kernel}` loop `{loop_name}` has a zero trip count"
                )
            }
            ValidationError::EmptyLoopNest { kernel } => {
                write!(f, "kernel `{kernel}` has no loops")
            }
            ValidationError::NoParallelism { kernel } => {
                write!(
                    f,
                    "kernel `{kernel}` has no parallel loop and cannot be offloaded"
                )
            }
            ValidationError::ZeroExtent { array } => {
                write!(f, "array `{array}` has a zero extent")
            }
            ValidationError::ZeroChunks { array } => {
                write!(
                    f,
                    "transfer of `{array}` asks for zero chunks (chunks must be >= 1)"
                )
            }
            ValidationError::TransferOrder { array, pos, prev } => {
                write!(
                    f,
                    "transfer of `{array}` at position {pos} follows one at \
                     position {prev}; the schedule must be in program order"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Every structural problem found in a program, in declaration order.
/// Never empty when returned as an `Err`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationErrors(pub Vec<ValidationError>);

impl ValidationErrors {
    /// The first (usually most upstream) error.
    pub fn first(&self) -> &ValidationError {
        &self.0[0]
    }

    /// Iterates over all collected errors.
    pub fn iter(&self) -> std::slice::Iter<'_, ValidationError> {
        self.0.iter()
    }

    /// Number of errors collected.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false for an `Err` value; present for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::fmt::Display for ValidationErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, e) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidationErrors {}

impl IntoIterator for ValidationErrors {
    type Item = ValidationError;
    type IntoIter = std::vec::IntoIter<ValidationError>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Checks structural well-formedness of a program, collecting **every**
/// problem rather than stopping at the first, so downstream tooling
/// (`gpp lint`, the serve gate) can report them all in one pass.
pub fn validate(p: &Program) -> Result<(), ValidationErrors> {
    let mut errs = Vec::new();
    for a in &p.arrays {
        if a.extents.contains(&0) {
            errs.push(ValidationError::ZeroExtent {
                array: a.name.clone(),
            });
        }
    }
    for k in &p.kernels {
        if k.loops.is_empty() {
            errs.push(ValidationError::EmptyLoopNest {
                kernel: k.name.clone(),
            });
        } else if !k.loops.iter().any(|l| l.parallel) {
            errs.push(ValidationError::NoParallelism {
                kernel: k.name.clone(),
            });
        }
        for l in &k.loops {
            if l.trip == 0 {
                errs.push(ValidationError::ZeroTrip {
                    kernel: k.name.clone(),
                    loop_name: l.name.clone(),
                });
            }
        }
        for s in &k.statements {
            for r in &s.refs {
                let Some(decl) = p.arrays.get(r.array.index()) else {
                    errs.push(ValidationError::UnknownArray {
                        kernel: k.name.clone(),
                        array: r.array.0,
                    });
                    continue;
                };
                if r.index.len() != decl.ndims() {
                    errs.push(ValidationError::DimMismatch {
                        kernel: k.name.clone(),
                        array: decl.name.clone(),
                        expected: decl.ndims(),
                        got: r.index.len(),
                    });
                }
                for ix in &r.index {
                    if let IndexExpr::Affine(e) = ix {
                        for &(l, _) in &e.terms {
                            if l.index() >= k.loops.len() {
                                errs.push(ValidationError::UnknownLoop {
                                    kernel: k.name.clone(),
                                    loop_id: l.0,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    let mut prev_pos = 0usize;
    for t in &p.transfers {
        let array = p
            .arrays
            .get(t.array.index())
            .map_or_else(|| format!("#{}", t.array.0), |a| a.name.clone());
        if t.chunks == 0 {
            errs.push(ValidationError::ZeroChunks {
                array: array.clone(),
            });
        }
        if t.pos < prev_pos {
            errs.push(ValidationError::TransferOrder {
                array,
                pos: t.pos,
                prev: prev_pos,
            });
        }
        prev_pos = prev_pos.max(t.pos);
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(ValidationErrors(errs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{idx, ProgramBuilder};
    use crate::expr::{AffineExpr, LoopId};
    use crate::ir::{ArrayRef, ElemType, Flops, Kernel, Loop, Statement};
    use gpp_brs::{AccessKind, ArrayId};

    fn good() -> Program {
        let mut p = ProgramBuilder::new("ok");
        let a = p.array("a", ElemType::F32, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement()
            .read(a, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().unwrap()
    }

    #[test]
    fn good_program_validates() {
        assert!(validate(&good()).is_ok());
    }

    #[test]
    fn unknown_array_detected() {
        let mut p = good();
        p.kernels[0].statements[0].refs.push(ArrayRef {
            array: ArrayId(99),
            index: vec![AffineExpr::var(LoopId(0)).into()],
            kind: AccessKind::Read,
        });
        let e = validate(&p).unwrap_err();
        assert!(matches!(e.first(), ValidationError::UnknownArray { .. }));
        assert!(e.to_string().contains("undeclared array"));
    }

    #[test]
    fn unknown_loop_detected() {
        let mut p = good();
        p.kernels[0].statements[0].refs[0].index = vec![AffineExpr::var(LoopId(5)).into()];
        let e = validate(&p).unwrap_err();
        assert!(matches!(
            e.first(),
            ValidationError::UnknownLoop { loop_id: 5, .. }
        ));
    }

    #[test]
    fn empty_loop_nest_detected() {
        let mut p = good();
        p.kernels.push(Kernel {
            name: "empty".into(),
            loops: vec![],
            statements: vec![],
            gpu_compute_scale: 1.0,
            cpu_compute_scale: 1.0,
        });
        assert!(matches!(
            validate(&p).unwrap_err().first(),
            ValidationError::EmptyLoopNest { .. }
        ));
    }

    #[test]
    fn no_parallelism_detected() {
        let mut p = good();
        p.kernels.push(Kernel {
            name: "serial".into(),
            loops: vec![Loop {
                name: "t".into(),
                trip: 4,
                parallel: false,
            }],
            statements: vec![Statement {
                refs: vec![],
                flops: Flops::default(),
                active_fraction: 1.0,
            }],
            gpu_compute_scale: 1.0,
            cpu_compute_scale: 1.0,
        });
        assert!(matches!(
            validate(&p).unwrap_err().first(),
            ValidationError::NoParallelism { .. }
        ));
    }

    #[test]
    fn zero_extent_detected() {
        let mut p = good();
        p.arrays[0].extents = vec![0];
        assert!(matches!(
            validate(&p).unwrap_err().first(),
            ValidationError::ZeroExtent { .. }
        ));
    }

    #[test]
    fn all_errors_are_collected() {
        // Zero extent, a zero-trip loop, AND a dimension mismatch in one
        // program: validate must report all three, in program order.
        let mut p = good();
        p.arrays[0].extents = vec![0];
        p.kernels[0].loops.push(Loop {
            name: "z".into(),
            trip: 0,
            parallel: false,
        });
        p.kernels[0].statements[0].refs[0]
            .index
            .push(AffineExpr::constant(0).into());
        let e = validate(&p).unwrap_err();
        assert_eq!(e.len(), 3, "{e}");
        assert!(matches!(e.0[0], ValidationError::ZeroExtent { .. }));
        assert!(matches!(e.0[1], ValidationError::ZeroTrip { .. }));
        assert!(matches!(e.0[2], ValidationError::DimMismatch { .. }));
        let msg = e.to_string();
        assert!(
            msg.contains("zero extent") && msg.contains("zero trip"),
            "{msg}"
        );
    }

    #[test]
    fn zero_chunks_detected() {
        let mut p = good();
        p.transfers.push(crate::ir::TransferDecl {
            array: ArrayId(0),
            kind: crate::ir::TransferKind::HostToDevice,
            pos: 0,
            stream: 1,
            chunks: 0,
        });
        let e = validate(&p).unwrap_err();
        assert!(matches!(e.first(), ValidationError::ZeroChunks { .. }));
        assert!(e.to_string().contains("zero chunks"), "{e}");
    }

    #[test]
    fn decreasing_transfer_positions_detected() {
        let mut p = good();
        for pos in [1usize, 0] {
            p.transfers.push(crate::ir::TransferDecl {
                array: ArrayId(0),
                kind: crate::ir::TransferKind::HostToDevice,
                pos,
                stream: 0,
                chunks: 1,
            });
        }
        let e = validate(&p).unwrap_err();
        assert!(matches!(e.first(), ValidationError::TransferOrder { .. }));
        assert!(e.to_string().contains("program order"), "{e}");
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ValidationError::DimMismatch {
            kernel: "k".into(),
            array: "a".into(),
            expected: 2,
            got: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("k") && msg.contains("a") && msg.contains("2") && msg.contains("1"));
    }
}
