//! Extraction of bounded regular sections from kernels.
//!
//! For every array reference of a kernel, this module derives the BRS — the
//! range of elements the reference may touch across all iterations of the
//! surrounding loop nest (paper §III-B). Affine indices yield tight strided
//! sections via interval arithmetic; irregular indices and sparse arrays
//! fall back to whole-dimension sections, flagged as inexact.

use crate::expr::IndexExpr;
use crate::ir::{ArrayDecl, ArrayRef, Kernel, Program};
use gpp_brs::{AccessKind, ArrayId, Interval, Section, SectionSet};
use std::collections::BTreeMap;

/// One extracted access: which array, read or write, and the section
/// touched.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAccess {
    /// The referenced array.
    pub array: ArrayId,
    /// Load or store.
    pub kind: AccessKind,
    /// Elements possibly touched (clamped to the array's extents).
    pub section: Section,
    /// False if the section is a conservative over-approximation
    /// (irregular index or sparse array).
    pub exact: bool,
}

/// Derives the section for every array reference in the kernel.
///
/// Sections are clamped to array extents: skeletons commonly index
/// `i-1 ..= i+1` over interior loops, and out-of-bounds lattice points are
/// assumed guarded in the real code (standard stencil practice).
pub fn kernel_accesses(kernel: &Kernel, program: &Program) -> Vec<KernelAccess> {
    let trips: Vec<u64> = kernel.loops.iter().map(|l| l.trip).collect();
    let mut out = Vec::new();
    for stmt in &kernel.statements {
        for r in &stmt.refs {
            let decl = program.array(r.array);
            let (section, exact) = ref_section(r, decl, &trips);
            out.push(KernelAccess {
                array: r.array,
                kind: r.kind,
                section,
                exact,
            });
        }
    }
    out
}

/// Derives the (clamped) section one array reference may touch across all
/// iterations of its loop nest, and whether that section is exact. This
/// is the per-reference kernel of [`kernel_accesses`]; `gpp-lint` uses it
/// directly for statement-granular dataflow.
pub fn ref_section(r: &ArrayRef, decl: &ArrayDecl, trips: &[u64]) -> (Section, bool) {
    let mut exact = !decl.sparse;
    let dims: Vec<Interval> = r
        .index
        .iter()
        .zip(&decl.extents)
        .map(|(ix, &extent)| {
            let whole = Interval::dense(0, extent as i64 - 1);
            match ix {
                IndexExpr::Irregular | IndexExpr::IrregularBounded(_) => {
                    exact = false;
                    whole
                }
                IndexExpr::Affine(e) => {
                    if decl.sparse {
                        // Sparse arrays: contents are data-dependent
                        // even when the index looks affine.
                        return whole;
                    }
                    let (lo, hi) = e.bounds(trips);
                    let lo = lo.max(0);
                    let hi = hi.min(extent as i64 - 1);
                    Interval::new(lo, hi.max(lo.min(hi)), e.stride().max(1))
                }
            }
        })
        .collect();
    (Section::new(dims), exact)
}

/// Union of all sections the kernel may **read**, per array.
pub fn read_sets(kernel: &Kernel, program: &Program) -> BTreeMap<ArrayId, SectionSet> {
    collect(kernel, program, AccessKind::Read)
}

/// Union of all sections the kernel may **write**, per array.
pub fn write_sets(kernel: &Kernel, program: &Program) -> BTreeMap<ArrayId, SectionSet> {
    collect(kernel, program, AccessKind::Write)
}

fn collect(kernel: &Kernel, program: &Program, kind: AccessKind) -> BTreeMap<ArrayId, SectionSet> {
    let mut map: BTreeMap<ArrayId, SectionSet> = BTreeMap::new();
    for acc in kernel_accesses(kernel, program) {
        if acc.kind != kind {
            continue;
        }
        map.entry(acc.array)
            .or_insert_with(|| SectionSet::empty(acc.section.ndims()))
            .insert(acc.section);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{idx, irr, ProgramBuilder};
    use crate::ir::{ElemType, Flops};

    fn stencil_program(n: usize) -> Program {
        let mut p = ProgramBuilder::new("stencil");
        let a = p.array("in", ElemType::F32, &[n, n]);
        let b = p.array("out", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", (n - 2) as u64);
        let j = k.parallel_loop("j", (n - 2) as u64);
        k.statement()
            .read(a, &[idx(i), idx(j)])
            .read(a, &[idx(i) + 2, idx(j) + 2])
            .read(a, &[idx(i) + 1, idx(j) + 1])
            .write(b, &[idx(i) + 1, idx(j) + 1])
            .flops(Flops {
                adds: 4,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().unwrap()
    }

    #[test]
    fn stencil_read_union_is_exact() {
        let p = stencil_program(64);
        let k = &p.kernels[0];
        let reads = read_sets(k, &p);
        let set = &reads[&p.array_by_name("in").unwrap().id];
        // Three diagonal 62x62 boxes at offsets 0, 1, 2; union by
        // inclusion-exclusion: 3*62^2 - 61^2 - 61^2 - 60^2 + 60^2 = 4090.
        assert_eq!(set.element_count(), 4090);
        assert!(set.is_exact());
        // And the bounding hull is the whole array.
        assert_eq!(set.bounding_section(), Section::dense(&[(0, 63), (0, 63)]));
    }

    #[test]
    fn stencil_write_is_interior() {
        let p = stencil_program(64);
        let k = &p.kernels[0];
        let writes = write_sets(k, &p);
        let set = &writes[&p.array_by_name("out").unwrap().id];
        assert_eq!(set.element_count(), 62 * 62);
        let s = set.bounding_section();
        assert_eq!(s, Section::dense(&[(1, 62), (1, 62)]));
    }

    #[test]
    fn irregular_index_covers_whole_dim_inexact() {
        let mut pb = ProgramBuilder::new("gather");
        let x = pb.array("x", ElemType::F64, &[100]);
        let y = pb.array("y", ElemType::F64, &[50]);
        let mut k = pb.kernel("k");
        let i = k.parallel_loop("i", 50);
        k.statement()
            .read_ix(x, &[irr()])
            .write(y, &[idx(i)])
            .finish();
        k.finish();
        let p = pb.build().unwrap();
        let accs = kernel_accesses(&p.kernels[0], &p);
        let x_acc = accs.iter().find(|a| a.array == x).unwrap();
        assert!(!x_acc.exact);
        assert_eq!(x_acc.section.element_count(), 100);
        let y_acc = accs.iter().find(|a| a.array == y).unwrap();
        assert!(y_acc.exact);
        assert_eq!(y_acc.section.element_count(), 50);
    }

    #[test]
    fn sparse_array_is_always_conservative() {
        let mut pb = ProgramBuilder::new("csr");
        let vals = pb.sparse_array("vals", ElemType::F64, &[345]);
        let mut k = pb.kernel("k");
        let i = k.parallel_loop("i", 10);
        k.statement().read(vals, &[idx(i)]).finish();
        k.finish();
        let p = pb.build().unwrap();
        let accs = kernel_accesses(&p.kernels[0], &p);
        assert!(!accs[0].exact);
        assert_eq!(accs[0].section.element_count(), 345);
    }

    #[test]
    fn strided_access_yields_strided_section() {
        let mut pb = ProgramBuilder::new("strided");
        let a = pb.array("a", ElemType::F32, &[256]);
        let mut k = pb.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement().read(a, &[idx(i) * 4]).finish();
        k.finish();
        let p = pb.build().unwrap();
        let accs = kernel_accesses(&p.kernels[0], &p);
        let s = &accs[0].section;
        assert_eq!(s.dims()[0], Interval::new(0, 252, 4));
        assert_eq!(s.element_count(), 64);
    }

    #[test]
    fn clamping_to_extents() {
        // Index i+10 over trips 0..=99 on an array of 50: clamps to 10..=49.
        let mut pb = ProgramBuilder::new("clamp");
        let a = pb.array("a", ElemType::F32, &[50]);
        let mut k = pb.kernel("k");
        let i = k.parallel_loop("i", 100);
        k.statement().read(a, &[idx(i) + 10]).finish();
        k.finish();
        let p = pb.build().unwrap();
        let accs = kernel_accesses(&p.kernels[0], &p);
        assert_eq!(accs[0].section.dims()[0], Interval::dense(10, 49));
    }

    #[test]
    fn multiple_statements_union_in_read_sets() {
        let mut pb = ProgramBuilder::new("multi");
        let a = pb.array("a", ElemType::F32, &[100]);
        let mut k = pb.kernel("k");
        let i = k.parallel_loop("i", 10);
        k.statement().read(a, &[idx(i)]).finish();
        k.statement().read(a, &[idx(i) + 50]).finish();
        k.finish();
        let p = pb.build().unwrap();
        let reads = read_sets(&p.kernels[0], &p);
        assert_eq!(reads[&a].element_count(), 20);
        assert_eq!(reads[&a].piece_count(), 2);
    }
}
