//! The core skeleton IR: arrays, loops, statements, kernels, programs.

use crate::expr::{IndexExpr, LoopId};
use gpp_brs::{AccessKind, ArrayId};
use serde::{Deserialize, Serialize};

/// Element types of modeled arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElemType {
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// Single-precision complex (two f32).
    C64,
    /// Double-precision complex (two f64) — Stassuij's dense matrix.
    C128,
}

impl ElemType {
    /// Size of one element in bytes.
    pub fn bytes(self) -> usize {
        match self {
            ElemType::F32 | ElemType::I32 => 4,
            ElemType::F64 | ElemType::I64 | ElemType::C64 => 8,
            ElemType::C128 => 16,
        }
    }

    /// True for complex types (each flop counts double: real + imaginary).
    pub fn is_complex(self) -> bool {
        matches!(self, ElemType::C64 | ElemType::C128)
    }
}

/// Declaration of an array referenced by kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Identity within the program.
    pub id: ArrayId,
    /// Human-readable name (for reports).
    pub name: String,
    /// Element type.
    pub elem: ElemType,
    /// Extent per dimension (row-major).
    pub extents: Vec<usize>,
    /// True for irregular (e.g. CSR-indexed) arrays whose referenced
    /// sections cannot be bounded statically.
    pub sparse: bool,
    /// True for arrays declared as device-side temporaries: their
    /// contents never need to return to the host, so the data usage
    /// analyzer skips the D2H transfer (paper §III-B "hints"). Declaring
    /// it in the skeleton keeps the knowledge with the program instead of
    /// requiring a `--temporary` flag on every invocation.
    pub temporary: bool,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn element_count(&self) -> u64 {
        self.extents.iter().map(|&e| e as u64).product()
    }

    /// Total size in bytes.
    pub fn byte_count(&self) -> u64 {
        self.element_count() * self.elem.bytes() as u64
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.extents.len()
    }
}

/// One loop of a kernel's nest, outermost first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Loop {
    /// Name for diagnostics (`i`, `j`, ...).
    pub name: String,
    /// Trip count (iterations), assumed to start at 0 with step 1.
    pub trip: u64,
    /// True if iterations are independent and may become GPU threads.
    pub parallel: bool,
}

/// Floating-point operation counts per innermost iteration of a statement.
///
/// Weighted according to G80-era instruction throughput when converted to
/// compute cycles: adds/muls are single-issue, divides and special functions
/// (sqrt, exp, pow) run on the SFU at a fraction of the rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flops {
    /// Additions / subtractions.
    pub adds: u32,
    /// Multiplications (and fused multiply-adds counted once).
    pub muls: u32,
    /// Divisions.
    pub divs: u32,
    /// Special-function ops: sqrt, exp, log, pow, sin...
    pub specials: u32,
    /// Comparisons / min / max / abs.
    pub compares: u32,
}

impl Flops {
    /// Raw flop count (each op = 1 flop; used for arithmetic-intensity
    /// reporting).
    pub fn total(&self) -> u64 {
        (self.adds + self.muls + self.divs + self.specials + self.compares) as u64
    }

    /// Throughput-weighted operation count: how many single-cycle
    /// instruction slots the statement occupies per thread. Divides cost
    /// ~8 slots and specials ~4 on G80-class hardware; compares 1.
    pub fn weighted(&self) -> f64 {
        self.adds as f64
            + self.muls as f64
            + 8.0 * self.divs as f64
            + 4.0 * self.specials as f64
            + self.compares as f64
    }

    /// Component-wise sum.
    pub fn plus(&self, o: &Flops) -> Flops {
        Flops {
            adds: self.adds + o.adds,
            muls: self.muls + o.muls,
            divs: self.divs + o.divs,
            specials: self.specials + o.specials,
            compares: self.compares + o.compares,
        }
    }
}

/// One array reference within a statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayRef {
    /// Which array.
    pub array: ArrayId,
    /// One index expression per array dimension.
    pub index: Vec<IndexExpr>,
    /// Load or store.
    pub kind: AccessKind,
}

impl ArrayRef {
    /// True if any index is data-dependent.
    pub fn is_irregular(&self) -> bool {
        self.index.iter().any(IndexExpr::is_irregular)
    }
}

/// A statement: a bundle of array references plus arithmetic, executed once
/// per point of the surrounding loop nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Statement {
    /// Array references (reads and writes).
    pub refs: Vec<ArrayRef>,
    /// Arithmetic per execution.
    pub flops: Flops,
    /// Fraction of loop iterations that actually execute the statement
    /// (1.0 = unconditional). Models control-flow divergence: on a GPU,
    /// a warp pays for the statement if *any* lane is active, so divergent
    /// statements waste lanes.
    pub active_fraction: f64,
}

/// A computational kernel: a loop nest over statements.
///
/// Kernels are the unit of GPU offload; a [`Program`] is a sequence of
/// kernels with dataflow between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name (for reports).
    pub name: String,
    /// Loop nest, outermost first. Parallel loops become the GPU thread
    /// grid; sequential loops run inside each thread.
    pub loops: Vec<Loop>,
    /// Statements in the innermost body.
    pub statements: Vec<Statement>,
    /// Architecture-specific arithmetic expansion on the GPU: how many
    /// native instruction slots one skeleton flop costs when the
    /// operations don't map 1:1 to GPU hardware (e.g. double-precision
    /// complex arithmetic software-emulated on a G80, which has no f64
    /// units). 1.0 for ordinary single-precision code. The CPU side is
    /// unaffected — it executes the raw flops natively.
    pub gpu_compute_scale: f64,
    /// CPU-side issue-efficiency scale relative to the scalar baseline
    /// (default 1.0). Below 1.0 for loops the host compiler vectorizes
    /// well (e.g. Stassuij's unit-stride complex SAXPY inner loop); a
    /// code skeleton carries this as part of its computation-intensity
    /// description.
    pub cpu_compute_scale: f64,
}

impl Kernel {
    /// Product of parallel-loop trip counts: the number of data-parallel
    /// tasks (GPU threads) available.
    pub fn parallel_tasks(&self) -> u64 {
        self.loops
            .iter()
            .filter(|l| l.parallel)
            .map(|l| l.trip)
            .product()
    }

    /// Product of sequential-loop trip counts: work per task.
    pub fn serial_iters(&self) -> u64 {
        self.loops
            .iter()
            .filter(|l| !l.parallel)
            .map(|l| l.trip)
            .product()
    }

    /// Total innermost-body executions.
    pub fn total_iterations(&self) -> u64 {
        self.loops.iter().map(|l| l.trip).product()
    }

    /// Raw flops across the whole kernel (weighted by active fractions).
    pub fn total_flops(&self) -> f64 {
        let per_iter: f64 = self
            .statements
            .iter()
            .map(|s| s.flops.total() as f64 * s.active_fraction)
            .sum();
        per_iter * self.total_iterations() as f64
    }

    /// The innermost *parallel* loop — the dimension GROPHECY maps to
    /// consecutive thread IDs, which determines coalescing.
    pub fn thread_axis(&self) -> Option<LoopId> {
        self.loops
            .iter()
            .enumerate()
            .rev()
            .find(|(_, l)| l.parallel)
            .map(|(i, _)| LoopId(i as u32))
    }

    /// The thread-axis choices a loop-interchange transformation may
    /// explore: every parallel loop, innermost (the default mapping)
    /// first.
    pub fn axis_candidates(&self) -> Vec<LoopId> {
        self.loops
            .iter()
            .enumerate()
            .rev()
            .filter(|(_, l)| l.parallel)
            .map(|(i, _)| LoopId(i as u32))
            .collect()
    }

    /// Per-kernel performance characteristics (see
    /// [`crate::characteristics`]).
    pub fn characteristics(&self, program: &Program) -> crate::KernelCharacteristics {
        crate::characteristics::synthesize(self, program)
    }

    /// Characteristics with an explicit thread-axis choice (loop
    /// interchange).
    pub fn characteristics_with_axis(
        &self,
        program: &Program,
        axis: LoopId,
    ) -> crate::KernelCharacteristics {
        crate::characteristics::synthesize_with_axis(self, program, Some(axis))
    }
}

/// Direction of an explicit transfer directive (`h2d` / `d2h` in `.gsk`).
///
/// Kept in the skeleton crate (rather than reusing the analyzer's
/// direction type) so the IR stays dependency-free; `gpp-datausage` maps
/// between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferKind {
    /// Host → device upload (`h2d`).
    HostToDevice,
    /// Device → host download (`d2h`).
    DeviceToHost,
}

/// One explicit whole-array transfer in the kernel/transfer sequence.
///
/// Most skeletons carry no explicit transfers and let the data usage
/// analyzer derive the minimal plan (paper §III-B). A skeleton that spells
/// its schedule out with `h2d`/`d2h` directives is priced *as written*,
/// which is what lets `gpp lint`'s whole-program passes find cross-kernel
/// transfer waste and quantify the headroom of fixing it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferDecl {
    /// The array moved (whole allocation).
    pub array: ArrayId,
    /// Upload or download.
    pub kind: TransferKind,
    /// Number of kernels that execute before this transfer: 0 places it
    /// before the first kernel, `kernels.len()` after the last. Must be
    /// non-decreasing across `Program::transfers`.
    pub pos: usize,
    /// Stream the transfer is enqueued on. Stream 0 is the default
    /// synchronous stream: the transfer serializes with adjacent kernels.
    /// A non-zero stream (`stream N` or `async` in `.gsk`) declares the
    /// copy asynchronous — the projector overlaps it with the adjacent
    /// kernel and the linter treats same-position transfers on different
    /// streams as concurrent.
    pub stream: u32,
    /// Pipelining hint: number of chunks the copy is split into for
    /// double-buffering (`chunks=K` in `.gsk`). 1 = one unchunked copy.
    pub chunks: u32,
}

impl TransferDecl {
    /// True when the directive carries no stream/pipelining annotations —
    /// i.e. it behaves exactly like a pre-stream-semantics transfer.
    pub fn is_plain(&self) -> bool {
        self.stream == 0 && self.chunks <= 1
    }
}

/// A whole modeled application region: arrays plus an ordered sequence of
/// kernels (the part of the CPU code being considered for GPU offload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Application/region name.
    pub name: String,
    /// Array declarations, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Kernels in execution order.
    pub kernels: Vec<Kernel>,
    /// Explicit transfer schedule, in program order (empty = derived by
    /// the data usage analyzer).
    pub transfers: Vec<TransferDecl>,
}

impl Program {
    /// Looks up an array declaration.
    ///
    /// # Panics
    /// Panics if the id is out of range (a validation error upstream).
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// Finds an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Finds a kernel by name.
    pub fn kernel_by_name(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Total bytes across all declared arrays.
    pub fn total_array_bytes(&self) -> u64 {
        self.arrays.iter().map(ArrayDecl::byte_count).sum()
    }

    /// True if the skeleton spells out its transfer schedule with
    /// `h2d`/`d2h` directives instead of leaving it to the analyzer.
    pub fn has_explicit_transfers(&self) -> bool {
        !self.transfers.is_empty()
    }

    /// True if any transfer carries a stream or pipelining annotation —
    /// the trigger for the event-timeline projection path. Annotation-free
    /// programs take the legacy scalar-sum path and project bit-identically
    /// to pre-stream-semantics builds.
    pub fn has_stream_annotations(&self) -> bool {
        self.transfers.iter().any(|t| !t.is_plain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;

    fn simple_kernel() -> Kernel {
        Kernel {
            name: "k".into(),
            loops: vec![
                Loop {
                    name: "i".into(),
                    trip: 100,
                    parallel: true,
                },
                Loop {
                    name: "t".into(),
                    trip: 4,
                    parallel: false,
                },
                Loop {
                    name: "j".into(),
                    trip: 50,
                    parallel: true,
                },
            ],
            statements: vec![Statement {
                refs: vec![ArrayRef {
                    array: ArrayId(0),
                    index: vec![AffineExpr::var(LoopId(0)).into()],
                    kind: AccessKind::Read,
                }],
                flops: Flops {
                    adds: 2,
                    muls: 1,
                    ..Flops::default()
                },
                active_fraction: 0.5,
            }],
            gpu_compute_scale: 1.0,
            cpu_compute_scale: 1.0,
        }
    }

    #[test]
    fn elem_type_sizes() {
        assert_eq!(ElemType::F32.bytes(), 4);
        assert_eq!(ElemType::F64.bytes(), 8);
        assert_eq!(ElemType::C128.bytes(), 16);
        assert!(ElemType::C128.is_complex());
        assert!(!ElemType::F32.is_complex());
    }

    #[test]
    fn array_decl_counts() {
        let a = ArrayDecl {
            id: ArrayId(0),
            name: "x".into(),
            elem: ElemType::F64,
            extents: vec![10, 20],
            sparse: false,
            temporary: false,
        };
        assert_eq!(a.element_count(), 200);
        assert_eq!(a.byte_count(), 1600);
        assert_eq!(a.ndims(), 2);
    }

    #[test]
    fn flops_weighting() {
        let f = Flops {
            adds: 2,
            muls: 3,
            divs: 1,
            specials: 1,
            compares: 2,
        };
        assert_eq!(f.total(), 9);
        assert_eq!(f.weighted(), 2.0 + 3.0 + 8.0 + 4.0 + 2.0);
        let g = f.plus(&Flops {
            adds: 1,
            ..Flops::default()
        });
        assert_eq!(g.adds, 3);
    }

    #[test]
    fn kernel_task_counts() {
        let k = simple_kernel();
        assert_eq!(k.parallel_tasks(), 100 * 50);
        assert_eq!(k.serial_iters(), 4);
        assert_eq!(k.total_iterations(), 100 * 4 * 50);
    }

    #[test]
    fn kernel_total_flops_respects_active_fraction() {
        let k = simple_kernel();
        // 3 flops * 0.5 active * 20000 iterations
        assert_eq!(k.total_flops(), 3.0 * 0.5 * 20_000.0);
    }

    #[test]
    fn thread_axis_is_innermost_parallel() {
        let k = simple_kernel();
        assert_eq!(k.thread_axis(), Some(LoopId(2)));
        let serial = Kernel {
            name: "s".into(),
            loops: vec![Loop {
                name: "t".into(),
                trip: 5,
                parallel: false,
            }],
            statements: vec![],
            gpu_compute_scale: 1.0,
            cpu_compute_scale: 1.0,
        };
        assert_eq!(serial.thread_axis(), None);
    }

    #[test]
    fn program_lookups() {
        let p = Program {
            name: "app".into(),
            arrays: vec![ArrayDecl {
                id: ArrayId(0),
                name: "grid".into(),
                elem: ElemType::F32,
                extents: vec![8],
                sparse: false,
                temporary: false,
            }],
            kernels: vec![simple_kernel()],
            transfers: vec![],
        };
        assert_eq!(p.array(ArrayId(0)).name, "grid");
        assert!(p.array_by_name("grid").is_some());
        assert!(p.array_by_name("nope").is_none());
        assert!(p.kernel_by_name("k").is_some());
        assert_eq!(p.total_array_bytes(), 32);
        assert!(!p.has_explicit_transfers());
    }

    #[test]
    fn explicit_transfers_are_carried() {
        let p = Program {
            name: "app".into(),
            arrays: vec![ArrayDecl {
                id: ArrayId(0),
                name: "grid".into(),
                elem: ElemType::F32,
                extents: vec![8],
                sparse: false,
                temporary: false,
            }],
            kernels: vec![simple_kernel()],
            transfers: vec![
                TransferDecl {
                    array: ArrayId(0),
                    kind: TransferKind::HostToDevice,
                    pos: 0,
                    stream: 0,
                    chunks: 1,
                },
                TransferDecl {
                    array: ArrayId(0),
                    kind: TransferKind::DeviceToHost,
                    pos: 1,
                    stream: 1,
                    chunks: 4,
                },
            ],
        };
        assert!(p.has_explicit_transfers());
        assert_eq!(p.transfers[0].kind, TransferKind::HostToDevice);
        assert_eq!(p.transfers[1].pos, 1);
        // Annotation predicates see through to the stream/chunk fields.
        assert!(p.transfers[0].is_plain());
        assert!(!p.transfers[1].is_plain());
        assert!(p.has_stream_annotations());
    }
}
