//! Synthesis of per-kernel performance characteristics.
//!
//! GROPHECY feeds a GPU performance model not with the skeleton itself but
//! with *characteristics* synthesized from it (paper Figure 1): how many
//! data-parallel tasks exist, how much arithmetic each performs, how its
//! memory references coalesce, how much control flow diverges, and how much
//! inter-thread data reuse a shared-memory transformation could capture.
//! Both the analytic model (`gpp-gpu-model`) and the timing simulator
//! (`gpp-gpu-sim`) consume this summary.

use crate::expr::IndexExpr;
use crate::ir::{Kernel, Program};
use gpp_brs::{AccessKind, ArrayId};
use serde::{Deserialize, Serialize};

/// How a memory reference maps onto consecutive GPU threads.
///
/// Classification follows G80 coalescing rules at half-warp granularity:
/// consecutive threads touching consecutive elements coalesce into one
/// memory transaction; anything else fragments into per-thread transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoalesceClass {
    /// Consecutive threads → consecutive elements (linear coefficient ±1 on
    /// the thread axis). One transaction per half-warp.
    Coalesced,
    /// All threads of a warp read the same address (coefficient 0).
    /// One transaction, broadcast to all lanes.
    Broadcast,
    /// Consecutive threads stride by the given element distance.
    /// Fragments into up to one transaction per lane.
    Strided(u32),
    /// Data-dependent addressing: assumed fully scattered.
    Irregular,
}

impl CoalesceClass {
    /// Memory transactions issued per 16-thread half-warp for this class
    /// on G80-class hardware (segment size ≥ element run length).
    pub fn transactions_per_halfwarp(self) -> f64 {
        match self {
            CoalesceClass::Coalesced => 1.0,
            CoalesceClass::Broadcast => 1.0,
            CoalesceClass::Strided(s) => (s.min(16)) as f64,
            CoalesceClass::Irregular => 16.0,
        }
    }
}

impl std::fmt::Display for CoalesceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoalesceClass::Coalesced => write!(f, "coalesced"),
            CoalesceClass::Broadcast => write!(f, "broadcast"),
            CoalesceClass::Strided(s) => write!(f, "strided({s})"),
            CoalesceClass::Irregular => write!(f, "irregular"),
        }
    }
}

/// One memory access stream of a kernel, summarized per thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemAccessChar {
    /// The referenced array.
    pub array: ArrayId,
    /// Load or store.
    pub kind: AccessKind,
    /// Element width in bytes.
    pub elem_bytes: usize,
    /// Coalescing behaviour across consecutive threads.
    pub class: CoalesceClass,
    /// Executions per thread over the whole kernel (serial iterations ×
    /// active fraction).
    pub per_thread: f64,
    /// True if this load could be served from shared memory after a tiling
    /// transformation (it re-reads data a neighbouring thread also reads).
    pub sharable: bool,
    /// True if the half-warp base address is segment-aligned (constant
    /// offset along the contiguous dimension is a multiple of the
    /// half-warp footprint). `x[i]` is aligned; `x[i+1]` is not — the
    /// classic G80 stencil coalescing hazard.
    pub aligned: bool,
    /// Reads with the same linear index part on the same array share a
    /// reuse group; a shared-memory staging transformation serves the
    /// whole group from one cooperative tile fill. `None` for writes.
    pub reuse_group: Option<u32>,
}

impl MemAccessChar {
    /// Bytes this stream moves per thread.
    pub fn bytes_per_thread(&self) -> f64 {
        self.per_thread * self.elem_bytes as f64
    }
}

/// The synthesized performance characteristics of one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCharacteristics {
    /// Kernel name.
    pub name: String,
    /// Data-parallel tasks (candidate GPU threads).
    pub threads: u64,
    /// Sequential iterations each task performs.
    pub serial_iters: u64,
    /// Raw flops per thread (divergence-weighted).
    pub flops_per_thread: f64,
    /// Throughput-weighted instruction slots per thread (divergence
    /// applied at warp granularity happens later; this is per-lane work).
    pub weighted_ops_per_thread: f64,
    /// Every memory access stream.
    pub accesses: Vec<MemAccessChar>,
    /// Ops-weighted mean active fraction across statements (1.0 = no
    /// divergence).
    pub avg_active_fraction: f64,
    /// Fraction of global loads that a shared-memory transformation could
    /// eliminate (stencil-style inter-thread reuse).
    pub sharable_load_fraction: f64,
}

impl KernelCharacteristics {
    /// Global-memory bytes read per thread (before any shared-memory
    /// transformation).
    pub fn bytes_read_per_thread(&self) -> f64 {
        self.accesses
            .iter()
            .filter(|a| a.kind.is_read())
            .map(MemAccessChar::bytes_per_thread)
            .sum()
    }

    /// Global-memory bytes written per thread.
    pub fn bytes_written_per_thread(&self) -> f64 {
        self.accesses
            .iter()
            .filter(|a| a.kind.is_write())
            .map(MemAccessChar::bytes_per_thread)
            .sum()
    }

    /// Total global-memory traffic of the kernel in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.threads as f64 * (self.bytes_read_per_thread() + self.bytes_written_per_thread())
    }

    /// Total raw flops of the kernel.
    pub fn total_flops(&self) -> f64 {
        self.threads as f64 * self.flops_per_thread
    }

    /// Arithmetic intensity in flops per global byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.bytes_read_per_thread() + self.bytes_written_per_thread();
        if b == 0.0 {
            f64::INFINITY
        } else {
            self.flops_per_thread / b
        }
    }
}

/// Synthesizes characteristics from a kernel skeleton with the default
/// thread axis (the innermost parallel loop). See module docs.
pub fn synthesize(kernel: &Kernel, program: &Program) -> KernelCharacteristics {
    synthesize_with_axis(kernel, program, kernel.thread_axis())
}

/// Synthesizes characteristics mapping `thread_axis` to consecutive GPU
/// thread IDs — the loop-interchange transformation explores these
/// variants, because the axis choice determines every coalescing class.
pub fn synthesize_with_axis(
    kernel: &Kernel,
    program: &Program,
    thread_axis: Option<crate::expr::LoopId>,
) -> KernelCharacteristics {
    let threads = kernel.parallel_tasks();
    let serial_iters = kernel.serial_iters();

    let mut flops_per_thread = 0.0;
    let mut weighted_ops = 0.0;
    let mut frac_weight = 0.0;
    let mut frac_sum = 0.0;
    let mut accesses = Vec::new();

    // Group read refs by (array, linear terms) to find stencil reuse:
    // refs identical up to a constant offset re-read neighbours' data.
    // The linear part of one ref: per dimension, sorted (loop, coeff)
    // pairs.
    type LinearPart = Vec<Vec<(u32, i64)>>;
    let mut groups: Vec<(ArrayId, LinearPart, usize)> = Vec::new();

    for stmt in &kernel.statements {
        let w = stmt.flops.weighted() * kernel.gpu_compute_scale;
        flops_per_thread += stmt.flops.total() as f64 * stmt.active_fraction * serial_iters as f64;
        weighted_ops += w * stmt.active_fraction * serial_iters as f64;
        frac_weight += w.max(1.0);
        frac_sum += stmt.active_fraction * w.max(1.0);

        for r in &stmt.refs {
            let decl = program.array(r.array);
            let class = classify(r.index.iter(), thread_axis, decl.ndims(), &decl.extents);
            // Half-warp alignment: the constant offset of the innermost
            // index must be a multiple of 16 elements (64 B segments of
            // 4 B elements). Non-affine innermost indices are treated as
            // unaligned (they are scattered anyway).
            let aligned = match r.index.last() {
                Some(IndexExpr::Affine(e)) => e.offset.rem_euclid(16) == 0,
                _ => false,
            };
            // Data-dependent refs cannot be tiled into shared memory by a
            // static transformation; they never join reuse groups.
            let (sharable, reuse_group) = if r.kind.is_read() && !r.is_irregular() {
                let linear: Vec<Vec<(u32, i64)>> = r
                    .index
                    .iter()
                    .map(|ix| match ix {
                        IndexExpr::Affine(e) => {
                            let mut t: Vec<(u32, i64)> =
                                e.terms.iter().map(|&(l, c)| (l.0, c)).collect();
                            t.sort_unstable();
                            t
                        }
                        IndexExpr::Irregular => vec![(u32::MAX, 0)],
                        IndexExpr::IrregularBounded(s) => vec![(u32::MAX, *s as i64 + 1)],
                    })
                    .collect();
                match groups
                    .iter_mut()
                    .enumerate()
                    .find(|(_, (a, l, _))| *a == r.array && *l == linear)
                {
                    Some((gi, g)) => {
                        g.2 += 1;
                        // Second or later ref with the same linear part.
                        (true, Some(gi as u32))
                    }
                    None => {
                        groups.push((r.array, linear, 1));
                        (false, Some(groups.len() as u32 - 1))
                    }
                }
            } else {
                (false, None)
            };
            accesses.push(MemAccessChar {
                array: r.array,
                kind: r.kind,
                elem_bytes: decl.elem.bytes(),
                class,
                per_thread: serial_iters as f64 * stmt.active_fraction,
                sharable,
                aligned,
                reuse_group,
            });
        }
    }

    let total_loads: f64 = accesses
        .iter()
        .filter(|a| a.kind.is_read())
        .map(|a| a.per_thread)
        .sum();
    let sharable_loads: f64 = accesses
        .iter()
        .filter(|a| a.kind.is_read() && a.sharable)
        .map(|a| a.per_thread)
        .sum();

    KernelCharacteristics {
        name: kernel.name.clone(),
        threads,
        serial_iters,
        flops_per_thread,
        weighted_ops_per_thread: weighted_ops,
        accesses,
        avg_active_fraction: if frac_weight > 0.0 {
            frac_sum / frac_weight
        } else {
            1.0
        },
        sharable_load_fraction: if total_loads > 0.0 {
            sharable_loads / total_loads
        } else {
            0.0
        },
    }
}

/// Classifies how a reference's address varies across consecutive threads
/// (i.e. consecutive values of the innermost parallel loop).
fn classify<'a>(
    index: impl Iterator<Item = &'a IndexExpr>,
    thread_axis: Option<crate::expr::LoopId>,
    ndims: usize,
    extents: &[usize],
) -> CoalesceClass {
    let Some(axis) = thread_axis else {
        return CoalesceClass::Broadcast;
    };
    // Linearized element distance between thread t and thread t+1:
    // sum over dims of coeff(axis) * row_stride(dim).
    //
    // Only the *innermost* dimension determines the coalescing class: an
    // irregular outer index (e.g. `B[col[k]][c]`) gathers whole contiguous
    // rows — each half-warp still hits one segment, just at a
    // data-dependent address.
    let mut linear_coeff: i64 = 0;
    // (kind, is_innermost) of the most scattered irregular dim seen:
    // None = no irregular dims; Some(span) with span == u32::MAX denotes
    // fully irregular.
    let mut irregular_span: Option<u32> = None;
    let mut irregular_innermost = false;
    for (d, ix) in index.enumerate() {
        let row_stride: i64 = extents[d + 1..ndims].iter().map(|&e| e as i64).product();
        match ix {
            IndexExpr::Irregular => {
                irregular_span = Some(u32::MAX);
                irregular_innermost |= d + 1 == ndims;
            }
            IndexExpr::IrregularBounded(s) => {
                irregular_span = Some(irregular_span.map_or(*s, |p| p.max(*s)));
                irregular_innermost |= d + 1 == ndims;
            }
            IndexExpr::Affine(e) => linear_coeff += e.coeff(axis) * row_stride,
        }
    }
    match irregular_span {
        // Innermost data-dependent index: scattered, with locality giving
        // a strided-equivalent cost.
        Some(u32::MAX) if irregular_innermost => return CoalesceClass::Irregular,
        Some(span) if irregular_innermost => {
            return CoalesceClass::Strided(span.max(2));
        }
        // Outer gather with an affine innermost index: if consecutive
        // threads sweep the row (coeff ±1) the access still coalesces; if
        // the innermost index is thread-invariant, every thread fetches a
        // data-dependent row — scattered, moderated by locality.
        Some(span) if linear_coeff == 0 => {
            return if span == u32::MAX {
                CoalesceClass::Irregular
            } else {
                CoalesceClass::Strided(span.max(2))
            };
        }
        _ => {}
    }
    match linear_coeff.unsigned_abs() {
        0 => CoalesceClass::Broadcast,
        1 => CoalesceClass::Coalesced,
        s => CoalesceClass::Strided(s.min(u32::MAX as u64) as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{idx, irr, ProgramBuilder};
    use crate::ir::{ElemType, Flops};

    #[test]
    fn transactions_per_halfwarp() {
        assert_eq!(CoalesceClass::Coalesced.transactions_per_halfwarp(), 1.0);
        assert_eq!(CoalesceClass::Broadcast.transactions_per_halfwarp(), 1.0);
        assert_eq!(CoalesceClass::Strided(4).transactions_per_halfwarp(), 4.0);
        assert_eq!(CoalesceClass::Strided(64).transactions_per_halfwarp(), 16.0);
        assert_eq!(CoalesceClass::Irregular.transactions_per_halfwarp(), 16.0);
    }

    #[test]
    fn vector_add_characteristics() {
        let mut p = ProgramBuilder::new("vadd");
        let a = p.array("a", ElemType::F32, &[1 << 20]);
        let b = p.array("b", ElemType::F32, &[1 << 20]);
        let c = p.array("c", ElemType::F32, &[1 << 20]);
        let mut k = p.kernel("add");
        let i = k.parallel_loop("i", 1 << 20);
        k.statement()
            .read(a, &[idx(i)])
            .read(b, &[idx(i)])
            .write(c, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        let ch = prog.kernels[0].characteristics(&prog);
        assert_eq!(ch.threads, 1 << 20);
        assert_eq!(ch.serial_iters, 1);
        assert_eq!(ch.flops_per_thread, 1.0);
        assert_eq!(ch.accesses.len(), 3);
        assert!(ch
            .accesses
            .iter()
            .all(|a| a.class == CoalesceClass::Coalesced));
        assert_eq!(ch.bytes_read_per_thread(), 8.0);
        assert_eq!(ch.bytes_written_per_thread(), 4.0);
        assert!((ch.arithmetic_intensity() - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(ch.total_bytes(), (1u64 << 20) as f64 * 12.0);
        assert_eq!(ch.sharable_load_fraction, 0.0);
    }

    #[test]
    fn stencil_reuse_detected() {
        let mut p = ProgramBuilder::new("stencil");
        let n = 128usize;
        let a = p.array("in", ElemType::F32, &[n, n]);
        let b = p.array("out", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", (n - 2) as u64);
        let j = k.parallel_loop("j", (n - 2) as u64);
        let s = k
            .statement()
            .read(a, &[idx(i), idx(j)])
            .read(a, &[idx(i) + 1, idx(j)])
            .read(a, &[idx(i) + 2, idx(j)])
            .read(a, &[idx(i) + 1, idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j) + 2])
            .write(b, &[idx(i) + 1, idx(j) + 1])
            .flops(Flops {
                adds: 4,
                muls: 2,
                ..Flops::default()
            });
        s.finish();
        k.finish();
        let prog = p.build().unwrap();
        let ch = prog.kernels[0].characteristics(&prog);
        // 5 loads with identical linear part: 4 of 5 sharable.
        assert!((ch.sharable_load_fraction - 0.8).abs() < 1e-12);
        // Thread axis is j (innermost parallel): all refs coalesce.
        assert!(ch
            .accesses
            .iter()
            .all(|a| a.class == CoalesceClass::Coalesced));
    }

    #[test]
    fn row_major_i_axis_access_is_strided() {
        // Single parallel loop over i indexing a[i][c]: consecutive threads
        // jump a whole row.
        let mut p = ProgramBuilder::new("col");
        let n = 64usize;
        let a = p.array("a", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", n as u64);
        k.statement().read(a, &[idx(i), cst0()]).finish();
        k.finish();
        let prog = p.build().unwrap();
        let ch = prog.kernels[0].characteristics(&prog);
        assert_eq!(ch.accesses[0].class, CoalesceClass::Strided(64));
    }

    fn cst0() -> crate::expr::AffineExpr {
        crate::expr::AffineExpr::constant(0)
    }

    #[test]
    fn broadcast_and_irregular_classes() {
        let mut p = ProgramBuilder::new("misc");
        let a = p.array("a", ElemType::F64, &[64]);
        let t = p.array("t", ElemType::F64, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement()
            .read(a, &[cst0()]) // same address for all threads
            .read_ix(t, &[irr()]) // scattered
            .write(a, &[idx(i)])
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        let ch = prog.kernels[0].characteristics(&prog);
        assert_eq!(ch.accesses[0].class, CoalesceClass::Broadcast);
        assert_eq!(ch.accesses[1].class, CoalesceClass::Irregular);
        assert_eq!(ch.accesses[2].class, CoalesceClass::Coalesced);
    }

    #[test]
    fn divergence_is_ops_weighted() {
        let mut p = ProgramBuilder::new("div");
        let a = p.array("a", ElemType::F32, &[64]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        k.statement()
            .read(a, &[idx(i)])
            .flops(Flops {
                adds: 10,
                ..Flops::default()
            })
            .active(1.0)
            .finish();
        k.statement()
            .write(a, &[idx(i)])
            .flops(Flops {
                adds: 10,
                ..Flops::default()
            })
            .active(0.5)
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        let ch = prog.kernels[0].characteristics(&prog);
        assert!((ch.avg_active_fraction - 0.75).abs() < 1e-12);
        // Flops per thread: 10*1.0 + 10*0.5
        assert_eq!(ch.flops_per_thread, 15.0);
    }

    #[test]
    fn serial_loop_multiplies_per_thread_work() {
        let mut p = ProgramBuilder::new("serial");
        let a = p.array("a", ElemType::F32, &[64, 16]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 64);
        let t = k.serial_loop("t", 16);
        k.statement()
            .read(a, &[idx(i), idx(t)])
            .flops(Flops {
                muls: 2,
                ..Flops::default()
            })
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        let ch = prog.kernels[0].characteristics(&prog);
        assert_eq!(ch.serial_iters, 16);
        assert_eq!(ch.flops_per_thread, 32.0);
        assert_eq!(ch.accesses[0].per_thread, 16.0);
        // Thread axis = i (only parallel loop); a[i][t] strides by 16.
        assert_eq!(ch.accesses[0].class, CoalesceClass::Strided(16));
    }
}
