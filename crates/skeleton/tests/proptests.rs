//! Property tests for the skeleton crate: affine-expression algebra,
//! characteristics invariants, and text-format roundtripping over random
//! programs.

use gpp_skeleton::builder::ProgramBuilder;
use gpp_skeleton::expr::{AffineExpr, LoopId};
use gpp_skeleton::text;
use gpp_skeleton::{ElemType, Flops, IndexExpr, Program, TransferKind};
use proptest::prelude::*;

fn any_elem() -> impl Strategy<Value = ElemType> {
    prop_oneof![
        Just(ElemType::F32),
        Just(ElemType::F64),
        Just(ElemType::I32),
        Just(ElemType::I64),
        Just(ElemType::C64),
        Just(ElemType::C128),
    ]
}

/// A random, structurally valid program exercising every IR feature the
/// text format must carry.
fn any_program() -> impl Strategy<Value = Program> {
    let index = prop_oneof![
        Just(IndexKind::Var),
        Just(IndexKind::VarPlus(1)),
        Just(IndexKind::VarPlus(-2)),
        Just(IndexKind::Scaled(3, 1)),
        Just(IndexKind::Const(5)),
        Just(IndexKind::Irregular),
        Just(IndexKind::Bounded(7)),
    ];
    #[derive(Debug, Clone, Copy)]
    enum IndexKind {
        Var,
        VarPlus(i64),
        Scaled(i64, i64),
        Const(i64),
        Irregular,
        Bounded(u32),
    }
    (
        prop::collection::vec((any_elem(), 1usize..3, any::<bool>()), 1..4), // arrays
        prop::collection::vec(
            (
                1.0f64..4.0, // gpu scale
                0.5f64..1.5, // cpu scale
                1usize..3,   // parallel loops
                0usize..2,   // serial loops
                prop::collection::vec(
                    (
                        prop::collection::vec((index.clone(), any::<bool>()), 1..4),
                        0u32..9,
                    ),
                    1..3,
                ), // statements: refs + flop count
            ),
            1..3,
        ),
    )
        .prop_map(|(arrays, kernels)| {
            let mut p = ProgramBuilder::new("random");
            let ids: Vec<_> = arrays
                .iter()
                .enumerate()
                .map(|(k, (elem, ndims, sparse))| {
                    let extents = vec![32usize; *ndims];
                    if *sparse {
                        p.sparse_array(format!("a{k}"), *elem, &extents)
                    } else {
                        p.array(format!("a{k}"), *elem, &extents)
                    }
                })
                .collect();
            let dims: Vec<usize> = arrays.iter().map(|(_, n, _)| *n).collect();
            for (ki, (gscale, cscale, npar, nser, stmts)) in kernels.into_iter().enumerate() {
                let mut k = p.kernel(format!("k{ki}"));
                k.gpu_compute_scale(gscale);
                k.cpu_compute_scale(cscale);
                let mut loops = Vec::new();
                for l in 0..npar {
                    loops.push(k.parallel_loop(format!("p{l}"), 16));
                }
                for l in 0..nser {
                    loops.push(k.serial_loop(format!("s{l}"), 4));
                }
                for (refs, flops) in stmts {
                    let mut s = k.statement().flops(Flops {
                        adds: flops,
                        muls: flops / 2,
                        divs: flops / 4,
                        ..Flops::default()
                    });
                    for (ri, (kind, is_write)) in refs.into_iter().enumerate() {
                        let arr = ids[ri % ids.len()];
                        let nd = dims[ri % ids.len()];
                        let ix: Vec<IndexExpr> = (0..nd)
                            .map(|d| {
                                let lid = loops[d % loops.len()];
                                match kind {
                                    IndexKind::Var => IndexExpr::Affine(AffineExpr::var(lid)),
                                    IndexKind::VarPlus(o) => {
                                        IndexExpr::Affine(AffineExpr::var(lid) + o)
                                    }
                                    IndexKind::Scaled(c, o) => {
                                        IndexExpr::Affine(AffineExpr::scaled(lid, c, o))
                                    }
                                    IndexKind::Const(c) => {
                                        IndexExpr::Affine(AffineExpr::constant(c))
                                    }
                                    IndexKind::Irregular => IndexExpr::Irregular,
                                    IndexKind::Bounded(sp) => IndexExpr::IrregularBounded(sp),
                                }
                            })
                            .collect();
                        s = if is_write {
                            s.write_ix(arr, &ix)
                        } else {
                            s.read_ix(arr, &ix)
                        };
                    }
                    s.finish();
                }
                k.finish();
            }
            p.build().expect("random program valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The text format is lossless: parse(to_text(p)) == p.
    #[test]
    fn text_roundtrip_is_identity(p in any_program()) {
        let rendered = text::to_text(&p);
        let reparsed = text::parse(&rendered)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{rendered}")))?;
        prop_assert_eq!(reparsed, p);
    }

    /// Stream/chunk transfer annotations survive
    /// `parse_with_spans` → `to_text` losslessly, every directive gets a
    /// span, and the canonical rendering is a fixed point of the writer.
    #[test]
    fn transfer_annotations_roundtrip_with_spans(
        p in any_program(),
        decls in prop::collection::vec(
            (any::<bool>(), 0usize..3, 0u32..5, 1u32..9),
            1..6,
        ),
    ) {
        let mut p = p;
        let mut pos = 0usize;
        for (h2d, pos_delta, stream, chunks) in decls {
            pos = (pos + pos_delta).min(p.kernels.len());
            let array = p.arrays[(stream as usize + pos) % p.arrays.len()].id;
            let kind = if h2d { TransferKind::HostToDevice } else { TransferKind::DeviceToHost };
            p.transfers.push(gpp_skeleton::TransferDecl { array, kind, pos, stream, chunks });
        }
        let rendered = text::to_text(&p);
        let (reparsed, map) = text::parse_with_spans(&rendered)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{rendered}")))?;
        prop_assert_eq!(&reparsed, &p);
        prop_assert_eq!(map.transfers.len(), p.transfers.len());
        for (i, t) in p.transfers.iter().enumerate() {
            let span = map.transfer_span(i);
            prop_assert!(span.is_real(), "transfer {i} has no span");
            // The spanned text is the whole directive, annotations included.
            let line = rendered.lines().nth(span.line - 1).unwrap();
            prop_assert!(line.starts_with("h2d ") || line.starts_with("d2h "));
            if t.stream != 0 {
                prop_assert!(line.contains(&format!("stream {}", t.stream)), "{line}");
            }
            if t.chunks > 1 {
                prop_assert!(line.contains(&format!("chunks={}", t.chunks)), "{line}");
            }
        }
        prop_assert_eq!(text::to_text(&reparsed), rendered);
    }

    /// Characteristics are internally consistent for any program.
    #[test]
    fn characteristics_invariants(p in any_program()) {
        for k in &p.kernels {
            let c = k.characteristics(&p);
            prop_assert_eq!(c.threads, k.parallel_tasks());
            prop_assert!(c.flops_per_thread >= 0.0);
            prop_assert!(c.weighted_ops_per_thread >= c.flops_per_thread * 0.99
                || k.gpu_compute_scale < 1.0);
            prop_assert!((0.0..=1.0).contains(&c.avg_active_fraction));
            prop_assert!((0.0..=1.0).contains(&c.sharable_load_fraction));
            prop_assert_eq!(c.accesses.len(),
                k.statements.iter().map(|s| s.refs.len()).sum::<usize>());
            for a in &c.accesses {
                prop_assert!(a.per_thread > 0.0);
                prop_assert!(a.elem_bytes >= 4);
            }
        }
    }

    /// Axis variants never change thread counts or byte totals per access
    /// stream — only the coalescing classification.
    #[test]
    fn axis_choice_preserves_work(p in any_program()) {
        for k in &p.kernels {
            let base = k.characteristics(&p);
            for axis in k.axis_candidates() {
                let v = k.characteristics_with_axis(&p, axis);
                prop_assert_eq!(v.threads, base.threads);
                prop_assert_eq!(v.flops_per_thread, base.flops_per_thread);
                let bytes = |c: &gpp_skeleton::KernelCharacteristics| {
                    c.bytes_read_per_thread() + c.bytes_written_per_thread()
                };
                prop_assert!((bytes(&v) - bytes(&base)).abs() < 1e-9);
            }
        }
    }

    /// Affine bounds really bound: evaluating at random loop points never
    /// escapes `bounds()`.
    #[test]
    fn affine_bounds_contain_all_points(
        coeffs in prop::collection::vec(-4i64..5, 1..4),
        offset in -10i64..10,
        trips in prop::collection::vec(1u64..9, 1..4),
        point_seed in 0u64..1000,
    ) {
        let n = coeffs.len().min(trips.len());
        let mut e = AffineExpr::constant(offset);
        for (l, &c) in coeffs.iter().take(n).enumerate() {
            e.add_term(LoopId(l as u32), c);
        }
        let trips = &trips[..n];
        let (lo, hi) = e.bounds(trips);
        // Deterministic pseudo-random point inside the iteration space.
        let mut s = point_seed;
        let point: Vec<i64> = trips
            .iter()
            .map(|&t| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) % t) as i64
            })
            .collect();
        let v = e.eval(&point);
        prop_assert!(v >= lo && v <= hi, "{v} outside [{lo}, {hi}]");
    }
}
