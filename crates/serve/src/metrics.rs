//! Service counters and latency tracking for the `stats` command.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many recent request latencies the percentile window keeps.
const LATENCY_WINDOW: usize = 4096;

/// Lock-free counters plus a bounded latency reservoir.
///
/// Counters are relaxed atomics — they are monotone tallies, and the
/// `stats` reader tolerates being a few increments behind the workers.
pub struct Metrics {
    started: Instant,
    /// Requests that produced an `ok` response.
    pub served_ok: AtomicU64,
    /// Requests that produced a structured error response.
    pub served_err: AtomicU64,
    /// Connections rejected with `busy` because the queue was full.
    pub rejected_busy: AtomicU64,
    /// Requests that exceeded their compute deadline.
    pub timeouts: AtomicU64,
    /// Calibration cache hits / misses.
    pub calib_hits: AtomicU64,
    pub calib_misses: AtomicU64,
    /// Projection memo hits / misses.
    pub proj_hits: AtomicU64,
    pub proj_misses: AtomicU64,
    /// Request handlers that panicked and were isolated by the worker's
    /// `catch_unwind` (the client still got a structured reply).
    pub panics_caught: AtomicU64,
    /// Workers that died outside per-request isolation and were respawned.
    pub worker_respawns: AtomicU64,
    /// Calibration attempts that failed and were retried with backoff.
    pub calib_retries: AtomicU64,
    /// Replies served from the last-good calibration because fresh
    /// re-calibration kept failing (flagged `"stale":true`).
    pub degraded_replies: AtomicU64,
    /// Frames rejected with `too_large` before allocation.
    pub too_large_rejected: AtomicU64,
    /// Inbound frames corrupted by an injected fault before decoding.
    pub frames_corrupted: AtomicU64,
    /// Requests shed because their propagated `deadline_ms` budget could
    /// not cover the observed median compute time (admission at dequeue),
    /// or because the deadline expired before the reply was ready.
    pub shed_deadline: AtomicU64,
    /// Connections shed oldest-first from a saturated accept queue to
    /// make room for a newcomer.
    pub shed_queue: AtomicU64,
    /// Retry withdrawals the calibration retry budget refused: the
    /// token bucket was empty, so the retry loop stopped early.
    pub retry_budget_exhausted: AtomicU64,
    /// Ring buffer of recent request latencies, microseconds, split into
    /// (queued, compute): time spent waiting in the accept queue vs time
    /// inside the handler.
    latencies_us: Mutex<Ring>,
    /// Per-machine counter breakdown, keyed by machine name (sorted).
    per_machine: Mutex<BTreeMap<String, MachineCounters>>,
}

/// Counters `stats` breaks out per target machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// Requests routed to this machine (any machine-taking command).
    pub requests: u64,
    /// Calibration cache hits / misses for this machine's keys.
    pub calib_hits: u64,
    /// See [`MachineCounters::calib_hits`].
    pub calib_misses: u64,
    /// Projection memo hits / misses for this machine's keys.
    pub proj_hits: u64,
    /// See [`MachineCounters::proj_hits`].
    pub proj_misses: u64,
    /// Replies served stale from this machine's last-good calibration.
    pub degraded_replies: u64,
}

struct Ring {
    buf: Vec<(u64, u64)>,
    next: usize,
    filled: bool,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            served_ok: AtomicU64::new(0),
            served_err: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            calib_hits: AtomicU64::new(0),
            calib_misses: AtomicU64::new(0),
            proj_hits: AtomicU64::new(0),
            proj_misses: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            calib_retries: AtomicU64::new(0),
            degraded_replies: AtomicU64::new(0),
            too_large_rejected: AtomicU64::new(0),
            frames_corrupted: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_queue: AtomicU64::new(0),
            retry_budget_exhausted: AtomicU64::new(0),
            latencies_us: Mutex::new(Ring {
                buf: Vec::with_capacity(LATENCY_WINDOW),
                next: 0,
                filled: false,
            }),
            per_machine: Mutex::new(BTreeMap::new()),
        }
    }
}

/// A point-in-time copy of every counter, plus derived percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    pub uptime: Duration,
    pub served_ok: u64,
    pub served_err: u64,
    pub rejected_busy: u64,
    pub timeouts: u64,
    pub calib_hits: u64,
    pub calib_misses: u64,
    pub proj_hits: u64,
    pub proj_misses: u64,
    /// Handler panics isolated per-request.
    pub panics_caught: u64,
    /// Workers respawned after dying outside per-request isolation.
    pub worker_respawns: u64,
    /// Calibration retry attempts.
    pub calib_retries: u64,
    /// Replies served stale from the last-good calibration.
    pub degraded_replies: u64,
    /// Frames rejected with `too_large`.
    pub too_large_rejected: u64,
    /// Inbound frames corrupted by fault injection.
    pub frames_corrupted: u64,
    /// Requests shed on deadline grounds (admission or late detection).
    pub shed_deadline: u64,
    /// Connections shed oldest-first from a saturated accept queue.
    pub shed_queue: u64,
    /// Calibration retries refused by an empty retry budget.
    pub retry_budget_exhausted: u64,
    /// Total faults the active plan injected across the whole stack
    /// (supplied by the caller from the injector; 0 without a plan).
    pub faults_injected: u64,
    /// Median / tail total latency (queued + compute) over the recent
    /// window, microseconds. Zero when no request completed yet.
    pub p50_latency_us: u64,
    pub p99_latency_us: u64,
    /// Time spent waiting in the accept queue before a worker picked the
    /// connection up.
    pub p50_queued_us: u64,
    pub p99_queued_us: u64,
    /// Time spent inside the handler (parse + compute + render).
    pub p50_compute_us: u64,
    pub p99_compute_us: u64,
    /// Requests sitting in the accept queue right now.
    pub queue_depth: usize,
    /// Entries in the projection memo right now.
    pub proj_cache_len: usize,
    /// Entries in the calibration cache right now.
    pub calib_cache_len: usize,
    /// Per-machine breakdown, sorted by machine name.
    pub machines: Vec<(String, MachineCounters)>,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request's wall time, split into the queue
    /// wait (accept to worker pickup) and the handler's compute time.
    pub fn record_latency(&self, queued: Duration, compute: Duration) {
        let us = |d: Duration| d.as_micros().min(u64::MAX as u128) as u64;
        let sample = (us(queued), us(compute));
        let mut ring = self.latencies_us.lock();
        if ring.buf.len() < LATENCY_WINDOW {
            ring.buf.push(sample);
        } else {
            let next = ring.next;
            ring.buf[next] = sample;
            ring.filled = true;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// Captures a snapshot; queue/cache gauges and the injector's fault
    /// total are supplied by the caller.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        proj_cache_len: usize,
        calib_cache_len: usize,
        faults_injected: u64,
    ) -> StatsSnapshot {
        let (total, queued, compute) = {
            let ring = self.latencies_us.lock();
            (
                percentiles(ring.buf.iter().map(|&(q, c)| q + c)),
                percentiles(ring.buf.iter().map(|&(q, _)| q)),
                percentiles(ring.buf.iter().map(|&(_, c)| c)),
            )
        };
        StatsSnapshot {
            uptime: self.started.elapsed(),
            served_ok: self.served_ok.load(Ordering::Relaxed),
            served_err: self.served_err.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            calib_hits: self.calib_hits.load(Ordering::Relaxed),
            calib_misses: self.calib_misses.load(Ordering::Relaxed),
            proj_hits: self.proj_hits.load(Ordering::Relaxed),
            proj_misses: self.proj_misses.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            calib_retries: self.calib_retries.load(Ordering::Relaxed),
            degraded_replies: self.degraded_replies.load(Ordering::Relaxed),
            too_large_rejected: self.too_large_rejected.load(Ordering::Relaxed),
            frames_corrupted: self.frames_corrupted.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            shed_queue: self.shed_queue.load(Ordering::Relaxed),
            retry_budget_exhausted: self.retry_budget_exhausted.load(Ordering::Relaxed),
            faults_injected,
            p50_latency_us: total.0,
            p99_latency_us: total.1,
            p50_queued_us: queued.0,
            p99_queued_us: queued.1,
            p50_compute_us: compute.0,
            p99_compute_us: compute.1,
            queue_depth,
            proj_cache_len,
            calib_cache_len,
            machines: self
                .per_machine
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Bumps a counter by one (helper so call sites stay terse).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The observed median handler compute time over the recent window,
    /// microseconds; 0 until a request completed. This is the admission
    /// yardstick: a request whose remaining deadline budget cannot cover
    /// it is shed instead of computed (a cold window of 0 sheds only
    /// requests whose budget is already gone).
    pub fn compute_p50_us(&self) -> u64 {
        let ring = self.latencies_us.lock();
        percentiles(ring.buf.iter().map(|&(_, c)| c)).0
    }

    /// Updates the named machine's counter row.
    pub fn bump_machine(&self, machine: &str, f: impl FnOnce(&mut MachineCounters)) {
        let mut map = self.per_machine.lock();
        f(map.entry(machine.to_string()).or_default());
    }
}

fn percentiles(samples: impl Iterator<Item = u64>) -> (u64, u64) {
    let mut s: Vec<u64> = samples.collect();
    if s.is_empty() {
        return (0, 0);
    }
    s.sort_unstable();
    // Nearest-rank method: the p-th percentile is the ceil(p*n)-th sample.
    let rank = |p: f64| -> u64 {
        let idx = ((s.len() as f64 * p).ceil() as usize).clamp(1, s.len()) - 1;
        s[idx]
    };
    (rank(0.50), rank(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let m = Metrics::new();
        for us in 1..=100u64 {
            m.record_latency(Duration::ZERO, Duration::from_micros(us));
        }
        let s = m.snapshot(3, 2, 1, 0);
        assert_eq!(s.p50_latency_us, 50);
        assert_eq!(s.p99_latency_us, 99);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.proj_cache_len, 2);
        assert_eq!(s.calib_cache_len, 1);
    }

    #[test]
    fn queued_and_compute_split_is_tracked() {
        let m = Metrics::new();
        for us in 1..=100u64 {
            m.record_latency(Duration::from_micros(us * 10), Duration::from_micros(us));
        }
        let s = m.snapshot(0, 0, 0, 0);
        assert_eq!(s.p50_queued_us, 500);
        assert_eq!(s.p99_queued_us, 990);
        assert_eq!(s.p50_compute_us, 50);
        assert_eq!(s.p99_compute_us, 99);
        // Total is the per-request sum, not the sum of percentiles.
        assert_eq!(s.p50_latency_us, 550);
        assert_eq!(s.p99_latency_us, 1089);
    }

    #[test]
    fn ring_wraps_at_window() {
        let m = Metrics::new();
        for _ in 0..(LATENCY_WINDOW + 10) {
            m.record_latency(Duration::from_micros(2), Duration::from_micros(5));
        }
        let s = m.snapshot(0, 0, 0, 0);
        assert_eq!(s.p50_latency_us, 7);
        assert_eq!(s.p99_latency_us, 7);
    }

    #[test]
    fn empty_window_reports_zero() {
        let m = Metrics::new();
        let s = m.snapshot(0, 0, 0, 0);
        assert_eq!((s.p50_latency_us, s.p99_latency_us), (0, 0));
    }

    #[test]
    fn per_machine_rows_accumulate_and_sort() {
        let m = Metrics::new();
        m.bump_machine("v2", |c| c.requests += 1);
        m.bump_machine("eureka", |c| {
            c.requests += 1;
            c.calib_misses += 1;
        });
        m.bump_machine("eureka", |c| c.calib_hits += 1);
        let s = m.snapshot(0, 0, 0, 0);
        let names: Vec<&str> = s.machines.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["eureka", "v2"]);
        assert_eq!(s.machines[0].1.calib_hits, 1);
        assert_eq!(s.machines[0].1.calib_misses, 1);
        assert_eq!(s.machines[1].1.requests, 1);
    }
}
