//! `gpp-serve`: the long-running GROPHECY++ projection service.
//!
//! Turns the one-shot CLI pipeline (calibrate → analyze → project) into a
//! concurrent offload-advisor service: clients submit `.gsk` skeletons
//! plus options over a length-prefixed TCP protocol and get back the same
//! JSON reports `grophecy::report` emits, while the server amortizes the
//! expensive parts across requests:
//!
//! * **calibration cache** — the two-point PCIe benchmark runs once per
//!   (machine, seed), not once per request;
//! * **projection memo** — an LRU keyed by (machine, seed, normalized
//!   skeleton content hash, hints) makes repeated what-if queries O(hash);
//! * **bounded queue + worker pool** — overload produces an immediate,
//!   structured `busy` error instead of unbounded queueing;
//! * **metrics** — a `stats` command reports counters, cache hit rates,
//!   queue depth and p50/p99 latency;
//! * **graceful shutdown** — SIGINT/SIGTERM (or a programmatic flag)
//!   stops accepting, drains the queue, finishes in-flight requests.
//!
//! See `README.md` ("The projection service") for the wire protocol.

pub mod cache;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::{
    backoff_delay, request_once, request_with_retries, request_with_retries_budgeted, Client,
    RetryBudget,
};
pub use protocol::{batch_response, Command, ProtocolError, Request};
pub use server::{DeadlineRead, Server, ServerHandle};
pub use service::{ServeConfig, ServiceState};
