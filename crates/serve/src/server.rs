//! The TCP front-end: accept loop, bounded queue, worker pool, shutdown.
//!
//! Architecture (no async runtime — sanctioned crates only):
//!
//! ```text
//!              accept loop (non-blocking + poll)
//!                   │ try_send
//!                   ▼
//!        crossbeam bounded channel  ──full──► immediate `busy` reply
//!                   │ recv
//!        ┌──────────┼──────────┐
//!        ▼          ▼          ▼
//!     worker 0   worker 1   worker N      (crossbeam scoped threads)
//!        └── ServiceState::handle ──► length-prefixed JSON reply
//! ```
//!
//! Shutdown: a shared `AtomicBool` (set programmatically or by the
//! SIGINT/SIGTERM handler) stops the accept loop; dropping the sender
//! lets each worker drain the queue and finish in-flight requests before
//! the pool joins — no request that was accepted is abandoned.

use crate::metrics::Metrics;
use crate::protocol::{read_frame_limited, write_frame, FrameError, ProtocolError};
use crate::service::{
    busy_response_with_hint, error_json, shed_queue_response, ServeConfig, ServiceState,
};
use crossbeam::channel::{bounded, Receiver, TrySendError};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the shutdown flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A bound, ready-to-run server.
pub struct Server {
    state: Arc<ServiceState>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address (port 0 gives an ephemeral port).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            state: Arc::new(ServiceState::new(config)),
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The flag that stops the server when set.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Shared service state (stats, caches) — for embedding and tests.
    pub fn state(&self) -> Arc<ServiceState> {
        self.state.clone()
    }

    /// Runs until the shutdown flag is set (blocking). Returns once every
    /// queued and in-flight request has been answered.
    pub fn run(self) -> io::Result<()> {
        let Server {
            state,
            listener,
            shutdown,
        } = self;
        listener.set_nonblocking(true)?;
        let workers = state.config.workers.max(1);
        // Each queue entry carries its enqueue instant so the worker can
        // attribute the accept-queue wait separately from compute time.
        let (tx, rx) = bounded::<(TcpStream, Instant)>(state.config.queue_depth.max(1));

        crossbeam::thread::scope(|scope| {
            for w in 0..workers {
                let rx: Receiver<(TcpStream, Instant)> = rx.clone();
                let state = state.clone();
                let shutdown = shutdown.clone();
                // The respawn loop: per-request panics are already isolated
                // inside serve_connection; should anything else unwind, the
                // logical worker restarts on the same OS thread instead of
                // shrinking the pool (and instead of poisoning the scope
                // join, which would take the whole server down).
                scope.spawn(move |_| loop {
                    match catch_unwind(AssertUnwindSafe(|| worker_loop(w, &rx, &state, &shutdown)))
                    {
                        Ok(()) => break, // channel disconnected: clean drain
                        Err(_) => {
                            Metrics::bump(&state.metrics.worker_respawns);
                            eprintln!("gpp-serve: worker {w} died; respawning");
                        }
                    }
                });
            }
            // Accept loop — owns `tx`; dropping it on exit disconnects the
            // workers once the queue drains.
            loop {
                if shutdown.load(Ordering::SeqCst) || signals::requested() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => match tx.try_send((stream, Instant::now())) {
                        Ok(()) => {}
                        Err(TrySendError::Full(pair)) => {
                            // Shed-oldest-first (adaptive LIFO): the
                            // longest-queued connection is the one most
                            // likely past its caller's patience, so it is
                            // displaced with a structured `shed` reply and
                            // the fresh arrival takes its slot. Only if no
                            // queued entry can be reclaimed (workers
                            // drained the queue in the race window and it
                            // refilled — impossible with one acceptor, but
                            // cheap to guard) does the newcomer get the
                            // legacy `busy`.
                            let hint = state.retry_after_hint_ms(rx.len());
                            if let Some((oldest, _enqueued)) = rx.try_recv() {
                                state.note_shed_queue();
                                reply_reject(oldest, shed_queue_response(hint));
                            }
                            match tx.try_send(pair) {
                                Ok(()) => {}
                                Err(TrySendError::Full((stream, _))) => {
                                    state.note_busy();
                                    reply_reject(stream, busy_response_with_hint(hint));
                                }
                                Err(TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        eprintln!("gpp-serve: accept failed: {e}");
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
            drop(tx);
        })
        .expect("gpp-serve worker panicked");
        Ok(())
    }

    /// Runs the server on a background thread; returns a handle with the
    /// bound address and a clean shutdown path. Used by tests and by
    /// embedders that need the calling thread back.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_flag();
        let state = self.state();
        let thread = std::thread::Builder::new()
            .name("gpp-serve-acceptor".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            shutdown,
            state,
            thread,
        })
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<ServiceState>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn state(&self) -> Arc<ServiceState> {
        self.state.clone()
    }

    /// Requests shutdown and waits for the drain to complete.
    pub fn shutdown_and_join(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("gpp-serve server thread panicked")),
        }
    }
}

fn worker_loop(
    worker: usize,
    rx: &Receiver<(TcpStream, Instant)>,
    state: &ServiceState,
    shutdown: &AtomicBool,
) {
    // recv() drains remaining queued connections after the acceptor drops
    // the sender, then reports Disconnected — exactly the shutdown drain
    // semantics we want.
    while let Ok((stream, enqueued)) = rx.recv() {
        if let Err(e) = serve_connection(stream, enqueued.elapsed(), rx, state, shutdown) {
            // Client went away mid-request or a socket error: not fatal to
            // the server; note it and move on.
            if e.kind() != io::ErrorKind::UnexpectedEof {
                eprintln!("gpp-serve: worker {worker}: connection error: {e}");
            }
        }
    }
}

/// Serves one connection: any number of request frames until EOF. The
/// connection's queue wait is attributed to its first request; follow-up
/// frames on the same connection never waited, so they record zero.
///
/// Robustness properties, in the order they apply per request:
///
/// * **Total read deadline** — the whole frame must arrive within
///   `request_timeout` ([`DeadlineRead`] re-arms the socket timeout to
///   the remaining budget before every `read`), so a slow-loris client
///   trickling bytes cannot pin a worker.
/// * **Bounded allocation** — a frame declaring more than
///   `max_frame_bytes` gets a structured `too_large` reply before any
///   payload allocation, then the connection closes (it cannot be
///   resynchronized past an unread body).
/// * **Injected corruption** ([`gpp_fault::SERVE_FRAME_CORRUPT`]) mangles
///   the payload before decoding; the handler answers it like any other
///   malformed request.
/// * **Panic isolation** — the handler (plus the injected
///   [`gpp_fault::SERVE_WORKER_PANIC`]) runs under `catch_unwind`; a
///   panic becomes a structured `internal` reply and the connection (and
///   worker) live on.
fn serve_connection(
    mut stream: TcpStream,
    queued: Duration,
    rx: &Receiver<(TcpStream, Instant)>,
    state: &ServiceState,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let io_budget = state.config.request_timeout;
    stream.set_write_timeout(Some(io_budget))?;
    stream.set_nodelay(true).ok();
    let faults = &state.config.faults;
    let mut queued = queued;
    loop {
        let mut reader = DeadlineRead::new(&stream, Instant::now() + io_budget, shutdown);
        let payload = match read_frame_limited(&mut reader, state.config.max_frame_bytes) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            Err(FrameError::TooLarge { declared, max }) => {
                Metrics::bump(&state.metrics.too_large_rejected);
                let reply = error_json(&ProtocolError::new(
                    "too_large",
                    format!("request frame of {declared} B exceeds the {max} B limit"),
                ))
                .render();
                write_frame(&mut stream, &reply)?;
                return Ok(());
            }
            Err(FrameError::Io(e)) => return Err(e),
        };
        let mut payload = payload;
        if faults.is_active() && faults.fires(gpp_fault::SERVE_FRAME_CORRUPT) {
            Metrics::bump(&state.metrics.frames_corrupted);
            payload = corrupt_payload(&payload);
        }
        let response = catch_unwind(AssertUnwindSafe(|| {
            if faults.is_active() && faults.fires(gpp_fault::SERVE_WORKER_PANIC) {
                panic!("injected worker panic (serve.worker.panic)");
            }
            state.handle_timed(&payload, rx.len(), queued)
        }))
        .unwrap_or_else(|cause| {
            Metrics::bump(&state.metrics.panics_caught);
            let what = panic_message(&cause);
            error_json(&ProtocolError::new(
                "internal",
                format!("request handler panicked: {what}"),
            ))
            .render()
        });
        queued = Duration::ZERO;
        write_frame(&mut stream, &response)?;
    }
}

/// Deterministic frame corruption for [`gpp_fault::SERVE_FRAME_CORRUPT`]:
/// the header magic is replaced, so decoding fails with `bad-magic` the
/// way a bit-flipped frame would.
fn corrupt_payload(payload: &str) -> String {
    format!("xx!corrupt!{payload}")
}

/// Best-effort text of a caught panic payload.
fn panic_message(cause: &Box<dyn std::any::Any + Send>) -> &str {
    if let Some(s) = cause.downcast_ref::<&str>() {
        s
    } else if let Some(s) = cause.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// How long one blocking read slice lasts before the shutdown flag is
/// re-checked. Short enough that drain is prompt; long enough that an
/// active connection pays a handful of extra syscalls at most.
const READ_POLL: Duration = Duration::from_millis(50);

/// An [`io::Read`] over a borrowed [`TcpStream`] that enforces a total
/// deadline: before every read the socket timeout is re-armed to the
/// remainder of the budget (sliced into [`READ_POLL`] chunks), so N slow
/// reads cannot stretch the wait to N × the per-read timeout — the
/// slow-loris pattern a fixed `set_read_timeout` allows. Between slices
/// the shutdown flag is checked; a shutdown surfaces as EOF, which the
/// frame reader treats as a clean close when it arrives between frames
/// (an *incomplete* frame at shutdown was never an accepted request, so
/// dropping it keeps the drain guarantee intact).
pub struct DeadlineRead<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
    shutdown: &'a AtomicBool,
}

impl<'a> DeadlineRead<'a> {
    /// A reader over `stream` that returns EOF once `shutdown` is set and
    /// times out at `deadline`.
    pub fn new(stream: &'a TcpStream, deadline: Instant, shutdown: &'a AtomicBool) -> Self {
        DeadlineRead {
            stream,
            deadline,
            shutdown,
        }
    }
}

impl Read for DeadlineRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.shutdown.load(Ordering::SeqCst) || signals::requested() {
                return Ok(0);
            }
            let remaining = self.deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "read deadline exceeded (slow client)",
                ));
            }
            // set_read_timeout(Some(0)) would mean "no timeout"; clamp up.
            self.stream
                .set_read_timeout(Some(remaining.min(READ_POLL).max(Duration::from_millis(1))))?;
            match self.stream.read(buf) {
                Ok(n) => return Ok(n),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Fast-path rejection when the queue is full: reply `busy`/`shed` (with
/// its `retry_after_ms` hint) and hang up without processing the request,
/// on a short-lived thread so the accept loop keeps accepting. After the
/// reply we send FIN and drain whatever the client already wrote —
/// closing with unread data in the receive buffer makes the kernel RST
/// the connection, which can destroy the reply before the client reads
/// it.
fn reply_reject(mut stream: TcpStream, response: String) {
    std::thread::spawn(move || {
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .ok();
        stream
            .set_write_timeout(Some(Duration::from_millis(500)))
            .ok();
        stream.set_nodelay(true).ok();
        let _ = write_frame(&mut stream, &response);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut sink = [0u8; 1024];
        while matches!(io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
    });
}

/// SIGINT / SIGTERM → shutdown flag, without any signal-handling crate.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

    /// Whether a termination signal arrived since [`install`].
    pub fn requested() -> bool {
        SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
    }

    #[cfg(unix)]
    mod imp {
        use super::SHUTDOWN_REQUESTED;
        use std::sync::atomic::Ordering;

        // Setting an atomic flag is async-signal-safe; everything else
        // happens on the accept loop's next poll tick.
        extern "C" fn on_signal(_signum: i32) {
            SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
        }

        extern "C" {
            // From libc, which std already links. usize holds the handler
            // function pointer (sighandler_t).
            fn signal(signum: i32, handler: usize) -> usize;
        }

        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;

        pub fn install() {
            unsafe {
                signal(SIGINT, on_signal as *const () as usize);
                signal(SIGTERM, on_signal as *const () as usize);
            }
        }
    }

    #[cfg(not(unix))]
    mod imp {
        pub fn install() {}
    }

    /// Installs SIGINT/SIGTERM handlers that set the shutdown flag. The
    /// CLI calls this for `gpp serve`; embedded servers (tests) usually
    /// prefer the handle's programmatic flag.
    pub fn install() {
        imp::install();
    }
}
