//! The `gpp-serve` wire protocol: length-prefixed frames carrying a
//! request header line plus an optional `.gsk` skeleton body.
//!
//! A frame is `<decimal-length>\n<payload>` where `length` is the byte
//! count of `payload`. A request payload is:
//!
//! ```text
//! gpp/1 <command> [key=value ...]\n
//! <skeleton text...>
//! ```
//!
//! Commands: `project`, `measure`, `analyze`, `deps`, `calibrate`,
//! `stats`, `ping`, `health`, `batch`. Options: `machine=<registry name>`
//! (default `eureka`), `seed=N`, `iters=N`,
//! `deadline_ms=N` (remaining client budget — servers shed work that
//! cannot finish inside it; absent means no deadline and byte-identical
//! legacy behavior), `temporary=a,b` (device-temporary hint),
//! `sparse=name:bytes,...` (sparse-bound hint). Responses are a single
//! JSON object: `{"ok":true,...}` or
//! `{"ok":false,"error":{"kind":...,"message":...}}`; `busy`/`shed`
//! errors additionally carry a top-level `retry_after_ms` hint.
//!
//! # The batch frame
//!
//! A `batch` request packs many requests into one frame: the header is
//! `gpp/1 batch n=<count>` and the body is exactly `count` embedded
//! frames, each the usual `<decimal-length>\n<payload>` encoding of a
//! complete non-batch request. The reply is a single JSON object whose
//! `replies` array carries each sub-reply **verbatim**, in order:
//!
//! ```text
//! {"ok":true,"command":"batch","count":N,"replies":[<r1>,<r2>,...]}
//! ```
//!
//! so `batch(xs)` is bit-for-bit the concatenation of the single-shot
//! replies for `xs`. Batches do not nest.

use std::io::{self, Read, Write};

/// Protocol magic for version 1.
pub const MAGIC: &str = "gpp/1";

/// Frames larger than this are rejected (malformed or abusive clients).
pub const MAX_FRAME_BYTES: usize = 8 << 20;

/// Most sub-requests one `batch` frame may carry.
pub const MAX_BATCH: usize = 256;

/// A service command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Project kernel + transfer times for a skeleton.
    Project,
    /// Project, then measure on the simulated node and compare.
    Measure,
    /// Print the transfer plan.
    Analyze,
    /// Inter-kernel dependence report.
    Deps,
    /// Two-point PCIe calibration summary for a machine.
    Calibrate,
    /// Service counters: requests, cache hits, latency percentiles.
    Stats,
    /// Liveness probe.
    Ping,
    /// Health probe: role, machine roster, and coarse served counters —
    /// what a gateway polls to admit or evict a shard.
    Health,
    /// Many embedded requests in one frame, one combined reply out.
    Batch,
}

impl Command {
    pub fn parse(s: &str) -> Option<Command> {
        Some(match s {
            "project" => Command::Project,
            "measure" => Command::Measure,
            "analyze" => Command::Analyze,
            "deps" => Command::Deps,
            "calibrate" => Command::Calibrate,
            "stats" => Command::Stats,
            "ping" => Command::Ping,
            "health" => Command::Health,
            "batch" => Command::Batch,
            _ => return None,
        })
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            Command::Project => "project",
            Command::Measure => "measure",
            Command::Analyze => "analyze",
            Command::Deps => "deps",
            Command::Calibrate => "calibrate",
            Command::Stats => "stats",
            Command::Ping => "ping",
            Command::Health => "health",
            Command::Batch => "batch",
        }
    }

    /// Whether the command carries a skeleton body.
    pub fn needs_skeleton(&self) -> bool {
        matches!(
            self,
            Command::Project | Command::Measure | Command::Analyze | Command::Deps
        )
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub command: Command,
    /// Target machine: a registry name (built-ins `eureka`, `v2`, plus
    /// any datasheets the server loaded).
    pub machine: String,
    /// Noise seed for the simulated node.
    pub seed: u64,
    /// Iteration count for totals/speedups.
    pub iters: u32,
    /// Remaining client budget in milliseconds at send time. `None` (the
    /// wire default) disables deadline handling entirely; the reply bytes
    /// are then identical to a build that predates the field. Gateways
    /// decrement this by elapsed time before forwarding; servers shed the
    /// request when the remaining budget cannot cover the observed median
    /// compute time.
    pub deadline_ms: Option<u64>,
    /// Arrays hinted as device-side temporaries (names).
    pub temporaries: Vec<String>,
    /// Sparse-bound hints: (array name, useful bytes).
    pub sparse: Vec<(String, u64)>,
    /// Run the static analyzer before projecting (on by default).
    pub lint: bool,
    /// Skeleton source text (commands that need one).
    pub skeleton: String,
    /// For [`Command::Batch`]: the embedded sub-request payloads, each a
    /// complete non-batch request (header + body), in frame order.
    pub batch: Vec<String>,
}

impl Request {
    /// A request with default options.
    pub fn new(command: Command) -> Request {
        Request {
            command,
            machine: "eureka".to_string(),
            seed: 2013,
            iters: 1,
            deadline_ms: None,
            temporaries: Vec::new(),
            sparse: Vec::new(),
            lint: true,
            skeleton: String::new(),
            batch: Vec::new(),
        }
    }

    /// A batch request from already-encoded sub-request payloads.
    pub fn new_batch(subs: impl IntoIterator<Item = String>) -> Request {
        let mut req = Request::new(Command::Batch);
        req.batch = subs.into_iter().collect();
        req
    }

    /// Canonical header + body payload for this request.
    pub fn encode(&self) -> String {
        if self.command == Command::Batch {
            let mut out = format!("{MAGIC} batch n={}\n", self.batch.len());
            for sub in &self.batch {
                out.push_str(&format!("{}\n", sub.len()));
                out.push_str(sub);
            }
            return out;
        }
        let mut header = format!("{MAGIC} {}", self.command);
        if self.machine != "eureka" {
            header.push_str(&format!(" machine={}", self.machine));
        }
        if self.seed != 2013 {
            header.push_str(&format!(" seed={}", self.seed));
        }
        if self.iters != 1 {
            header.push_str(&format!(" iters={}", self.iters));
        }
        if let Some(ms) = self.deadline_ms {
            header.push_str(&format!(" deadline_ms={ms}"));
        }
        if !self.temporaries.is_empty() {
            header.push_str(&format!(" temporary={}", self.temporaries.join(",")));
        }
        if !self.sparse.is_empty() {
            let spec: Vec<String> = self
                .sparse
                .iter()
                .map(|(n, b)| format!("{n}:{b}"))
                .collect();
            header.push_str(&format!(" sparse={}", spec.join(",")));
        }
        if !self.lint {
            header.push_str(" lint=0");
        }
        header.push('\n');
        header.push_str(&self.skeleton);
        header
    }

    /// Parses a request payload (header line + optional body).
    pub fn decode(payload: &str) -> Result<Request, ProtocolError> {
        let (header, body) = match payload.split_once('\n') {
            Some((h, b)) => (h, b),
            None => (payload, ""),
        };
        let mut tokens = header.split_ascii_whitespace();
        match tokens.next() {
            Some(m) if m == MAGIC => {}
            other => {
                return Err(ProtocolError::new(
                    "bad-magic",
                    format!("expected `{MAGIC}`, got `{}`", other.unwrap_or("")),
                ))
            }
        }
        let command = match tokens.next() {
            Some(c) => Command::parse(c).ok_or_else(|| {
                ProtocolError::new("bad-command", format!("unknown command `{c}`"))
            })?,
            None => return Err(ProtocolError::new("bad-command", "missing command")),
        };
        if command == Command::Batch {
            return Self::decode_batch(tokens, body);
        }
        let mut req = Request::new(command);
        for tok in tokens {
            let Some((key, value)) = tok.split_once('=') else {
                return Err(ProtocolError::new(
                    "bad-option",
                    format!("expected key=value, got `{tok}`"),
                ));
            };
            match key {
                "machine" => req.machine = value.to_string(),
                "seed" => {
                    req.seed = value.parse().map_err(|_| {
                        ProtocolError::new(
                            "bad-option",
                            format!("seed=`{value}` is not an integer"),
                        )
                    })?
                }
                "iters" => {
                    req.iters = value.parse().map_err(|_| {
                        ProtocolError::new(
                            "bad-option",
                            format!("iters=`{value}` is not an integer"),
                        )
                    })?
                }
                "deadline_ms" => {
                    req.deadline_ms = Some(value.parse().map_err(|_| {
                        ProtocolError::new(
                            "bad-option",
                            format!("deadline_ms=`{value}` is not an integer"),
                        )
                    })?)
                }
                "temporary" => req.temporaries.extend(
                    value
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string),
                ),
                "lint" => {
                    req.lint = match value {
                        "0" | "false" | "off" => false,
                        "1" | "true" | "on" => true,
                        _ => {
                            return Err(ProtocolError::new(
                                "bad-option",
                                format!("lint=`{value}` is not a boolean"),
                            ))
                        }
                    }
                }
                "sparse" => {
                    for spec in value.split(',').filter(|s| !s.is_empty()) {
                        let Some((name, bytes)) = spec.split_once(':') else {
                            return Err(ProtocolError::new(
                                "bad-option",
                                format!("sparse spec `{spec}` is not name:bytes"),
                            ));
                        };
                        let bytes = bytes.parse().map_err(|_| {
                            ProtocolError::new(
                                "bad-option",
                                format!("sparse bytes `{bytes}` is not an integer"),
                            )
                        })?;
                        req.sparse.push((name.to_string(), bytes));
                    }
                }
                _ => {
                    return Err(ProtocolError::new(
                        "bad-option",
                        format!("unknown option `{key}`"),
                    ))
                }
            }
        }
        if command.needs_skeleton() && body.trim().is_empty() {
            return Err(ProtocolError::new(
                "missing-skeleton",
                format!("command `{command}` needs a skeleton body"),
            ));
        }
        req.skeleton = body.to_string();
        Ok(req)
    }

    /// Parses a `batch` header's remaining tokens and its body of embedded
    /// frames. The count option is mandatory so a truncated body is always
    /// distinguishable from a short batch.
    fn decode_batch<'a>(
        tokens: impl Iterator<Item = &'a str>,
        body: &str,
    ) -> Result<Request, ProtocolError> {
        let mut count: Option<usize> = None;
        for tok in tokens {
            let Some((key, value)) = tok.split_once('=') else {
                return Err(ProtocolError::new(
                    "bad-option",
                    format!("expected key=value, got `{tok}`"),
                ));
            };
            match key {
                "n" => {
                    count = Some(value.parse().map_err(|_| {
                        ProtocolError::new("bad-batch", format!("n=`{value}` is not an integer"))
                    })?)
                }
                _ => {
                    return Err(ProtocolError::new(
                        "bad-option",
                        format!("unknown option `{key}`"),
                    ))
                }
            }
        }
        let count = count
            .ok_or_else(|| ProtocolError::new("bad-batch", "batch needs a count option n=N"))?;
        if count == 0 || count > MAX_BATCH {
            return Err(ProtocolError::new(
                "bad-batch",
                format!("batch count {count} outside 1..={MAX_BATCH}"),
            ));
        }
        let mut rest = body.as_bytes();
        let mut batch = Vec::with_capacity(count);
        for i in 0..count {
            let sub = match read_frame_limited(&mut rest, MAX_FRAME_BYTES) {
                Ok(Some(sub)) => sub,
                Ok(None) => {
                    return Err(ProtocolError::new(
                        "bad-batch",
                        format!("batch declared n={count} but body ends after {i} frames"),
                    ))
                }
                Err(e) => {
                    return Err(ProtocolError::new(
                        "bad-batch",
                        format!("embedded frame {i}: {e}"),
                    ))
                }
            };
            // Peek at the sub-request's command token: batches do not nest.
            let sub_command = sub
                .split('\n')
                .next()
                .unwrap_or("")
                .split_ascii_whitespace()
                .nth(1)
                .unwrap_or("");
            if sub_command == "batch" {
                return Err(ProtocolError::new(
                    "bad-batch",
                    format!("embedded frame {i} is itself a batch; batches do not nest"),
                ));
            }
            batch.push(sub);
        }
        if !rest.is_empty() {
            return Err(ProtocolError::new(
                "bad-batch",
                format!(
                    "{} trailing bytes after the {count} declared frames",
                    rest.len()
                ),
            ));
        }
        let mut req = Request::new(Command::Batch);
        req.batch = batch;
        Ok(req)
    }
}

/// Renders the combined `batch` reply from the sub-replies, splicing each
/// one in **verbatim** so the batch reply is bit-for-bit the concatenation
/// of the single-shot replies. Shared by the server and the gateway so
/// both produce identical bytes for identical work.
pub fn batch_response(replies: &[String]) -> String {
    let mut out = format!(
        "{{\"ok\":true,\"command\":\"batch\",\"count\":{},\"replies\":[",
        replies.len()
    );
    for (i, reply) in replies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(reply);
    }
    out.push_str("]}");
    out
}

/// One static-analyzer finding on the wire: carried on a `lint`
/// rejection (and echoed in successful replies when the analyzer has
/// warnings or notes to report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiagnostic {
    /// Stable code, `GPP000`..`GPP014`.
    pub code: String,
    /// `error`, `warning`, or `note`.
    pub severity: String,
    /// 1-based source line (0 when the finding has no span).
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Length of the underlined source text, in bytes.
    pub len: usize,
    pub message: String,
}

/// A structured protocol-level error (also serialized into responses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable kind: `busy`, `timeout`, `parse`, ...
    pub kind: String,
    pub message: String,
    /// Non-empty only for `lint` rejections: the findings that caused
    /// them, serialized as a top-level `diagnostics` array.
    pub diagnostics: Vec<LintDiagnostic>,
    /// For `busy`/`shed` rejections: how long (ms) the server suggests
    /// waiting before retrying, derived from current queue depth × the
    /// observed median compute time. Serialized as a top-level
    /// `retry_after_ms` field only when present, so every other error
    /// keeps its exact pre-existing bytes.
    pub retry_after_ms: Option<u64>,
}

impl ProtocolError {
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> Self {
        ProtocolError {
            kind: kind.into(),
            message: message.into(),
            diagnostics: Vec::new(),
            retry_after_ms: None,
        }
    }

    /// Attaches a `retry_after_ms` hint (for `busy`/`shed` replies).
    #[must_use]
    pub fn with_retry_after(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ProtocolError {}

impl ProtocolError {
    /// Recovers the structured error from a rendered
    /// `{"ok":false,"error":{"kind":...,"message":...}}` response, so a
    /// client can round-trip every error kind the server emits. Returns
    /// `None` for success responses or non-error JSON.
    pub fn from_response(response: &str) -> Option<ProtocolError> {
        if !response.contains("\"ok\":false") {
            return None;
        }
        Some(ProtocolError {
            kind: extract_json_string(response, "kind")?,
            message: extract_json_string(response, "message")?,
            diagnostics: Vec::new(),
            retry_after_ms: retry_after_ms(response),
        })
    }
}

/// Pulls the top-level `retry_after_ms` hint out of a rendered `busy`/
/// `shed` reply, if present. Clients use it to pace their next attempt
/// instead of the fixed exponential base.
pub fn retry_after_ms(response: &str) -> Option<u64> {
    let needle = "\"retry_after_ms\":";
    let start = response.find(needle)? + needle.len();
    let digits: String = response[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Pulls the string value of `"key":"..."` out of rendered JSON, undoing
/// the escapes our renderer produces. Good enough for the flat error
/// objects this protocol emits; not a general JSON parser.
fn extract_json_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                esc => out.push(esc),
            },
            other => out.push(other),
        }
    }
    None
}

/// Writes one `<len>\n<payload>` frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    w.write_all(format!("{}\n", bytes.len()).as_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Why a frame read failed: transport trouble, or a frame whose declared
/// length exceeds the reader's budget (which deserves a structured
/// `too_large` reply rather than a silent hang-up).
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed or carried garbage.
    Io(io::Error),
    /// The declared payload length exceeds the configured maximum. The
    /// payload was **not** read (that is the point: the attacker-supplied
    /// length never drives an allocation), so the connection cannot be
    /// resynchronized and should be closed after replying.
    TooLarge {
        /// The declared length (at least — digits are abandoned once the
        /// running value passes `max`).
        declared: usize,
        /// The limit in force.
        max: usize,
    },
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} B exceeds the {max} B limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one frame; `Ok(None)` on clean EOF before any length byte.
/// Equivalent to [`read_frame_limited`] at the protocol-wide
/// [`MAX_FRAME_BYTES`], with oversize flattened into an I/O error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    read_frame_limited(r, MAX_FRAME_BYTES).map_err(|e| match e {
        FrameError::Io(io) => io,
        FrameError::TooLarge { .. } => {
            io::Error::new(io::ErrorKind::InvalidData, "frame length too large")
        }
    })
}

/// Reads one frame, refusing to allocate more than `max_bytes` for the
/// payload; `Ok(None)` on clean EOF before any length byte.
pub fn read_frame_limited(
    r: &mut impl Read,
    max_bytes: usize,
) -> Result<Option<String>, FrameError> {
    // Read the decimal length terminated by '\n', byte by byte (frames are
    // tiny relative to the skeleton body that follows).
    let mut len: usize = 0;
    let mut saw_digit = false;
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte)? {
            0 => {
                if saw_digit {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside frame length",
                    )
                    .into());
                }
                return Ok(None);
            }
            _ => match byte[0] {
                b'0'..=b'9' => {
                    saw_digit = true;
                    len = len
                        .checked_mul(10)
                        .and_then(|l| l.checked_add((byte[0] - b'0') as usize))
                        .unwrap_or(usize::MAX);
                    if len > max_bytes {
                        return Err(FrameError::TooLarge {
                            declared: len,
                            max: max_bytes,
                        });
                    }
                }
                b'\n' if saw_digit => break,
                b'\r' => {}
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad byte {other:#x} in frame length"),
                    )
                    .into())
                }
            },
        }
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map(Some).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8").into()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello\nworld").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello\nworld"));
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn frame_rejects_garbage_and_oversize() {
        let mut r = &b"xyz\nfoo"[..];
        assert!(read_frame(&mut r).is_err());
        let huge = format!("{}\n", MAX_FRAME_BYTES + 1);
        let mut r = huge.as_bytes();
        assert!(read_frame(&mut r).is_err());
        let mut r = &b"12"[..]; // EOF mid-length
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn request_roundtrip_with_options() {
        let mut req = Request::new(Command::Project);
        req.machine = "v2".into();
        req.seed = 7;
        req.iters = 50;
        req.temporaries = vec!["tmp".into()];
        req.sparse = vec![("val".into(), 4096)];
        req.lint = false;
        req.skeleton = "program p\n".into();
        assert!(req.encode().contains(" lint=0"));
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn lint_defaults_on_and_stays_off_the_wire() {
        let mut req = Request::new(Command::Project);
        req.skeleton = "program p\n".into();
        assert!(req.lint);
        assert!(!req.encode().contains("lint"));
        assert!(Request::decode("gpp/1 project lint=1\nx").unwrap().lint);
        assert!(!Request::decode("gpp/1 project lint=off\nx").unwrap().lint);
        assert_eq!(
            Request::decode("gpp/1 project lint=maybe\nx")
                .unwrap_err()
                .kind,
            "bad-option"
        );
    }

    #[test]
    fn deadline_roundtrips_and_stays_off_the_wire_when_absent() {
        let mut req = Request::new(Command::Project);
        req.skeleton = "program p\n".into();
        assert_eq!(req.deadline_ms, None);
        // Absent deadline emits nothing: the bytes predate the field.
        assert!(!req.encode().contains("deadline"));
        req.deadline_ms = Some(250);
        assert!(req.encode().contains(" deadline_ms=250"));
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(
            Request::decode("gpp/1 project deadline_ms=soon\nx")
                .unwrap_err()
                .kind,
            "bad-option"
        );
    }

    #[test]
    fn retry_after_hint_extraction() {
        let reply = r#"{"ok":false,"error":{"kind":"busy","message":"full"},"retry_after_ms":42}"#;
        assert_eq!(retry_after_ms(reply), Some(42));
        assert_eq!(
            ProtocolError::from_response(reply).unwrap().retry_after_ms,
            Some(42)
        );
        let plain = r#"{"ok":false,"error":{"kind":"busy","message":"full"}}"#;
        assert_eq!(retry_after_ms(plain), None);
        assert_eq!(
            ProtocolError::from_response(plain).unwrap().retry_after_ms,
            None
        );
    }

    #[test]
    fn batch_roundtrip() {
        let mut sub = Request::new(Command::Project);
        sub.seed = 7;
        sub.skeleton = "program p\n".into();
        let ping = Request::new(Command::Ping);
        let req = Request::new_batch([sub.encode(), ping.encode()]);
        let payload = req.encode();
        assert!(payload.starts_with("gpp/1 batch n=2\n"));
        let decoded = Request::decode(&payload).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(Request::decode(&decoded.batch[0]).unwrap(), sub);
    }

    #[test]
    fn batch_response_concatenates_verbatim() {
        let replies = vec![r#"{"ok":true,"a":1}"#.to_string(), "null".to_string()];
        assert_eq!(
            batch_response(&replies),
            r#"{"ok":true,"command":"batch","count":2,"replies":[{"ok":true,"a":1},null]}"#
        );
        assert_eq!(
            batch_response(&[]),
            r#"{"ok":true,"command":"batch","count":0,"replies":[]}"#
        );
    }

    #[test]
    fn batch_decode_rejects_malformed() {
        for (payload, why) in [
            ("gpp/1 batch\n", "missing n="),
            ("gpp/1 batch n=zero\n", "non-integer n"),
            ("gpp/1 batch n=0\n", "zero count"),
            (&format!("gpp/1 batch n={}\n", MAX_BATCH + 1), "over cap"),
            ("gpp/1 batch n=2\n10\ngpp/1 ping", "short body"),
            ("gpp/1 batch n=1\n10\ngpp/1 pingEXTRA", "trailing bytes"),
            ("gpp/1 batch n=1\nxyz\nfoo", "garbage length"),
            ("gpp/1 batch n=1\n15\ngpp/1 batch n=0\n", "nested batch"),
        ] {
            let err = Request::decode(payload).unwrap_err();
            assert_eq!(err.kind, "bad-batch", "{why}: {err}");
        }
    }

    #[test]
    fn decode_rejects_bad_requests() {
        assert_eq!(
            Request::decode("nope/9 project\nx").unwrap_err().kind,
            "bad-magic"
        );
        assert_eq!(
            Request::decode("gpp/1 explode\nx").unwrap_err().kind,
            "bad-command"
        );
        assert_eq!(
            Request::decode("gpp/1 project seed=abc\nx")
                .unwrap_err()
                .kind,
            "bad-option"
        );
        assert_eq!(
            Request::decode("gpp/1 project\n").unwrap_err().kind,
            "missing-skeleton"
        );
        assert!(Request::decode("gpp/1 stats").is_ok());
        assert!(Request::decode("gpp/1 ping").is_ok());
    }
}
