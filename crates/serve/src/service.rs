//! The request handlers: protocol commands → `grophecy::report` JSON.
//!
//! [`ServiceState`] is the shared, thread-safe heart of the server: the
//! calibration cache, the projection memo, and the metrics. Handlers are
//! pure functions of (state, request) so they can be driven by the TCP
//! worker pool, by benchmarks, or by tests without any networking.

use crate::cache::{fnv1a, CalibKey, CalibrationCache, ProjectionCache, ProjectionKey};
use crate::client::RetryBudget;
use crate::metrics::{Metrics, StatsSnapshot};
use crate::protocol::{Command, LintDiagnostic, ProtocolError, Request};
use gpp_datausage::{analyze, Hints};
use gpp_fault::FaultInjector;
use gpp_lint::{lint_program, Diagnostic, Severity};
use gpp_pcie::{Direction, MemType, SweepValidation};
use gpp_skeleton::text;
use gpp_skeleton::{Program, SourceMap};
use grophecy::machine::MachineConfig;
use grophecy::measurement::measure;
use grophecy::projector::{AppProjection, Grophecy};
use grophecy::registry::MachineRegistry;
use grophecy::report::{measurement_json, projection_json, speedup_json, Json};
use grophecy::speedup::SpeedupReport;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:4513` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it get `busy`.
    pub queue_depth: usize,
    /// Compute budget per request; exceeding it returns `timeout`.
    pub request_timeout: Duration,
    /// Capacity of the projection LRU memo.
    pub projection_cache: usize,
    /// Largest accepted request frame; bigger declared lengths get a
    /// structured `too_large` error before any allocation happens.
    pub max_frame_bytes: usize,
    /// The fault plan in force (compiled). [`FaultInjector::disabled`]
    /// — the default — leaves every code path bit-identical to a build
    /// without fault support.
    pub faults: Arc<FaultInjector>,
    /// The machines this instance serves. Defaults to the built-in
    /// registry (`eureka`, `v2`); `gpp serve --machines dir/` loads user
    /// datasheets on top.
    pub machines: Arc<MachineRegistry>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:4513".to_string(),
            workers: 4,
            queue_depth: 64,
            request_timeout: Duration::from_secs(30),
            projection_cache: 128,
            max_frame_bytes: 4 << 20,
            faults: FaultInjector::disabled(),
            machines: Arc::new(MachineRegistry::builtin()),
        }
    }
}

/// Fresh-calibration attempts (first try + retries with exponential
/// backoff) before a request falls back to the last-good calibration.
pub const CALIB_ATTEMPTS: u32 = 3;

/// Base backoff between calibration retries; attempt `n` waits
/// `2^(n-1)` times this (±25% seeded jitter).
const CALIB_BACKOFF: Duration = Duration::from_millis(5);

/// Whole tokens in the calibration retry budget. The bucket starts full;
/// each calibration *retry* (never the first attempt) withdraws one.
const CALIB_BUDGET_CAPACITY: u32 = 16;

/// Milli-tokens each successful fresh calibration deposits back: four
/// successes earn one retry. Deliberately **not** time-refilled — a
/// wall-clock refill would make retry counts (and therefore RNG-stream
/// consumption and reply bytes) timing-dependent, breaking the chaos
/// suite's bit-identical-replay guarantee.
const CALIB_BUDGET_DEPOSIT_MILLI: u64 = 250;

/// Shared state behind every worker.
pub struct ServiceState {
    pub config: ServeConfig,
    pub calibrations: CalibrationCache,
    pub projections: ProjectionCache,
    pub metrics: Metrics,
    /// Token bucket metering calibration retries across all workers.
    calib_budget: RetryBudget,
}

impl ServiceState {
    pub fn new(config: ServeConfig) -> Self {
        ServiceState {
            projections: ProjectionCache::new(config.projection_cache),
            calibrations: CalibrationCache::new(),
            metrics: Metrics::new(),
            calib_budget: RetryBudget::new(CALIB_BUDGET_CAPACITY)
                .with_deposit_milli(CALIB_BUDGET_DEPOSIT_MILLI),
            config,
        }
    }

    /// Decodes and executes one request payload, returning the response
    /// JSON. Also tallies latency and outcome counters. `queue_depth` is
    /// the current accept-queue length (a gauge the handler can't know).
    pub fn handle(&self, payload: &str, queue_depth: usize) -> String {
        self.handle_timed(payload, queue_depth, Duration::ZERO)
    }

    /// [`ServiceState::handle`] with the time the request already spent
    /// waiting in the accept queue, so the latency window can attribute
    /// queueing and compute separately.
    pub fn handle_timed(&self, payload: &str, queue_depth: usize, queued: Duration) -> String {
        let start = Instant::now();
        let result = Request::decode(payload)
            .map_err(|e| ProtocolError::new("parse", e.to_string()))
            .and_then(|req| {
                let remaining = self.admit(&req, queued, queue_depth)?;
                let json = self.dispatch(&req, start, queue_depth, remaining)?;
                // No ok reply may cross its propagated deadline: a result
                // that finished too late is worthless to the caller, so it
                // is converted to a structured deadline error instead.
                if let Some(rem) = remaining {
                    if start.elapsed() > rem {
                        Metrics::bump(&self.metrics.shed_deadline);
                        return Err(deadline_exceeded(req.deadline_ms.unwrap_or(0)));
                    }
                }
                Ok(json)
            });
        let response = match result {
            Ok(json) => {
                Metrics::bump(&self.metrics.served_ok);
                json
            }
            Err(e) => {
                Metrics::bump(&self.metrics.served_err);
                if e.kind == "timeout" {
                    Metrics::bump(&self.metrics.timeouts);
                }
                error_json(&e)
            }
        };
        self.metrics.record_latency(queued, start.elapsed());
        response.render()
    }

    /// Deadline-aware admission at dequeue: a request carrying
    /// `deadline_ms` whose remaining budget (after its accept-queue wait)
    /// cannot cover the observed median compute time is shed *before* any
    /// work happens — the caller has effectively already given up, so
    /// computing for it only steals capacity from requests that can still
    /// make their deadlines. Returns the remaining budget for the
    /// handlers' own mid-flight checks; `None` means no deadline (legacy
    /// requests are untouched).
    fn admit(
        &self,
        req: &Request,
        queued: Duration,
        queue_depth: usize,
    ) -> Result<Option<Duration>, ProtocolError> {
        let Some(ms) = req.deadline_ms else {
            return Ok(None);
        };
        let remaining = Duration::from_millis(ms).saturating_sub(queued);
        let p50 = Duration::from_micros(self.metrics.compute_p50_us());
        if remaining <= p50 {
            Metrics::bump(&self.metrics.shed_deadline);
            return Err(ProtocolError::new(
                "shed",
                format!(
                    "request shed: {}ms remain of the {ms}ms deadline after queueing, \
                     below the observed {}ms median compute time",
                    remaining.as_millis(),
                    p50.as_millis()
                ),
            )
            .with_retry_after(self.retry_after_hint_ms(queue_depth)));
        }
        Ok(Some(remaining))
    }

    fn dispatch(
        &self,
        req: &Request,
        start: Instant,
        queue_depth: usize,
        remaining: Option<Duration>,
    ) -> Result<Json, ProtocolError> {
        match req.command {
            Command::Ping => Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("command", Json::Str("ping".into())),
            ])),
            Command::Stats => Ok(self.stats_json(queue_depth)),
            Command::Health => Ok(self.health_json()),
            Command::Batch => self.cmd_batch(req, queue_depth),
            Command::Calibrate => self.cmd_calibrate(req),
            Command::Project => self.cmd_project(req, start, remaining),
            Command::Measure => self.cmd_measure(req, start, remaining),
            Command::Analyze => self.cmd_analyze(req),
            Command::Deps => self.cmd_deps(req),
        }
    }

    /// The `health` response: role, machine roster, and coarse served
    /// counters — everything a gateway needs to admit or evict this shard.
    fn health_json(&self) -> Json {
        let s = self.snapshot(0);
        Json::obj([
            ("ok", Json::Bool(true)),
            ("command", Json::Str("health".into())),
            ("role", Json::Str("serve".into())),
            (
                "machines",
                Json::Arr(
                    self.config
                        .machines
                        .names()
                        .into_iter()
                        .map(Json::Str)
                        .collect(),
                ),
            ),
            ("served_ok", Json::Num(s.served_ok as f64)),
            ("served_err", Json::Num(s.served_err as f64)),
            ("uptime_seconds", Json::Num(s.uptime.as_secs_f64())),
        ])
    }

    /// Executes each embedded sub-request through the ordinary
    /// [`ServiceState::handle`] path, so every sub-reply (and every
    /// counter bump) is bit-identical to what the same request would have
    /// produced single-shot. Sub-requests run on the `gpp-par` pool
    /// (`ServiceState` is `Sync`; replies are placed by index), so one
    /// big batch frame saturates the machine and still hits the SoA
    /// projection path per sub-request.
    fn cmd_batch(&self, req: &Request, queue_depth: usize) -> Result<Json, ProtocolError> {
        let replies: Vec<String> =
            gpp_par::par_map(req.batch.len(), |i| self.handle(&req.batch[i], queue_depth));
        Ok(Json::Raw(crate::protocol::batch_response(&replies)))
    }

    /// Mid-flight budget check between expensive pipeline stages. The
    /// effective budget is the smaller of the server's own compute budget
    /// and the request's remaining propagated deadline; which one binds
    /// decides the error kind (`timeout` keeps its exact legacy message,
    /// so deadline-free requests reply byte-identically to before).
    fn check_deadline(
        &self,
        start: Instant,
        remaining: Option<Duration>,
    ) -> Result<(), ProtocolError> {
        let elapsed = start.elapsed();
        if let Some(rem) = remaining {
            if rem < self.config.request_timeout && elapsed > rem {
                Metrics::bump(&self.metrics.shed_deadline);
                return Err(deadline_exceeded(rem.as_millis() as u64));
            }
        }
        if elapsed > self.config.request_timeout {
            return Err(ProtocolError::new(
                "timeout",
                format!(
                    "request exceeded its {:.1}s compute budget",
                    self.config.request_timeout.as_secs_f64()
                ),
            ));
        }
        Ok(())
    }

    /// Consults [`gpp_fault::SERVE_COMPUTE_SLOW`] (scoped by the request's
    /// machine): when it fires, the worker sleeps the rule's factor in
    /// milliseconds before computing. The chaos knob that ages queued
    /// deadline requests past their budget.
    fn injected_compute_stall(&self, req: &Request) {
        let faults = &self.config.faults;
        if faults.is_active() {
            if let Some(ms) =
                faults.fire_factor_scoped(gpp_fault::SERVE_COMPUTE_SLOW, Some(&req.machine))
            {
                std::thread::sleep(Duration::from_millis(ms.max(0.0) as u64));
            }
        }
    }

    /// The `retry_after_ms` hint attached to `busy`/`shed` rejections:
    /// roughly how long the current backlog needs to drain — (queue
    /// depth plus one) × the observed median compute time — floored at
    /// 1ms so a cold window never invites a hot-spin retry.
    pub fn retry_after_hint_ms(&self, queue_depth: usize) -> u64 {
        (((queue_depth as u64 + 1) * self.metrics.compute_p50_us()) / 1000).max(1)
    }

    /// Resolves the request's machine through the registry, tallying the
    /// per-machine request counter. Unknown names reply kind `machine`
    /// with the registry's sorted known-name list.
    fn machine(&self, req: &Request) -> Result<MachineConfig, ProtocolError> {
        let machine = resolve_machine(&self.config.machines, &req.machine, req.seed)?;
        self.metrics.bump_machine(&machine.id, |c| c.requests += 1);
        Ok(machine)
    }

    /// Resolves the calibrated projector for (machine, seed), via cache.
    /// The boolean is `true` when the result is **stale**: every fresh
    /// calibration attempt (bounded retries with exponential backoff)
    /// failed and the machine's last-good calibration is serving instead.
    fn projector(&self, req: &Request) -> Result<(Arc<Grophecy>, bool), ProtocolError> {
        let machine = self.machine(req)?;
        let key = CalibKey {
            machine: req.machine.clone(),
            seed: req.seed,
        };
        if let Some(gro) = self.calibrations.get(&key) {
            Metrics::bump(&self.metrics.calib_hits);
            self.metrics
                .bump_machine(&machine.id, |c| c.calib_hits += 1);
            return Ok((gro, false));
        }
        Metrics::bump(&self.metrics.calib_misses);
        self.metrics
            .bump_machine(&machine.id, |c| c.calib_misses += 1);
        let faults = &self.config.faults;
        let mut last_err = String::new();
        for attempt in 0..CALIB_ATTEMPTS {
            if attempt > 0 {
                // Every retry is metered by the shared token bucket: when
                // calibration is failing fleet-wide, burning the full
                // retry schedule per request just multiplies the overload.
                // An empty bucket falls straight through to the last-good
                // fallback below.
                if !self.calib_budget.try_withdraw() {
                    Metrics::bump(&self.metrics.retry_budget_exhausted);
                    break;
                }
                Metrics::bump(&self.metrics.calib_retries);
                std::thread::sleep(crate::client::backoff_delay(
                    CALIB_BACKOFF,
                    attempt,
                    crate::client::jitter_seed(machine.id.as_bytes()) ^ req.seed,
                ));
            }
            // One consultation per whole-calibration attempt: the knob
            // chaos plans use to force degraded serving. Plans can scope
            // it to one machine (`serve.calibrate.fail@v2`).
            if faults.is_active()
                && faults.fires_scoped(gpp_fault::SERVE_CALIBRATE_FAIL, Some(&machine.id))
            {
                last_err = "injected calibration failure (serve.calibrate.fail)".to_string();
                continue;
            }
            let mut node = machine.node();
            match Grophecy::try_calibrate(&machine, &mut node, faults.clone()) {
                Ok(gro) => {
                    self.calib_budget.deposit();
                    let gro = Arc::new(gro);
                    self.calibrations.insert(key, gro.clone());
                    return Ok((gro, false));
                }
                Err(e) => last_err = e.to_string(),
            }
        }
        if let Some(gro) = self.calibrations.last_good(&req.machine) {
            Metrics::bump(&self.metrics.degraded_replies);
            self.metrics
                .bump_machine(&machine.id, |c| c.degraded_replies += 1);
            return Ok((gro, true));
        }
        Err(ProtocolError::new(
            "calibration-failed",
            format!(
                "calibration for machine `{}` failed after {CALIB_ATTEMPTS} attempts and no \
                 last-good calibration exists yet: {last_err}",
                req.machine
            ),
        ))
    }

    /// The calibrated projector for commands that replay the single-shot
    /// sequence on a fresh node (`measure`, `calibrate`): plain path when
    /// no plan is active, fault-aware checked path otherwise. No degraded
    /// fallback here — these commands exist to exercise the node itself.
    fn calibrate_node(
        &self,
        machine: &MachineConfig,
        node: &mut grophecy::machine::SimulatedNode,
    ) -> Result<Grophecy, ProtocolError> {
        let faults = &self.config.faults;
        if !faults.is_active() {
            return Ok(Grophecy::calibrate(machine, node));
        }
        Grophecy::try_calibrate(machine, node, faults.clone())
            .map_err(|e| ProtocolError::new("calibration-failed", e.to_string()))
    }

    /// Parses the skeleton (keeping the source map for spanned lint
    /// diagnostics), validates it, and resolves hint names. Hints start
    /// from the skeleton's own `temporary` declarations, so attributes in
    /// the text and `temporary=` request options compose.
    fn program_and_hints(
        &self,
        req: &Request,
    ) -> Result<(Program, SourceMap, Hints), ProtocolError> {
        let (program, map) = text::parse_with_spans(&req.skeleton)
            .map_err(|e| ProtocolError::new("skeleton", e.to_string()))?;
        gpp_skeleton::validate::validate(&program).map_err(|e| {
            ProtocolError::new("skeleton", format!("line 0, col 0: validation failed: {e}"))
        })?;
        let mut hints = Hints::for_program(&program);
        for name in &req.temporaries {
            let a = program.array_by_name(name).ok_or_else(|| {
                ProtocolError::new(
                    "unknown-array",
                    format!("temporary `{name}` is not an array"),
                )
            })?;
            hints = hints.temporary(a.id);
        }
        for (name, bytes) in &req.sparse {
            let a = program.array_by_name(name).ok_or_else(|| {
                ProtocolError::new("unknown-array", format!("sparse `{name}` is not an array"))
            })?;
            hints = hints.sparse_bound(a.id, *bytes);
        }
        Ok((program, map, hints))
    }

    /// Runs the static analyzer ahead of projection. Error-level
    /// findings reject the request (kind `lint`, with the findings as a
    /// structured `diagnostics` array) **before** any calibration work;
    /// warnings and notes are returned so handlers can attach them to
    /// the success reply. `lint=0` skips the analysis entirely.
    fn lint_gate(
        &self,
        req: &Request,
        program: &Program,
        map: &SourceMap,
        hints: &Hints,
    ) -> Result<Vec<Diagnostic>, ProtocolError> {
        if !req.lint {
            return Ok(Vec::new());
        }
        let diags = lint_program(program, Some(map), hints);
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        if errors > 0 {
            let mut e = ProtocolError::new(
                "lint",
                format!(
                    "skeleton rejected by the static analyzer: {errors} error(s); \
                     pass lint=0 to project anyway"
                ),
            );
            e.diagnostics = diags.iter().map(diag_wire).collect();
            return Err(e);
        }
        Ok(diags)
    }

    /// Projects via the LRU memo. The key hashes the *normalized* program
    /// text, so formatting-only differences still hit.
    fn project_cached(
        &self,
        req: &Request,
        gro: &Grophecy,
        program: &Program,
        hints: &Hints,
        fingerprint: u128,
    ) -> (Arc<AppProjection>, bool) {
        let key = ProjectionKey {
            machine: req.machine.clone(),
            seed: req.seed,
            skeleton_hash: fnv1a(text::to_text(program).as_bytes()),
            hints_hash: fnv1a(hints_fingerprint(req).as_bytes()),
            fingerprint,
        };
        if let Some(p) = self.projections.get(&key) {
            Metrics::bump(&self.metrics.proj_hits);
            self.metrics
                .bump_machine(&req.machine, |c| c.proj_hits += 1);
            return (p, true);
        }
        Metrics::bump(&self.metrics.proj_misses);
        self.metrics
            .bump_machine(&req.machine, |c| c.proj_misses += 1);
        let proj = Arc::new(gro.project(program, hints));
        self.projections.insert(key, proj.clone());
        (proj, false)
    }

    fn cmd_project(
        &self,
        req: &Request,
        start: Instant,
        remaining: Option<Duration>,
    ) -> Result<Json, ProtocolError> {
        self.injected_compute_stall(req);
        let (program, map, hints) = self.program_and_hints(req)?;
        let diags = self.lint_gate(req, &program, &map, &hints)?;
        self.check_deadline(start, remaining)?;
        let (gro, stale) = self.projector(req)?;
        self.check_deadline(start, remaining)?;
        let fingerprint = gpp_gpu_model::program_fingerprint(&program);
        // Degraded results bypass the projection memo: they were computed
        // from another key's calibration and must not be replayed as
        // fresh once calibration recovers.
        let (proj, cached) = if stale {
            (Arc::new(gro.project(&program, &hints)), false)
        } else {
            self.project_cached(req, &gro, &program, &hints, fingerprint)
        };
        let mut fields = vec![
            ("ok", Json::Bool(true)),
            ("command", Json::Str("project".into())),
            ("machine", Json::Str(req.machine.clone())),
            ("seed", Json::Num(req.seed as f64)),
            ("iters", Json::Num(req.iters as f64)),
            ("fingerprint", Json::Str(format!("{fingerprint:032x}"))),
            ("cached", Json::Bool(cached)),
        ];
        // Only present when true, so fault-free replies stay byte-for-byte
        // what they were before degraded mode existed.
        if stale {
            fields.push(("stale", Json::Bool(true)));
        }
        // Same convention: a clean skeleton's reply is byte-for-byte what
        // it was before the analyzer existed.
        if !diags.is_empty() {
            fields.push(("diagnostics", diagnostics_json(&diags)));
            // Findings with machine-applicable fixes also price the
            // skeleton as written against its fix-it-optimized schedule
            // on every machine this instance serves. Absent otherwise,
            // so legacy replies keep their exact bytes.
            if diags.iter().any(|d| d.fix.is_some()) {
                if let Some(rows) = self.transfer_headroom_json(req, &program) {
                    fields.push(("transfer_headroom", rows));
                }
            }
        }
        fields.extend([
            (
                "pcie",
                Json::obj([
                    ("h2d", Json::Str(gro.pcie_model().h2d.to_string())),
                    ("d2h", Json::Str(gro.pcie_model().d2h.to_string())),
                ]),
            ),
            ("projection", projection_json(&proj)),
            ("total_seconds", Json::Num(proj.total_time(req.iters))),
        ]);
        // Stream-annotated programs also quote the overlapped-schedule
        // total; absent otherwise so legacy replies keep their bytes.
        if proj.timeline.is_some() {
            fields.push((
                "overlapped_total_seconds",
                Json::Num(proj.overlapped_total_time(req.iters)),
            ));
        }
        Ok(Json::obj(fields))
    }

    /// Applies the linter's fix-its to the request's skeleton until a
    /// fixpoint and prices both versions on every registered machine.
    /// `None` when no fix applies or a rewrite fails to re-parse.
    fn transfer_headroom_json(&self, req: &Request, program: &Program) -> Option<Json> {
        let cfg = gpp_lint::LintConfig::new();
        let mut cur = req.skeleton.clone();
        let mut applied = 0usize;
        for _ in 0..16 {
            let report = gpp_lint::lint_source(&cur, "request.gsk", &cfg);
            let (next, n) = gpp_lint::apply_fixes(&cur, &report.diagnostics);
            if n == 0 {
                break;
            }
            if text::parse(&next).is_err() {
                return None;
            }
            cur = next;
            applied += n;
        }
        if applied == 0 {
            return None;
        }
        let optimized = text::parse(&cur).ok()?;
        let rows =
            grophecy::transfer_headroom(&self.config.machines, req.seed, program, &optimized);
        Some(Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("machine", Json::Str(r.machine.clone())),
                        ("as_written", Json::Num(r.as_written)),
                        ("optimized", Json::Num(r.optimized)),
                        ("headroom", Json::Num(r.headroom())),
                    ])
                })
                .collect(),
        ))
    }

    fn cmd_measure(
        &self,
        req: &Request,
        start: Instant,
        remaining: Option<Duration>,
    ) -> Result<Json, ProtocolError> {
        self.injected_compute_stall(req);
        let (program, map, hints) = self.program_and_hints(req)?;
        let diags = self.lint_gate(req, &program, &map, &hints)?;
        self.check_deadline(start, remaining)?;
        // The measurement path replays the single-shot sequence exactly
        // (fresh node, calibration consuming the same RNG stream as the
        // CLI) so served responses are bit-identical to `gpp measure`.
        // Measurements are side-effectful on the node, so they bypass the
        // projection memo by design.
        let machine = self.machine(req)?;
        let mut node = machine.node();
        let gro = self.calibrate_node(&machine, &mut node)?;
        let proj = gro.project(&program, &hints);
        self.check_deadline(start, remaining)?;
        let meas = measure(&mut node, &program, &proj);
        let r = SpeedupReport::build(&program.name, "serve", &proj, &meas, req.iters);
        let mut fields = vec![
            ("ok", Json::Bool(true)),
            ("command", Json::Str("measure".into())),
            ("machine", Json::Str(req.machine.clone())),
            ("seed", Json::Num(req.seed as f64)),
            ("iters", Json::Num(req.iters as f64)),
        ];
        if !diags.is_empty() {
            fields.push(("diagnostics", diagnostics_json(&diags)));
        }
        fields.extend([
            ("projection", projection_json(&proj)),
            ("measurement", measurement_json(&meas)),
            ("speedup", speedup_json(&r)),
        ]);
        Ok(Json::obj(fields))
    }

    fn cmd_analyze(&self, req: &Request) -> Result<Json, ProtocolError> {
        let (program, _map, hints) = self.program_and_hints(req)?;
        let plan = analyze(&program, &hints);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("command", Json::Str("analyze".into())),
            (
                "transfers",
                Json::Arr(
                    plan.all()
                        .map(|t| {
                            Json::obj([
                                ("array", Json::Str(t.name.clone())),
                                ("bytes", Json::Num(t.bytes as f64)),
                                ("direction", Json::Str(t.dir.to_string())),
                                ("exact", Json::Bool(t.exact)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("exact", Json::Bool(plan.is_exact())),
            ("text", Json::Str(plan.to_string())),
        ]))
    }

    fn cmd_deps(&self, req: &Request) -> Result<Json, ProtocolError> {
        let (program, _map, _hints) = self.program_and_hints(req)?;
        let deps = gpp_datausage::dependences(&program);
        let resident = gpp_datausage::device_resident_arrays(&program);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("command", Json::Str("deps".into())),
            (
                "report",
                Json::Str(gpp_datausage::dependence::render(&program, &deps)),
            ),
            (
                "device_resident",
                Json::Arr(
                    resident
                        .iter()
                        .map(|a| Json::Str(program.array(*a).name.clone()))
                        .collect(),
                ),
            ),
        ]))
    }

    fn cmd_calibrate(&self, req: &Request) -> Result<Json, ProtocolError> {
        // Full single-shot sequence: the sweep validation consumes the
        // node's RNG stream right after calibration, like `gpp calibrate`.
        let machine = self.machine(req)?;
        let mut node = machine.node();
        let gro = self.calibrate_node(&machine, &mut node)?;
        let sweeps = Direction::ALL
            .into_iter()
            .map(|dir| {
                let v = SweepValidation::paper_sweep(
                    &mut node.bus,
                    gro.pcie_model(),
                    dir,
                    MemType::Pinned,
                );
                Json::obj([
                    ("direction", Json::Str(dir.to_string())),
                    ("mean_error_pct", Json::Num(v.mean_error())),
                    ("max_error_pct", Json::Num(v.max_error())),
                    (
                        "mean_error_above_1mb_pct",
                        Json::Num(v.mean_error_above(1 << 20)),
                    ),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("command", Json::Str("calibrate".into())),
            ("machine", Json::Str(req.machine.clone())),
            ("seed", Json::Num(req.seed as f64)),
            ("h2d", Json::Str(gro.pcie_model().h2d.to_string())),
            ("d2h", Json::Str(gro.pcie_model().d2h.to_string())),
            ("sweeps", Json::Arr(sweeps)),
        ]))
    }

    /// The `stats` response body.
    pub fn stats_json(&self, queue_depth: usize) -> Json {
        let s = self.snapshot(queue_depth);
        let pool = gpp_par::Pool::global().stats();
        let (synth_hits, synth_misses) = gpp_gpu_model::synth_memo_stats();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("command", Json::Str("stats".into())),
            (
                "stats",
                Json::obj([
                    ("uptime_seconds", Json::Num(s.uptime.as_secs_f64())),
                    ("served_ok", Json::Num(s.served_ok as f64)),
                    ("served_err", Json::Num(s.served_err as f64)),
                    ("rejected_busy", Json::Num(s.rejected_busy as f64)),
                    ("timeouts", Json::Num(s.timeouts as f64)),
                    ("calibration_hits", Json::Num(s.calib_hits as f64)),
                    ("calibration_misses", Json::Num(s.calib_misses as f64)),
                    ("projection_hits", Json::Num(s.proj_hits as f64)),
                    ("projection_misses", Json::Num(s.proj_misses as f64)),
                    ("p50_latency_us", Json::Num(s.p50_latency_us as f64)),
                    ("p99_latency_us", Json::Num(s.p99_latency_us as f64)),
                    ("p50_queued_us", Json::Num(s.p50_queued_us as f64)),
                    ("p99_queued_us", Json::Num(s.p99_queued_us as f64)),
                    ("p50_compute_us", Json::Num(s.p50_compute_us as f64)),
                    ("p99_compute_us", Json::Num(s.p99_compute_us as f64)),
                    ("queue_depth", Json::Num(s.queue_depth as f64)),
                    (
                        "projection_cache_entries",
                        Json::Num(s.proj_cache_len as f64),
                    ),
                    (
                        "calibration_cache_entries",
                        Json::Num(s.calib_cache_len as f64),
                    ),
                    (
                        "projection_memo",
                        Json::Arr(
                            self.projections
                                .keys()
                                .into_iter()
                                .map(|k| {
                                    Json::obj([
                                        ("machine", Json::Str(k.machine.clone())),
                                        ("seed", Json::Num(k.seed as f64)),
                                        (
                                            "fingerprint",
                                            Json::Str(format!("{:032x}", k.fingerprint)),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "pool",
                        Json::obj([
                            ("threads", Json::Num(pool.threads as f64)),
                            ("busy_workers", Json::Num(pool.busy_workers as f64)),
                            ("tasks_executed", Json::Num(pool.tasks_executed as f64)),
                            ("parallel_regions", Json::Num(pool.parallel_regions as f64)),
                        ]),
                    ),
                    (
                        "synthesis_memo",
                        Json::obj([
                            ("hits", Json::Num(synth_hits as f64)),
                            ("misses", Json::Num(synth_misses as f64)),
                        ]),
                    ),
                    (
                        "resilience",
                        Json::obj([
                            ("faults_injected", Json::Num(s.faults_injected as f64)),
                            ("calibration_retries", Json::Num(s.calib_retries as f64)),
                            ("panics_caught", Json::Num(s.panics_caught as f64)),
                            ("worker_respawns", Json::Num(s.worker_respawns as f64)),
                            ("degraded_replies", Json::Num(s.degraded_replies as f64)),
                            ("too_large_rejected", Json::Num(s.too_large_rejected as f64)),
                            ("frames_corrupted", Json::Num(s.frames_corrupted as f64)),
                            ("shed_deadline", Json::Num(s.shed_deadline as f64)),
                            ("shed_queue", Json::Num(s.shed_queue as f64)),
                            (
                                "retry_budget_exhausted",
                                Json::Num(s.retry_budget_exhausted as f64),
                            ),
                        ]),
                    ),
                    (
                        "machines",
                        Json::Arr(
                            s.machines
                                .iter()
                                .map(|(name, c)| {
                                    Json::obj([
                                        ("machine", Json::Str(name.clone())),
                                        ("requests", Json::Num(c.requests as f64)),
                                        ("calibration_hits", Json::Num(c.calib_hits as f64)),
                                        ("calibration_misses", Json::Num(c.calib_misses as f64)),
                                        ("projection_hits", Json::Num(c.proj_hits as f64)),
                                        ("projection_misses", Json::Num(c.proj_misses as f64)),
                                        ("degraded_replies", Json::Num(c.degraded_replies as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// A typed snapshot (used by tests and the CLI).
    pub fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        self.metrics.snapshot(
            queue_depth,
            self.projections.len(),
            self.calibrations.len(),
            self.config.faults.total_fired(),
        )
    }

    /// Marks one busy rejection (called by the acceptor).
    pub fn note_busy(&self) {
        self.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one oldest-first queue shed (called by the acceptor).
    pub fn note_shed_queue(&self) {
        self.metrics.shed_queue.fetch_add(1, Ordering::Relaxed);
    }
}

/// Resolves a machine name against a registry. Unknown names become a
/// structured kind-`machine` error whose message carries the sorted list
/// of known names — the same hint the CLI prints.
pub fn resolve_machine(
    registry: &MachineRegistry,
    name: &str,
    seed: u64,
) -> Result<MachineConfig, ProtocolError> {
    registry
        .config(name, seed)
        .map_err(|e| ProtocolError::new("machine", e.to_string()))
}

/// Canonical, order-insensitive fingerprint of a request's hints.
fn hints_fingerprint(req: &Request) -> String {
    let mut temps = req.temporaries.clone();
    temps.sort();
    let mut sparse: Vec<String> = req.sparse.iter().map(|(n, b)| format!("{n}:{b}")).collect();
    sparse.sort();
    format!("t={};s={}", temps.join(","), sparse.join(","))
}

/// The structured error response body.
pub fn error_json(e: &ProtocolError) -> Json {
    let mut fields = vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("kind", Json::Str(e.kind.clone())),
                ("message", Json::Str(e.message.clone())),
            ]),
        ),
    ];
    // Only lint rejections carry findings; every other error reply stays
    // byte-for-byte what it always was.
    if !e.diagnostics.is_empty() {
        fields.push((
            "diagnostics",
            Json::Arr(e.diagnostics.iter().map(wire_diag_json).collect()),
        ));
    }
    // Same convention for the retry hint: only busy/shed rejections carry
    // one, so every other error reply keeps its exact legacy bytes.
    if let Some(ms) = e.retry_after_ms {
        fields.push(("retry_after_ms", Json::Num(ms as f64)));
    }
    Json::obj(fields)
}

/// The structured error for a request whose propagated deadline expired
/// while it was being handled (as opposed to being shed at admission).
/// Public so the gateway can report an expired deadline with the exact
/// bytes a shard would have used.
pub fn deadline_exceeded(deadline_ms: u64) -> ProtocolError {
    ProtocolError::new(
        "deadline",
        format!("request exceeded its propagated {deadline_ms}ms deadline"),
    )
}

/// A [`gpp_lint::Diagnostic`] flattened onto the wire.
fn diag_wire(d: &Diagnostic) -> LintDiagnostic {
    LintDiagnostic {
        code: d.code.as_str().to_string(),
        severity: d.severity.as_str().to_string(),
        line: d.span.line,
        col: d.span.col,
        len: d.span.len,
        message: d.message.clone(),
    }
}

fn wire_diag_json(d: &LintDiagnostic) -> Json {
    Json::obj([
        ("code", Json::Str(d.code.clone())),
        ("severity", Json::Str(d.severity.clone())),
        ("line", Json::Num(d.line as f64)),
        ("col", Json::Num(d.col as f64)),
        ("len", Json::Num(d.len as f64)),
        ("message", Json::Str(d.message.clone())),
    ])
}

/// The `diagnostics` array attached to successful replies when the
/// analyzer produced warnings or notes.
fn diagnostics_json(diags: &[Diagnostic]) -> Json {
    Json::Arr(
        diags
            .iter()
            .map(|d| wire_diag_json(&diag_wire(d)))
            .collect(),
    )
}

/// The canonical `busy` response payload (used by the acceptor fast path
/// when shedding the oldest queued connection did not free a slot, and by
/// the gateway when its own queue saturates).
pub fn busy_response() -> String {
    error_json(&ProtocolError::new(
        "busy",
        "server at capacity: accept queue is full, retry later",
    ))
    .render()
}

/// [`busy_response`] carrying a `retry_after_ms` hint — how long the
/// server estimates the backlog needs to drain.
pub fn busy_response_with_hint(retry_after_ms: u64) -> String {
    error_json(
        &ProtocolError::new(
            "busy",
            "server at capacity: accept queue is full, retry later",
        )
        .with_retry_after(retry_after_ms),
    )
    .render()
}

/// The `shed` response for a connection displaced oldest-first from a
/// saturated accept queue: it waited longest, so it is the least likely
/// to still be inside its caller's patience — the newcomer takes its
/// slot and this one gets an immediate structured rejection instead of
/// more queueing.
pub fn shed_queue_response(retry_after_ms: u64) -> String {
    error_json(
        &ProtocolError::new(
            "shed",
            "request shed: displaced oldest-first from a saturated accept queue, retry later",
        )
        .with_retry_after(retry_after_ms),
    )
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    const VEC_ADD: &str = include_str!("../../../skeletons/vector_add.gsk");

    fn state() -> ServiceState {
        ServiceState::new(ServeConfig::default())
    }

    fn payload(cmd: &str, body: &str) -> String {
        format!("gpp/1 {cmd}\n{body}")
    }

    #[test]
    fn ping_and_stats_respond() {
        let s = state();
        assert!(s.handle("gpp/1 ping", 0).contains("\"ok\":true"));
        let stats = s.handle("gpp/1 stats", 3).to_string();
        assert!(stats.contains("\"queue_depth\":3"), "{stats}");
    }

    #[test]
    fn project_hits_cache_on_repeat() {
        let s = state();
        let first = s.handle(&payload("project", VEC_ADD), 0);
        assert!(first.contains("\"ok\":true"), "{first}");
        assert!(first.contains("\"cached\":false"));
        let second = s.handle(&payload("project", VEC_ADD), 0);
        assert!(second.contains("\"cached\":true"), "{second}");
        let snap = s.snapshot(0);
        assert_eq!((snap.proj_misses, snap.proj_hits), (1, 1));
        assert_eq!((snap.calib_misses, snap.calib_hits >= 1), (1, true));
        // Identical result either way.
        assert_eq!(
            first.replace("\"cached\":false", ""),
            second.replace("\"cached\":true", "")
        );
    }

    #[test]
    fn formatting_only_changes_share_a_cache_entry() {
        let s = state();
        let spaced = VEC_ADD.replace('\n', "\n\n");
        s.handle(&payload("project", VEC_ADD), 0);
        let second = s.handle(&payload("project", &spaced), 0);
        assert!(second.contains("\"cached\":true"), "{second}");
    }

    #[test]
    fn different_options_do_not_share_entries() {
        let s = state();
        s.handle(&payload("project", VEC_ADD), 0);
        let other_seed = s.handle(&format!("gpp/1 project seed=99\n{VEC_ADD}"), 0);
        assert!(other_seed.contains("\"cached\":false"));
        let other_machine = s.handle(&format!("gpp/1 project machine=v2\n{VEC_ADD}"), 0);
        assert!(other_machine.contains("\"cached\":false"));
        assert_eq!(s.snapshot(0).proj_misses, 3);
    }

    #[test]
    fn errors_are_structured() {
        let s = state();
        let bad = s.handle("gpp/1 project\n", 0);
        assert!(
            bad.contains("\"ok\":false") && bad.contains("\"kind\":\"parse\""),
            "{bad}"
        );
        let unk = s.handle(&payload("project machine=cray", VEC_ADD), 0);
        assert!(
            unk.contains("\"kind\":\"machine\"")
                && unk.contains("unknown machine `cray` (known: eureka, v2)"),
            "{unk}"
        );
        let arr = s.handle(&format!("gpp/1 project temporary=ghost\n{VEC_ADD}"), 0);
        assert!(arr.contains("unknown-array"), "{arr}");
        assert_eq!(s.snapshot(0).served_err, 3);
    }

    #[test]
    fn measure_analyze_deps_calibrate_respond() {
        let s = state();
        for cmd in ["measure", "analyze", "deps"] {
            let out = s.handle(&payload(cmd, VEC_ADD), 0);
            assert!(out.contains("\"ok\":true"), "{cmd}: {out}");
        }
        let cal = s.handle("gpp/1 calibrate machine=v2", 0);
        assert!(
            cal.contains("\"ok\":true") && cal.contains("mean_error_pct"),
            "{cal}"
        );
    }

    #[test]
    fn stats_break_out_per_machine() {
        let s = state();
        s.handle(&payload("project", VEC_ADD), 0);
        s.handle(&payload("project", VEC_ADD), 0);
        s.handle(&payload("project machine=v2", VEC_ADD), 0);
        let snap = s.snapshot(0);
        let eureka = &snap.machines.iter().find(|(n, _)| n == "eureka").unwrap().1;
        let v2 = &snap.machines.iter().find(|(n, _)| n == "v2").unwrap().1;
        assert_eq!(
            (eureka.requests, eureka.proj_misses, eureka.proj_hits),
            (2, 1, 1)
        );
        assert_eq!((eureka.calib_misses, eureka.calib_hits), (1, 1));
        assert_eq!((v2.requests, v2.proj_misses, v2.calib_misses), (1, 1, 1));
        let stats = s.handle("gpp/1 stats", 0);
        assert!(stats.contains("\"machines\":["), "{stats}");
        assert!(
            stats.contains("{\"machine\":\"eureka\",\"requests\":2"),
            "{stats}"
        );
    }

    #[test]
    fn custom_registry_serves_extra_and_replay_machines() {
        use grophecy::machine::{BusSpec, ReplayTrace};
        let mut registry = MachineRegistry::builtin();
        let mut recorded = grophecy::MachineConfig::anl_eureka_node(0);
        recorded.id = "recorded".into();
        recorded.bus = BusSpec::Replay(ReplayTrace {
            label: "trace".into(),
            samples: vec![
                (1, Direction::HostToDevice, MemType::Pinned, 9.9e-6),
                (536870912, Direction::HostToDevice, MemType::Pinned, 0.215),
                (1, Direction::DeviceToHost, MemType::Pinned, 1.13e-5),
                (536870912, Direction::DeviceToHost, MemType::Pinned, 0.216),
            ],
        });
        registry.insert(recorded);
        let s = ServiceState::new(ServeConfig {
            machines: Arc::new(registry),
            ..ServeConfig::default()
        });
        let out = s.handle(&payload("project machine=recorded", VEC_ADD), 0);
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"machine\":\"recorded\""), "{out}");
        // Deterministic: a replay bus has no fresh noise, so projecting at
        // another seed gives the identical pcie model.
        let again = s.handle(&payload("project machine=recorded seed=99", VEC_ADD), 0);
        let pcie = |r: &str| {
            let at = r.find("\"pcie\"").unwrap();
            r[at..at + 120].to_string()
        };
        assert_eq!(pcie(&out), pcie(&again));
        // Unknown names list the extended registry.
        let unk = s.handle(&payload("project machine=nope", VEC_ADD), 0);
        assert!(unk.contains("(known: eureka, recorded, v2)"), "{unk}");
    }

    #[test]
    fn streamed_schedules_quote_the_overlapped_total() {
        let streamed = "program pipelined\n\
                        array a f32 [1048576]\n\
                        array b f32 [1048576]\n\
                        h2d a stream 1 chunks=4\n\
                        kernel k\n  parallel i 1048576\n  stmt adds=1\n    read  a [i]\n    write b [i]\n\
                        d2h b stream 2 chunks=4\n";
        let s = state();
        let out = s.handle(&payload("project", streamed), 0);
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"timeline\":"), "{out}");
        assert!(out.contains("\"overlapped_total_seconds\":"), "{out}");
        // A plain request reply carries none of the overlap machinery —
        // legacy clients see byte-compatible replies.
        let plain = s.handle(&payload("project", VEC_ADD), 0);
        assert!(plain.contains("\"ok\":true"), "{plain}");
        assert!(!plain.contains("timeline"), "{plain}");
        assert!(!plain.contains("overlapped_total_seconds"), "{plain}");
        assert!(!plain.contains("multi_gpu"), "{plain}");
    }

    #[test]
    fn fixable_findings_carry_transfer_headroom() {
        // Second `h2d a` is GPP010 with a delete fix: the reply must price
        // the schedule as written against the fixed one on every machine.
        let redundant = "program reupload\n\
                         array a f32 [4096]\n\
                         array b f32 [4096]\n\
                         array c f32 [4096]\n\
                         h2d a\n\
                         kernel k1\n  parallel i 4096\n  stmt adds=1\n    read  a [i]\n    write b [i]\n\
                         h2d a\n\
                         kernel k2\n  parallel i 4096\n  stmt adds=1\n    read  a [i]\n    write c [i]\n\
                         d2h b\n\
                         d2h c\n";
        let s = state();
        let out = s.handle(&payload("project", redundant), 0);
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"code\":\"GPP010\""), "{out}");
        assert!(
            out.contains("\"transfer_headroom\":[{\"machine\":\"eureka\","),
            "{out}"
        );
        // One row per registered machine, each with the full schema.
        assert!(out.contains("\"machine\":\"v2\""), "{out}");
        for key in ["\"as_written\":", "\"optimized\":", "\"headroom\":"] {
            assert!(out.contains(key), "{out}");
        }
        // Silencing the analyzer silences the report with it.
        let unlinted = s.handle(&format!("gpp/1 project lint=0\n{redundant}"), 0);
        assert!(!unlinted.contains("transfer_headroom"), "{unlinted}");
    }

    #[test]
    fn clean_skeletons_omit_transfer_headroom() {
        let s = state();
        let out = s.handle(&payload("project", VEC_ADD), 0);
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(!out.contains("transfer_headroom"), "{out}");
        assert!(!out.contains("diagnostics"), "{out}");
    }

    #[test]
    fn timeout_budget_is_enforced() {
        let cfg = ServeConfig {
            request_timeout: Duration::from_secs(0),
            ..ServeConfig::default()
        };
        let s = ServiceState::new(cfg);
        let out = s.handle(&payload("project", VEC_ADD), 0);
        assert!(out.contains("\"kind\":\"timeout\""), "{out}");
        assert_eq!(s.snapshot(0).timeouts, 1);
    }
}
