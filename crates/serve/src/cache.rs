//! Shared server-side caches.
//!
//! Two layers make repeated requests cheap:
//!
//! * [`CalibrationCache`] — one calibrated [`Grophecy`] per (machine,
//!   seed). Calibration replays the two-point PCIe benchmark (20 timed
//!   transfers, one of 512 MB) on the simulated bus; doing that once per
//!   machine instead of once per request is the single biggest win.
//! * [`ProjectionCache`] — an LRU memo of full [`AppProjection`]s keyed
//!   by (machine, seed, skeleton content hash, hints). Projection results
//!   are deterministic for a key, so a hit is always exact.
//!
//! Both are guarded by `parking_lot::RwLock` and shared across the worker
//! pool via `Arc`.

use grophecy::projector::{AppProjection, Grophecy};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// FNV-1a content hash used for skeleton texts and hint fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Key identifying one calibrated machine instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CalibKey {
    pub machine: String,
    pub seed: u64,
}

/// Cache of calibrated projectors, keyed by (machine, seed), plus a
/// per-machine **last-good** entry that survives any later calibration
/// failures — the degraded-serving fallback.
#[derive(Default)]
pub struct CalibrationCache {
    map: RwLock<HashMap<CalibKey, Arc<Grophecy>>>,
    last_good: RwLock<HashMap<String, Arc<Grophecy>>>,
}

impl CalibrationCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached projector or calibrates one with `calibrate`.
    /// The boolean is `true` on a cache hit.
    pub fn get_or_calibrate(
        &self,
        key: CalibKey,
        calibrate: impl FnOnce() -> Grophecy,
    ) -> (Arc<Grophecy>, bool) {
        if let Some(g) = self.get(&key) {
            return (g, true);
        }
        // Race window: two workers may both calibrate the same key; the
        // second insert wins and both results are identical (calibration
        // is deterministic per key), so this stays simple.
        let g = Arc::new(calibrate());
        self.insert(key, g.clone());
        (g, false)
    }

    /// Looks up a cached calibration.
    pub fn get(&self, key: &CalibKey) -> Option<Arc<Grophecy>> {
        self.map.read().get(key).cloned()
    }

    /// Caches a successful calibration and records it as the machine's
    /// last-good fallback.
    pub fn insert(&self, key: CalibKey, gro: Arc<Grophecy>) {
        self.last_good
            .write()
            .insert(key.machine.clone(), gro.clone());
        self.map.write().insert(key, gro);
    }

    /// The most recent successful calibration for a machine (any seed) —
    /// what degraded mode serves, flagged stale, when fresh calibration
    /// keeps failing.
    pub fn last_good(&self, machine: &str) -> Option<Arc<Grophecy>> {
        self.last_good.read().get(machine).cloned()
    }

    /// Number of cached calibrations.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether no calibration is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Key identifying one memoized projection.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProjectionKey {
    pub machine: String,
    pub seed: u64,
    /// FNV-1a of the *normalized* skeleton text, so formatting-only
    /// variants of the same program share an entry.
    pub skeleton_hash: u64,
    /// FNV-1a of the canonical hint fingerprint.
    pub hints_hash: u64,
    /// Structural program fingerprint
    /// (`gpp_gpu_model::program_fingerprint`): identical for programs
    /// whose kernels synthesize the same characteristics. Exposed in
    /// replies and `stats` memo rows so a gateway can route cache-hot.
    pub fingerprint: u128,
}

/// A bounded least-recently-used memo of projections.
///
/// Implementation: a `HashMap` to (stamp, value) plus a monotonically
/// increasing use-stamp; eviction scans for the smallest stamp. Eviction
/// is O(capacity) but only runs when full, and capacities here are small
/// (hundreds); the common path is one hash lookup under a read lock.
pub struct ProjectionCache {
    inner: RwLock<LruInner>,
    capacity: usize,
}

struct LruInner {
    map: HashMap<ProjectionKey, (u64, Arc<AppProjection>)>,
    clock: u64,
}

impl ProjectionCache {
    pub fn new(capacity: usize) -> Self {
        ProjectionCache {
            inner: RwLock::new(LruInner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up a projection, refreshing its recency on hit.
    pub fn get(&self, key: &ProjectionKey) -> Option<Arc<AppProjection>> {
        let mut inner = self.inner.write();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(key).map(|(stamp, v)| {
            *stamp = clock;
            v.clone()
        })
    }

    /// Inserts a projection, evicting the least-recently-used entry when
    /// at capacity.
    pub fn insert(&self, key: ProjectionKey, value: Arc<AppProjection>) {
        let mut inner = self.inner.write();
        inner.clock += 1;
        let clock = inner.clock;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key, (clock, value));
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// A snapshot of the memo's keys, sorted for stable presentation —
    /// what the `stats` reply renders as its `projection_memo` rows.
    pub fn keys(&self) -> Vec<ProjectionKey> {
        let mut keys: Vec<ProjectionKey> = self.inner.read().map.keys().cloned().collect();
        keys.sort_by(|a, b| {
            (
                &a.machine,
                a.seed,
                a.fingerprint,
                a.skeleton_hash,
                a.hints_hash,
            )
                .cmp(&(
                    &b.machine,
                    b.seed,
                    b.fingerprint,
                    b.skeleton_hash,
                    b.hints_hash,
                ))
        });
        keys
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ProjectionKey {
        ProjectionKey {
            machine: "eureka".into(),
            seed: 1,
            skeleton_hash: n,
            hints_hash: 0,
            fingerprint: n as u128,
        }
    }

    fn dummy_projection() -> Arc<AppProjection> {
        Arc::new(AppProjection {
            kernels: Vec::new(),
            kernel_time: 0.0,
            plan: gpp_datausage::TransferPlan::default(),
            transfer_times: Vec::new(),
            transfer_time: 0.0,
            alloc_time: 0.0,
            timeline: None,
            multi_gpu: None,
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ProjectionCache::new(2);
        cache.insert(key(1), dummy_projection());
        cache.insert(key(2), dummy_projection());
        assert!(cache.get(&key(1)).is_some()); // refresh 1; 2 is now LRU
        cache.insert(key(3), dummy_projection());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn reinsert_at_capacity_does_not_evict() {
        let cache = ProjectionCache::new(2);
        cache.insert(key(1), dummy_projection());
        cache.insert(key(2), dummy_projection());
        cache.insert(key(2), dummy_projection());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn fnv_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }
}
