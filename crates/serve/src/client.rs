//! A small blocking client for the `gpp-serve` wire protocol.

use crate::protocol::{read_frame, write_frame, ProtocolError, Request};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A connected client. One client = one TCP connection; requests can be
/// issued back to back on it (the protocol is frame-per-request).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with a connect/read/write timeout.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request and returns the raw response JSON.
    pub fn call(&mut self, request: &Request) -> io::Result<String> {
        write_frame(&mut self.stream, &request.encode())?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )
        })
    }

    /// Sends a raw payload (already-encoded header + body).
    pub fn call_raw(&mut self, payload: &str) -> io::Result<String> {
        write_frame(&mut self.stream, payload)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )
        })
    }
}

/// One-shot convenience: connect, send, return the response JSON.
pub fn request_once(
    addr: impl ToSocketAddrs,
    request: &Request,
    timeout: Duration,
) -> io::Result<String> {
    Client::connect(addr, timeout)?.call(request)
}

/// splitmix64 finalizer — the jitter mixer. Same constants as the
/// per-point RNG streams in `gpp-fault`; one word in, one word out, so a
/// (seed, attempt) pair always jitters identically.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the request payload, for deriving a per-call jitter seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derives a stable jitter seed from an identity (a shard label, a machine
/// name, a payload): distinct identities get distinct [`backoff_delay`]
/// streams, and the same identity always gets the same one.
pub fn jitter_seed(bytes: &[u8]) -> u64 {
    splitmix64(fnv1a(bytes))
}

/// A fresh per-call nonce so two concurrent retriers of the *same* payload
/// still land on different jitter streams.
fn next_nonce() -> u64 {
    static NONCE: AtomicU64 = AtomicU64::new(0x5eed);
    NONCE.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
}

/// Scales `d` by a deterministic factor in [0.75, 1.25] drawn from
/// splitmix64(seed ^ attempt) — ±25% jitter, integer math throughout.
fn jittered(d: Duration, seed: u64, attempt: u32) -> Duration {
    // Parts-per-million in [750_000, 1_250_000].
    let ppm = 750_000 + splitmix64(seed ^ u64::from(attempt)) % 500_001;
    let nanos = d.as_nanos().saturating_mul(u128::from(ppm)) / 1_000_000;
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

/// The exponential-backoff delay before retry `attempt` (1-based):
/// `base * 2^(attempt-1)`, saturating, scaled by a deterministic ±25%
/// jitter drawn from splitmix64 keyed on `seed ^ attempt` — so concurrent
/// retriers with different seeds desynchronize instead of stampeding in
/// lockstep, while a fixed (base, attempt, seed) triple always yields the
/// same delay. Attempt 0 — the first try — waits nothing, always. Shared
/// by the serve-side calibration retry loop, the retrying client below,
/// and the gateway's shard re-admission probe.
pub fn backoff_delay(base: Duration, attempt: u32, seed: u64) -> Duration {
    if attempt == 0 {
        return Duration::ZERO;
    }
    let exp = base.saturating_mul(2u32.saturating_pow(attempt - 1));
    jittered(exp, seed, attempt)
}

/// Milli-tokens charged per retry withdrawal.
const TOKEN_MILLI: u64 = 1000;

/// A token-bucket **retry budget**: a shared cap on how many retries (and
/// hedges) a client, the serve calibration loop, or the gateway prober may
/// issue, so overload never amplifies into a retry storm.
///
/// Accounting is in milli-tokens: each retry withdraws 1000, each success
/// deposits a configurable fraction back (default a full token), and an
/// optional time-based refill trickles capacity in for long-running
/// processes. Components whose *reply bytes* must stay deterministic (the
/// serve calibration loop) use deposit-only budgets; purely timing-side
/// consumers (the gateway prober and hedger) may add a refill rate.
#[derive(Debug)]
pub struct RetryBudget {
    capacity_milli: u64,
    deposit_milli: u64,
    refill_milli_per_sec: u64,
    tokens_milli: AtomicU64,
    exhausted: AtomicU64,
    last_refill: Mutex<Instant>,
}

impl RetryBudget {
    /// A budget holding `capacity` whole tokens, starting full, with
    /// deposit-on-success of one full token and no time-based refill.
    pub fn new(capacity: u32) -> RetryBudget {
        let capacity_milli = u64::from(capacity) * TOKEN_MILLI;
        RetryBudget {
            capacity_milli,
            deposit_milli: TOKEN_MILLI,
            refill_milli_per_sec: 0,
            tokens_milli: AtomicU64::new(capacity_milli),
            exhausted: AtomicU64::new(0),
            last_refill: Mutex::new(Instant::now()),
        }
    }

    /// Sets the milli-tokens deposited per successful call (e.g. 250 =
    /// one retry earned per four successes).
    #[must_use]
    pub fn with_deposit_milli(mut self, milli: u64) -> RetryBudget {
        self.deposit_milli = milli;
        self
    }

    /// Sets a wall-clock refill rate in milli-tokens per second. Only for
    /// consumers whose replies never depend on whether a withdrawal
    /// succeeded at a particular instant (probing, hedging).
    #[must_use]
    pub fn with_refill_milli_per_sec(mut self, milli: u64) -> RetryBudget {
        self.refill_milli_per_sec = milli;
        self
    }

    fn credit(&self, add_milli: u64) {
        if add_milli == 0 {
            return;
        }
        let mut cur = self.tokens_milli.load(Ordering::Relaxed);
        loop {
            let next = (cur + add_milli).min(self.capacity_milli);
            match self.tokens_milli.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    fn refill(&self) {
        if self.refill_milli_per_sec == 0 {
            return;
        }
        let mut last = self
            .last_refill
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let earned =
            (last.elapsed().as_micros() * u128::from(self.refill_milli_per_sec)) / 1_000_000;
        let earned = u64::try_from(earned).unwrap_or(u64::MAX);
        if earned > 0 {
            // Advance the refill clock by exactly the time the earned
            // tokens account for, keeping the fractional remainder.
            let consumed_us = earned.saturating_mul(1_000_000) / self.refill_milli_per_sec;
            *last += Duration::from_micros(consumed_us);
            drop(last);
            self.credit(earned);
        }
    }

    /// Withdraws one retry token. `false` means the budget is exhausted —
    /// the caller must stop retrying (and the refusal is counted).
    pub fn try_withdraw(&self) -> bool {
        self.refill();
        let mut cur = self.tokens_milli.load(Ordering::Relaxed);
        loop {
            if cur < TOKEN_MILLI {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.tokens_milli.compare_exchange_weak(
                cur,
                cur - TOKEN_MILLI,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Credits the deposit-on-success fraction back into the bucket.
    pub fn deposit(&self) {
        self.credit(self.deposit_milli);
    }

    /// Current balance in milli-tokens.
    pub fn tokens_milli(&self) -> u64 {
        self.tokens_milli.load(Ordering::Relaxed)
    }

    /// How many withdrawals were refused because the bucket was empty.
    pub fn exhausted_count(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }
}

/// One-shot with retries: reconnects and resends on transport errors and
/// on `busy`/`shed` rejections, sleeping [`backoff_delay`] between
/// attempts — except when the rejection carried a `retry_after_ms` hint,
/// in which case the hint (±25% jitter) paces the next attempt instead of
/// the fixed base. `retries` is the number of *extra* attempts after the
/// first. Equivalent to [`request_with_retries_budgeted`] with no budget.
pub fn request_with_retries(
    addr: impl ToSocketAddrs + Clone,
    request: &Request,
    timeout: Duration,
    retries: u32,
    base: Duration,
) -> io::Result<String> {
    request_with_retries_budgeted(addr, request, timeout, retries, base, None)
}

/// [`request_with_retries`] metered by an optional shared [`RetryBudget`]:
/// every retry (never the first attempt) withdraws a token first, and a
/// successful reply deposits back. When the budget runs dry the call stops
/// retrying immediately and returns the last `busy`/`shed` reply it saw
/// (or the last transport error), so callers can distinguish "server said
/// come back later" from "gave up".
pub fn request_with_retries_budgeted(
    addr: impl ToSocketAddrs + Clone,
    request: &Request,
    timeout: Duration,
    retries: u32,
    base: Duration,
    budget: Option<&RetryBudget>,
) -> io::Result<String> {
    let seed = splitmix64(fnv1a(request.encode().as_bytes()) ^ next_nonce());
    let mut last_err: Option<io::Error> = None;
    let mut last_rejection: Option<String> = None;
    let mut hint_ms: Option<u64> = None;
    for attempt in 0..=retries {
        if attempt > 0 {
            if let Some(b) = budget {
                if !b.try_withdraw() {
                    break;
                }
            }
            let delay = match hint_ms {
                // The server said when to come back: honor it (jittered so
                // the rejected crowd doesn't return as one wave).
                Some(ms) => jittered(Duration::from_millis(ms), seed, attempt),
                None => backoff_delay(base, attempt, seed),
            };
            std::thread::sleep(delay);
        }
        match request_once(addr.clone(), request, timeout) {
            Ok(reply) => {
                // A busy/shed rejection is retryable by design: the server
                // shed load and said so. Anything else — success or a
                // structured error — is final.
                let err = ProtocolError::from_response(&reply);
                let retryable = err
                    .as_ref()
                    .is_some_and(|e| e.kind == "busy" || e.kind == "shed");
                if retryable && attempt < retries {
                    hint_ms = err.and_then(|e| e.retry_after_ms);
                    last_rejection = Some(reply);
                    continue;
                }
                if err.is_none() {
                    if let Some(b) = budget {
                        b.deposit();
                    }
                }
                return Ok(reply);
            }
            Err(e) => {
                last_err = Some(e);
                hint_ms = None;
            }
        }
    }
    if let Some(reply) = last_rejection {
        return Ok(reply);
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("request failed with no attempt")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_attempt_zero_never_waits() {
        for seed in 0..64 {
            assert_eq!(
                backoff_delay(Duration::from_millis(100), 0, seed),
                Duration::ZERO
            );
        }
    }

    #[test]
    fn backoff_jitter_stays_within_25_percent_and_doubles() {
        let base = Duration::from_millis(100);
        for seed in 0..256u64 {
            for attempt in 1..=6u32 {
                let exp = base * 2u32.pow(attempt - 1);
                let d = backoff_delay(base, attempt, seed);
                let lo = exp.mul_f64(0.75);
                let hi = exp.mul_f64(1.25);
                assert!(
                    d >= lo && d <= hi,
                    "seed {seed} attempt {attempt}: {d:?} outside [{lo:?}, {hi:?}]"
                );
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_seeds_desynchronize() {
        let base = Duration::from_millis(100);
        assert_eq!(backoff_delay(base, 3, 7), backoff_delay(base, 3, 7));
        // Across many seeds the delays cannot all collide: that would mean
        // the jitter is not keyed on the seed at all.
        let distinct: std::collections::HashSet<Duration> =
            (0..32).map(|s| backoff_delay(base, 1, s)).collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct delays",
            distinct.len()
        );
    }

    #[test]
    fn budget_exhausts_and_deposits_refill() {
        let b = RetryBudget::new(2);
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "third withdrawal must be refused");
        assert_eq!(b.exhausted_count(), 1);
        b.deposit();
        assert!(b.try_withdraw(), "deposit restores a token");
        assert!(!b.try_withdraw());
        assert_eq!(b.exhausted_count(), 2);
    }

    #[test]
    fn fractional_deposits_need_several_successes() {
        let b = RetryBudget::new(1).with_deposit_milli(250);
        assert!(b.try_withdraw());
        for _ in 0..3 {
            b.deposit();
            assert!(!b.try_withdraw(), "750 milli-tokens is not a whole token");
        }
        b.deposit();
        assert!(b.try_withdraw(), "four deposits of 250 earn one retry");
    }

    #[test]
    fn deposits_cap_at_capacity() {
        let b = RetryBudget::new(1);
        for _ in 0..10 {
            b.deposit();
        }
        assert_eq!(b.tokens_milli(), 1000, "bucket must not overfill");
    }

    #[test]
    fn time_refill_trickles_tokens_in() {
        // 1_000_000 milli-tokens/sec: effectively instant refill, so the
        // test asserts the mechanism without sleeping.
        let b = RetryBudget::new(1).with_refill_milli_per_sec(1_000_000);
        assert!(b.try_withdraw());
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.try_withdraw(), "refill should have restored the token");
    }
}
