//! A small blocking client for the `gpp-serve` wire protocol.

use crate::protocol::{read_frame, write_frame, Request};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client. One client = one TCP connection; requests can be
/// issued back to back on it (the protocol is frame-per-request).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with a connect/read/write timeout.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request and returns the raw response JSON.
    pub fn call(&mut self, request: &Request) -> io::Result<String> {
        write_frame(&mut self.stream, &request.encode())?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )
        })
    }

    /// Sends a raw payload (already-encoded header + body).
    pub fn call_raw(&mut self, payload: &str) -> io::Result<String> {
        write_frame(&mut self.stream, payload)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )
        })
    }
}

/// One-shot convenience: connect, send, return the response JSON.
pub fn request_once(
    addr: impl ToSocketAddrs,
    request: &Request,
    timeout: Duration,
) -> io::Result<String> {
    Client::connect(addr, timeout)?.call(request)
}

/// The standard exponential-backoff delay before retry `attempt`
/// (1-based): `base * 2^(attempt-1)`, saturating. Attempt 0 — the first
/// try — waits nothing. Shared by the serve-side calibration retry loop,
/// the retrying client below, and the gateway's shard re-admission probe.
pub fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    if attempt == 0 {
        return Duration::ZERO;
    }
    base.saturating_mul(2u32.saturating_pow(attempt - 1))
}

/// One-shot with retries: reconnects and resends on transport errors and
/// on `busy` rejections, sleeping [`backoff_delay`] between attempts.
/// `retries` is the number of *extra* attempts after the first.
pub fn request_with_retries(
    addr: impl ToSocketAddrs + Clone,
    request: &Request,
    timeout: Duration,
    retries: u32,
    base: Duration,
) -> io::Result<String> {
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..=retries {
        std::thread::sleep(backoff_delay(base, attempt));
        match request_once(addr.clone(), request, timeout) {
            Ok(reply) => {
                // A busy rejection is retryable by design: the server shed
                // load and said so. Anything else — success or a
                // structured error — is final.
                let busy = crate::protocol::ProtocolError::from_response(&reply)
                    .is_some_and(|e| e.kind == "busy");
                if busy && attempt < retries {
                    last_err = Some(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        "server busy after retries",
                    ));
                    continue;
                }
                return Ok(reply);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("request failed with no attempt")))
}
