//! A small blocking client for the `gpp-serve` wire protocol.

use crate::protocol::{read_frame, write_frame, Request};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client. One client = one TCP connection; requests can be
/// issued back to back on it (the protocol is frame-per-request).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with a connect/read/write timeout.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request and returns the raw response JSON.
    pub fn call(&mut self, request: &Request) -> io::Result<String> {
        write_frame(&mut self.stream, &request.encode())?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )
        })
    }

    /// Sends a raw payload (already-encoded header + body).
    pub fn call_raw(&mut self, payload: &str) -> io::Result<String> {
        write_frame(&mut self.stream, payload)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )
        })
    }
}

/// One-shot convenience: connect, send, return the response JSON.
pub fn request_once(
    addr: impl ToSocketAddrs,
    request: &Request,
    timeout: Duration,
) -> io::Result<String> {
    Client::connect(addr, timeout)?.call(request)
}
