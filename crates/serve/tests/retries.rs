//! Retry-loop behavior against a scripted fake server: each accepted
//! connection gets the next canned reply, so busy/shed hint honoring,
//! budget exhaustion, and the busy-then-success path are all exercised
//! deterministically without a real service in the loop.

use gpp_serve::protocol::{read_frame, write_frame};
use gpp_serve::service::{busy_response_with_hint, shed_queue_response};
use gpp_serve::{
    request_with_retries, request_with_retries_budgeted, Command, Request, RetryBudget,
};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(5);

fn ok_reply() -> String {
    "{\"ok\":true,\"command\":\"ping\"}".to_string()
}

/// A fake server speaking one frame per connection: the i-th accepted
/// connection is answered with `replies[i]`, then the listener closes, so
/// any further attempt fails at connect. Returns the address and the
/// accept counter.
fn scripted_server(replies: Vec<String>) -> (SocketAddr, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accepts = Arc::new(AtomicUsize::new(0));
    let counter = accepts.clone();
    std::thread::spawn(move || {
        for reply in replies {
            let (mut stream, _) = match listener.accept() {
                Ok(pair) => pair,
                Err(_) => return,
            };
            counter.fetch_add(1, Ordering::SeqCst);
            let _ = read_frame(&mut stream);
            let _ = write_frame(&mut stream, &reply);
        }
    });
    (addr, accepts)
}

#[test]
fn busy_then_shed_then_success_retries_through() {
    let (addr, accepts) = scripted_server(vec![
        busy_response_with_hint(1),
        shed_queue_response(1),
        ok_reply(),
    ]);
    let reply = request_with_retries(
        addr,
        &Request::new(Command::Ping),
        TIMEOUT,
        2,
        Duration::from_millis(1),
    )
    .unwrap();
    assert_eq!(reply, ok_reply());
    assert_eq!(accepts.load(Ordering::SeqCst), 3);
}

#[test]
fn retry_paces_itself_on_the_server_hint() {
    // The busy reply says "come back in 200ms"; with a 1ms backoff base
    // the only way the retry waits ≥150ms (hint × 0.75 jitter floor) is
    // by honoring the hint.
    let (addr, accepts) = scripted_server(vec![busy_response_with_hint(200), ok_reply()]);
    let started = Instant::now();
    let reply = request_with_retries(
        addr,
        &Request::new(Command::Ping),
        TIMEOUT,
        1,
        Duration::from_millis(1),
    )
    .unwrap();
    let waited = started.elapsed();
    assert_eq!(reply, ok_reply());
    assert_eq!(accepts.load(Ordering::SeqCst), 2);
    assert!(
        waited >= Duration::from_millis(150),
        "retry ignored the 200ms hint (waited {waited:?})"
    );
}

#[test]
fn exhausted_budget_stops_retrying_and_returns_the_last_rejection() {
    // Four busy replies scripted, but the budget holds a single token:
    // attempt 0 is free, attempt 1 withdraws it, attempt 2 is refused —
    // so only two connections ever happen and the caller gets the busy
    // reply back (not an error): the server said "come back later".
    let (addr, accepts) = scripted_server(vec![
        busy_response_with_hint(1),
        busy_response_with_hint(1),
        busy_response_with_hint(1),
        busy_response_with_hint(1),
    ]);
    let budget = RetryBudget::new(1);
    let reply = request_with_retries_budgeted(
        addr,
        &Request::new(Command::Ping),
        TIMEOUT,
        3,
        Duration::from_millis(1),
        Some(&budget),
    )
    .unwrap();
    assert!(reply.contains("\"kind\":\"busy\""), "{reply}");
    assert_eq!(accepts.load(Ordering::SeqCst), 2);
    assert_eq!(budget.exhausted_count(), 1);
    assert_eq!(budget.tokens_milli(), 0);
}

#[test]
fn success_deposits_back_into_the_budget() {
    let (addr, _) = scripted_server(vec![busy_response_with_hint(1), ok_reply()]);
    let budget = RetryBudget::new(1);
    let reply = request_with_retries_budgeted(
        addr,
        &Request::new(Command::Ping),
        TIMEOUT,
        1,
        Duration::from_millis(1),
        Some(&budget),
    )
    .unwrap();
    assert_eq!(reply, ok_reply());
    assert_eq!(
        budget.tokens_milli(),
        1000,
        "the clean success must repay the retry token"
    );
}

#[test]
fn transport_errors_retry_then_surface() {
    // Bind-then-drop: the port is real but nobody listens, so every
    // attempt fails at connect.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let err = request_with_retries(
        addr,
        &Request::new(Command::Ping),
        Duration::from_millis(200),
        2,
        Duration::from_millis(1),
    )
    .unwrap_err();
    assert!(
        err.kind() == std::io::ErrorKind::ConnectionRefused
            || err.kind() == std::io::ErrorKind::TimedOut,
        "unexpected error kind: {err:?}"
    );
}
