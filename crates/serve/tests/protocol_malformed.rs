//! Table-driven adversarial tests for the wire protocol: malformed,
//! truncated, and hostile payloads must produce *structured* errors (never
//! a panic, never a silent success), and every error kind the server can
//! emit must round-trip through `error_json` → `ProtocolError::from_response`.

use gpp_serve::protocol::{
    read_frame_limited, write_frame, FrameError, ProtocolError, Request, MAX_FRAME_BYTES,
};
use gpp_serve::service::error_json;

/// Every malformed request payload decodes to exactly the expected kind.
#[test]
fn decode_rejects_each_malformed_payload_with_the_right_kind() {
    // (payload, expected kind, what it exercises)
    let cases: &[(&str, &str, &str)] = &[
        ("", "bad-magic", "empty payload"),
        ("\n", "bad-magic", "empty header line"),
        ("gpp/2 project\nx", "bad-magic", "wrong protocol version"),
        ("GPP/1 project\nx", "bad-magic", "magic is case-sensitive"),
        (" gpp/1", "bad-command", "leading space, then no command"),
        ("gpp/1", "bad-command", "magic only, no newline"),
        ("gpp/1\n", "bad-command", "magic only, empty body"),
        (
            "gpp/1 PROJECT\nx",
            "bad-command",
            "command is case-sensitive",
        ),
        ("gpp/1 projject\nx", "bad-command", "typoed command"),
        ("gpp/1 project extra\nx", "bad-option", "bare token, no ="),
        ("gpp/1 project =value\nx", "bad-option", "empty key"),
        ("gpp/1 project seed=\nx", "bad-option", "empty seed value"),
        ("gpp/1 project seed=-1\nx", "bad-option", "negative seed"),
        ("gpp/1 project seed=1e9\nx", "bad-option", "float seed"),
        (
            "gpp/1 project seed=99999999999999999999999\nx",
            "bad-option",
            "seed overflows u64",
        ),
        (
            "gpp/1 project iters=ten\nx",
            "bad-option",
            "non-numeric iters",
        ),
        (
            "gpp/1 project sparse=a\nx",
            "bad-option",
            "sparse missing :bytes",
        ),
        (
            "gpp/1 project sparse=a:lots\nx",
            "bad-option",
            "sparse bytes not a number",
        ),
        (
            "gpp/1 project shard=3\nx",
            "bad-option",
            "unknown option key",
        ),
        ("gpp/1 health extra\n", "bad-option", "health bare token"),
        (
            "gpp/1 health probe=1\n",
            "bad-option",
            "health takes no options",
        ),
        ("gpp/1 batch\n", "bad-batch", "batch without n="),
        ("gpp/1 batch n=\n", "bad-batch", "empty batch count"),
        (
            "gpp/1 batch n=two\n",
            "bad-batch",
            "non-numeric batch count",
        ),
        ("gpp/1 batch n=-1\n", "bad-batch", "negative batch count"),
        ("gpp/1 batch n=0\n", "bad-batch", "zero batch count"),
        (
            "gpp/1 batch n=257\n",
            "bad-batch",
            "batch count over the cap",
        ),
        (
            "gpp/1 batch n=99999999999999999999\n",
            "bad-batch",
            "batch count overflows usize",
        ),
        (
            "gpp/1 batch m=1\n10\ngpp/1 ping",
            "bad-option",
            "unknown batch option key",
        ),
        (
            "gpp/1 batch n=1\n",
            "bad-batch",
            "declared one frame, empty body",
        ),
        (
            "gpp/1 batch n=2\n10\ngpp/1 ping",
            "bad-batch",
            "body ends one frame short",
        ),
        (
            "gpp/1 batch n=1\n10\ngpp/1 pi",
            "bad-batch",
            "embedded frame truncated mid-payload",
        ),
        (
            "gpp/1 batch n=1\nxyz\nping",
            "bad-batch",
            "garbage embedded frame length",
        ),
        (
            "gpp/1 batch n=1\n10\ngpp/1 pingTRAILING",
            "bad-batch",
            "trailing bytes after the declared frames",
        ),
        (
            "gpp/1 batch n=1\n15\ngpp/1 batch n=1\n",
            "bad-batch",
            "nested batch",
        ),
        (
            "gpp/1 batch n=1\n99999999999\nx",
            "bad-batch",
            "embedded frame declares an oversize length",
        ),
        ("gpp/1 project\n", "missing-skeleton", "no body at all"),
        (
            "gpp/1 project\n   \n  ",
            "missing-skeleton",
            "whitespace body",
        ),
        (
            "gpp/1 measure\n",
            "missing-skeleton",
            "measure needs a body",
        ),
        (
            "gpp/1 analyze\n",
            "missing-skeleton",
            "analyze needs a body",
        ),
        ("gpp/1 deps\n", "missing-skeleton", "deps needs a body"),
    ];
    for (payload, want_kind, what) in cases {
        match Request::decode(payload) {
            Err(e) => assert_eq!(
                &e.kind, want_kind,
                "{what}: payload {payload:?} gave kind `{}` (message: {})",
                e.kind, e.message
            ),
            Ok(req) => panic!("{what}: payload {payload:?} decoded to {req:?}"),
        }
    }
}

/// Payloads that look hostile but are legal must still decode.
#[test]
fn decode_accepts_edge_case_but_legal_payloads() {
    // Commands without a skeleton accept an empty body.
    for cmd in ["calibrate", "stats", "ping", "health"] {
        let payload = format!("gpp/1 {cmd}");
        assert!(
            Request::decode(&payload).is_ok(),
            "{payload:?} should decode"
        );
    }
    // Duplicate options: last (or merged) wins rather than erroring.
    let req = Request::decode("gpp/1 project seed=1 seed=2\nx").unwrap();
    assert_eq!(req.seed, 2);
    // Empty list entries in hints are skipped, not errors.
    let req = Request::decode("gpp/1 project temporary=,a,,b,\nx").unwrap();
    assert_eq!(req.temporaries, vec!["a".to_string(), "b".to_string()]);
    // A value containing '=' splits on the first one only.
    let req = Request::decode("gpp/1 project machine=a=b\nx").unwrap();
    assert_eq!(req.machine, "a=b");
}

/// Truncated and garbage *frames* fail cleanly at the transport layer.
#[test]
fn frame_reader_rejects_truncated_and_garbage_streams() {
    let io_cases: &[(&[u8], &str)] = &[
        (b"12", "EOF inside the length"),
        (b"5\nab", "EOF inside the payload"),
        (b"5", "length digits then EOF, no newline"),
        (b"\n", "newline with no digits"),
        (b"-5\nhello", "negative length"),
        (b"5x\nhello", "letter inside the length"),
        (b" 5\nhello", "leading space in length"),
        (b"0x10\nhello", "hex length"),
        (b"\xff\xfe", "binary garbage"),
    ];
    for (bytes, what) in io_cases {
        let mut r = &bytes[..];
        match read_frame_limited(&mut r, MAX_FRAME_BYTES) {
            Err(FrameError::Io(_)) => {}
            other => panic!("{what}: {bytes:?} gave {other:?}"),
        }
    }
    // Non-UTF-8 payload of the declared length.
    let mut r = &b"2\n\xff\xfe"[..];
    assert!(matches!(
        read_frame_limited(&mut r, MAX_FRAME_BYTES),
        Err(FrameError::Io(_))
    ));
}

/// Oversize declarations are caught before any allocation, including
/// absurd lengths that would overflow the running accumulator.
#[test]
fn frame_reader_bounds_allocation_before_reading_the_payload() {
    let cases: &[&str] = &[
        "1025\n",
        "99999999999999999999999999999999999999\n", // saturates, still too large
        "10250000000\n",
    ];
    for frame in cases {
        let mut r = frame.as_bytes();
        match read_frame_limited(&mut r, 1024) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert!(declared > 1024, "{frame:?}: declared {declared}");
                assert_eq!(max, 1024);
            }
            other => panic!("{frame:?} gave {other:?}"),
        }
    }
    // At the limit exactly: fine.
    let mut buf = Vec::new();
    write_frame(&mut buf, &"x".repeat(1024)).unwrap();
    let mut r = &buf[..];
    assert_eq!(
        read_frame_limited(&mut r, 1024).unwrap().unwrap().len(),
        1024
    );
}

/// Every error kind the server can emit survives the wire: rendering it
/// with `error_json` and re-parsing the JSON recovers kind and message.
#[test]
fn every_error_kind_round_trips_through_the_response_json() {
    let kinds: &[(&str, &str)] = &[
        ("bad-magic", "expected `gpp/1`, got `nope`"),
        ("bad-command", "unknown command `explode`"),
        ("bad-option", "expected key=value, got `extra`"),
        (
            "missing-skeleton",
            "command `project` needs a skeleton body",
        ),
        ("parse", "1: expected `program`"),
        ("machine", "unknown machine `cray-1` (known: eureka, v2)"),
        ("unknown-array", "--temporary: no array named `tmp`"),
        ("skeleton", "kernel `k` reads undeclared array"),
        (
            "calibration-failed",
            "calibration failed (H2d, 3 attempts): budget",
        ),
        ("busy", "queue full (64 waiting); retry later"),
        ("timeout", "deadline of 30s exceeded"),
        (
            "too_large",
            "request frame of 9000000 B exceeds the 4194304 B limit",
        ),
        (
            "internal",
            "request handler panicked: injected worker panic",
        ),
        ("bad-batch", "batch count 257 outside 1..=256"),
        (
            "unavailable",
            "no shard answered after 3 attempt(s) across 3 shard(s)",
        ),
    ];
    for (kind, message) in kinds {
        let err = ProtocolError::new(*kind, *message);
        let rendered = error_json(&err).render();
        assert!(rendered.starts_with("{\"ok\":false"), "{rendered}");
        let back = ProtocolError::from_response(&rendered)
            .unwrap_or_else(|| panic!("kind `{kind}` did not round-trip: {rendered}"));
        assert_eq!(back, err, "render: {rendered}");
    }
    // Messages with characters the JSON renderer must escape.
    let nasty = ProtocolError::new("parse", "line\t1:\n\"quoted\" \\ backslash");
    let back = ProtocolError::from_response(&error_json(&nasty).render()).unwrap();
    assert_eq!(back, nasty);
    // Success responses are not misread as errors.
    assert!(ProtocolError::from_response("{\"ok\":true,\"pong\":1}").is_none());
}
