//! Chaos suite: a real server under a seeded fault plan, checked for the
//! resilience invariants the fault layer promises:
//!
//! * no hang — the server keeps answering and drains cleanly;
//! * no poisoned lock / dead worker pool — later requests still work;
//! * every accepted request gets a reply (success or structured error);
//! * identical seeds produce bit-identical replies *and* bit-identical
//!   fault/recovery traces;
//! * exhausted re-calibration degrades to the last-good model, flagged
//!   `"stale":true` and counted in `stats`.

use gpp_fault::{FaultInjector, FaultPlan};
use gpp_serve::protocol::{read_frame, write_frame, ProtocolError};
use gpp_serve::{Client, Command, Request, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const VECTOR_ADD: &str = include_str!("../../../skeletons/vector_add.gsk");

const CLIENT_TIMEOUT: Duration = Duration::from_secs(20);

fn config_with(faults: Arc<FaultInjector>, workers: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        faults,
        ..ServeConfig::default()
    }
}

fn injector(plan: &str) -> Arc<FaultInjector> {
    Arc::new(FaultInjector::new(
        plan.parse::<FaultPlan>().expect("plan parses"),
    ))
}

fn project_request(seed: u64) -> Request {
    let mut req = Request::new(Command::Project);
    req.seed = seed;
    req.skeleton = VECTOR_ADD.to_string();
    req
}

/// One deterministic chaos run: a single worker (so fault-point
/// occurrence order is a pure function of the request sequence) serving a
/// fixed script of requests on one connection, with faults armed at every
/// layer. Returns the replies (minus the timing-dependent `stats` one)
/// and the injector's recovery trace.
fn chaos_run(seed: u64) -> (Vec<String>, String) {
    // Frame numbering drives the fixed-schedule points: 6 frames per
    // run, so corruption (every=4) hits the first ping and the panic
    // (every=5) hits the second — never the final `stats` frame, whose
    // reply must render the resilience counters.
    let plan = format!(
        "seed={seed};pcie.transfer.error:p=0.03;pcie.transfer.stall:p=0.03,factor=3;\
         pcie.calibration.outlier:p=0.05,factor=8;gpu.launch.transient:p=0.02;\
         serve.worker.panic:every=5;serve.frame.corrupt:every=4"
    );
    let faults = injector(&plan);
    let server = Server::bind(config_with(faults.clone(), 1)).unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr(), CLIENT_TIMEOUT).unwrap();

    let mut script: Vec<Request> = vec![
        project_request(9001),
        project_request(9001), // memo / cache hit path
    ];
    let mut measure = Request::new(Command::Measure);
    measure.seed = 9001;
    measure.skeleton = VECTOR_ADD.to_string();
    script.push(measure);
    script.push(Request::new(Command::Ping));
    script.push(Request::new(Command::Ping));

    let mut replies = Vec::new();
    for req in &script {
        let reply = client.call(req).expect("accepted request must be answered");
        assert!(
            reply.starts_with("{\"ok\":"),
            "seed {seed}: reply is not structured JSON: {reply}"
        );
        replies.push(reply);
    }
    // Stats must render (not compared across runs: uptime/latency vary).
    let stats = client.call(&Request::new(Command::Stats)).unwrap();
    assert!(stats.contains("\"resilience\""), "stats: {stats}");

    let trace = faults.trace();
    handle.shutdown_and_join().expect("drain must not hang");
    (replies, trace)
}

/// Traces from the per-seed reproducibility tests, so whichever test
/// finishes last can check that different seeds exercised different
/// fault schedules (the harness runs the three tests concurrently).
static SEED_TRACES: std::sync::Mutex<Vec<(u64, String)>> = std::sync::Mutex::new(Vec::new());

/// The tentpole invariant for one seed: a chaos run is fully
/// deterministic — running the identical request script under the
/// identical plan twice gives bit-identical replies and bit-identical
/// fault/recovery traces.
fn assert_chaos_reproducible(seed: u64) {
    let (replies_a, trace_a) = chaos_run(seed);
    let (replies_b, trace_b) = chaos_run(seed);
    assert_eq!(
        replies_a, replies_b,
        "seed {seed}: replies diverged between identical runs"
    );
    assert_eq!(
        trace_a, trace_b,
        "seed {seed}: fault traces diverged between identical runs"
    );
    assert!(
        !trace_a.is_empty(),
        "seed {seed}: the plan never fired — chaos run exercised nothing"
    );
    let mut traces = SEED_TRACES.lock().unwrap();
    traces.push((seed, trace_a));
    if traces.len() == 3 {
        let all_equal = traces.windows(2).all(|w| w[0].1 == w[1].1);
        assert!(
            !all_equal,
            "every seed produced the same trace — seeding is not reaching the RNG"
        );
    }
}

#[test]
fn chaos_is_reproducible_under_seed_7() {
    assert_chaos_reproducible(7);
}

#[test]
fn chaos_is_reproducible_under_seed_42() {
    assert_chaos_reproducible(42);
}

#[test]
fn chaos_is_reproducible_under_seed_2013() {
    assert_chaos_reproducible(2013);
}

/// When re-calibration keeps failing but a last-good calibration exists,
/// the server degrades instead of erroring: the reply is computed from
/// the cached model and flagged `"stale":true`, and `stats` counts it.
#[test]
fn degraded_mode_serves_stale_replies_from_last_good_calibration() {
    // after=1: the first calibration attempt succeeds (warming last-good);
    // every attempt after that fails.
    let faults = injector("seed=1;serve.calibrate.fail:after=1");
    let server = Server::bind(config_with(faults, 1)).unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr(), CLIENT_TIMEOUT).unwrap();

    let warm = client.call(&project_request(500)).unwrap();
    assert!(warm.starts_with("{\"ok\":true"), "warm-up failed: {warm}");
    assert!(
        !warm.contains("\"stale\""),
        "fresh reply flagged stale: {warm}"
    );

    // New seed → new calibration key → all attempts fail → last-good.
    let degraded = client.call(&project_request(501)).unwrap();
    assert!(
        degraded.starts_with("{\"ok\":true"),
        "degraded reply should still succeed: {degraded}"
    );
    assert!(
        degraded.contains("\"stale\":true"),
        "degraded reply not flagged: {degraded}"
    );

    let snap = handle.state().snapshot(0);
    assert!(snap.degraded_replies >= 1, "snapshot: {snap:?}");
    assert!(snap.calib_retries >= 2, "snapshot: {snap:?}");
    assert!(snap.faults_injected >= 3, "snapshot: {snap:?}");
    let stats = client.call(&Request::new(Command::Stats)).unwrap();
    assert!(stats.contains("\"degraded_replies\":1"), "stats: {stats}");
    handle.shutdown_and_join().unwrap();
}

/// With no last-good model to fall back on, exhausted calibration yields
/// a structured `calibration-failed` error — and the server survives it.
#[test]
fn hopeless_calibration_without_last_good_is_a_structured_error() {
    let faults = injector("serve.calibrate.fail:always");
    let server = Server::bind(config_with(faults, 1)).unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr(), CLIENT_TIMEOUT).unwrap();

    let reply = client.call(&project_request(500)).unwrap();
    let err = ProtocolError::from_response(&reply).expect("error reply");
    assert_eq!(err.kind, "calibration-failed", "reply: {reply}");

    // The failure is contained: the same connection still serves.
    let pong = client.call(&Request::new(Command::Ping)).unwrap();
    assert!(pong.starts_with("{\"ok\":true"), "after failure: {pong}");
    handle.shutdown_and_join().unwrap();
}

/// An injected handler panic becomes a structured `internal` reply; the
/// worker, the connection, and the counters all survive it.
#[test]
fn injected_panic_is_isolated_to_one_request() {
    let faults = injector("serve.worker.panic:first=1");
    let server = Server::bind(config_with(faults, 1)).unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr(), CLIENT_TIMEOUT).unwrap();

    let reply = client.call(&Request::new(Command::Ping)).unwrap();
    let err = ProtocolError::from_response(&reply).expect("panic must surface as an error");
    assert_eq!(err.kind, "internal", "reply: {reply}");
    assert!(err.message.contains("panic"), "reply: {reply}");

    let pong = client.call(&Request::new(Command::Ping)).unwrap();
    assert!(pong.starts_with("{\"ok\":true"), "after panic: {pong}");
    assert_eq!(handle.state().snapshot(0).panics_caught, 1);
    handle.shutdown_and_join().unwrap();
}

/// A frame declaring more than `max_frame_bytes` is answered with a
/// structured `too_large` error before any payload allocation, then the
/// connection closes; the server itself keeps serving.
#[test]
fn oversize_frame_is_rejected_with_structured_reply() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        max_frame_bytes: 1024,
        ..ServeConfig::default()
    };
    let server = Server::bind(config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_frame(&mut stream, &"x".repeat(2048)).unwrap();
    let reply = read_frame(&mut stream).unwrap().expect("a reply frame");
    let err = ProtocolError::from_response(&reply).expect("structured error");
    assert_eq!(err.kind, "too_large", "reply: {reply}");
    assert!(err.message.contains("1024"), "reply: {reply}");
    // The connection cannot be resynchronized; the server closes it.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);

    let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
    let pong = client.call(&Request::new(Command::Ping)).unwrap();
    assert!(pong.starts_with("{\"ok\":true"), "after reject: {pong}");
    assert!(handle.state().snapshot(0).too_large_rejected >= 1);
    handle.shutdown_and_join().unwrap();
}

/// Raw garbage on the socket closes that connection without taking the
/// worker (or the server) down.
#[test]
fn garbage_bytes_close_the_connection_not_the_server() {
    let faults = FaultInjector::disabled();
    let server = Server::bind(config_with(faults, 1)).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"!!! not a frame !!!\n").unwrap();
    stream.flush().unwrap();
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);

    let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
    let pong = client.call(&Request::new(Command::Ping)).unwrap();
    assert!(pong.starts_with("{\"ok\":true"), "after garbage: {pong}");
    handle.shutdown_and_join().unwrap();
}

/// A slow-loris client — trickling a frame and then stalling — cannot pin
/// the (single) worker past `request_timeout`: the stalled connection is
/// dropped at its deadline and the next client is served promptly.
#[test]
fn slow_loris_client_cannot_pin_a_worker() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        request_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    };
    let server = Server::bind(config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // The attacker: declares a 100-byte payload, sends 2 bytes, stalls.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"100\nab").unwrap();
    loris.flush().unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // The victim: a well-behaved client that must be served once the
    // loris hits its deadline — well before the client-side timeout.
    let started = Instant::now();
    let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
    let pong = client.call(&Request::new(Command::Ping)).unwrap();
    assert!(pong.starts_with("{\"ok\":true"), "victim reply: {pong}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "victim waited {:?} behind a slow-loris connection",
        started.elapsed()
    );

    // The loris connection itself was dropped, not kept on life support.
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut rest = Vec::new();
    assert_eq!(loris.read_to_end(&mut rest).unwrap_or(0), 0);
    handle.shutdown_and_join().unwrap();
}
