//! The lint-before-project gate: error-level findings reject the
//! request with structured diagnostics *before* any calibration work,
//! warnings ride along on success replies, and `lint=0` both skips the
//! analysis and leaves clean-skeleton replies byte-identical.

use gpp_serve::{Command, Request, ServeConfig, ServiceState};

const VECTOR_ADD: &str = include_str!("../../../skeletons/vector_add.gsk");
const OOB: &str = include_str!("../../../fixtures/bad/gpp001_oob.gsk");
const UNUSED: &str = include_str!("../../../fixtures/bad/gpp004_unused_array.gsk");

fn project_request(skeleton: &str) -> Request {
    let mut req = Request::new(Command::Project);
    req.skeleton = skeleton.to_string();
    req
}

#[test]
fn error_skeleton_is_rejected_before_calibration() {
    let state = ServiceState::new(ServeConfig::default());
    let response = state.handle(&project_request(OOB).encode(), 0);
    assert!(response.contains("\"ok\":false"), "{response}");
    assert!(response.contains("\"kind\":\"lint\""), "{response}");
    // The findings come back as a structured array, span included.
    assert!(response.contains("\"diagnostics\":["), "{response}");
    assert!(response.contains("\"code\":\"GPP001\""), "{response}");
    assert!(response.contains("\"severity\":\"error\""), "{response}");
    assert!(response.contains("\"line\":10"), "{response}");
    assert!(response.contains("\"col\":5"), "{response}");
    // The whole point of the gate: the rejection happened before any
    // calibration or projection work was attempted.
    let stats = state.snapshot(0);
    assert_eq!(stats.calib_misses, 0, "calibration ran despite lint errors");
    assert_eq!(stats.calib_hits, 0);
    assert_eq!(stats.proj_misses, 0);
    assert_eq!(stats.served_err, 1);
}

#[test]
fn lint_can_be_disabled_per_request() {
    let state = ServiceState::new(ServeConfig::default());
    let mut req = project_request(OOB);
    req.lint = false;
    let response = state.handle(&req.encode(), 0);
    // The skeleton is structurally valid (sections clamp to extents), so
    // with the analyzer off it projects like any other program.
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(!response.contains("diagnostics"), "{response}");
    assert_eq!(state.snapshot(0).calib_misses, 1);
}

#[test]
fn warnings_ride_along_on_success_replies() {
    let state = ServiceState::new(ServeConfig::default());
    let response = state.handle(&project_request(UNUSED).encode(), 0);
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(response.contains("\"diagnostics\":["), "{response}");
    assert!(response.contains("\"code\":\"GPP004\""), "{response}");
    assert!(response.contains("\"severity\":\"warning\""), "{response}");
    assert_eq!(state.snapshot(0).served_ok, 1);
}

#[test]
fn clean_skeleton_replies_are_byte_identical_with_lint_on_and_off() {
    let on =
        ServiceState::new(ServeConfig::default()).handle(&project_request(VECTOR_ADD).encode(), 0);
    let mut req = project_request(VECTOR_ADD);
    req.lint = false;
    let off = ServiceState::new(ServeConfig::default()).handle(&req.encode(), 0);
    assert!(on.contains("\"ok\":true"), "{on}");
    assert_eq!(on, off, "the analyzer must be observationally pure");
}

#[test]
fn measure_command_is_gated_too() {
    let state = ServiceState::new(ServeConfig::default());
    let mut req = Request::new(Command::Measure);
    req.skeleton = OOB.to_string();
    let response = state.handle(&req.encode(), 0);
    assert!(response.contains("\"kind\":\"lint\""), "{response}");
    assert!(response.contains("\"code\":\"GPP001\""), "{response}");
}
