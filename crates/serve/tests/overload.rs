//! Deadline-aware load shedding on the serve side: propagated
//! `deadline_ms=` budgets are enforced at admission (against the observed
//! median compute time), mid-flight (via the injected
//! `serve.compute.slow` stall), and on completion — while requests
//! without a deadline keep their exact legacy reply bytes.

use gpp_serve::{Command, Request, ServeConfig, ServiceState};
use std::sync::Arc;
use std::time::Duration;

const VECTOR_ADD: &str = include_str!("../../../skeletons/vector_add.gsk");

fn project_request(seed: u64, deadline_ms: Option<u64>) -> Request {
    let mut req = Request::new(Command::Project);
    req.seed = seed;
    req.skeleton = VECTOR_ADD.to_string();
    req.deadline_ms = deadline_ms;
    req
}

fn state_with_plan(plan: &str) -> ServiceState {
    ServiceState::new(ServeConfig {
        faults: Arc::new(gpp_fault::FaultInjector::new(plan.parse().unwrap())),
        ..ServeConfig::default()
    })
}

#[test]
fn generous_deadline_leaves_the_reply_bytes_untouched() {
    // Two fresh states: the projection cache would otherwise flip the
    // second reply's `cached` flag regardless of deadlines.
    let bare =
        ServiceState::new(ServeConfig::default()).handle(&project_request(2013, None).encode(), 0);
    let state = ServiceState::new(ServeConfig::default());
    let bounded = state.handle(&project_request(2013, Some(60_000)).encode(), 0);
    assert!(bare.starts_with("{\"ok\":true"), "{bare}");
    assert_eq!(
        bare, bounded,
        "a met deadline must not change the projection bytes"
    );
    assert_eq!(state.snapshot(0).shed_deadline, 0);
}

#[test]
fn queued_past_deadline_is_shed_at_admission_with_a_hint() {
    let state = ServiceState::new(ServeConfig::default());
    // 50ms spent in the accept queue against a 10ms budget: the caller
    // has already given up, so no work may start.
    let reply = state.handle_timed(
        &project_request(2013, Some(10)).encode(),
        3,
        Duration::from_millis(50),
    );
    assert!(reply.contains("\"kind\":\"shed\""), "{reply}");
    assert!(reply.contains("\"retry_after_ms\":"), "{reply}");
    let snap = state.snapshot(0);
    assert_eq!(snap.shed_deadline, 1);
    assert_eq!(snap.served_err, 1);
}

#[test]
fn injected_compute_stall_trips_the_deadline_mid_flight() {
    let state = state_with_plan("seed=7;serve.compute.slow:always,factor=60");
    // The deadline request goes first, while the latency window is still
    // cold (admission cannot shed on an unobserved median): a 20ms budget
    // is admitted, the 60ms stall burns it, and the mid-flight check
    // converts success into a structured deadline error.
    let reply = state.handle(&project_request(4242, Some(20)).encode(), 0);
    assert!(reply.contains("\"kind\":\"deadline\""), "{reply}");
    // Without a deadline the same stall is invisible: slow, but correct.
    let bare = state.handle(&project_request(4242, None).encode(), 0);
    assert!(bare.starts_with("{\"ok\":true"), "{bare}");
    assert!(state.snapshot(0).shed_deadline >= 1);
}

#[test]
fn warm_median_sheds_hopeless_deadlines_before_any_work() {
    let state = state_with_plan("seed=7;serve.compute.slow:always,factor=40");
    // Warm the latency window: three stalled requests put the observed
    // median compute time at ≥ 40ms.
    for seed in 0..3 {
        let reply = state.handle(&project_request(seed, None).encode(), 0);
        assert!(reply.starts_with("{\"ok\":true"), "{reply}");
    }
    // A 15ms budget can never cover a 40ms median: shed at admission,
    // with a drain hint derived from that median.
    let reply = state.handle(&project_request(99, Some(15)).encode(), 0);
    assert!(reply.contains("\"kind\":\"shed\""), "{reply}");
    assert!(reply.contains("median compute time"), "{reply}");
    let hint = gpp_serve::protocol::retry_after_ms(&reply).expect("shed reply carries a hint");
    assert!(hint >= 30, "hint {hint}ms should reflect the ~40ms median");
    assert_eq!(state.snapshot(0).shed_deadline, 1);
}

#[test]
fn stats_reply_exposes_the_shed_counters() {
    let state = ServiceState::new(ServeConfig::default());
    state.handle_timed(
        &project_request(1, Some(1)).encode(),
        0,
        Duration::from_millis(10),
    );
    let stats = state.handle(&Request::new(Command::Stats).encode(), 0);
    for key in [
        "\"shed_deadline\":",
        "\"shed_queue\":",
        "\"retry_budget_exhausted\":",
    ] {
        assert!(stats.contains(key), "stats missing {key}: {stats}");
    }
    assert!(stats.contains("\"shed_deadline\":1"), "{stats}");
}
