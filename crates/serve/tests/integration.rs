//! End-to-end tests: a real server on an ephemeral port, hammered by
//! concurrent TCP clients, checked against the single-shot handler for
//! bit-identical responses, plus backpressure and shutdown-drain checks.

use gpp_serve::{Client, Command, Request, ServeConfig, Server, ServiceState};
use grophecy::machine::{BusSpec, ReplayTrace};
use grophecy::{MachineConfig, MachineRegistry};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const VECTOR_ADD: &str = include_str!("../../../skeletons/vector_add.gsk");
const HOTSPOT: &str = include_str!("../../../skeletons/hotspot_1024.gsk");

const CLIENT_TIMEOUT: Duration = Duration::from_secs(20);

fn ephemeral_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

fn project_request(skeleton: &str, seed: u64) -> Request {
    let mut req = Request::new(Command::Project);
    req.seed = seed;
    req.skeleton = skeleton.to_string();
    req
}

/// What a one-shot, in-process invocation returns for this payload —
/// the same pipeline the CLI runs, with no server in between.
fn single_shot(req: &Request) -> String {
    ServiceState::new(ServeConfig::default()).handle(&req.encode(), 0)
}

#[test]
fn concurrent_clients_match_single_shot_output() {
    const CLIENTS: usize = 8;
    let server = Server::bind(ephemeral_config()).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Distinct seeds and a mix of skeletons: every request is a cache
    // miss, so each response must be computed under concurrency and still
    // equal the single-shot answer.
    let requests: Vec<Request> = (0..CLIENTS)
        .map(|i| {
            let skeleton = if i % 2 == 0 { VECTOR_ADD } else { HOTSPOT };
            project_request(skeleton, 3000 + i as u64)
        })
        .collect();

    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|req| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
                    client.call(req).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (req, response) in requests.iter().zip(&responses) {
        assert_eq!(
            response,
            &single_shot(req),
            "concurrent response diverged from single-shot for seed {}",
            req.seed
        );
    }

    let stats = handle.state().snapshot(0);
    assert_eq!(stats.served_ok, CLIENTS as u64);
    assert_eq!(stats.served_err, 0);
    assert_eq!(stats.rejected_busy, 0);
    handle.shutdown_and_join().unwrap();
}

#[test]
fn repeated_request_hits_projection_cache() {
    let server = Server::bind(ephemeral_config()).unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr(), CLIENT_TIMEOUT).unwrap();

    let req = project_request(VECTOR_ADD, 2013);
    let first = client.call(&req).unwrap();
    let second = client.call(&req).unwrap();
    assert!(
        first.contains("\"cached\":false"),
        "first call should miss: {first}"
    );
    assert!(
        second.contains("\"cached\":true"),
        "second call should hit: {second}"
    );
    // The memo must not change the answer.
    assert_eq!(first.replace("\"cached\":false", "\"cached\":true"), second);

    // The hit is visible through the wire-level stats command too.
    let mut stats_req = Request::new(Command::Stats);
    stats_req.command = Command::Stats;
    let stats = client.call(&stats_req).unwrap();
    assert!(stats.contains("\"projection_hits\":1"), "stats: {stats}");
    assert!(stats.contains("\"projection_misses\":1"), "stats: {stats}");
    assert!(stats.contains("\"calibration_hits\":1"), "stats: {stats}");
    assert!(stats.contains("\"calibration_misses\":1"), "stats: {stats}");
    // Synthesis-memo efficacy rides along (process-wide counters, so
    // only their presence and shape are stable here).
    assert!(
        stats.contains("\"synthesis_memo\":{\"hits\":"),
        "stats: {stats}"
    );
    assert!(stats.contains("\"misses\":"), "stats: {stats}");
    handle.shutdown_and_join().unwrap();
}

/// The built-ins plus one replay-bus machine whose samples pin the bus
/// model to known latencies/bandwidths, as a fleet of three targets.
fn fleet_registry() -> MachineRegistry {
    use gpp_pcie::{Direction, MemType};
    let mut registry = MachineRegistry::builtin();
    let mut recorded = MachineConfig::anl_eureka_node(0);
    recorded.id = "recorded".to_string();
    recorded.name = "Replayed measurement run".to_string();
    recorded.bus = BusSpec::Replay(ReplayTrace {
        label: "fleet-trace".to_string(),
        samples: vec![
            (1, Direction::HostToDevice, MemType::Pinned, 9.7e-6),
            (536870912, Direction::HostToDevice, MemType::Pinned, 0.204),
            (1, Direction::DeviceToHost, MemType::Pinned, 1.08e-5),
            (536870912, Direction::DeviceToHost, MemType::Pinned, 0.209),
            (1, Direction::HostToDevice, MemType::Pageable, 2.9e-5),
            (536870912, Direction::HostToDevice, MemType::Pageable, 0.387),
            (1, Direction::DeviceToHost, MemType::Pageable, 3.1e-5),
            (536870912, Direction::DeviceToHost, MemType::Pageable, 0.391),
        ],
    });
    registry.insert(recorded);
    registry
}

#[test]
fn one_request_per_registered_machine_routes_and_caches_per_machine() {
    let registry = Arc::new(fleet_registry());
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        machines: Arc::clone(&registry),
        ..ServeConfig::default()
    };
    let server = Server::bind(config).unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr(), CLIENT_TIMEOUT).unwrap();

    let names = registry.names();
    assert_eq!(names, vec!["eureka", "recorded", "v2"]);
    let mut replies = Vec::new();
    for name in &names {
        let mut req = project_request(VECTOR_ADD, 2013);
        req.machine = name.clone();
        let first = client.call(&req).unwrap();
        assert!(first.contains("\"ok\":true"), "{name}: {first}");
        assert!(
            first.contains(&format!("\"machine\":\"{name}\"")),
            "{name}: {first}"
        );
        // Deterministic: the same request replays bit-identically (modulo
        // the memo flag), and the repeat hits this machine's cache.
        let second = client.call(&req).unwrap();
        assert_eq!(
            first.replace("\"cached\":false", "\"cached\":true"),
            second,
            "{name}: repeat diverged"
        );
        replies.push(first);
    }
    // Distinct machines produce distinct projections.
    for i in 0..replies.len() {
        for j in (i + 1)..replies.len() {
            assert_ne!(
                replies[i], replies[j],
                "machines {} and {} projected identically",
                names[i], names[j]
            );
        }
    }

    // Each machine got its own calibration and projection entry, and the
    // stats command breaks the traffic out per machine.
    let snap = handle.state().snapshot(0);
    assert_eq!(snap.calib_cache_len, names.len());
    assert_eq!(snap.proj_cache_len, names.len());
    for (name, row) in &snap.machines {
        assert!(names.contains(name), "unexpected stats row {name}");
        assert_eq!((row.requests, row.proj_misses, row.proj_hits), (2, 1, 1));
        assert_eq!(row.calib_misses, 1);
    }
    let stats = client.call(&Request::new(Command::Stats)).unwrap();
    assert!(
        stats.contains("{\"machine\":\"recorded\",\"requests\":2"),
        "stats: {stats}"
    );

    // A name outside the registry gets the structured machine error with
    // the fleet's roster.
    let mut bad = project_request(VECTOR_ADD, 2013);
    bad.machine = "cray-1".to_string();
    let err = client.call(&bad).unwrap();
    assert!(err.contains("\"kind\":\"machine\""), "{err}");
    assert!(err.contains("(known: eureka, recorded, v2)"), "{err}");
    handle.shutdown_and_join().unwrap();
}

#[test]
fn over_capacity_requests_get_structured_busy_error() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        request_timeout: Duration::from_secs(1),
        ..ServeConfig::default()
    };
    let server = Server::bind(config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Two idle connections: one parks the single worker (blocked reading
    // a frame that never comes), the next fills the depth-1 queue. The
    // stagger lets the worker dequeue the first before the second lands,
    // so the second occupies the queue slot instead of racing it.
    let holder_a = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let holder_b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Saturate the full queue with concurrent pings. The server sheds
    // oldest-first: each new arrival displaces the longest-queued
    // connection with a structured `shed` reply (carrying a retry hint),
    // falling back to `busy` when even the freed slot is contested. Every
    // client must get *some* structured reply promptly — nobody hangs
    // past the worker freeing up (the parked holder times out after the
    // 1s request timeout).
    let replies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..20)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
                    client.call(&Request::new(Command::Ping)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut rejected = 0;
    for reply in &replies {
        if reply.contains("\"kind\":\"shed\"") || reply.contains("\"kind\":\"busy\"") {
            assert!(
                reply.starts_with("{\"ok\":false"),
                "rejection reply: {reply}"
            );
            assert!(
                reply.contains("\"retry_after_ms\":"),
                "rejection lacks retry hint: {reply}"
            );
            rejected += 1;
        } else {
            assert!(
                reply.starts_with("{\"ok\":true"),
                "unexpected reply: {reply}"
            );
        }
    }
    assert!(
        rejected >= 1,
        "no connection was rejected while the queue was full: {replies:?}"
    );
    let snap = handle.state().snapshot(0);
    assert!(
        snap.shed_queue + snap.rejected_busy >= 1,
        "rejections not counted: shed_queue={} rejected_busy={}",
        snap.shed_queue,
        snap.rejected_busy
    );

    drop((holder_a, holder_b));
    handle.shutdown_and_join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ephemeral_config()
    };
    let server = Server::bind(config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
        client.call(&project_request(HOTSPOT, 4242)).unwrap()
    });
    // Let the request reach the worker, then ask the server to stop while
    // it is (likely) still computing. The accepted request must still get
    // its full answer before the server exits.
    std::thread::sleep(Duration::from_millis(20));
    handle.shutdown_and_join().unwrap();
    let response = worker.join().unwrap();
    assert_eq!(response, single_shot(&project_request(HOTSPOT, 4242)));
}
