//! End-to-end tests: a real server on an ephemeral port, hammered by
//! concurrent TCP clients, checked against the single-shot handler for
//! bit-identical responses, plus backpressure and shutdown-drain checks.

use gpp_serve::{Client, Command, Request, ServeConfig, Server, ServiceState};
use std::net::TcpStream;
use std::time::Duration;

const VECTOR_ADD: &str = include_str!("../../../skeletons/vector_add.gsk");
const HOTSPOT: &str = include_str!("../../../skeletons/hotspot_1024.gsk");

const CLIENT_TIMEOUT: Duration = Duration::from_secs(20);

fn ephemeral_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

fn project_request(skeleton: &str, seed: u64) -> Request {
    let mut req = Request::new(Command::Project);
    req.seed = seed;
    req.skeleton = skeleton.to_string();
    req
}

/// What a one-shot, in-process invocation returns for this payload —
/// the same pipeline the CLI runs, with no server in between.
fn single_shot(req: &Request) -> String {
    ServiceState::new(ServeConfig::default()).handle(&req.encode(), 0)
}

#[test]
fn concurrent_clients_match_single_shot_output() {
    const CLIENTS: usize = 8;
    let server = Server::bind(ephemeral_config()).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Distinct seeds and a mix of skeletons: every request is a cache
    // miss, so each response must be computed under concurrency and still
    // equal the single-shot answer.
    let requests: Vec<Request> = (0..CLIENTS)
        .map(|i| {
            let skeleton = if i % 2 == 0 { VECTOR_ADD } else { HOTSPOT };
            project_request(skeleton, 3000 + i as u64)
        })
        .collect();

    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|req| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
                    client.call(req).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (req, response) in requests.iter().zip(&responses) {
        assert_eq!(
            response,
            &single_shot(req),
            "concurrent response diverged from single-shot for seed {}",
            req.seed
        );
    }

    let stats = handle.state().snapshot(0);
    assert_eq!(stats.served_ok, CLIENTS as u64);
    assert_eq!(stats.served_err, 0);
    assert_eq!(stats.rejected_busy, 0);
    handle.shutdown_and_join().unwrap();
}

#[test]
fn repeated_request_hits_projection_cache() {
    let server = Server::bind(ephemeral_config()).unwrap();
    let handle = server.spawn().unwrap();
    let mut client = Client::connect(handle.addr(), CLIENT_TIMEOUT).unwrap();

    let req = project_request(VECTOR_ADD, 2013);
    let first = client.call(&req).unwrap();
    let second = client.call(&req).unwrap();
    assert!(
        first.contains("\"cached\":false"),
        "first call should miss: {first}"
    );
    assert!(
        second.contains("\"cached\":true"),
        "second call should hit: {second}"
    );
    // The memo must not change the answer.
    assert_eq!(first.replace("\"cached\":false", "\"cached\":true"), second);

    // The hit is visible through the wire-level stats command too.
    let mut stats_req = Request::new(Command::Stats);
    stats_req.command = Command::Stats;
    let stats = client.call(&stats_req).unwrap();
    assert!(stats.contains("\"projection_hits\":1"), "stats: {stats}");
    assert!(stats.contains("\"projection_misses\":1"), "stats: {stats}");
    assert!(stats.contains("\"calibration_hits\":1"), "stats: {stats}");
    assert!(stats.contains("\"calibration_misses\":1"), "stats: {stats}");
    handle.shutdown_and_join().unwrap();
}

#[test]
fn over_capacity_requests_get_structured_busy_error() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        request_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let server = Server::bind(config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Two idle connections: one parks the single worker (blocked reading
    // a frame that never comes), the next fills the depth-1 queue. The
    // stagger lets the worker dequeue the first before the second lands,
    // so the second occupies the queue slot instead of racing it.
    let holder_a = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let holder_b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Now every further connection must be turned away immediately with
    // the structured busy error, not queued and not hung.
    let mut saw_busy = false;
    for _ in 0..20 {
        let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
        let response = client.call(&Request::new(Command::Ping)).unwrap();
        if response.contains("\"kind\":\"busy\"") {
            assert!(
                response.starts_with("{\"ok\":false"),
                "busy reply: {response}"
            );
            saw_busy = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        saw_busy,
        "no connection was rejected while the queue was full"
    );
    assert!(handle.state().snapshot(0).rejected_busy >= 1);

    drop((holder_a, holder_b));
    handle.shutdown_and_join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ephemeral_config()
    };
    let server = Server::bind(config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr, CLIENT_TIMEOUT).unwrap();
        client.call(&project_request(HOTSPOT, 4242)).unwrap()
    });
    // Let the request reach the worker, then ask the server to stop while
    // it is (likely) still computing. The accepted request must still get
    // its full answer before the server exits.
    std::thread::sleep(Duration::from_millis(20));
    handle.shutdown_and_join().unwrap();
    let response = worker.join().unwrap();
    assert_eq!(response, single_shot(&project_request(HOTSPOT, 4242)));
}
