//! The `batch` frame end-to-end: a batch reply must be **bit-for-bit**
//! the concatenation of the single-shot replies for the same requests —
//! the property the gateway's fan-out relies on.

use gpp_serve::protocol::Request;
use gpp_serve::Command;
use gpp_serve::{ServeConfig, ServiceState};
use proptest::prelude::*;

const VEC_ADD: &str = include_str!("../../../skeletons/vector_add.gsk");
const HOTSPOT: &str = include_str!("../../../skeletons/hotspot_1024.gsk");

fn payload(cmd: &str, body: &str) -> String {
    format!("gpp/1 {cmd}\n{body}")
}

/// Extracts the `replies` array elements from a batch reply by splitting
/// on the envelope (each element is itself a complete JSON object the
/// server rendered, so reconstructing the concatenation is exact).
fn assert_batch_equals_singles(batch_reply: &str, singles: &[String]) {
    let expected = format!(
        "{{\"ok\":true,\"command\":\"batch\",\"count\":{},\"replies\":[{}]}}",
        singles.len(),
        singles.join(",")
    );
    assert_eq!(batch_reply, expected);
}

#[test]
fn batch_reply_is_bitwise_concatenation_of_single_shots() {
    let subs = vec![
        payload("project", VEC_ADD),
        payload("project seed=7", VEC_ADD),
        "gpp/1 ping".to_string(),
        payload("analyze", HOTSPOT),
        "gpp/1 project\n".to_string(), // sub-level error: still embedded
    ];
    // Reference: a fresh state answering each request single-shot.
    let singles: Vec<String> = {
        let s = ServiceState::new(ServeConfig::default());
        subs.iter().map(|p| s.handle(p, 0)).collect()
    };
    // Batch: another fresh state, same requests in one frame.
    let s = ServiceState::new(ServeConfig::default());
    let batch_reply = s.handle(&Request::new_batch(subs).encode(), 0);
    assert_batch_equals_singles(&batch_reply, &singles);
}

#[test]
fn batch_subs_share_server_caches() {
    let s = ServiceState::new(ServeConfig::default());
    let subs = vec![payload("project", VEC_ADD), payload("project", VEC_ADD)];
    let reply = s.handle(&Request::new_batch(subs).encode(), 0);
    // Second identical sub hits the projection memo warmed by the first.
    assert!(reply.contains("\"cached\":false"), "{reply}");
    assert!(reply.contains("\"cached\":true"), "{reply}");
    let snap = s.snapshot(0);
    assert_eq!((snap.proj_misses, snap.proj_hits), (1, 1));
}

#[test]
fn successful_project_replies_carry_the_fingerprint() {
    let s = ServiceState::new(ServeConfig::default());
    let a = s.handle(&payload("project", VEC_ADD), 0);
    let b = s.handle(&payload("project seed=9", VEC_ADD), 0);
    let c = s.handle(&payload("project", HOTSPOT), 0);
    let fp = |reply: &str| {
        let at = reply.find("\"fingerprint\":\"").expect("fingerprint field") + 15;
        reply[at..at + 32].to_string()
    };
    // Structural: same program → same fingerprint at any seed; a
    // different program fingerprints differently.
    assert_eq!(fp(&a), fp(&b));
    assert_ne!(fp(&a), fp(&c));
    // The stats memo rows expose the same fingerprints.
    let stats = s.handle("gpp/1 stats", 0);
    assert!(stats.contains("\"projection_memo\":["), "{stats}");
    assert!(
        stats.contains(&format!("\"fingerprint\":\"{}\"", fp(&a))),
        "{stats}"
    );
    assert!(
        stats.contains(&format!("\"fingerprint\":\"{}\"", fp(&c))),
        "{stats}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any mix of deterministic sub-requests (well-formed and broken
    /// alike — `stats` is excluded since its counters depend on the frame
    /// count), the batch reply equals the concatenation of single-shot
    /// replies from an identically-initialized server, bit for bit.
    #[test]
    fn batch_matches_singles_for_any_mix(
        picks in proptest::collection::vec(0usize..6, 1..8),
        seed in 0u64..1000,
    ) {
        let sub = |pick: usize| match pick {
            0 => payload(&format!("project seed={seed}"), VEC_ADD),
            1 => "gpp/1 ping".to_string(),
            2 => payload("analyze", VEC_ADD),
            3 => payload(&format!("project seed={}", seed + 1), HOTSPOT),
            4 => payload("deps", VEC_ADD),
            _ => "gpp/1 project\n".to_string(), // missing skeleton: error
        };
        let subs: Vec<String> = picks.iter().map(|p| sub(*p)).collect();
        let singles: Vec<String> = {
            let s = ServiceState::new(ServeConfig::default());
            subs.iter().map(|p| s.handle(p, 0)).collect()
        };
        let s = ServiceState::new(ServeConfig::default());
        let batch_reply = s.handle(&Request::new_batch(subs).encode(), 0);
        let expected = format!(
            "{{\"ok\":true,\"command\":\"batch\",\"count\":{},\"replies\":[{}]}}",
            picks.len(),
            singles.join(",")
        );
        prop_assert_eq!(batch_reply, expected);
    }

    /// Encode/decode round-trips any batch of ping frames at any legal
    /// count.
    #[test]
    fn batch_roundtrips_at_any_count(n in 1usize..40) {
        let req = Request::new_batch((0..n).map(|_| "gpp/1 ping".to_string()));
        let decoded = Request::decode(&req.encode()).unwrap();
        prop_assert_eq!(decoded.command, Command::Batch);
        prop_assert_eq!(decoded.batch.len(), n);
    }
}
