//! An `nvprof`-style profile report for simulated kernels.
//!
//! The simulator resolves detail the analytic model never sees; this
//! module renders that detail for humans — useful when diagnosing *why* a
//! projection missed (is the kernel latency-bound? how much traffic is
//! segment waste? did the tail wave matter?).

use crate::device::DeviceParams;
use crate::instance::KernelInstance;
use crate::occupancy::Limiter;
use crate::timing::time_kernel;

/// Produces a multi-line profile of one kernel on one device.
pub fn profile(device: &DeviceParams, kernel: &KernelInstance) -> String {
    use std::fmt::Write as _;
    let b = time_kernel(device, kernel);
    let secs = b.cycles / device.clock_hz;
    let useful: f64 = kernel.total_global_bytes();
    let eff_bw = if secs > 0.0 { b.dram_bytes / secs } else { 0.0 };

    let mut s = String::new();
    let _ = writeln!(s, "== profile: {} on {} ==", kernel.name, device.name);
    let _ = writeln!(
        s,
        "grid {} blocks x {} threads = {} threads",
        kernel.grid_blocks,
        kernel.block_threads,
        kernel.total_threads()
    );
    let _ = writeln!(
        s,
        "occupancy: {} blocks/SM, {} warps/SM ({:.0}% of capacity), limited by {}",
        b.occupancy.blocks_per_sm,
        b.occupancy.warps_per_sm,
        b.occupancy.fraction(device) * 100.0,
        match b.occupancy.limiter {
            Limiter::Blocks => "the block cap",
            Limiter::Threads => "the thread cap",
            Limiter::SharedMem => "shared memory",
            Limiter::Registers => "registers",
            Limiter::GridSize => "grid size",
        }
    );
    let _ = writeln!(
        s,
        "waves: {} full{}",
        b.full_waves,
        if b.has_partial_wave {
            " + 1 partial (tail)"
        } else {
            ""
        }
    );
    let _ = writeln!(s, "bound: {}", b.bound);
    let _ = writeln!(
        s,
        "dram traffic: {:.2} MB moved for {:.2} MB useful ({:.0}% overhead)",
        b.dram_bytes / (1 << 20) as f64,
        useful / (1 << 20) as f64,
        if useful > 0.0 {
            (b.dram_bytes / useful - 1.0) * 100.0
        } else {
            0.0
        }
    );
    let _ = writeln!(
        s,
        "time: {:.3} ms exec (+{:.1} us launch), {:.1} GB/s effective",
        secs * 1e3,
        device.launch_overhead * 1e6,
        eff_bw / 1e9
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{MemOp, ThreadProgram};

    fn kernel(threads: u64, aligned: bool) -> KernelInstance {
        KernelInstance::dense_1d(
            "probe",
            threads,
            256,
            ThreadProgram {
                compute_slots: 8.0,
                mem_ops: vec![MemOp {
                    aligned,
                    ..MemOp::coalesced_load(4, 2.0)
                }],
                syncs: 0,
                active_fraction: 1.0,
            },
        )
    }

    #[test]
    fn profile_mentions_the_essentials() {
        let d = DeviceParams::quadro_fx_5600();
        let p = profile(&d, &kernel(1 << 20, true));
        for needle in ["occupancy", "waves", "bound", "dram traffic", "effective"] {
            assert!(p.contains(needle), "missing {needle} in:\n{p}");
        }
        assert!(p.contains("probe"));
    }

    #[test]
    fn misalignment_shows_as_traffic_overhead() {
        let d = DeviceParams::quadro_fx_5600();
        let ok = profile(&d, &kernel(1 << 20, true));
        let bad = profile(&d, &kernel(1 << 20, false));
        assert!(ok.contains("(0% overhead)"), "{ok}");
        assert!(!bad.contains("(0% overhead)"), "{bad}");
    }

    #[test]
    fn tail_wave_is_reported() {
        let d = DeviceParams::quadro_fx_5600();
        // One block more than a whole number of waves.
        let p = profile(&d, &kernel(49 * 256, true));
        assert!(p.contains("partial"), "{p}");
    }
}
