//! GPU hardware parameterization.

/// Parameters of the simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Marketing name, for reports.
    pub name: String,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Scalar processors (CUDA cores) per SM.
    pub sps_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Shader clock in Hz (instruction issue rate).
    pub clock_hz: f64,
    /// Peak DRAM bandwidth, bytes/second.
    pub mem_bw: f64,
    /// Fraction of peak DRAM bandwidth achievable by real access streams.
    pub mem_efficiency: f64,
    /// Global-memory load latency in shader cycles.
    pub mem_latency_cycles: f64,
    /// Memory transaction (segment) size in bytes for a half-warp access.
    pub segment_bytes: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Shared memory per SM, bytes.
    pub shared_per_sm: u32,
    /// Register file per SM, 32-bit registers.
    pub regs_per_sm: u32,
    /// Device memory capacity, bytes.
    pub dram_bytes: u64,
    /// Fixed kernel launch overhead, seconds (driver + command processor,
    /// ~10–20 µs in the CUDA 2.x era).
    pub launch_overhead: f64,
    /// Relative run-to-run noise sigma on kernel times.
    pub noise_rel_sigma: f64,
    /// Penalty multiplier for misaligned-but-sequential half-warp accesses,
    /// in 64-byte-segment equivalents. G80 coalescing requires alignment;
    /// a misaligned half-warp issues 16 separate 32-byte transactions =
    /// 8 segment-equivalents (CUDA 1.x programming guide).
    pub misaligned_factor: f64,
    /// DRAM efficiency achieved by *scattered* transaction streams
    /// (strided/irregular/misaligned) relative to streaming ones: random
    /// segment addresses thrash GDDR3 row buffers. Analytic models
    /// typically assume one uniform derate — a real source of kernel-time
    /// prediction error for gather-heavy codes like CFD.
    pub scatter_efficiency: f64,
    /// Issue throughput of special-function (transcendental) ops relative
    /// to simple ALU ops (G80: 2 SFUs per 8 SPs).
    pub sfu_slowdown: f64,
}

impl DeviceParams {
    /// The paper's GPU: NVIDIA Quadro FX 5600 (G80, 1.5 GB GDDR3).
    ///
    /// 16 SMs × 8 SPs at 1.35 GHz; 384-bit interface at 1600 MT/s →
    /// 76.8 GB/s peak.
    pub fn quadro_fx_5600() -> Self {
        DeviceParams {
            name: "Quadro FX 5600 (simulated)".into(),
            sms: 16,
            sps_per_sm: 8,
            warp_size: 32,
            clock_hz: 1.35e9,
            mem_bw: 76.8e9,
            mem_efficiency: 0.78,
            mem_latency_cycles: 520.0,
            segment_bytes: 64,
            max_threads_per_sm: 768,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            shared_per_sm: 16 << 10,
            regs_per_sm: 8192,
            dram_bytes: 1536 << 20,
            launch_overhead: 13.0e-6,
            noise_rel_sigma: 0.015,
            misaligned_factor: 8.0,
            scatter_efficiency: 0.62,
            sfu_slowdown: 4.0,
        }
    }

    /// A GT200-class part (Tesla C1060) for cross-device experiments:
    /// relaxed coalescing (smaller misalignment penalty), more SMs,
    /// more registers.
    pub fn tesla_c1060() -> Self {
        DeviceParams {
            name: "Tesla C1060 (simulated)".into(),
            sms: 30,
            sps_per_sm: 8,
            warp_size: 32,
            clock_hz: 1.296e9,
            mem_bw: 102.0e9,
            mem_efficiency: 0.80,
            mem_latency_cycles: 550.0,
            segment_bytes: 64,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            shared_per_sm: 16 << 10,
            regs_per_sm: 16384,
            dram_bytes: 4096 << 20,
            launch_overhead: 10.0e-6,
            noise_rel_sigma: 0.015,
            misaligned_factor: 2.0,
            scatter_efficiency: 0.65,
            sfu_slowdown: 4.0,
        }
    }

    /// A noise-free copy (for exactness tests).
    pub fn quiet(mut self) -> Self {
        self.noise_rel_sigma = 0.0;
        self
    }

    /// Peak single-precision throughput in flops/second (MAD counted as
    /// one instruction slot here, so this is instruction-issue rate).
    pub fn peak_issue_rate(&self) -> f64 {
        self.sms as f64 * self.sps_per_sm as f64 * self.clock_hz
    }

    /// Achievable DRAM bandwidth, bytes/second.
    pub fn effective_mem_bw(&self) -> f64 {
        self.mem_bw * self.mem_efficiency
    }

    /// Cycles for one SM to issue one instruction for a full warp
    /// (warp_size / sps_per_sm; 4 on G80).
    pub fn cycles_per_warp_inst(&self) -> f64 {
        self.warp_size as f64 / self.sps_per_sm as f64
    }

    /// Warps per SM when `threads` threads are resident.
    pub fn warps_for_threads(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx5600_headline_numbers() {
        let d = DeviceParams::quadro_fx_5600();
        assert_eq!(d.sms * d.sps_per_sm, 128);
        assert_eq!(d.peak_issue_rate(), 128.0 * 1.35e9);
        assert_eq!(d.mem_bw, 76.8e9);
        assert_eq!(d.cycles_per_warp_inst(), 4.0);
        assert_eq!(d.warps_for_threads(768), 24);
        assert_eq!(d.warps_for_threads(100), 4);
    }

    #[test]
    fn c1060_is_bigger() {
        let a = DeviceParams::quadro_fx_5600();
        let b = DeviceParams::tesla_c1060();
        assert!(b.sms > a.sms);
        assert!(b.mem_bw > a.mem_bw);
        assert!(b.misaligned_factor < a.misaligned_factor);
    }

    #[test]
    fn quiet_strips_noise() {
        let d = DeviceParams::quadro_fx_5600().quiet();
        assert_eq!(d.noise_rel_sigma, 0.0);
    }
}
