//! Occupancy calculation: how many blocks and warps fit on one SM.

use crate::device::DeviceParams;
use crate::instance::KernelInstance;

/// Resolved SM residency for a kernel on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Which resource bound the occupancy.
    pub limiter: Limiter,
}

/// The resource that limited occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// The per-SM block cap.
    Blocks,
    /// The per-SM thread cap.
    Threads,
    /// Shared-memory capacity.
    SharedMem,
    /// Register-file capacity.
    Registers,
    /// The grid has fewer blocks than one full SM complement.
    GridSize,
}

impl Occupancy {
    /// Computes the occupancy of `kernel` on `device`.
    ///
    /// # Panics
    /// Panics if the block simply cannot run (too many threads per block,
    /// or one block's shared memory / registers exceed the SM).
    pub fn compute(device: &DeviceParams, kernel: &KernelInstance) -> Self {
        assert!(
            kernel.block_threads <= device.max_threads_per_block,
            "block of {} threads exceeds device limit {}",
            kernel.block_threads,
            device.max_threads_per_block
        );
        let regs_per_block = kernel.regs_per_thread * kernel.block_threads;
        assert!(
            regs_per_block <= device.regs_per_sm,
            "one block needs {} registers; SM has {}",
            regs_per_block,
            device.regs_per_sm
        );
        assert!(
            kernel.shared_per_block <= device.shared_per_sm,
            "one block needs {} B shared memory; SM has {}",
            kernel.shared_per_block,
            device.shared_per_sm
        );

        let by_blocks = device.max_blocks_per_sm;
        let by_threads = device.max_threads_per_sm / kernel.block_threads;
        let by_shared = device
            .shared_per_sm
            .checked_div(kernel.shared_per_block)
            .unwrap_or(u32::MAX);
        let by_regs = device
            .regs_per_sm
            .checked_div(regs_per_block)
            .unwrap_or(u32::MAX);

        let mut blocks = by_blocks.min(by_threads).min(by_shared).min(by_regs);
        let mut limiter = if blocks == by_blocks {
            Limiter::Blocks
        } else if blocks == by_threads {
            Limiter::Threads
        } else if blocks == by_shared {
            Limiter::SharedMem
        } else {
            Limiter::Registers
        };

        // A small grid may not fill even one SM complement.
        let grid_share = kernel.grid_blocks.div_ceil(device.sms as u64);
        if (grid_share as u32) < blocks {
            blocks = grid_share as u32;
            limiter = Limiter::GridSize;
        }
        let blocks = blocks.max(1);

        Occupancy {
            blocks_per_sm: blocks,
            warps_per_sm: blocks * device.warps_for_threads(kernel.block_threads),
            limiter,
        }
    }

    /// Occupancy as a fraction of the device's warp capacity.
    pub fn fraction(&self, device: &DeviceParams) -> f64 {
        let max_warps = device.max_threads_per_sm / device.warp_size;
        self.warps_per_sm as f64 / max_warps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ThreadProgram;

    fn device() -> DeviceParams {
        DeviceParams::quadro_fx_5600()
    }

    fn kernel(block: u32, regs: u32, shared: u32, grid: u64) -> KernelInstance {
        KernelInstance {
            name: "k".into(),
            grid_blocks: grid,
            block_threads: block,
            regs_per_thread: regs,
            shared_per_block: shared,
            program: ThreadProgram {
                compute_slots: 1.0,
                mem_ops: vec![],
                syncs: 0,
                active_fraction: 1.0,
            },
        }
    }

    #[test]
    fn thread_limited_occupancy() {
        // 256-thread blocks, tiny regs: 768/256 = 3 blocks, 24 warps.
        let o = Occupancy::compute(&device(), &kernel(256, 10, 0, 1000));
        assert_eq!(o.blocks_per_sm, 3);
        assert_eq!(o.warps_per_sm, 24);
        assert_eq!(o.limiter, Limiter::Threads);
        assert_eq!(o.fraction(&device()), 1.0);
    }

    #[test]
    fn block_limited_occupancy() {
        // 32-thread blocks: the 8-block cap binds before the thread cap.
        let o = Occupancy::compute(&device(), &kernel(32, 10, 0, 1000));
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.warps_per_sm, 8);
        assert_eq!(o.limiter, Limiter::Blocks);
    }

    #[test]
    fn register_limited_occupancy() {
        // 256 threads × 20 regs = 5120 regs/block; 8192/5120 = 1 block.
        let o = Occupancy::compute(&device(), &kernel(256, 20, 0, 1000));
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::Registers);
    }

    #[test]
    fn shared_limited_occupancy() {
        // 8 KB shared per block: 16 KB / 8 KB = 2 blocks.
        let o = Occupancy::compute(&device(), &kernel(128, 8, 8 << 10, 1000));
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::SharedMem);
    }

    #[test]
    fn small_grid_limits_occupancy() {
        // 16 blocks over 16 SMs: one block per SM regardless of resources.
        let o = Occupancy::compute(&device(), &kernel(64, 10, 0, 16));
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::GridSize);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversize_block_panics() {
        let _ = Occupancy::compute(&device(), &kernel(1024, 10, 0, 10));
    }

    #[test]
    #[should_panic(expected = "registers")]
    fn unrunnable_register_block_panics() {
        let _ = Occupancy::compute(&device(), &kernel(512, 100, 0, 10));
    }
}
