//! The top-level GPU simulator: timing + launch overhead + noise.

use crate::device::DeviceParams;
use crate::instance::KernelInstance;
use crate::runtime::RuntimeError;
use crate::timing::{time_kernel, TimingBreakdown};
use gpp_fault::FaultInjector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// How many transient launch faults [`GpuSim::mean_time`] absorbs per
/// measurement run before propagating the timing of the last attempt
/// anyway (mirrors a driver-level retry).
pub const MAX_LAUNCH_RETRIES: u32 = 8;

/// Result of one simulated kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// End-to-end kernel time in seconds (launch overhead + execution +
    /// noise).
    pub time: f64,
    /// The noise-free execution-only time in seconds.
    pub ideal_exec: f64,
    /// Detailed decomposition.
    pub breakdown: TimingBreakdown,
}

/// The simulated GPU. Holds the device description and the noise RNG;
/// deterministic given the seed.
#[derive(Debug, Clone)]
pub struct GpuSim {
    device: DeviceParams,
    rng: StdRng,
    launches: u64,
    faults: Arc<FaultInjector>,
}

impl GpuSim {
    /// Creates a simulator for a device with a noise seed.
    pub fn new(device: DeviceParams, seed: u64) -> Self {
        GpuSim {
            device,
            rng: StdRng::seed_from_u64(seed),
            launches: 0,
            faults: FaultInjector::disabled(),
        }
    }

    /// Arms the device with a fault injector: subsequent launches consult
    /// [`gpp_fault::GPU_LAUNCH_TRANSIENT`]. An inactive injector leaves
    /// every code path (and the noise RNG stream) bit-identical to an
    /// unarmed simulator.
    pub fn arm_faults(&mut self, faults: Arc<FaultInjector>) {
        self.faults = faults;
    }

    /// The device description.
    pub fn device(&self) -> &DeviceParams {
        &self.device
    }

    /// Kernel launches so far.
    pub fn launch_count(&self) -> u64 {
        self.launches
    }

    /// Noise-free end-to-end time for a kernel (for tests and averaging
    /// limits).
    pub fn ideal_time(&self, kernel: &KernelInstance) -> f64 {
        let b = time_kernel(&self.device, kernel);
        self.device.launch_overhead + b.cycles / self.device.clock_hz
    }

    /// Launches a kernel: returns its simulated timing with noise.
    pub fn launch(&mut self, kernel: &KernelInstance) -> KernelTiming {
        let breakdown = time_kernel(&self.device, kernel);
        let exec = breakdown.cycles / self.device.clock_hz;
        self.launches += 1;
        // Run-to-run noise: GPU clocks are stable, so this is small and
        // multiplicative, plus sub-microsecond launch jitter.
        let sigma = self.device.noise_rel_sigma;
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        let jitter = (0.3e-6 * (-2.0 * u1.ln()).sqrt() * u2.sin()).abs();
        let time =
            (self.device.launch_overhead + exec * (1.0 + sigma * z) + jitter).max(exec * 0.5);
        KernelTiming {
            time,
            ideal_exec: exec,
            breakdown,
        }
    }

    /// Fallible launch: like [`GpuSim::launch`], but an armed fault
    /// injector may fail the attempt with
    /// [`RuntimeError::TransientFault`]. The kernel still ran (the launch
    /// counter and noise RNG advance), only its completion was lost —
    /// exactly how a transient driver error presents.
    pub fn try_launch(&mut self, kernel: &KernelInstance) -> Result<KernelTiming, RuntimeError> {
        let timing = self.launch(kernel);
        if self.faults.is_active() && self.faults.fires(gpp_fault::GPU_LAUNCH_TRANSIENT) {
            return Err(RuntimeError::TransientFault {
                launch: self.launches,
            });
        }
        Ok(timing)
    }

    /// One measurement run: retries transient faults up to
    /// [`MAX_LAUNCH_RETRIES`] times, then gives up and uses the last
    /// attempt's timing (a measurement loop must terminate even under an
    /// `always`-firing plan). With an inactive injector this is exactly
    /// one [`GpuSim::launch`].
    fn launch_measured(&mut self, kernel: &KernelInstance) -> KernelTiming {
        let mut timing = self.launch(kernel);
        if !self.faults.is_active() {
            return timing;
        }
        let mut retries = 0;
        while self.faults.fires(gpp_fault::GPU_LAUNCH_TRANSIENT) && retries < MAX_LAUNCH_RETRIES {
            timing = self.launch(kernel);
            retries += 1;
        }
        timing
    }

    /// Launches a kernel `runs` times and returns the arithmetic-mean time
    /// (the paper's measurement protocol: ten separate runs, §IV-A).
    /// Transient injected faults are retried per run, so a measurement
    /// taken under a sporadic fault plan still reflects completed
    /// launches.
    pub fn mean_time(&mut self, kernel: &KernelInstance, runs: u32) -> f64 {
        let runs = runs.max(1);
        (0..runs)
            .map(|_| self.launch_measured(kernel).time)
            .sum::<f64>()
            / runs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{MemOp, ThreadProgram};

    fn kernel(threads: u64) -> KernelInstance {
        KernelInstance::dense_1d(
            "k",
            threads,
            256,
            ThreadProgram {
                compute_slots: 4.0,
                mem_ops: vec![
                    MemOp::coalesced_load(4, 2.0),
                    MemOp::coalesced_store(4, 1.0),
                ],
                syncs: 0,
                active_fraction: 1.0,
            },
        )
    }

    #[test]
    fn launch_overhead_floors_small_kernels() {
        let sim = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 1);
        let t = sim.ideal_time(&kernel(32));
        assert!(t >= sim.device().launch_overhead);
        assert!(t < 2.0 * sim.device().launch_overhead + 1e-3);
    }

    #[test]
    fn large_kernel_time_scales_roughly_linearly() {
        let sim = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 1);
        let t1 = sim.ideal_time(&kernel(1 << 20));
        let t16 = sim.ideal_time(&kernel(1 << 24));
        let ratio = (t16 - sim.device().launch_overhead) / (t1 - sim.device().launch_overhead);
        assert!((14.0..18.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn seeded_determinism() {
        let mut a = GpuSim::new(DeviceParams::quadro_fx_5600(), 9);
        let mut b = GpuSim::new(DeviceParams::quadro_fx_5600(), 9);
        assert_eq!(
            a.launch(&kernel(1 << 20)).time,
            b.launch(&kernel(1 << 20)).time
        );
        assert_eq!(a.launch_count(), 1);
    }

    #[test]
    fn mean_time_converges_to_ideal() {
        let mut sim = GpuSim::new(DeviceParams::quadro_fx_5600(), 3);
        let ideal = sim.ideal_time(&kernel(1 << 22));
        let mean = sim.mean_time(&kernel(1 << 22), 50);
        assert!((mean / ideal - 1.0).abs() < 0.03, "{mean} vs {ideal}");
    }

    #[test]
    fn armed_empty_plan_is_bit_identical_to_unarmed() {
        let k = kernel(1 << 20);
        let mut plain = GpuSim::new(DeviceParams::quadro_fx_5600(), 9);
        let mut armed = GpuSim::new(DeviceParams::quadro_fx_5600(), 9);
        armed.arm_faults(FaultInjector::disabled());
        for _ in 0..5 {
            assert_eq!(
                plain.launch(&k).time.to_bits(),
                armed.try_launch(&k).unwrap().time.to_bits()
            );
        }
        assert_eq!(
            plain.mean_time(&k, 10).to_bits(),
            armed.mean_time(&k, 10).to_bits()
        );
    }

    #[test]
    fn transient_faults_fail_try_launch_per_plan() {
        let plan: gpp_fault::FaultPlan = "gpu.launch.transient:every=2".parse().unwrap();
        let mut sim = GpuSim::new(DeviceParams::quadro_fx_5600(), 9);
        sim.arm_faults(std::sync::Arc::new(FaultInjector::new(plan)));
        let k = kernel(1 << 20);
        assert!(sim.try_launch(&k).is_ok());
        let err = sim.try_launch(&k).unwrap_err();
        assert_eq!(err, RuntimeError::TransientFault { launch: 2 });
        assert!(err.to_string().contains("transient device fault"));
    }

    #[test]
    fn mean_time_retries_through_sporadic_transients() {
        let plan: gpp_fault::FaultPlan = "seed=4;gpu.launch.transient:p=0.3".parse().unwrap();
        let mut sim = GpuSim::new(DeviceParams::quadro_fx_5600(), 3);
        sim.arm_faults(std::sync::Arc::new(FaultInjector::new(plan)));
        let k = kernel(1 << 22);
        let ideal = sim.ideal_time(&k);
        let mean = sim.mean_time(&k, 50);
        assert!((mean / ideal - 1.0).abs() < 0.05, "{mean} vs {ideal}");
        assert!(sim.launch_count() > 50, "retries should add launches");
    }

    #[test]
    fn mean_time_terminates_under_always_firing_plan() {
        let plan: gpp_fault::FaultPlan = "gpu.launch.transient:always".parse().unwrap();
        let mut sim = GpuSim::new(DeviceParams::quadro_fx_5600(), 3);
        sim.arm_faults(std::sync::Arc::new(FaultInjector::new(plan)));
        let t = sim.mean_time(&kernel(1 << 20), 3);
        assert!(t.is_finite() && t > 0.0);
        assert_eq!(
            sim.launch_count(),
            3 * (u64::from(MAX_LAUNCH_RETRIES) + 1),
            "each run retries exactly the budget"
        );
    }

    #[test]
    fn vector_add_sanity_vs_paper_background() {
        // §II-B: vector addition on a Quadro FX 5600 is bandwidth-bound at
        // ~77 GB/s peak. 2 × 16M-float inputs + 1 output = 192 MB; the
        // kernel should take ~3 ms (192 MB / ~60 GB/s effective).
        let sim = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 1);
        let k = KernelInstance::dense_1d(
            "vadd",
            1 << 24,
            256,
            ThreadProgram {
                compute_slots: 1.0,
                mem_ops: vec![
                    MemOp::coalesced_load(4, 2.0),
                    MemOp::coalesced_store(4, 1.0),
                ],
                syncs: 0,
                active_fraction: 1.0,
            },
        );
        let t = sim.ideal_time(&k);
        assert!((2.5e-3..4.5e-3).contains(&t), "t = {t}");
    }

    #[test]
    fn faster_device_is_faster() {
        let g80 = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 1);
        let gt200 = GpuSim::new(DeviceParams::tesla_c1060().quiet(), 1);
        let k = kernel(1 << 24);
        assert!(gt200.ideal_time(&k) < g80.ideal_time(&k));
    }
}
