//! The top-level GPU simulator: timing + launch overhead + noise.

use crate::device::DeviceParams;
use crate::instance::KernelInstance;
use crate::timing::{time_kernel, TimingBreakdown};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of one simulated kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// End-to-end kernel time in seconds (launch overhead + execution +
    /// noise).
    pub time: f64,
    /// The noise-free execution-only time in seconds.
    pub ideal_exec: f64,
    /// Detailed decomposition.
    pub breakdown: TimingBreakdown,
}

/// The simulated GPU. Holds the device description and the noise RNG;
/// deterministic given the seed.
#[derive(Debug, Clone)]
pub struct GpuSim {
    device: DeviceParams,
    rng: StdRng,
    launches: u64,
}

impl GpuSim {
    /// Creates a simulator for a device with a noise seed.
    pub fn new(device: DeviceParams, seed: u64) -> Self {
        GpuSim {
            device,
            rng: StdRng::seed_from_u64(seed),
            launches: 0,
        }
    }

    /// The device description.
    pub fn device(&self) -> &DeviceParams {
        &self.device
    }

    /// Kernel launches so far.
    pub fn launch_count(&self) -> u64 {
        self.launches
    }

    /// Noise-free end-to-end time for a kernel (for tests and averaging
    /// limits).
    pub fn ideal_time(&self, kernel: &KernelInstance) -> f64 {
        let b = time_kernel(&self.device, kernel);
        self.device.launch_overhead + b.cycles / self.device.clock_hz
    }

    /// Launches a kernel: returns its simulated timing with noise.
    pub fn launch(&mut self, kernel: &KernelInstance) -> KernelTiming {
        let breakdown = time_kernel(&self.device, kernel);
        let exec = breakdown.cycles / self.device.clock_hz;
        self.launches += 1;
        // Run-to-run noise: GPU clocks are stable, so this is small and
        // multiplicative, plus sub-microsecond launch jitter.
        let sigma = self.device.noise_rel_sigma;
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        let jitter = (0.3e-6 * (-2.0 * u1.ln()).sqrt() * u2.sin()).abs();
        let time =
            (self.device.launch_overhead + exec * (1.0 + sigma * z) + jitter).max(exec * 0.5);
        KernelTiming {
            time,
            ideal_exec: exec,
            breakdown,
        }
    }

    /// Launches a kernel `runs` times and returns the arithmetic-mean time
    /// (the paper's measurement protocol: ten separate runs, §IV-A).
    pub fn mean_time(&mut self, kernel: &KernelInstance, runs: u32) -> f64 {
        let runs = runs.max(1);
        (0..runs).map(|_| self.launch(kernel).time).sum::<f64>() / runs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{MemOp, ThreadProgram};

    fn kernel(threads: u64) -> KernelInstance {
        KernelInstance::dense_1d(
            "k",
            threads,
            256,
            ThreadProgram {
                compute_slots: 4.0,
                mem_ops: vec![
                    MemOp::coalesced_load(4, 2.0),
                    MemOp::coalesced_store(4, 1.0),
                ],
                syncs: 0,
                active_fraction: 1.0,
            },
        )
    }

    #[test]
    fn launch_overhead_floors_small_kernels() {
        let sim = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 1);
        let t = sim.ideal_time(&kernel(32));
        assert!(t >= sim.device().launch_overhead);
        assert!(t < 2.0 * sim.device().launch_overhead + 1e-3);
    }

    #[test]
    fn large_kernel_time_scales_roughly_linearly() {
        let sim = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 1);
        let t1 = sim.ideal_time(&kernel(1 << 20));
        let t16 = sim.ideal_time(&kernel(1 << 24));
        let ratio = (t16 - sim.device().launch_overhead) / (t1 - sim.device().launch_overhead);
        assert!((14.0..18.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn seeded_determinism() {
        let mut a = GpuSim::new(DeviceParams::quadro_fx_5600(), 9);
        let mut b = GpuSim::new(DeviceParams::quadro_fx_5600(), 9);
        assert_eq!(
            a.launch(&kernel(1 << 20)).time,
            b.launch(&kernel(1 << 20)).time
        );
        assert_eq!(a.launch_count(), 1);
    }

    #[test]
    fn mean_time_converges_to_ideal() {
        let mut sim = GpuSim::new(DeviceParams::quadro_fx_5600(), 3);
        let ideal = sim.ideal_time(&kernel(1 << 22));
        let mean = sim.mean_time(&kernel(1 << 22), 50);
        assert!((mean / ideal - 1.0).abs() < 0.03, "{mean} vs {ideal}");
    }

    #[test]
    fn vector_add_sanity_vs_paper_background() {
        // §II-B: vector addition on a Quadro FX 5600 is bandwidth-bound at
        // ~77 GB/s peak. 2 × 16M-float inputs + 1 output = 192 MB; the
        // kernel should take ~3 ms (192 MB / ~60 GB/s effective).
        let sim = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 1);
        let k = KernelInstance::dense_1d(
            "vadd",
            1 << 24,
            256,
            ThreadProgram {
                compute_slots: 1.0,
                mem_ops: vec![
                    MemOp::coalesced_load(4, 2.0),
                    MemOp::coalesced_store(4, 1.0),
                ],
                syncs: 0,
                active_fraction: 1.0,
            },
        );
        let t = sim.ideal_time(&k);
        assert!((2.5e-3..4.5e-3).contains(&t), "t = {t}");
    }

    #[test]
    fn faster_device_is_faster() {
        let g80 = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 1);
        let gt200 = GpuSim::new(DeviceParams::tesla_c1060().quiet(), 1);
        let k = kernel(1 << 24);
        assert!(gt200.ideal_time(&k) < g80.ideal_time(&k));
    }
}
