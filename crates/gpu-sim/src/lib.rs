//! Cycle-approximate GPU timing simulator (G80 class).
//!
//! The paper measures "real" kernel times on an NVIDIA Quadro FX 5600 — a
//! G80-generation part with 16 streaming multiprocessors (SMs) of 8 scalar
//! processors each, a 384-bit GDDR3 interface (76.8 GB/s), and the strict
//! CUDA 1.x coalescing rules. We have no such hardware, so this crate
//! simulates it: given a *lowered kernel instance* (grid/block geometry plus
//! a per-thread instruction summary), it resolves
//!
//! * occupancy (blocks per SM limited by threads, registers, shared memory),
//! * per-warp compute cycles including divergence serialization,
//! * per-warp memory transactions under G80 half-warp coalescing rules,
//!   including segment-granularity waste and misalignment penalties,
//! * latency hiding limited by the number of resident warps
//!   (the max(compute-bound, bandwidth-bound, latency-bound) form of the
//!   MWP/CWP analysis),
//! * wave quantization: blocks are scheduled in waves of
//!   `SMs × blocks_per_SM`, and the trailing partial wave runs at reduced
//!   occupancy — a tail effect analytic models typically smooth over,
//! * fixed kernel-launch overhead and seeded run-to-run noise.
//!
//! The deliberate asymmetry between this simulator and the analytic model
//! in `gpp-gpu-model` (which ignores wave tails, approximates divergence,
//! and smooths latency exposure) is what gives GROPHECY++ a realistic,
//! non-circular kernel-time prediction error — the paper reports 15% on
//! average (§I).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod instance;
pub mod occupancy;
pub mod profile;
pub mod runtime;
pub mod sim;
pub mod timing;

pub use device::DeviceParams;
pub use instance::{KernelInstance, MemOp, ThreadProgram};
pub use occupancy::Occupancy;
pub use profile::profile;
pub use runtime::{DeviceBuffer, DeviceContext, DeviceMemory, RuntimeError};
pub use sim::{GpuSim, KernelTiming};
pub use timing::TimingBreakdown;
