//! The wave-based SM timing engine.
//!
//! Blocks are scheduled onto SMs in *waves* of `SMs × blocks_per_SM`
//! blocks. For each wave the SM time is the maximum of three bounds:
//!
//! * **compute-bound** — every resident warp's arithmetic issued back to
//!   back (`W × compute_cycles_per_warp`),
//! * **bandwidth-bound** — the wave's DRAM traffic (with G80 segment
//!   granularity and coalescing waste) through the SM's bandwidth share,
//! * **latency-bound** — one warp's serial critical path
//!   (`mem_insts × latency + compute`); with few resident warps nothing
//!   hides DRAM latency and the SM idles.
//!
//! This is the max-form of Hong & Kim's MWP/CWP analysis, applied per wave
//! so that the trailing partial wave (fewer blocks, fewer warps) runs at
//! its own, lower occupancy — the "tail effect".

use crate::device::DeviceParams;
use crate::instance::{KernelInstance, MemOp, ThreadProgram};
use crate::occupancy::Occupancy;
use gpp_skeleton::CoalesceClass;

/// Which bound dominated the kernel's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Arithmetic throughput.
    Compute,
    /// DRAM bandwidth.
    Bandwidth,
    /// Exposed memory latency (insufficient warps).
    Latency,
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Compute => write!(f, "compute"),
            Bound::Bandwidth => write!(f, "bandwidth"),
            Bound::Latency => write!(f, "latency"),
        }
    }
}

/// Detailed timing decomposition of one simulated kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingBreakdown {
    /// Total shader cycles across all waves.
    pub cycles: f64,
    /// Full waves executed.
    pub full_waves: u64,
    /// True if a trailing partial wave ran.
    pub has_partial_wave: bool,
    /// The dominating bound of a full wave.
    pub bound: Bound,
    /// Occupancy used by full waves.
    pub occupancy: Occupancy,
    /// DRAM bytes actually moved (including segment waste).
    pub dram_bytes: f64,
    /// Per-full-wave cycles, for diagnostics.
    pub cycles_per_wave: f64,
}

/// Per-warp derived quantities.
struct WarpCosts {
    /// Arithmetic + shared-memory + sync issue cycles per warp.
    compute_cycles: f64,
    /// Global memory instructions per warp (per-thread count; warp issues
    /// one instruction for all lanes).
    mem_insts: f64,
    /// DRAM bytes moved per warp in streaming (row-buffer-friendly)
    /// transaction patterns.
    stream_bytes: f64,
    /// DRAM bytes moved per warp in scattered patterns, serviced at
    /// `scatter_efficiency` of streaming bandwidth.
    scatter_bytes: f64,
}

impl WarpCosts {
    fn dram_bytes(&self) -> f64 {
        self.stream_bytes + self.scatter_bytes
    }
}

/// DRAM transactions per half-warp for one access, including alignment
/// and wide-element effects.
fn transactions_per_halfwarp(device: &DeviceParams, op: &MemOp) -> f64 {
    let half = (device.warp_size / 2) as f64;
    match op.class {
        CoalesceClass::Coalesced => {
            // A half-warp touches half×bytes contiguous bytes =
            // that many segments if aligned.
            let segs = (half * op.bytes as f64 / device.segment_bytes as f64)
                .ceil()
                .max(1.0);
            if op.aligned {
                segs
            } else {
                // G80 strict coalescing: misalignment serializes (up to
                // one transaction per lane, device-dependent factor).
                (segs * device.misaligned_factor).min(half)
            }
        }
        CoalesceClass::Broadcast => 1.0,
        CoalesceClass::Strided(s) => (s as f64).min(half),
        CoalesceClass::Irregular => half,
    }
}

fn warp_costs(device: &DeviceParams, prog: &ThreadProgram) -> WarpCosts {
    let cpi = device.cycles_per_warp_inst();
    let divergence = 1.0 / prog.active_fraction.clamp(1e-6, 1.0);

    let shared_insts: f64 = prog
        .mem_ops
        .iter()
        .filter(|m| m.shared)
        .map(|m| m.count)
        .sum();
    // Arithmetic + shared-memory accesses issue from the same pipeline;
    // barriers cost a pipeline drain each.
    let compute_cycles =
        (prog.compute_slots + shared_insts) * cpi * divergence + prog.syncs as f64 * 24.0;

    let mut mem_insts = 0.0;
    let mut stream_bytes = 0.0;
    let mut scatter_bytes = 0.0;
    for op in prog.mem_ops.iter().filter(|m| !m.shared) {
        mem_insts += op.count;
        let trans = transactions_per_halfwarp(device, op);
        // Two half-warps per warp; each transaction moves a full segment.
        let bytes = op.count * 2.0 * trans * device.segment_bytes as f64;
        // Misaligned-but-sequential accesses still walk consecutive DRAM
        // rows, so they count as streaming; only strided/irregular
        // patterns thrash row buffers.
        let streaming = matches!(
            op.class,
            CoalesceClass::Coalesced | CoalesceClass::Broadcast
        );
        if streaming {
            stream_bytes += bytes;
        } else {
            scatter_bytes += bytes;
        }
    }

    WarpCosts {
        compute_cycles,
        mem_insts,
        stream_bytes,
        scatter_bytes,
    }
}

/// Cycles for one wave with `warps` resident warps per SM.
fn wave_cycles(device: &DeviceParams, costs: &WarpCosts, warps: u32) -> (f64, Bound) {
    let w = warps as f64;
    let compute_total = w * costs.compute_cycles;
    // The SM's share of device bandwidth, expressed in cycles to service
    // the wave's traffic; scattered traffic runs at reduced DRAM
    // efficiency (row-buffer thrash).
    let bw_per_sm = device.effective_mem_bw() / device.sms as f64;
    let service_bytes = costs.stream_bytes + costs.scatter_bytes / device.scatter_efficiency;
    let bandwidth_total = w * service_bytes / bw_per_sm * device.clock_hz;
    // One warp's serial critical path: issue each memory instruction, wait
    // out its latency, interleave compute.
    let latency_total = costs.mem_insts * device.mem_latency_cycles + costs.compute_cycles;

    let cycles = compute_total.max(bandwidth_total).max(latency_total);
    let bound = if cycles == compute_total && compute_total >= bandwidth_total {
        Bound::Compute
    } else if cycles == bandwidth_total {
        Bound::Bandwidth
    } else {
        Bound::Latency
    };
    (cycles, bound)
}

/// Computes the full timing decomposition of a kernel on a device.
pub fn time_kernel(device: &DeviceParams, kernel: &KernelInstance) -> TimingBreakdown {
    let occ = Occupancy::compute(device, kernel);
    let costs = warp_costs(device, &kernel.program);

    let blocks_per_wave = (device.sms * occ.blocks_per_sm) as u64;
    let full_waves = kernel.grid_blocks / blocks_per_wave;
    let rem_blocks = kernel.grid_blocks % blocks_per_wave;

    let (per_wave, bound) = wave_cycles(device, &costs, occ.warps_per_sm);
    let mut cycles = full_waves as f64 * per_wave;

    if rem_blocks > 0 {
        // The tail wave: remaining blocks spread over the SMs.
        let tail_blocks_per_sm = rem_blocks.div_ceil(device.sms as u64) as u32;
        let tail_warps = tail_blocks_per_sm * device.warps_for_threads(kernel.block_threads);
        let (tail_cycles, _) = wave_cycles(device, &costs, tail_warps);
        cycles += tail_cycles;
    }

    let warps_per_block = device.warps_for_threads(kernel.block_threads) as f64;
    let dram_bytes = kernel.grid_blocks as f64 * warps_per_block * costs.dram_bytes();

    TimingBreakdown {
        cycles,
        full_waves,
        has_partial_wave: rem_blocks > 0,
        bound,
        occupancy: occ,
        dram_bytes,
        cycles_per_wave: per_wave,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{KernelInstance, MemOp, ThreadProgram};

    fn device() -> DeviceParams {
        DeviceParams::quadro_fx_5600()
    }

    fn streaming_kernel(threads: u64) -> KernelInstance {
        KernelInstance::dense_1d(
            "stream",
            threads,
            256,
            ThreadProgram {
                compute_slots: 2.0,
                mem_ops: vec![
                    MemOp::coalesced_load(4, 2.0),
                    MemOp::coalesced_store(4, 1.0),
                ],
                syncs: 0,
                active_fraction: 1.0,
            },
        )
    }

    #[test]
    fn streaming_kernel_is_bandwidth_bound() {
        let t = time_kernel(&device(), &streaming_kernel(1 << 22));
        assert_eq!(t.bound, Bound::Bandwidth);
        // 4M threads × 12 B = 48 MB of useful traffic; with 64 B segments
        // and perfect coalescing there is no waste.
        assert!(
            (t.dram_bytes - 48.0 * (1 << 20) as f64).abs() < 1e3,
            "{}",
            t.dram_bytes
        );
        // Time ≈ bytes / effective bw.
        let secs = t.cycles / device().clock_hz;
        let expect = t.dram_bytes / device().effective_mem_bw();
        assert!((secs / expect - 1.0).abs() < 0.10, "{secs} vs {expect}");
    }

    #[test]
    fn compute_heavy_kernel_is_compute_bound() {
        let k = KernelInstance::dense_1d(
            "fma",
            1 << 22,
            256,
            ThreadProgram {
                compute_slots: 500.0,
                mem_ops: vec![MemOp::coalesced_load(4, 1.0)],
                syncs: 0,
                active_fraction: 1.0,
            },
        );
        let t = time_kernel(&device(), &k);
        assert_eq!(t.bound, Bound::Compute);
    }

    #[test]
    fn tiny_grid_is_latency_bound() {
        let k = KernelInstance::dense_1d(
            "tiny",
            64,
            64,
            ThreadProgram {
                compute_slots: 2.0,
                mem_ops: vec![MemOp::coalesced_load(4, 1.0)],
                syncs: 0,
                active_fraction: 1.0,
            },
        );
        let t = time_kernel(&device(), &k);
        assert_eq!(t.bound, Bound::Latency);
        assert_eq!(t.full_waves, 0);
        assert!(t.has_partial_wave);
    }

    #[test]
    fn irregular_access_inflates_traffic() {
        let mut k = streaming_kernel(1 << 20);
        k.program.mem_ops[0].class = CoalesceClass::Irregular;
        let t_bad = time_kernel(&device(), &k);
        let t_good = time_kernel(&device(), &streaming_kernel(1 << 20));
        assert!(t_bad.dram_bytes > 5.0 * t_good.dram_bytes);
        assert!(t_bad.cycles > t_good.cycles);
    }

    #[test]
    fn misaligned_coalesced_pays_penalty() {
        let mut k = streaming_kernel(1 << 20);
        k.program.mem_ops[0].aligned = false;
        let t_mis = time_kernel(&device(), &k);
        let t_ok = time_kernel(&device(), &streaming_kernel(1 << 20));
        assert!(t_mis.dram_bytes > 2.0 * t_ok.dram_bytes);
        // On a relaxed-coalescing device the penalty shrinks.
        let t_c1060 = time_kernel(&DeviceParams::tesla_c1060(), &k);
        let frac_g80 = t_mis.dram_bytes / t_ok.dram_bytes;
        let t_ok_c1060 = time_kernel(&DeviceParams::tesla_c1060(), &streaming_kernel(1 << 20));
        let frac_gt200 = t_c1060.dram_bytes / t_ok_c1060.dram_bytes;
        assert!(frac_gt200 < frac_g80);
    }

    #[test]
    fn divergence_slows_compute() {
        let mk = |frac: f64| {
            KernelInstance::dense_1d(
                "div",
                1 << 20,
                256,
                ThreadProgram {
                    compute_slots: 300.0,
                    mem_ops: vec![],
                    syncs: 0,
                    active_fraction: frac,
                },
            )
        };
        let t_full = time_kernel(&device(), &mk(1.0));
        let t_half = time_kernel(&device(), &mk(0.5));
        assert!((t_half.cycles / t_full.cycles - 2.0).abs() < 0.05);
    }

    #[test]
    fn wave_quantization_tail() {
        // One extra block beyond a whole number of waves costs a whole
        // extra (low-occupancy) wave, not 1/Nth of one.
        let d = device();
        let probe = streaming_kernel(256);
        let occ = crate::occupancy::Occupancy::compute(&d, &{
            let mut k = probe.clone();
            k.grid_blocks = u64::MAX / 1024; // big grid: resource-limited occupancy
            k
        });
        let wave_blocks = (d.sms * occ.blocks_per_sm) as u64;
        let t_full = time_kernel(&d, &streaming_kernel(wave_blocks * 256));
        let t_plus1 = time_kernel(&d, &streaming_kernel((wave_blocks + 1) * 256));
        assert_eq!(t_full.full_waves, 1);
        assert!(!t_full.has_partial_wave);
        assert!(t_plus1.has_partial_wave);
        // The tail wave costs real time: far worse than linear scaling.
        assert!(t_plus1.cycles > t_full.cycles * 1.05);
    }

    #[test]
    fn shared_ops_cost_issue_slots_not_bandwidth() {
        let base = streaming_kernel(1 << 20);
        let mut shared = base.clone();
        shared.program.mem_ops.push(MemOp {
            shared: true,
            ..MemOp::coalesced_load(4, 10.0)
        });
        let t_base = time_kernel(&device(), &base);
        let t_shared = time_kernel(&device(), &shared);
        assert_eq!(t_base.dram_bytes, t_shared.dram_bytes);
        // Still bandwidth bound here, so cycles barely move; but the
        // compute component exists. With only shared ops left, the kernel
        // becomes compute-(issue-)bound and has zero DRAM traffic:
        let mut heavy = shared.clone();
        heavy.program.mem_ops.retain(|m| m.shared);
        heavy.program.compute_slots = 0.0;
        let t_heavy = time_kernel(&device(), &heavy);
        assert_eq!(t_heavy.bound, Bound::Compute);
        assert_eq!(t_heavy.dram_bytes, 0.0);
        assert!(t_heavy.cycles > 0.0);
    }

    #[test]
    fn wide_elements_take_multiple_segments() {
        // 16-byte elements: a half-warp touches 256 B = 4 segments.
        let k = KernelInstance::dense_1d(
            "wide",
            1 << 20,
            256,
            ThreadProgram {
                compute_slots: 1.0,
                mem_ops: vec![MemOp::coalesced_load(16, 1.0)],
                syncs: 0,
                active_fraction: 1.0,
            },
        );
        let t = time_kernel(&device(), &k);
        // Useful = wasteless: 1M × 16 B.
        assert!((t.dram_bytes - (1u64 << 20) as f64 * 16.0).abs() < 1e3);
    }

    #[test]
    fn broadcast_is_never_worse_than_coalesced() {
        // For 4-byte elements a half-warp's coalesced footprint is exactly
        // one segment, so broadcast ties; for wide elements broadcast needs
        // fewer segments and wins.
        let mut k4 = streaming_kernel(1 << 20);
        k4.program.mem_ops[0].class = CoalesceClass::Broadcast;
        let t4 = time_kernel(&device(), &k4);
        let t4_coal = time_kernel(&device(), &streaming_kernel(1 << 20));
        assert!(t4.dram_bytes <= t4_coal.dram_bytes);

        let wide = |class| {
            KernelInstance::dense_1d(
                "wide",
                1 << 20,
                256,
                ThreadProgram {
                    compute_slots: 1.0,
                    mem_ops: vec![MemOp {
                        class,
                        ..MemOp::coalesced_load(16, 1.0)
                    }],
                    syncs: 0,
                    active_fraction: 1.0,
                },
            )
        };
        let t_b = time_kernel(&device(), &wide(CoalesceClass::Broadcast));
        let t_c = time_kernel(&device(), &wide(CoalesceClass::Coalesced));
        assert!(t_b.dram_bytes < t_c.dram_bytes);
    }
}
