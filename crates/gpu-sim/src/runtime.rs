//! A CUDA-like device runtime facade: device memory allocation with
//! capacity accounting, streams, and event timing over the simulator.
//!
//! The paper's workloads must actually fit in the Quadro FX 5600's 1.5 GB
//! before any timing matters (`cudaMalloc` fails otherwise); this module
//! provides that reality check plus the small host-API surface a ported
//! application would use.

use crate::device::DeviceParams;
use crate::instance::KernelInstance;
use crate::sim::{GpuSim, KernelTiming};
use std::collections::BTreeMap;

/// Errors the device runtime can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The allocation does not fit in device memory.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// A buffer id was used after being freed (or never existed).
    InvalidBuffer(u64),
    /// A kernel launch failed transiently (driver hiccup, ECC retry) —
    /// only ever produced under an active fault plan; retrying is expected
    /// to succeed.
    TransientFault {
        /// The simulator's launch counter when the fault fired.
        launch: u64,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::OutOfMemory { requested, free } => write!(
                f,
                "device out of memory: requested {requested} B with only {free} B free"
            ),
            RuntimeError::InvalidBuffer(id) => write!(f, "invalid device buffer id {id}"),
            RuntimeError::TransientFault { launch } => {
                write!(f, "transient device fault at kernel launch {launch}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A handle to one device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceBuffer {
    id: u64,
    bytes: u64,
}

impl DeviceBuffer {
    /// The allocation size.
    pub fn len(&self) -> u64 {
        self.bytes
    }

    /// True for zero-byte allocations.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

/// Device memory book-keeping (a simple first-fit-by-size accounting — we
/// track capacity, not fragmentation).
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    capacity: u64,
    allocations: BTreeMap<u64, u64>,
    next_id: u64,
    peak: u64,
}

impl DeviceMemory {
    /// A fresh memory of the given capacity.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            capacity,
            allocations: BTreeMap::new(),
            next_id: 1,
            peak: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.allocations.values().sum()
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used()
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Allocates `bytes` (like `cudaMalloc`).
    pub fn alloc(&mut self, bytes: u64) -> Result<DeviceBuffer, RuntimeError> {
        if bytes > self.free_bytes() {
            return Err(RuntimeError::OutOfMemory {
                requested: bytes,
                free: self.free_bytes(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.allocations.insert(id, bytes);
        self.peak = self.peak.max(self.used());
        Ok(DeviceBuffer { id, bytes })
    }

    /// Frees a buffer (like `cudaFree`).
    pub fn free(&mut self, buf: DeviceBuffer) -> Result<(), RuntimeError> {
        self.allocations
            .remove(&buf.id)
            .map(|_| ())
            .ok_or(RuntimeError::InvalidBuffer(buf.id))
    }
}

/// A CUDA-like context over the simulator: device memory plus in-order
/// kernel execution with event timestamps.
pub struct DeviceContext {
    memory: DeviceMemory,
    sim: GpuSim,
    /// Simulated device clock: seconds of GPU work submitted so far.
    timeline: f64,
}

impl DeviceContext {
    /// Creates a context for a device with a noise seed.
    pub fn new(device: DeviceParams, seed: u64) -> Self {
        let memory = DeviceMemory::new(device.dram_bytes);
        DeviceContext {
            memory,
            sim: GpuSim::new(device, seed),
            timeline: 0.0,
        }
    }

    /// The memory book-keeper.
    pub fn memory(&mut self) -> &mut DeviceMemory {
        &mut self.memory
    }

    /// Launches a kernel in order; returns its timing and advances the
    /// device timeline (the "stream").
    pub fn launch(&mut self, kernel: &KernelInstance) -> KernelTiming {
        let t = self.sim.launch(kernel);
        self.timeline += t.time;
        t
    }

    /// Seconds of device work submitted so far (an "event" at stream end).
    pub fn elapsed(&self) -> f64 {
        self.timeline
    }

    /// Resets the event timeline (like re-recording a start event).
    pub fn reset_timeline(&mut self) {
        self.timeline = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{MemOp, ThreadProgram};

    fn ctx() -> DeviceContext {
        DeviceContext::new(DeviceParams::quadro_fx_5600().quiet(), 1)
    }

    #[test]
    fn alloc_free_accounting() {
        let mut c = ctx();
        let cap = c.memory().capacity();
        assert_eq!(cap, 1536 << 20);
        let a = c.memory().alloc(100 << 20).unwrap();
        let b = c.memory().alloc(200 << 20).unwrap();
        assert_eq!(c.memory().used(), 300 << 20);
        assert_eq!(c.memory().peak(), 300 << 20);
        c.memory().free(a).unwrap();
        assert_eq!(c.memory().used(), 200 << 20);
        assert_eq!(c.memory().peak(), 300 << 20); // peak sticks
        c.memory().free(b).unwrap();
        assert_eq!(c.memory().free_bytes(), cap);
    }

    #[test]
    fn oom_is_reported_not_silent() {
        let mut c = ctx();
        let _big = c.memory().alloc(1400 << 20).unwrap();
        let err = c.memory().alloc(200 << 20).unwrap_err();
        match err {
            RuntimeError::OutOfMemory { requested, free } => {
                assert_eq!(requested, 200 << 20);
                assert!(free < 200 << 20);
            }
            other => panic!("wrong error {other}"),
        }
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn double_free_rejected() {
        let mut c = ctx();
        let a = c.memory().alloc(1024).unwrap();
        c.memory().free(a).unwrap();
        assert_eq!(c.memory().free(a), Err(RuntimeError::InvalidBuffer(a.id)));
    }

    #[test]
    fn timeline_accumulates_launches() {
        let mut c = ctx();
        let k = KernelInstance::dense_1d(
            "k",
            1 << 20,
            256,
            ThreadProgram {
                compute_slots: 4.0,
                mem_ops: vec![MemOp::coalesced_load(4, 1.0)],
                syncs: 0,
                active_fraction: 1.0,
            },
        );
        let t1 = c.launch(&k).time;
        let t2 = c.launch(&k).time;
        assert!((c.elapsed() - (t1 + t2)).abs() < 1e-12);
        c.reset_timeline();
        assert_eq!(c.elapsed(), 0.0);
    }

    #[test]
    fn paper_workloads_fit_in_fx5600_memory() {
        // The largest paper dataset (SRAD 4096²: two 64 MB arrays) must
        // fit comfortably in 1.5 GB.
        let mut c = ctx();
        let img = c.memory().alloc(64 << 20).unwrap();
        let coeff = c.memory().alloc(64 << 20).unwrap();
        assert!(c.memory().free_bytes() > 1 << 30);
        c.memory().free(img).unwrap();
        c.memory().free(coeff).unwrap();
    }

    #[test]
    fn buffer_len_helpers() {
        let mut c = ctx();
        let a = c.memory().alloc(0).unwrap();
        assert!(a.is_empty());
        let b = c.memory().alloc(42).unwrap();
        assert_eq!(b.len(), 42);
    }
}
