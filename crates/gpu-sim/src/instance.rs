//! Lowered kernel instances — the concrete form a kernel takes after
//! GROPHECY picks a transformation (grid/block geometry, shared-memory
//! staging, etc.). This is the simulator's input, standing in for the
//! hand-written CUDA implementation of the paper's methodology ("the real
//! kernel execution time is measured using a hand-coded version of the
//! kernel that employs the same optimization strategies suggested by
//! GROPHECY", §IV-A).

use gpp_skeleton::CoalesceClass;

/// One global- or shared-memory access stream executed by every thread.
#[derive(Debug, Clone, PartialEq)]
pub struct MemOp {
    /// Element size in bytes.
    pub bytes: u32,
    /// Coalescing behaviour across the threads of a half-warp.
    pub class: CoalesceClass,
    /// Times each thread executes this access.
    pub count: f64,
    /// True for loads, false for stores.
    pub is_load: bool,
    /// True if the access is served from on-chip shared memory (placed
    /// there by a staging transformation) rather than DRAM.
    pub shared: bool,
    /// True if the base address is segment-aligned for the half-warp.
    /// G80 coalescing requires alignment; stencil neighbour loads
    /// (`x[i±1]`) are the classic misaligned case.
    pub aligned: bool,
}

impl MemOp {
    /// A simple aligned, coalesced global load executed `count` times.
    pub fn coalesced_load(bytes: u32, count: f64) -> Self {
        MemOp {
            bytes,
            class: CoalesceClass::Coalesced,
            count,
            is_load: true,
            shared: false,
            aligned: true,
        }
    }

    /// A simple aligned, coalesced global store executed `count` times.
    pub fn coalesced_store(bytes: u32, count: f64) -> Self {
        MemOp {
            bytes,
            class: CoalesceClass::Coalesced,
            count,
            is_load: false,
            shared: false,
            aligned: true,
        }
    }
}

/// The per-thread instruction summary of a lowered kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadProgram {
    /// Throughput-weighted ALU instruction slots per thread (see
    /// `gpp_skeleton::Flops::weighted`), excluding memory instructions.
    pub compute_slots: f64,
    /// Memory access streams.
    pub mem_ops: Vec<MemOp>,
    /// `__syncthreads()` barriers per thread.
    pub syncs: u32,
    /// Fraction of warp lanes doing useful work through divergent regions
    /// (1.0 = uniform control flow). The warp pays for all lanes, so
    /// effective compute cycles scale by `1/active_fraction`.
    pub active_fraction: f64,
}

impl ThreadProgram {
    /// Global-memory (non-shared) bytes requested per thread.
    pub fn global_bytes_per_thread(&self) -> f64 {
        self.mem_ops
            .iter()
            .filter(|m| !m.shared)
            .map(|m| m.bytes as f64 * m.count)
            .sum()
    }

    /// Number of global memory instructions per thread.
    pub fn global_mem_insts(&self) -> f64 {
        self.mem_ops
            .iter()
            .filter(|m| !m.shared)
            .map(|m| m.count)
            .sum()
    }
}

/// A fully specified kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInstance {
    /// Kernel name, for reports.
    pub name: String,
    /// Number of thread blocks in the grid.
    pub grid_blocks: u64,
    /// Threads per block.
    pub block_threads: u32,
    /// Registers per thread (occupancy limiter).
    pub regs_per_thread: u32,
    /// Shared memory per block, bytes (occupancy limiter).
    pub shared_per_block: u32,
    /// What each thread does.
    pub program: ThreadProgram,
}

impl KernelInstance {
    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks * self.block_threads as u64
    }

    /// Total global-memory traffic requested (before segment waste).
    pub fn total_global_bytes(&self) -> f64 {
        self.total_threads() as f64 * self.program.global_bytes_per_thread()
    }

    /// Convenience constructor for a dense 1-D data-parallel kernel.
    pub fn dense_1d(
        name: impl Into<String>,
        threads: u64,
        block_threads: u32,
        program: ThreadProgram,
    ) -> Self {
        assert!(block_threads > 0, "block size must be positive");
        KernelInstance {
            name: name.into(),
            grid_blocks: threads.div_ceil(block_threads as u64),
            block_threads,
            regs_per_thread: 16,
            shared_per_block: 0,
            program,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog() -> ThreadProgram {
        ThreadProgram {
            compute_slots: 10.0,
            mem_ops: vec![
                MemOp::coalesced_load(4, 2.0),
                MemOp::coalesced_store(4, 1.0),
                MemOp {
                    shared: true,
                    ..MemOp::coalesced_load(4, 3.0)
                },
            ],
            syncs: 1,
            active_fraction: 1.0,
        }
    }

    #[test]
    fn per_thread_byte_accounting_excludes_shared() {
        let p = prog();
        assert_eq!(p.global_bytes_per_thread(), 12.0);
        assert_eq!(p.global_mem_insts(), 3.0);
    }

    #[test]
    fn dense_1d_rounds_grid_up() {
        let k = KernelInstance::dense_1d("k", 1000, 256, prog());
        assert_eq!(k.grid_blocks, 4);
        assert_eq!(k.total_threads(), 1024);
        assert_eq!(k.total_global_bytes(), 1024.0 * 12.0);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        let _ = KernelInstance::dense_1d("k", 10, 0, prog());
    }
}
