//! Property tests for the GPU timing simulator: monotonicity, occupancy
//! limits, and accounting invariants.

use gpp_gpu_sim::{DeviceParams, GpuSim, KernelInstance, MemOp, Occupancy, ThreadProgram};
use gpp_skeleton::CoalesceClass;
use proptest::prelude::*;

fn any_class() -> impl Strategy<Value = CoalesceClass> {
    prop_oneof![
        Just(CoalesceClass::Coalesced),
        Just(CoalesceClass::Broadcast),
        (2u32..32).prop_map(CoalesceClass::Strided),
        Just(CoalesceClass::Irregular),
    ]
}

fn any_program() -> impl Strategy<Value = ThreadProgram> {
    (
        0.0f64..200.0,
        prop::collection::vec(
            (
                prop_oneof![Just(4u32), Just(8), Just(16)],
                any_class(),
                1.0f64..8.0,
                any::<bool>(),
                any::<bool>(),
            ),
            0..5,
        ),
        0u32..3,
        0.25f64..=1.0,
    )
        .prop_map(|(slots, ops, syncs, active)| ThreadProgram {
            compute_slots: slots,
            mem_ops: ops
                .into_iter()
                .map(|(bytes, class, count, is_load, aligned)| MemOp {
                    bytes,
                    class,
                    count,
                    is_load,
                    shared: false,
                    aligned,
                })
                .collect(),
            syncs,
            active_fraction: active,
        })
}

fn kernel(threads: u64, block: u32, program: ThreadProgram) -> KernelInstance {
    KernelInstance::dense_1d("k", threads, block, program)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn time_is_positive_and_finite(
        threads in 1u64..(1 << 22),
        block in prop_oneof![Just(64u32), Just(128), Just(256)],
        program in any_program(),
    ) {
        let sim = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 0);
        let t = sim.ideal_time(&kernel(threads, block, program));
        prop_assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn more_threads_never_run_faster(
        threads in 256u64..(1 << 20),
        extra in 1u64..(1 << 18),
        program in any_program(),
    ) {
        let sim = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 0);
        let t1 = sim.ideal_time(&kernel(threads, 256, program.clone()));
        let t2 = sim.ideal_time(&kernel(threads + extra, 256, program));
        prop_assert!(t2 >= t1 * 0.999, "t1={t1}, t2={t2}");
    }

    #[test]
    fn more_compute_never_runs_faster(
        threads in 256u64..(1 << 20),
        program in any_program(),
        extra_slots in 1.0f64..500.0,
    ) {
        let sim = GpuSim::new(DeviceParams::quadro_fx_5600().quiet(), 0);
        let mut heavier = program.clone();
        heavier.compute_slots += extra_slots;
        let t1 = sim.ideal_time(&kernel(threads, 256, program));
        let t2 = sim.ideal_time(&kernel(threads, 256, heavier));
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn occupancy_respects_all_caps(
        block in prop_oneof![Just(64u32), Just(128), Just(192), Just(256), Just(384), Just(512)],
        regs in 4u32..16,
        shared in prop_oneof![Just(0u32), Just(2048), Just(4096), Just(8192)],
        grid in 1u64..10_000,
    ) {
        let d = DeviceParams::quadro_fx_5600();
        let k = KernelInstance {
            name: "k".into(),
            grid_blocks: grid,
            block_threads: block,
            regs_per_thread: regs,
            shared_per_block: shared,
            program: ThreadProgram {
                compute_slots: 1.0,
                mem_ops: vec![],
                syncs: 0,
                active_fraction: 1.0,
            },
        };
        if regs * block > d.regs_per_sm {
            return Ok(()); // unrunnable; constructor panics are tested elsewhere
        }
        let occ = Occupancy::compute(&d, &k);
        prop_assert!(occ.blocks_per_sm >= 1);
        prop_assert!(occ.blocks_per_sm <= d.max_blocks_per_sm);
        prop_assert!(occ.blocks_per_sm * block <= d.max_threads_per_sm.max(block));
        if shared > 0 {
            prop_assert!(occ.blocks_per_sm * shared <= d.shared_per_sm);
        }
        prop_assert!(occ.blocks_per_sm * regs * block <= d.regs_per_sm.max(regs * block));
        prop_assert!(occ.fraction(&d) <= 1.0 + 1e-9);
    }

    #[test]
    fn dram_traffic_at_least_useful_bytes(
        threads in 256u64..(1 << 20),
        count in 1.0f64..8.0,
        class in any_class(),
        aligned in any::<bool>(),
    ) {
        // Segment granularity and penalties only ever add traffic.
        let d = DeviceParams::quadro_fx_5600();
        let k = kernel(
            threads,
            256,
            ThreadProgram {
                compute_slots: 1.0,
                mem_ops: vec![MemOp { bytes: 4, class, count, is_load: true, shared: false, aligned }],
                syncs: 0,
                active_fraction: 1.0,
            },
        );
        let b = gpp_gpu_sim::timing::time_kernel(&d, &k);
        let useful = k.total_threads() as f64 * 4.0 * count;
        prop_assert!(b.dram_bytes >= useful * 0.999, "{} < {}", b.dram_bytes, useful);
    }

    #[test]
    fn noise_averages_out(seed in 0u64..100) {
        let mut sim = GpuSim::new(DeviceParams::quadro_fx_5600(), seed);
        let k = kernel(
            1 << 20,
            256,
            ThreadProgram {
                compute_slots: 8.0,
                mem_ops: vec![MemOp::coalesced_load(4, 2.0)],
                syncs: 0,
                active_fraction: 1.0,
            },
        );
        let ideal = sim.ideal_time(&k);
        let mean = sim.mean_time(&k, 30);
        prop_assert!((mean / ideal - 1.0).abs() < 0.05, "mean {mean} vs {ideal}");
    }
}
