//! Roofline timing of parallel regions.

use crate::params::CpuParams;

/// Summarized work of one parallel region execution (one "kernel" on the
/// CPU side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkEstimate {
    /// Raw floating-point operations.
    pub flops: f64,
    /// Bytes that must come from / go to DRAM (after cache filtering by
    /// the caller: arrays re-traversed while resident in LLC don't count).
    pub dram_bytes: f64,
    /// Total bytes the region touches (for LLC-residency bonus).
    pub working_set: u64,
    /// Random (uncacheable-pattern) cache-line fetches, each paying DRAM
    /// latency rather than streaming bandwidth.
    pub random_lines: f64,
    /// Number of parallel-region invocations this estimate covers (each
    /// pays the fork/join overhead).
    pub invocations: u32,
    /// Amdahl parallel fraction of the region (serial remainder runs on
    /// one core).
    pub parallel_fraction: f64,
}

impl WorkEstimate {
    /// Arithmetic intensity, flops per DRAM byte.
    pub fn intensity(&self) -> f64 {
        if self.dram_bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.dram_bytes
        }
    }
}

/// The CPU timing simulator. See crate docs.
#[derive(Debug, Clone)]
pub struct CpuSim {
    params: CpuParams,
}

impl CpuSim {
    /// Creates a simulator for the given CPU.
    pub fn new(params: CpuParams) -> Self {
        CpuSim { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CpuParams {
        &self.params
    }

    /// Executes (times) one parallel region.
    ///
    /// Roofline: the parallel part takes
    /// `max(compute_time, memory_time)`, the serial remainder runs at
    /// single-core compute speed, and each invocation pays fork/join
    /// overhead. If the working set fits in the last-level cache, DRAM
    /// traffic is reduced (lines already resident between invocations).
    pub fn region_time(&self, w: &WorkEstimate) -> f64 {
        let p = &self.params;
        assert!(
            (0.0..=1.0).contains(&w.parallel_fraction),
            "parallel fraction must be in [0,1]"
        );
        let dram_bytes = if w.working_set <= p.llc_bytes {
            // Warm LLC: only compulsory misses (~1/4 of the traffic) hit
            // DRAM on repeat traversals.
            w.dram_bytes * 0.25
        } else {
            w.dram_bytes
        };
        let par_flops = w.flops * w.parallel_fraction;
        let ser_flops = w.flops - par_flops;
        let compute = par_flops / p.effective_flops();
        let memory = dram_bytes / p.mem_bw + w.random_lines / p.random_line_rate;
        let serial = ser_flops / (p.freq_hz * p.flops_per_cycle * p.compute_efficiency);
        compute.max(memory) + serial + w.invocations as f64 * p.region_overhead
    }

    /// Times an iterative application: `iters` repetitions of the region.
    /// (The CPU needs no per-iteration data transfer, so this is linear.)
    pub fn iterative_time(&self, w: &WorkEstimate, iters: u32) -> f64 {
        self.region_time(w) * iters as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> CpuSim {
        CpuSim::new(CpuParams::xeon_e5405())
    }

    fn streaming(bytes: f64) -> WorkEstimate {
        WorkEstimate {
            flops: bytes / 4.0, // 1 flop per element
            dram_bytes: bytes,
            working_set: bytes as u64,
            invocations: 1,
            parallel_fraction: 1.0,
            random_lines: 0.0,
        }
    }

    #[test]
    fn bandwidth_bound_region_matches_roofline() {
        let s = sim();
        let bytes = 512.0 * (1 << 20) as f64;
        let t = s.region_time(&streaming(bytes));
        let expect = bytes / s.params().mem_bw + s.params().region_overhead;
        assert!((t - expect).abs() / expect < 1e-9, "{t} vs {expect}");
    }

    #[test]
    fn compute_bound_region_scales_with_flops() {
        let s = sim();
        let w = WorkEstimate {
            flops: 1e10,
            dram_bytes: 1e6,
            working_set: 1 << 30, // don't trigger cache bonus
            invocations: 1,
            parallel_fraction: 1.0,
            random_lines: 0.0,
        };
        let t = s.region_time(&w);
        let expect = 1e10 / s.params().effective_flops() + s.params().region_overhead;
        assert!((t - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn cache_resident_working_set_is_faster() {
        let s = sim();
        let small = WorkEstimate {
            flops: 1e6,
            dram_bytes: 4e6,
            working_set: 4 << 20, // fits the 6 MB LLC
            invocations: 1,
            parallel_fraction: 1.0,
            random_lines: 0.0,
        };
        let big = WorkEstimate {
            working_set: 64 << 20,
            ..small
        };
        assert!(s.region_time(&small) < s.region_time(&big));
    }

    #[test]
    fn serial_fraction_adds_amdahl_penalty() {
        let s = sim();
        let full = WorkEstimate {
            flops: 1e9,
            dram_bytes: 1.0,
            working_set: 1 << 30,
            invocations: 1,
            parallel_fraction: 1.0,
            random_lines: 0.0,
        };
        let half = WorkEstimate {
            parallel_fraction: 0.5,
            ..full
        };
        assert!(s.region_time(&half) > s.region_time(&full));
    }

    #[test]
    fn invocation_overhead_accumulates() {
        let s = sim();
        let one = WorkEstimate {
            invocations: 1,
            ..streaming(1e6)
        };
        let many = WorkEstimate {
            invocations: 100,
            ..streaming(1e6)
        };
        let diff = s.region_time(&many) - s.region_time(&one);
        assert!((diff - 99.0 * s.params().region_overhead).abs() < 1e-12);
    }

    #[test]
    fn iterative_time_is_linear() {
        let s = sim();
        let w = streaming(64.0 * (1 << 20) as f64);
        let t1 = s.iterative_time(&w, 1);
        let t10 = s.iterative_time(&w, 10);
        assert!((t10 - 10.0 * t1).abs() / t10 < 1e-12);
    }

    #[test]
    fn intensity_helper() {
        let w = streaming(4.0);
        assert_eq!(w.intensity(), 0.25);
        let inf = WorkEstimate {
            dram_bytes: 0.0,
            ..w
        };
        assert_eq!(inf.intensity(), f64::INFINITY);
    }

    #[test]
    fn random_lines_add_latency_cost() {
        let s = sim();
        let base = streaming(1e6);
        let gathering = WorkEstimate {
            random_lines: 1e7,
            ..base
        };
        let dt = s.region_time(&gathering) - s.region_time(&base);
        assert!((dt - 1e7 / s.params().random_line_rate).abs() / dt < 0.3);
    }

    #[test]
    #[should_panic(expected = "parallel fraction")]
    fn bad_parallel_fraction_panics() {
        let w = WorkEstimate {
            parallel_fraction: 1.5,
            ..streaming(1.0)
        };
        sim().region_time(&w);
    }

    #[test]
    fn hotspot_scale_sanity() {
        // 1024x1024 stencil, ~12 bytes/cell DRAM, ~10 flops/cell:
        // about 2 ms on this class of machine — the right order for the
        // paper's HotSpot CPU times.
        let s = sim();
        let cells = 1024.0 * 1024.0;
        let w = WorkEstimate {
            flops: cells * 10.0,
            dram_bytes: cells * 12.0,
            working_set: (cells as u64) * 12,
            invocations: 1,
            parallel_fraction: 0.995,
            random_lines: 0.0,
        };
        let t = s.region_time(&w);
        assert!((5e-4..1e-2).contains(&t), "t = {t}");
    }
}
