//! CPU hardware parameterization.

/// Parameters of the modeled multicore CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuParams {
    /// Physical cores.
    pub cores: u32,
    /// Threads the OpenMP region runs (the paper uses 8).
    pub threads: u32,
    /// Core clock in Hz.
    pub freq_hz: f64,
    /// Peak single-precision flops per cycle per core (SSE width × ports).
    pub flops_per_cycle: f64,
    /// Fraction of peak flop rate real loop nests achieve (compiler
    /// vectorization quality, dependency stalls).
    pub compute_efficiency: f64,
    /// Sustained DRAM bandwidth in bytes/second for the whole socket
    /// (shared by all cores — the front-side bus on Harpertown).
    pub mem_bw: f64,
    /// Last-level cache capacity in bytes (2 × 6 MB L2 on the E5405).
    pub llc_bytes: u64,
    /// Multithreaded scaling efficiency at `threads` threads, in (0, 1]:
    /// the achieved fraction of `min(threads, cores)`-way speedup for the
    /// compute-bound part.
    pub parallel_efficiency: f64,
    /// OpenMP parallel-region fork/join overhead per invocation, seconds.
    pub region_overhead: f64,
    /// Sustained random cache-line fetch rate for the whole socket,
    /// lines/second (DRAM latency bound with modest memory-level
    /// parallelism). Gather-heavy codes like CFD's unstructured flux
    /// loop pay this instead of streaming bandwidth.
    pub random_line_rate: f64,
}

impl CpuParams {
    /// The paper's host: Intel Xeon E5405 ("Harpertown", quad-core, 2 GHz,
    /// 12 MB L2, 1333 MT/s FSB) running the region with 8 OpenMP threads.
    pub fn xeon_e5405() -> Self {
        CpuParams {
            cores: 4,
            threads: 8,
            freq_hz: 2.0e9,
            flops_per_cycle: 8.0,      // 4-wide SSE mul + add
            compute_efficiency: 0.055, // scalar compiled loops: far from
            // peak SSE (no vectorization,
            // dependency chains, address math)
            mem_bw: 6.4e9,      // sustained FSB bandwidth
            llc_bytes: 6 << 20, // one die's 6 MB L2 (the pair is
            // split and poorly shared)
            parallel_efficiency: 0.80,
            region_overhead: 8.0e-6,
            random_line_rate: 140.0e6,
        }
    }

    /// A newer-generation host for cross-machine experiments: Intel Xeon
    /// X5550 ("Nehalem", quad-core + SMT, 2.66 GHz, integrated memory
    /// controller with ~3x the sustained bandwidth of the FSB).
    pub fn xeon_x5550() -> Self {
        CpuParams {
            cores: 4,
            threads: 8,
            freq_hz: 2.66e9,
            flops_per_cycle: 8.0,
            compute_efficiency: 0.07, // better OoO + SMT helps scalar code
            mem_bw: 18.0e9,           // triple-channel DDR3
            llc_bytes: 8 << 20,
            parallel_efficiency: 0.85,
            region_overhead: 6.0e-6,
            random_line_rate: 260.0e6,
        }
    }

    /// Peak compute throughput of the socket, flops per second.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64 * self.freq_hz * self.flops_per_cycle
    }

    /// Achievable compute throughput: peak × efficiency × parallel
    /// scaling (threads beyond physical cores add nothing on this model —
    /// Harpertown has no SMT benefit for flop-bound code).
    pub fn effective_flops(&self) -> f64 {
        let active = self.threads.min(self.cores) as f64;
        active / self.cores as f64
            * self.peak_flops()
            * self.compute_efficiency
            * self.parallel_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5405_peaks() {
        let p = CpuParams::xeon_e5405();
        assert_eq!(p.peak_flops(), 64e9); // 4 cores × 2 GHz × 8
        assert!(p.effective_flops() < p.peak_flops());
        assert!(p.effective_flops() > 1e9);
    }

    #[test]
    fn nehalem_outclasses_harpertown() {
        let old = CpuParams::xeon_e5405();
        let new = CpuParams::xeon_x5550();
        assert!(new.effective_flops() > old.effective_flops());
        assert!(new.mem_bw > 2.0 * old.mem_bw);
        assert!(new.random_line_rate > old.random_line_rate);
    }

    #[test]
    fn extra_threads_beyond_cores_do_not_help() {
        let mut p = CpuParams::xeon_e5405();
        let at8 = p.effective_flops();
        p.threads = 16;
        assert_eq!(p.effective_flops(), at8);
        p.threads = 2;
        assert!(p.effective_flops() < at8);
    }
}
