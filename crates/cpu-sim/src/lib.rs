//! Multicore CPU timing simulator.
//!
//! The paper's methodology (§IV-A) measures the *CPU* execution time of the
//! ported region directly on the host — an OpenMP implementation running 8
//! threads on a hyper-threaded quad-core Intel Xeon E5405 — and divides it
//! by the (predicted or measured) GPU time to obtain the speedup. We have
//! no 2007 Harpertown node, so this crate supplies its timing substitute: a
//! roofline-style multicore model with parallel efficiency, cache
//! filtering, and per-region (OpenMP fork/join) overhead.
//!
//! Only the CPU/GPU time *ratio* matters for reproducing the paper's
//! speedup shapes, and all four workloads are memory-bandwidth-bound on
//! this class of machine, which a roofline model captures faithfully.
//!
//! # Example
//!
//! ```
//! use gpp_cpu_sim::{CpuParams, CpuSim, WorkEstimate};
//!
//! let cpu = CpuSim::new(CpuParams::xeon_e5405());
//! let w = WorkEstimate {
//!     flops: 1e7,
//!     dram_bytes: 12.0 * (1 << 20) as f64,
//!     working_set: 12 << 20,
//!     random_lines: 0.0,
//!     invocations: 1,
//!     parallel_fraction: 0.99,
//! };
//! let t = cpu.region_time(&w);
//! assert!(t > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod params;
pub mod sim;

pub use params::CpuParams;
pub use sim::{CpuSim, WorkEstimate};
