//! Single-flight coalescing of identical in-flight requests.
//!
//! When several clients ask for the same projection at the same moment
//! (same machine, seed, fingerprint, and payload bytes), only the first —
//! the *leader* — goes upstream; the rest block on the flight and receive
//! a copy of the leader's reply. Projections are pure functions of the
//! request payload, so handing every follower the leader's bytes is
//! indistinguishable from forwarding each request — except the shard does
//! the expensive work once.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One in-flight request: the slot followers wait on.
struct Flight {
    reply: Mutex<Option<String>>,
    done: Condvar,
}

/// What joining a flight produced.
pub enum Joined {
    /// This caller is the leader: do the upstream work, then call
    /// [`SingleFlight::complete`] with the guard.
    Leader(LeaderGuard),
    /// Another caller was already flying this key; here is its reply.
    Follower(String),
    /// The leader vanished (panicked or timed out) without publishing a
    /// reply; the caller should fly the request itself.
    Orphaned,
}

/// Proof of leadership for one key; completing it publishes the reply
/// and wakes every follower. Dropping it without completing wakes them
/// empty-handed (they re-fly), so a panicking leader cannot strand them.
pub struct LeaderGuard {
    map: Arc<Mutex<HashMap<u128, Arc<Flight>>>>,
    key: u128,
    flight: Arc<Flight>,
    completed: bool,
}

impl LeaderGuard {
    /// Publishes the reply to every waiting follower.
    pub fn complete(mut self, reply: &str) {
        *self.flight.reply.lock() = Some(reply.to_string());
        self.completed = true;
        self.finish();
    }

    fn finish(&mut self) {
        self.map.lock().remove(&self.key);
        self.flight.done.notify_all();
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        if !self.completed {
            self.finish();
        }
    }
}

/// The coalescing map. Keys are full-identity hashes of the request
/// (machine, seed, fingerprint, payload bytes), so two requests share a
/// flight only when their replies are guaranteed identical.
pub struct SingleFlight {
    map: Arc<Mutex<HashMap<u128, Arc<Flight>>>>,
    /// How long a follower waits before giving up on its leader.
    wait_budget: Duration,
}

impl SingleFlight {
    /// A fresh map with the given follower wait budget.
    pub fn new(wait_budget: Duration) -> SingleFlight {
        SingleFlight {
            map: Arc::new(Mutex::new(HashMap::new())),
            wait_budget,
        }
    }

    /// Joins the flight for `key`: the first caller becomes the leader,
    /// later callers block until the leader publishes (or abandons).
    pub fn join(&self, key: u128) -> Joined {
        self.join_with_budget(key, self.wait_budget)
    }

    /// [`SingleFlight::join`] with an explicit follower wait budget —
    /// used for deadline-bearing requests, whose remaining budget may be
    /// far shorter than the configured request timeout. A follower that
    /// runs out of budget is [`Joined::Orphaned`] and re-flies (or fails)
    /// on its own clock.
    pub fn join_with_budget(&self, key: u128, wait_budget: Duration) -> Joined {
        let flight = {
            let mut map = self.map.lock();
            match map.get(&key) {
                Some(flight) => flight.clone(),
                None => {
                    let flight = Arc::new(Flight {
                        reply: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    map.insert(key, flight.clone());
                    return Joined::Leader(LeaderGuard {
                        map: self.map.clone(),
                        key,
                        flight,
                        completed: false,
                    });
                }
            }
        };
        let mut reply = flight.reply.lock();
        let mut waited = Duration::ZERO;
        const SLICE: Duration = Duration::from_millis(50);
        while reply.is_none() && waited < wait_budget {
            // A timed slice (not a bare wait) so a stuck leader can never
            // strand followers past their budget even if the wake is lost.
            flight.done.wait_for(&mut reply, SLICE);
            waited += SLICE;
            // The leader removing the key from the map (guard finish)
            // happens before notify; a None reply after that means it
            // abandoned rather than still flying.
            if reply.is_none() && !self.map.lock().contains_key(&key) {
                break;
            }
        }
        match reply.clone() {
            Some(r) => Joined::Follower(r),
            None => Joined::Orphaned,
        }
    }

    /// Flights currently in the air (for stats).
    pub fn in_flight(&self) -> usize {
        self.map.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn leader_then_followers() {
        let sf = Arc::new(SingleFlight::new(Duration::from_secs(5)));
        let upstream = Arc::new(AtomicUsize::new(0));
        let guard = match sf.join(42) {
            Joined::Leader(g) => g,
            _ => panic!("first join must lead"),
        };
        let mut joins = Vec::new();
        for _ in 0..8 {
            let sf = sf.clone();
            let upstream = upstream.clone();
            joins.push(std::thread::spawn(move || match sf.join(42) {
                Joined::Follower(r) => r,
                Joined::Leader(g) => {
                    upstream.fetch_add(1, Ordering::SeqCst);
                    g.complete("late");
                    "late".to_string()
                }
                Joined::Orphaned => "orphaned".to_string(),
            }));
        }
        // Give followers time to pile onto the flight, then publish.
        std::thread::sleep(Duration::from_millis(100));
        upstream.fetch_add(1, Ordering::SeqCst);
        guard.complete("the-reply");
        for j in joins {
            assert_eq!(j.join().unwrap(), "the-reply");
        }
        assert_eq!(upstream.load(Ordering::SeqCst), 1);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_fly_separately() {
        let sf = SingleFlight::new(Duration::from_secs(1));
        let a = sf.join(1);
        let b = sf.join(2);
        assert!(matches!(a, Joined::Leader(_)));
        assert!(matches!(b, Joined::Leader(_)));
    }

    #[test]
    fn abandoned_leader_orphans_followers_promptly() {
        let sf = Arc::new(SingleFlight::new(Duration::from_secs(30)));
        let guard = match sf.join(7) {
            Joined::Leader(g) => g,
            _ => panic!(),
        };
        let sf2 = sf.clone();
        let follower = std::thread::spawn(move || sf2.join(7));
        std::thread::sleep(Duration::from_millis(100));
        drop(guard); // leader dies without publishing
        let start = std::time::Instant::now();
        assert!(matches!(follower.join().unwrap(), Joined::Orphaned));
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
