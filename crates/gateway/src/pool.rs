//! The health-checked shard pool.
//!
//! Each shard is a running `gpp-serve` instance. The pool tracks one
//! **circuit breaker** per shard — closed / open / half-open — maintained
//! from two directions:
//!
//! * **fail-fast** — a forward that cannot reach its shard trips its
//!   breaker **open** immediately, so the very next request fails over
//!   without paying a connect timeout;
//! * **probing** — a background prober sends `health` frames. A closed
//!   shard is probed at the configured interval; an open one moves to
//!   **half-open** when its cooldown (exponential backoff on the failure
//!   streak, seeded-jittered per shard) expires, gets exactly one trial
//!   probe, and is either re-closed (re-admitted) on success or re-opened
//!   with a longer cooldown on failure.
//!
//! Each shard also keeps a rolling window of successful forward
//! latencies; its p99 is the gateway's hedging trigger.
//!
//! Fault points [`gpp_fault::GATEWAY_SHARD_DOWN`] (scoped per shard
//! label), [`gpp_fault::GATEWAY_SHARD_SLOW`], and
//! [`gpp_fault::GATEWAY_SHARD_HANG`] inject dead, slow, and hung shards
//! without touching real processes, which is how the chaos suites kill
//! shards mid-load reproducibly.

use crate::ring::HashRing;
use gpp_fault::FaultInjector;
use gpp_serve::client::{backoff_delay, jitter_seed, Client};
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Backoff exponent cap for unhealthy-shard re-probes: failures beyond
/// this stop lengthening the wait (base × 2⁷ ≈ two orders of magnitude).
const MAX_BACKOFF_EXP: u32 = 8;

/// Successful forward latencies each shard remembers for its rolling p99.
const LATENCY_WINDOW: usize = 256;

/// Fewest recorded latencies before the p99 is considered meaningful
/// (hedging stays off below this).
pub const MIN_LATENCY_SAMPLES: usize = 8;

/// Circuit-breaker states, stored as a `u8` on the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Breaker {
    /// Healthy: requests flow, periodic probing.
    Closed = 0,
    /// Tripped: no requests until the cooldown expires.
    Open = 1,
    /// Cooldown expired: one trial probe in flight decides the rest.
    HalfOpen = 2,
}

impl Breaker {
    fn from_u8(v: u8) -> Breaker {
        match v {
            1 => Breaker::Open,
            2 => Breaker::HalfOpen,
            _ => Breaker::Closed,
        }
    }

    /// The stats-reply spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Breaker::Closed => "closed",
            Breaker::Open => "open",
            Breaker::HalfOpen => "half-open",
        }
    }
}

/// One upstream `gpp-serve` shard and its breaker state.
pub struct Shard {
    /// Stable ring label (`shard0`, `shard1`, ...); also the scope chaos
    /// plans use (`gateway.shard.down@shard1`).
    pub label: String,
    /// The shard's TCP address.
    pub addr: String,
    breaker: AtomicU8,
    consecutive_failures: AtomicU32,
    next_probe: Mutex<Instant>,
    latencies_us: Mutex<Vec<u64>>,
    latency_pos: AtomicU64,
    /// Requests this shard answered through the gateway.
    pub routed: AtomicU64,
    /// Forward attempts that failed (tripping the breaker open).
    pub forward_errors: AtomicU64,
    /// Health probes that failed.
    pub probe_failures: AtomicU64,
    /// Times the breaker re-closed (probe recoveries).
    pub readmissions: AtomicU64,
    /// Times the breaker tripped closed → open.
    pub breaker_opens: AtomicU64,
}

impl Shard {
    fn new(label: String, addr: String) -> Shard {
        Shard {
            label,
            addr,
            breaker: AtomicU8::new(Breaker::Closed as u8),
            consecutive_failures: AtomicU32::new(0),
            next_probe: Mutex::new(Instant::now()),
            latencies_us: Mutex::new(Vec::with_capacity(LATENCY_WINDOW)),
            latency_pos: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            forward_errors: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
        }
    }

    /// The breaker's current state.
    pub fn breaker(&self) -> Breaker {
        Breaker::from_u8(self.breaker.load(Ordering::SeqCst))
    }

    /// Whether requests may flow to this shard (breaker closed).
    pub fn is_healthy(&self) -> bool {
        self.breaker() == Breaker::Closed
    }

    /// Records a failed contact: the breaker trips open and the next
    /// (half-open) trial backs off exponentially with the failure streak,
    /// jittered on a per-shard seed so a pool of tripped shards does not
    /// re-probe in lockstep.
    pub fn mark_failed(&self, probe_backoff: Duration) {
        let was = self.breaker.swap(Breaker::Open as u8, Ordering::SeqCst);
        if Breaker::from_u8(was) == Breaker::Closed {
            self.breaker_opens.fetch_add(1, Ordering::SeqCst);
        }
        let failures = self
            .consecutive_failures
            .fetch_add(1, Ordering::SeqCst)
            .saturating_add(1)
            .min(MAX_BACKOFF_EXP);
        *self.next_probe.lock() = Instant::now()
            + backoff_delay(probe_backoff, failures, jitter_seed(self.label.as_bytes()));
    }

    /// Records a successful contact; a tripped breaker re-closes.
    pub fn mark_healthy(&self, probe_interval: Duration) {
        let was = self.breaker.swap(Breaker::Closed as u8, Ordering::SeqCst);
        if Breaker::from_u8(was) != Breaker::Closed {
            self.readmissions.fetch_add(1, Ordering::SeqCst);
        }
        self.consecutive_failures.store(0, Ordering::SeqCst);
        *self.next_probe.lock() = Instant::now() + probe_interval;
    }

    /// Adds one successful forward's latency to the rolling window.
    pub fn record_latency(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let pos = self.latency_pos.fetch_add(1, Ordering::Relaxed) as usize % LATENCY_WINDOW;
        let mut window = self.latencies_us.lock();
        if window.len() < LATENCY_WINDOW {
            window.push(us);
        } else {
            window[pos] = us;
        }
    }

    /// The rolling p99 forward latency, or `None` until the window holds
    /// [`MIN_LATENCY_SAMPLES`] — the hedging trigger stays conservative
    /// while the shard is cold.
    pub fn p99_us(&self) -> Option<u64> {
        let window = self.latencies_us.lock();
        if window.len() < MIN_LATENCY_SAMPLES {
            return None;
        }
        let mut sorted: Vec<u64> = window.clone();
        drop(window);
        sorted.sort_unstable();
        // Nearest-rank p99, matching serve's metrics.
        let rank = (sorted.len() * 99).div_ceil(100).max(1);
        Some(sorted[rank - 1])
    }

    /// Sends one already-encoded payload to the shard and returns the raw
    /// reply. Consults the injection points first so chaos plans can kill
    /// (`gateway.shard.down`), slow (`gateway.shard.slow`, factor =
    /// milliseconds), or hang (`gateway.shard.hang` — sleeps min(factor
    /// ms, timeout) and fails as timed out, never reaching the wire) this
    /// shard without a real process dying.
    pub fn forward(
        &self,
        payload: &str,
        timeout: Duration,
        faults: &FaultInjector,
    ) -> io::Result<String> {
        if faults.is_active() {
            if let Some(ms) =
                faults.fire_factor_scoped(gpp_fault::GATEWAY_SHARD_SLOW, Some(&self.label))
            {
                std::thread::sleep(Duration::from_millis(ms.max(0.0) as u64));
            }
            if let Some(ms) =
                faults.fire_factor_scoped(gpp_fault::GATEWAY_SHARD_HANG, Some(&self.label))
            {
                std::thread::sleep(Duration::from_millis(ms.max(0.0) as u64).min(timeout));
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("injected shard hang ({})", self.label),
                ));
            }
            if faults.fires_scoped(gpp_fault::GATEWAY_SHARD_DOWN, Some(&self.label)) {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("injected shard down ({})", self.label),
                ));
            }
        }
        Client::connect(self.addr.as_str(), timeout)?.call_raw(payload)
    }

    /// One health probe round-trip. The same injection point applies, so
    /// an injected-down shard stays evicted until its rule stops firing.
    fn probe(&self, timeout: Duration, faults: &FaultInjector) -> bool {
        self.forward("gpp/1 health", timeout, faults)
            .map(|reply| reply.contains("\"ok\":true"))
            .unwrap_or(false)
    }
}

/// The shard set plus its consistent-hash ring.
pub struct ShardPool {
    shards: Vec<Arc<Shard>>,
    ring: HashRing,
}

impl ShardPool {
    /// Builds the pool; shard `i` gets ring label `shard{i}`.
    pub fn new(addrs: Vec<String>) -> ShardPool {
        let shards: Vec<Arc<Shard>> = addrs
            .into_iter()
            .enumerate()
            .map(|(i, addr)| Arc::new(Shard::new(format!("shard{i}"), addr)))
            .collect();
        let labels: Vec<String> = shards.iter().map(|s| s.label.clone()).collect();
        ShardPool {
            ring: HashRing::new(&labels),
            shards,
        }
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Shards currently believed alive.
    pub fn healthy_count(&self) -> usize {
        self.shards.iter().filter(|s| s.is_healthy()).count()
    }

    /// The fail-over sequence for a routing key: primary first, then the
    /// remaining shards in ring order.
    pub fn route(&self, key: u64) -> Vec<Arc<Shard>> {
        self.ring
            .successors(key)
            .map(|i| self.shards[i].clone())
            .collect()
    }

    /// Probes every shard whose probe is due. Called repeatedly by the
    /// gateway's prober thread.
    pub fn probe_due(
        &self,
        probe_interval: Duration,
        probe_backoff: Duration,
        timeout: Duration,
        faults: &FaultInjector,
    ) {
        for shard in &self.shards {
            if Instant::now() < *shard.next_probe.lock() {
                continue;
            }
            // An open breaker whose cooldown just expired gets exactly one
            // half-open trial: the probe below either re-closes it
            // (mark_healthy) or re-opens it with a longer cooldown.
            if shard.breaker() == Breaker::Open {
                shard
                    .breaker
                    .store(Breaker::HalfOpen as u8, Ordering::SeqCst);
            }
            if shard.probe(timeout, faults) {
                shard.mark_healthy(probe_interval);
            } else {
                shard.probe_failures.fetch_add(1, Ordering::SeqCst);
                shard.mark_failed(probe_backoff);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failed_shard_leaves_and_rejoins() {
        let pool = ShardPool::new(vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()]);
        assert_eq!(pool.healthy_count(), 2);
        pool.shards()[0].mark_failed(Duration::from_millis(1));
        assert_eq!(pool.healthy_count(), 1);
        assert!(!pool.shards()[0].is_healthy());
        pool.shards()[0].mark_healthy(Duration::from_secs(1));
        assert_eq!(pool.healthy_count(), 2);
        assert_eq!(pool.shards()[0].readmissions.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn backoff_grows_with_failure_streak() {
        let shard = Shard::new("shard0".into(), "127.0.0.1:1".into());
        let base = Duration::from_millis(8);
        shard.mark_failed(base);
        let first = *shard.next_probe.lock() - Instant::now();
        for _ in 0..3 {
            shard.mark_failed(base);
        }
        let later = *shard.next_probe.lock() - Instant::now();
        assert!(later > first, "{later:?} vs {first:?}");
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_and_counts_opens() {
        let shard = Shard::new("shard0".into(), "127.0.0.1:1".into());
        assert_eq!(shard.breaker(), Breaker::Closed);
        shard.mark_failed(Duration::from_millis(1));
        assert_eq!(shard.breaker(), Breaker::Open);
        assert_eq!(shard.breaker_opens.load(Ordering::SeqCst), 1);
        // Re-failing an already-open breaker is not a new trip.
        shard.mark_failed(Duration::from_millis(1));
        assert_eq!(shard.breaker_opens.load(Ordering::SeqCst), 1);
        // The prober's half-open trial failing re-opens, succeeding closes.
        shard
            .breaker
            .store(Breaker::HalfOpen as u8, Ordering::SeqCst);
        shard.mark_failed(Duration::from_millis(1));
        assert_eq!(shard.breaker(), Breaker::Open);
        assert_eq!(shard.breaker_opens.load(Ordering::SeqCst), 1);
        shard
            .breaker
            .store(Breaker::HalfOpen as u8, Ordering::SeqCst);
        shard.mark_healthy(Duration::from_secs(1));
        assert_eq!(shard.breaker(), Breaker::Closed);
        assert_eq!(shard.readmissions.load(Ordering::SeqCst), 1);
        assert_eq!(Breaker::HalfOpen.as_str(), "half-open");
    }

    #[test]
    fn p99_needs_samples_then_tracks_the_tail() {
        let shard = Shard::new("shard0".into(), "127.0.0.1:1".into());
        for i in 0..MIN_LATENCY_SAMPLES - 1 {
            shard.record_latency(Duration::from_micros(100 + i as u64));
            assert_eq!(shard.p99_us(), None, "cold window must not hedge");
        }
        shard.record_latency(Duration::from_millis(50));
        let p99 = shard.p99_us().expect("window is warm");
        assert_eq!(p99, 50_000, "p99 must sit at the tail outlier");
        // The window rolls: old samples eventually fall out.
        for _ in 0..LATENCY_WINDOW {
            shard.record_latency(Duration::from_micros(200));
        }
        assert_eq!(shard.p99_us(), Some(200));
    }

    #[test]
    fn injected_hang_times_out_without_network() {
        let faults =
            gpp_fault::FaultInjector::new(gpp_fault::FaultPlan::empty().with_seed(7).with(
                &gpp_fault::scoped_point(gpp_fault::GATEWAY_SHARD_HANG, "shard0"),
                gpp_fault::Rule::new(gpp_fault::Mode::Always).factor(5.0),
            ));
        let shard = Shard::new("shard0".into(), "127.0.0.1:9".into());
        let err = shard
            .forward("gpp/1 ping", Duration::from_millis(50), &faults)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn injected_down_fails_forward_without_network() {
        let faults =
            gpp_fault::FaultInjector::new(gpp_fault::FaultPlan::empty().with_seed(7).with(
                &gpp_fault::scoped_point(gpp_fault::GATEWAY_SHARD_DOWN, "shard0"),
                gpp_fault::Rule::new(gpp_fault::Mode::Always),
            ));
        let shard = Shard::new("shard0".into(), "127.0.0.1:9".into());
        let err = shard
            .forward("gpp/1 ping", Duration::from_millis(100), &faults)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        // Unscoped shard label: the point does not fire, so the forward
        // fails on the real (dead) address instead — different error.
        let other = Shard::new("shard1".into(), "127.0.0.1:9".into());
        let err = other
            .forward("gpp/1 ping", Duration::from_millis(100), &faults)
            .unwrap_err();
        assert_ne!(err.to_string(), "injected shard down (shard1)");
    }
}
