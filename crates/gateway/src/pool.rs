//! The health-checked shard pool.
//!
//! Each shard is a running `gpp-serve` instance. The pool tracks one
//! health bit per shard, maintained from two directions:
//!
//! * **fail-fast** — a forward that cannot reach its shard marks it
//!   unhealthy immediately, so the very next request fails over without
//!   paying a connect timeout;
//! * **probing** — a background prober sends `health` frames. A healthy
//!   shard is probed at the configured interval; an unhealthy one is
//!   re-probed on an exponential backoff and **re-admitted** the moment a
//!   probe succeeds.
//!
//! Fault points [`gpp_fault::GATEWAY_SHARD_DOWN`] (scoped per shard
//! label) and [`gpp_fault::GATEWAY_SHARD_SLOW`] inject dead and slow
//! shards without touching real processes, which is how the chaos suite
//! kills shards mid-load reproducibly.

use crate::ring::HashRing;
use gpp_fault::FaultInjector;
use gpp_serve::client::{backoff_delay, Client};
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Backoff exponent cap for unhealthy-shard re-probes: failures beyond
/// this stop lengthening the wait (base × 2⁷ ≈ two orders of magnitude).
const MAX_BACKOFF_EXP: u32 = 8;

/// One upstream `gpp-serve` shard and its health state.
pub struct Shard {
    /// Stable ring label (`shard0`, `shard1`, ...); also the scope chaos
    /// plans use (`gateway.shard.down@shard1`).
    pub label: String,
    /// The shard's TCP address.
    pub addr: String,
    healthy: AtomicBool,
    consecutive_failures: AtomicU32,
    next_probe: Mutex<Instant>,
    /// Requests this shard answered through the gateway.
    pub routed: AtomicU64,
    /// Forward attempts that failed (marking the shard unhealthy).
    pub forward_errors: AtomicU64,
    /// Health probes that failed.
    pub probe_failures: AtomicU64,
    /// Times the shard went unhealthy → healthy (probe recoveries).
    pub readmissions: AtomicU64,
}

impl Shard {
    fn new(label: String, addr: String) -> Shard {
        Shard {
            label,
            addr,
            healthy: AtomicBool::new(true),
            consecutive_failures: AtomicU32::new(0),
            next_probe: Mutex::new(Instant::now()),
            routed: AtomicU64::new(0),
            forward_errors: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
        }
    }

    /// Whether the shard is currently believed alive.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Records a failed contact: the shard leaves the healthy set and its
    /// next probe backs off exponentially with the failure streak.
    pub fn mark_failed(&self, probe_backoff: Duration) {
        self.healthy.store(false, Ordering::SeqCst);
        let failures = self
            .consecutive_failures
            .fetch_add(1, Ordering::SeqCst)
            .saturating_add(1)
            .min(MAX_BACKOFF_EXP);
        *self.next_probe.lock() = Instant::now() + backoff_delay(probe_backoff, failures);
    }

    /// Records a successful contact; an unhealthy shard is re-admitted.
    pub fn mark_healthy(&self, probe_interval: Duration) {
        if !self.healthy.swap(true, Ordering::SeqCst) {
            self.readmissions.fetch_add(1, Ordering::SeqCst);
        }
        self.consecutive_failures.store(0, Ordering::SeqCst);
        *self.next_probe.lock() = Instant::now() + probe_interval;
    }

    /// Sends one already-encoded payload to the shard and returns the raw
    /// reply. Consults the injection points first so chaos plans can kill
    /// (`gateway.shard.down`) or slow (`gateway.shard.slow`, factor =
    /// milliseconds) this shard without a real process dying.
    pub fn forward(
        &self,
        payload: &str,
        timeout: Duration,
        faults: &FaultInjector,
    ) -> io::Result<String> {
        if faults.is_active() {
            if let Some(ms) =
                faults.fire_factor_scoped(gpp_fault::GATEWAY_SHARD_SLOW, Some(&self.label))
            {
                std::thread::sleep(Duration::from_millis(ms.max(0.0) as u64));
            }
            if faults.fires_scoped(gpp_fault::GATEWAY_SHARD_DOWN, Some(&self.label)) {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("injected shard down ({})", self.label),
                ));
            }
        }
        Client::connect(self.addr.as_str(), timeout)?.call_raw(payload)
    }

    /// One health probe round-trip. The same injection point applies, so
    /// an injected-down shard stays evicted until its rule stops firing.
    fn probe(&self, timeout: Duration, faults: &FaultInjector) -> bool {
        self.forward("gpp/1 health", timeout, faults)
            .map(|reply| reply.contains("\"ok\":true"))
            .unwrap_or(false)
    }
}

/// The shard set plus its consistent-hash ring.
pub struct ShardPool {
    shards: Vec<Arc<Shard>>,
    ring: HashRing,
}

impl ShardPool {
    /// Builds the pool; shard `i` gets ring label `shard{i}`.
    pub fn new(addrs: Vec<String>) -> ShardPool {
        let shards: Vec<Arc<Shard>> = addrs
            .into_iter()
            .enumerate()
            .map(|(i, addr)| Arc::new(Shard::new(format!("shard{i}"), addr)))
            .collect();
        let labels: Vec<String> = shards.iter().map(|s| s.label.clone()).collect();
        ShardPool {
            ring: HashRing::new(&labels),
            shards,
        }
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Shards currently believed alive.
    pub fn healthy_count(&self) -> usize {
        self.shards.iter().filter(|s| s.is_healthy()).count()
    }

    /// The fail-over sequence for a routing key: primary first, then the
    /// remaining shards in ring order.
    pub fn route(&self, key: u64) -> Vec<Arc<Shard>> {
        self.ring
            .successors(key)
            .map(|i| self.shards[i].clone())
            .collect()
    }

    /// Probes every shard whose probe is due. Called repeatedly by the
    /// gateway's prober thread.
    pub fn probe_due(
        &self,
        probe_interval: Duration,
        probe_backoff: Duration,
        timeout: Duration,
        faults: &FaultInjector,
    ) {
        for shard in &self.shards {
            if Instant::now() < *shard.next_probe.lock() {
                continue;
            }
            if shard.probe(timeout, faults) {
                shard.mark_healthy(probe_interval);
            } else {
                shard.probe_failures.fetch_add(1, Ordering::SeqCst);
                shard.mark_failed(probe_backoff);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failed_shard_leaves_and_rejoins() {
        let pool = ShardPool::new(vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()]);
        assert_eq!(pool.healthy_count(), 2);
        pool.shards()[0].mark_failed(Duration::from_millis(1));
        assert_eq!(pool.healthy_count(), 1);
        assert!(!pool.shards()[0].is_healthy());
        pool.shards()[0].mark_healthy(Duration::from_secs(1));
        assert_eq!(pool.healthy_count(), 2);
        assert_eq!(pool.shards()[0].readmissions.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn backoff_grows_with_failure_streak() {
        let shard = Shard::new("shard0".into(), "127.0.0.1:1".into());
        let base = Duration::from_millis(8);
        shard.mark_failed(base);
        let first = *shard.next_probe.lock() - Instant::now();
        for _ in 0..3 {
            shard.mark_failed(base);
        }
        let later = *shard.next_probe.lock() - Instant::now();
        assert!(later > first, "{later:?} vs {first:?}");
    }

    #[test]
    fn injected_down_fails_forward_without_network() {
        let faults =
            gpp_fault::FaultInjector::new(gpp_fault::FaultPlan::empty().with_seed(7).with(
                &gpp_fault::scoped_point(gpp_fault::GATEWAY_SHARD_DOWN, "shard0"),
                gpp_fault::Rule::new(gpp_fault::Mode::Always),
            ));
        let shard = Shard::new("shard0".into(), "127.0.0.1:9".into());
        let err = shard
            .forward("gpp/1 ping", Duration::from_millis(100), &faults)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        // Unscoped shard label: the point does not fire, so the forward
        // fails on the real (dead) address instead — different error.
        let other = Shard::new("shard1".into(), "127.0.0.1:9".into());
        let err = other
            .forward("gpp/1 ping", Duration::from_millis(100), &faults)
            .unwrap_err();
        assert_ne!(err.to_string(), "injected shard down (shard1)");
    }
}
