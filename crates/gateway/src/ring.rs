//! Consistent-hash ring over shard indices.
//!
//! Each shard owns [`VNODES`] points on a `u64` ring (hashes of
//! `label#vnode`); a request key is routed to the first point clockwise
//! from its hash. Virtual nodes smooth the load split, and consistency
//! means adding or losing one shard only remaps the keys that hashed to
//! its points — every other (machine, fingerprint) keeps hitting the
//! shard whose projection memo is already warm for it.

use gpp_serve::cache::fnv1a;

/// Virtual nodes per shard. 64 keeps the worst/best shard load ratio
/// close to 1 at the pool sizes a gateway fronts (a handful of shards).
pub const VNODES: usize = 64;

/// An immutable consistent-hash ring over `shards` members.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points sorted by hash: (point hash, shard index).
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds the ring from the shard labels (typically `shard0`,
    /// `shard1`, ...). Labels, not addresses, define ring placement, so a
    /// shard that restarts on a new ephemeral port keeps its keyspace.
    pub fn new(labels: &[String]) -> HashRing {
        let mut points = Vec::with_capacity(labels.len() * VNODES);
        for (index, label) in labels.iter().enumerate() {
            for v in 0..VNODES {
                points.push((fnv1a(format!("{label}#{v}").as_bytes()), index));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            shards: labels.len(),
        }
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.shards
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.shards == 0
    }

    /// The primary shard for a key: owner of the first ring point at or
    /// clockwise after the key's hash.
    pub fn route(&self, key: u64) -> Option<usize> {
        self.successors(key).next()
    }

    /// All distinct shards in ring order starting from the key's primary —
    /// the fail-over sequence. Every shard appears exactly once.
    pub fn successors(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let start = self.points.partition_point(|(h, _)| *h < key);
        let n = self.points.len();
        let mut seen = vec![false; self.shards];
        (0..n).filter_map(move |i| {
            let (_, shard) = self.points[(start + i) % n];
            if seen[shard] {
                None
            } else {
                seen[shard] = true;
                Some(shard)
            }
        })
    }
}

/// The routing key a gateway hashes onto the ring: the target machine
/// plus the program's structural fingerprint, so identical programs for
/// the same machine always land on the same (cache-warm) shard.
pub fn routing_key(machine: &str, fingerprint: u128) -> u64 {
    let mut h = fnv1a(machine.as_bytes());
    // Fold the u128 fingerprint in with the same FNV-1a step the base
    // hash uses, one 64-bit half at a time.
    for half in [fingerprint as u64, (fingerprint >> 64) as u64] {
        for b in half.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard{i}")).collect()
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_shards() {
        let ring = HashRing::new(&labels(3));
        let mut hit = [0usize; 3];
        for i in 0..3000u64 {
            let key = routing_key("eureka", i as u128);
            let a = ring.route(key).unwrap();
            let b = ring.route(key).unwrap();
            assert_eq!(a, b);
            hit[a] += 1;
        }
        for (shard, count) in hit.iter().enumerate() {
            assert!(*count > 300, "shard {shard} got only {count}/3000 keys");
        }
    }

    #[test]
    fn successors_visit_every_shard_once() {
        let ring = HashRing::new(&labels(4));
        for i in 0..100u64 {
            let order: Vec<usize> = ring.successors(routing_key("v2", i as u128)).collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "order {order:?}");
        }
    }

    #[test]
    fn losing_a_shard_only_remaps_its_own_keys() {
        // Consistency: route on 3 shards vs the fail-over successor when
        // shard 1 is skipped — keys primary on 0 or 2 must not move.
        let ring = HashRing::new(&labels(3));
        for i in 0..2000u64 {
            let key = routing_key("eureka", i as u128);
            let primary = ring.route(key).unwrap();
            let survivor = ring.successors(key).find(|s| *s != 1).unwrap();
            if primary != 1 {
                assert_eq!(survivor, primary);
            }
        }
    }

    #[test]
    fn machine_and_fingerprint_both_matter() {
        assert_ne!(routing_key("eureka", 7), routing_key("v2", 7));
        assert_ne!(routing_key("eureka", 7), routing_key("eureka", 8));
        assert_ne!(
            routing_key("eureka", 1u128 << 64),
            routing_key("eureka", 1u128)
        );
    }
}
