//! `gpp-gateway`: a sharding front-end for `gpp-serve`.
//!
//! One gateway fronts N `gpp-serve` shards and speaks the same `gpp/1`
//! framed protocol on both sides, so clients point at the gateway and
//! notice nothing — except that the pool scales and survives shard death:
//!
//! * **consistent-hash routing** ([`ring`]) — requests are routed on
//!   (machine, program structural fingerprint), so identical programs for
//!   a machine always land on the shard whose calibration and projection
//!   caches are already warm for them;
//! * **single-flight coalescing** ([`flight`]) — concurrent identical
//!   projections collapse into one upstream call; followers get a copy of
//!   the leader's reply (projections are pure functions of the payload,
//!   so the bytes are exactly what each would have received);
//! * **batch fan-out** — a `batch` frame is unpacked, each sub-request
//!   routed independently, and the sub-replies reassembled verbatim with
//!   [`gpp_serve::protocol::batch_response`] — bit-for-bit what a single
//!   shard would have produced;
//! * **health-checked fail-over** ([`pool`]) — dead shards are evicted
//!   (fail-fast on forward errors, probing in the background), requests
//!   re-route along the ring's successor order, and recovered shards are
//!   re-admitted automatically.
//!
//! Because every shard computes bit-identical replies for a given payload
//! (calibration and projection are deterministic in (machine, seed)),
//! fail-over is invisible: the chaos suite kills shards mid-load and
//! asserts the full reply set equals a single-shard no-fault run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod pool;
pub mod ring;

use flight::{Joined, SingleFlight};
use gpp_fault::FaultInjector;
use gpp_serve::cache::fnv1a;
use gpp_serve::protocol::{
    batch_response, read_frame_limited, write_frame, Command, FrameError, ProtocolError, Request,
};
use gpp_serve::service::{busy_response, error_json};
use gpp_serve::DeadlineRead;
use grophecy::report::Json;
use pool::ShardPool;
use ring::routing_key;
use std::io::{self};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for one gateway instance.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Listen address (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads handling client connections.
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it get `busy`.
    pub queue_depth: usize,
    /// Per-connection read budget and upstream forward timeout.
    pub request_timeout: Duration,
    /// How often a healthy shard is re-probed.
    pub probe_interval: Duration,
    /// Base backoff before re-probing an unhealthy shard; doubles with
    /// the failure streak.
    pub probe_backoff: Duration,
    /// Largest accepted request frame.
    pub max_frame_bytes: usize,
    /// The fault plan in force (for `gateway.shard.*` chaos points).
    pub faults: Arc<FaultInjector>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            request_timeout: Duration::from_secs(30),
            probe_interval: Duration::from_millis(500),
            probe_backoff: Duration::from_millis(25),
            max_frame_bytes: 8 << 20,
            faults: FaultInjector::disabled(),
        }
    }
}

/// Monotonic gateway counters (all relaxed; read by `stats`).
#[derive(Default)]
pub struct GatewayMetrics {
    /// Requests answered (any outcome).
    pub served_ok: AtomicU64,
    /// Requests answered with `"ok":false`.
    pub served_err: AtomicU64,
    /// Requests forwarded upstream.
    pub routed_total: AtomicU64,
    /// Requests answered from another caller's in-flight reply.
    pub coalesced: AtomicU64,
    /// Forwards that had to move past the primary shard.
    pub failovers: AtomicU64,
    /// Requests no shard could answer.
    pub unavailable: AtomicU64,
    /// Batch frames unpacked.
    pub batch_frames: AtomicU64,
    /// Sub-requests carried by those frames.
    pub batch_subs: AtomicU64,
    /// Connections rejected `busy` at the accept queue.
    pub rejected_busy: AtomicU64,
}

impl GatewayMetrics {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared state behind every gateway worker. Handlers are pure functions
/// of (state, payload) — tests drive them without sockets.
pub struct GatewayState {
    /// The configuration in force.
    pub config: GatewayConfig,
    /// The shard pool and its ring.
    pub pool: ShardPool,
    /// The single-flight coalescing map.
    pub flights: SingleFlight,
    /// Gateway counters.
    pub metrics: GatewayMetrics,
}

impl GatewayState {
    /// Builds the state for a pool of shard addresses.
    pub fn new(config: GatewayConfig, shard_addrs: Vec<String>) -> GatewayState {
        GatewayState {
            flights: SingleFlight::new(config.request_timeout),
            pool: ShardPool::new(shard_addrs),
            metrics: GatewayMetrics::default(),
            config,
        }
    }

    /// Decodes and executes one request payload, returning the reply
    /// JSON: locally for `ping`/`health`/`stats` and parse errors,
    /// routed upstream for everything else.
    pub fn handle(&self, payload: &str) -> String {
        let reply = match Request::decode(payload) {
            // Same mapping as the shard's own handler, so a malformed
            // frame gets byte-identical bytes from gateway and shard.
            Err(e) => error_json(&ProtocolError::new("parse", e.to_string())).render(),
            Ok(req) => match req.command {
                Command::Ping => Json::obj([
                    ("ok", Json::Bool(true)),
                    ("command", Json::Str("ping".into())),
                ])
                .render(),
                Command::Health => self.health_json().render(),
                Command::Stats => self.stats_json().render(),
                Command::Batch => self.handle_batch(&req),
                _ => self.route_one(payload, &req),
            },
        };
        if reply.starts_with("{\"ok\":false") {
            GatewayMetrics::bump(&self.metrics.served_err);
        } else {
            GatewayMetrics::bump(&self.metrics.served_ok);
        }
        reply
    }

    /// Unpacks a batch, routes every sub-request independently (each to
    /// its own ring position), and reassembles the sub-replies verbatim.
    fn handle_batch(&self, req: &Request) -> String {
        GatewayMetrics::bump(&self.metrics.batch_frames);
        let replies: Vec<String> = req
            .batch
            .iter()
            .map(|sub| {
                GatewayMetrics::bump(&self.metrics.batch_subs);
                match Request::decode(sub) {
                    Err(e) => error_json(&ProtocolError::new("parse", e.to_string())).render(),
                    Ok(sub_req) => match sub_req.command {
                        Command::Ping => Json::obj([
                            ("ok", Json::Bool(true)),
                            ("command", Json::Str("ping".into())),
                        ])
                        .render(),
                        // Embedded stats/health describe the process that
                        // answers them (load-dependent by nature), so the
                        // gateway answers with its own view.
                        Command::Health => self.health_json().render(),
                        Command::Stats => self.stats_json().render(),
                        Command::Batch => unreachable!("decoder rejects nested batches"),
                        _ => self.route_one(sub, &sub_req),
                    },
                }
            })
            .collect();
        batch_response(&replies)
    }

    /// Routes one skeleton-bearing (or calibrate) request: computes the
    /// routing key, coalesces identical in-flight projections, and
    /// forwards along the ring's fail-over order.
    fn route_one(&self, payload: &str, req: &Request) -> String {
        let fingerprint = structural_fingerprint(req, payload);
        let key = routing_key(&req.machine, fingerprint);
        // Coalescing is for `project` only: the reply is a pure function
        // of the payload and the flight key includes the full payload
        // hash, so leader and follower replies are interchangeable.
        if req.command == Command::Project {
            let flight_key =
                (u128::from(fnv1a(payload.as_bytes())) << 64) ^ fingerprint ^ u128::from(key);
            match self.flights.join(flight_key) {
                Joined::Follower(reply) => {
                    GatewayMetrics::bump(&self.metrics.coalesced);
                    return reply;
                }
                Joined::Leader(guard) => {
                    let reply = self.forward_failover(payload, key);
                    guard.complete(&reply);
                    return reply;
                }
                Joined::Orphaned => return self.forward_failover(payload, key),
            }
        }
        self.forward_failover(payload, key)
    }

    /// Tries the key's shards in ring order: healthy ones first, then —
    /// if every healthy attempt failed — the evicted ones as a last
    /// resort (fail-fast marking may be stale). Every failure marks the
    /// shard unhealthy so later requests skip it immediately.
    fn forward_failover(&self, payload: &str, key: u64) -> String {
        GatewayMetrics::bump(&self.metrics.routed_total);
        let candidates = self.pool.route(key);
        let timeout = self.config.request_timeout;
        let faults = &self.config.faults;
        // Snapshot health up front: healthy shards first (ring order),
        // then the evicted ones as a last resort — fail-fast marking may
        // be stale, and a full pool of "unhealthy" shards must still get
        // one attempt each rather than an instant `unavailable`.
        let healthy_first: Vec<_> = candidates
            .iter()
            .filter(|s| s.is_healthy())
            .chain(candidates.iter().filter(|s| !s.is_healthy()))
            .collect();
        let mut tried = 0usize;
        for shard in healthy_first {
            tried += 1;
            if tried > 1 {
                GatewayMetrics::bump(&self.metrics.failovers);
            }
            match shard.forward(payload, timeout, faults) {
                Ok(reply) => {
                    shard.mark_healthy(self.config.probe_interval);
                    shard.routed.fetch_add(1, Ordering::Relaxed);
                    return reply;
                }
                Err(_) => {
                    shard.forward_errors.fetch_add(1, Ordering::Relaxed);
                    shard.mark_failed(self.config.probe_backoff);
                }
            }
        }
        GatewayMetrics::bump(&self.metrics.unavailable);
        error_json(&ProtocolError::new(
            "unavailable",
            format!(
                "no shard answered after {tried} attempt(s) across {} shard(s)",
                candidates.len()
            ),
        ))
        .render()
    }

    /// The gateway's `health` reply: its role and pool occupancy.
    fn health_json(&self) -> Json {
        Json::obj([
            ("ok", Json::Bool(true)),
            ("command", Json::Str("health".into())),
            ("role", Json::Str("gateway".into())),
            ("shards", Json::Num(self.pool.len() as f64)),
            (
                "healthy_shards",
                Json::Num(self.pool.healthy_count() as f64),
            ),
        ])
    }

    /// The gateway's `stats` reply: per-shard health and routed counts
    /// plus the coalescing and fail-over counters.
    fn stats_json(&self) -> Json {
        let m = &self.metrics;
        let load = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        Json::obj([
            ("ok", Json::Bool(true)),
            ("command", Json::Str("stats".into())),
            (
                "gateway",
                Json::obj([
                    (
                        "shards",
                        Json::Arr(
                            self.pool
                                .shards()
                                .iter()
                                .map(|s| {
                                    Json::obj([
                                        ("label", Json::Str(s.label.clone())),
                                        ("addr", Json::Str(s.addr.clone())),
                                        ("healthy", Json::Bool(s.is_healthy())),
                                        ("routed", load(&s.routed)),
                                        ("forward_errors", load(&s.forward_errors)),
                                        ("probe_failures", load(&s.probe_failures)),
                                        ("readmissions", load(&s.readmissions)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("served_ok", load(&m.served_ok)),
                    ("served_err", load(&m.served_err)),
                    ("routed_total", load(&m.routed_total)),
                    ("coalesced", load(&m.coalesced)),
                    ("failovers", load(&m.failovers)),
                    ("unavailable", load(&m.unavailable)),
                    ("batch_frames", load(&m.batch_frames)),
                    ("batch_subs", load(&m.batch_subs)),
                    ("rejected_busy", load(&m.rejected_busy)),
                    ("in_flight", Json::Num(self.flights.in_flight() as f64)),
                ]),
            ),
        ])
    }

    /// Marks one busy rejection (called by the acceptor).
    pub fn note_busy(&self) {
        GatewayMetrics::bump(&self.metrics.rejected_busy);
    }
}

/// The routing fingerprint for a request: the program's structural
/// fingerprint when the skeleton parses, else a content hash of the
/// whole payload (malformed skeletons still route somewhere definite,
/// and the shard reports the parse error).
fn structural_fingerprint(req: &Request, payload: &str) -> u128 {
    if req.command.needs_skeleton() {
        if let Ok(program) = gpp_skeleton::text::parse(&req.skeleton) {
            return gpp_gpu_model::program_fingerprint(&program);
        }
    }
    u128::from(fnv1a(payload.as_bytes()))
}

/// How often idle loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(10);

/// A bound, ready-to-run gateway.
pub struct Gateway {
    state: Arc<GatewayState>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

impl Gateway {
    /// Binds the configured address (port 0 gives an ephemeral port).
    pub fn bind(config: GatewayConfig, shard_addrs: Vec<String>) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Gateway {
            state: Arc::new(GatewayState::new(config, shard_addrs)),
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The flag that stops the gateway when set.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Shared state (stats, pool) — for embedding and tests.
    pub fn state(&self) -> Arc<GatewayState> {
        self.state.clone()
    }

    /// Runs until the shutdown flag is set (blocking). Accepted
    /// connections drain before return; the prober thread stops with the
    /// accept loop.
    pub fn run(self) -> io::Result<()> {
        let Gateway {
            state,
            listener,
            shutdown,
        } = self;
        listener.set_nonblocking(true)?;
        let workers = state.config.workers.max(1);
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(state.config.queue_depth.max(1));

        crossbeam::thread::scope(|scope| {
            // Background prober: evicts dead shards, re-admits recovered
            // ones. Exits with the shutdown flag.
            {
                let state = state.clone();
                let shutdown = shutdown.clone();
                scope.spawn(move |_| {
                    while !shutdown.load(Ordering::SeqCst) {
                        state.pool.probe_due(
                            state.config.probe_interval,
                            state.config.probe_backoff,
                            state.config.request_timeout.min(Duration::from_secs(2)),
                            &state.config.faults,
                        );
                        std::thread::sleep(POLL);
                    }
                });
            }
            for _ in 0..workers {
                let rx = rx.clone();
                let state = state.clone();
                let shutdown = shutdown.clone();
                scope.spawn(move |_| {
                    while let Ok(stream) = rx.recv() {
                        let _ = serve_connection(stream, &state, &shutdown);
                    }
                });
            }
            loop {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if let Err(crossbeam::channel::TrySendError::Full(stream)) =
                            tx.try_send(stream)
                        {
                            state.note_busy();
                            let mut stream = stream;
                            let _ = write_frame(&mut stream, &busy_response());
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        eprintln!("gpp-gateway: accept failed: {e}");
                        std::thread::sleep(POLL);
                    }
                }
            }
            drop(tx);
        })
        .expect("gpp-gateway worker panicked");
        Ok(())
    }

    /// Runs the gateway on a background thread; returns a handle with the
    /// bound address and a clean shutdown path.
    pub fn spawn(self) -> io::Result<GatewayHandle> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_flag();
        let state = self.state();
        let thread = std::thread::Builder::new()
            .name("gpp-gateway-acceptor".to_string())
            .spawn(move || self.run())?;
        Ok(GatewayHandle {
            addr,
            shutdown,
            state,
            thread,
        })
    }
}

/// Handle to a gateway running on a background thread.
pub struct GatewayHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<GatewayState>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl GatewayHandle {
    /// The gateway's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (stats, pool).
    pub fn state(&self) -> Arc<GatewayState> {
        self.state.clone()
    }

    /// Requests shutdown and waits for the drain to complete.
    pub fn shutdown_and_join(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("gpp-gateway thread panicked")),
        }
    }
}

/// Serves one client connection: any number of frames until EOF. Reads
/// go through [`DeadlineRead`] so an idle or trickling connection can
/// neither pin a worker past the request timeout nor delay shutdown.
fn serve_connection(
    mut stream: TcpStream,
    state: &GatewayState,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let budget = state.config.request_timeout;
    stream.set_write_timeout(Some(budget))?;
    stream.set_nodelay(true).ok();
    loop {
        let mut reader = DeadlineRead::new(&stream, Instant::now() + budget, shutdown);
        let payload = match read_frame_limited(&mut reader, state.config.max_frame_bytes) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            Err(FrameError::TooLarge { declared, max }) => {
                let reply = error_json(&ProtocolError::new(
                    "too_large",
                    format!("request frame of {declared} B exceeds the {max} B limit"),
                ))
                .render();
                write_frame(&mut stream, &reply)?;
                return Ok(());
            }
            Err(FrameError::Io(e)) => return Err(e),
        };
        let response = state.handle(&payload);
        write_frame(&mut stream, &response)?;
    }
}
