//! `gpp-gateway`: a sharding front-end for `gpp-serve`.
//!
//! One gateway fronts N `gpp-serve` shards and speaks the same `gpp/1`
//! framed protocol on both sides, so clients point at the gateway and
//! notice nothing — except that the pool scales and survives shard death:
//!
//! * **consistent-hash routing** ([`ring`]) — requests are routed on
//!   (machine, program structural fingerprint), so identical programs for
//!   a machine always land on the shard whose calibration and projection
//!   caches are already warm for them;
//! * **single-flight coalescing** ([`flight`]) — concurrent identical
//!   projections collapse into one upstream call; followers get a copy of
//!   the leader's reply (projections are pure functions of the payload,
//!   so the bytes are exactly what each would have received);
//! * **batch fan-out** — a `batch` frame is unpacked, each sub-request
//!   routed independently, and the sub-replies reassembled verbatim with
//!   [`gpp_serve::protocol::batch_response`] — bit-for-bit what a single
//!   shard would have produced;
//! * **health-checked fail-over** ([`pool`]) — each shard carries a
//!   circuit breaker (closed / open / half-open): forward errors trip it
//!   open, the background prober runs the half-open trial, requests
//!   re-route along the ring's successor order, and recovered shards are
//!   re-admitted automatically;
//! * **deadline propagation** — a `deadline_ms=` request is forwarded
//!   with its deadline decremented by the time already spent in the
//!   gateway (and its forward timeout capped at the remainder); an
//!   expired deadline is answered locally with the same `deadline` error
//!   a shard would produce. Requests without a deadline forward their
//!   original bytes verbatim;
//! * **hedged requests** — when a warm primary has not answered a
//!   `project` within its rolling p99 forward latency, one budget-metered
//!   hedge fires at the ring successor; the first reply wins and the
//!   loser is dropped. Projections are pure functions of the payload, so
//!   a hedged reply is byte-identical to the primary's.
//!
//! Because every shard computes bit-identical replies for a given payload
//! (calibration and projection are deterministic in (machine, seed)),
//! fail-over is invisible: the chaos suite kills shards mid-load and
//! asserts the full reply set equals a single-shard no-fault run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod pool;
pub mod ring;

use flight::{Joined, SingleFlight};
use gpp_fault::FaultInjector;
use gpp_serve::cache::fnv1a;
use gpp_serve::client::RetryBudget;
use gpp_serve::protocol::{
    batch_response, read_frame_limited, write_frame, Command, FrameError, ProtocolError, Request,
};
use gpp_serve::service::{busy_response, deadline_exceeded, error_json};
use gpp_serve::DeadlineRead;
use grophecy::report::Json;
use pool::{Shard, ShardPool};
use ring::routing_key;
use std::borrow::Cow;
use std::io::{self};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hedge-budget capacity: at most this many hedges can fire in a burst.
const HEDGE_BUDGET_CAPACITY: u32 = 8;

/// Hedge-budget refill rate (milli-tokens per second): sustained hedging
/// is limited to ~4 extra upstream calls per second, so a pool-wide slow
/// patch cannot double the gateway's upstream load.
const HEDGE_BUDGET_REFILL: u64 = 4_000;

/// Slack added to the forward timeout when waiting for an in-flight
/// attempt's thread to report back (covers connect setup overhead).
const ATTEMPT_SLACK: Duration = Duration::from_millis(250);

/// Tunables for one gateway instance.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Listen address (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads handling client connections.
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it get `busy`.
    pub queue_depth: usize,
    /// Per-connection read budget and upstream forward timeout.
    pub request_timeout: Duration,
    /// How often a healthy shard is re-probed.
    pub probe_interval: Duration,
    /// Base backoff before re-probing an unhealthy shard; doubles with
    /// the failure streak.
    pub probe_backoff: Duration,
    /// Largest accepted request frame.
    pub max_frame_bytes: usize,
    /// Whether tail-latency hedging is enabled (`--no-hedge` clears it).
    pub hedge: bool,
    /// The fault plan in force (for `gateway.shard.*` chaos points).
    pub faults: Arc<FaultInjector>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            request_timeout: Duration::from_secs(30),
            probe_interval: Duration::from_millis(500),
            probe_backoff: Duration::from_millis(25),
            max_frame_bytes: 8 << 20,
            hedge: true,
            faults: FaultInjector::disabled(),
        }
    }
}

/// Monotonic gateway counters (all relaxed; read by `stats`).
#[derive(Default)]
pub struct GatewayMetrics {
    /// Requests answered (any outcome).
    pub served_ok: AtomicU64,
    /// Requests answered with `"ok":false`.
    pub served_err: AtomicU64,
    /// Requests forwarded upstream.
    pub routed_total: AtomicU64,
    /// Requests answered from another caller's in-flight reply.
    pub coalesced: AtomicU64,
    /// Forwards that had to move past the primary shard.
    pub failovers: AtomicU64,
    /// Requests no shard could answer.
    pub unavailable: AtomicU64,
    /// Batch frames unpacked.
    pub batch_frames: AtomicU64,
    /// Sub-requests carried by those frames.
    pub batch_subs: AtomicU64,
    /// Connections rejected `busy` at the accept queue.
    pub rejected_busy: AtomicU64,
    /// Hedge attempts fired (primary exceeded its rolling p99).
    pub hedges_fired: AtomicU64,
    /// Hedges whose reply beat the primary's.
    pub hedges_won: AtomicU64,
    /// Requests whose propagated deadline expired inside the gateway.
    pub shed_deadline: AtomicU64,
}

impl GatewayMetrics {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared state behind every gateway worker. Handlers are pure functions
/// of (state, payload) — tests drive them without sockets.
pub struct GatewayState {
    /// The configuration in force.
    pub config: GatewayConfig,
    /// The shard pool and its ring.
    pub pool: ShardPool,
    /// The single-flight coalescing map.
    pub flights: SingleFlight,
    /// Gateway counters.
    pub metrics: GatewayMetrics,
    /// Token bucket metering hedge attempts (time-refilled: hedging is a
    /// latency optimization, so its timing never shapes reply bytes).
    pub hedge_budget: RetryBudget,
}

impl GatewayState {
    /// Builds the state for a pool of shard addresses.
    pub fn new(config: GatewayConfig, shard_addrs: Vec<String>) -> GatewayState {
        GatewayState {
            flights: SingleFlight::new(config.request_timeout),
            pool: ShardPool::new(shard_addrs),
            metrics: GatewayMetrics::default(),
            hedge_budget: RetryBudget::new(HEDGE_BUDGET_CAPACITY)
                .with_refill_milli_per_sec(HEDGE_BUDGET_REFILL),
            config,
        }
    }

    /// Decodes and executes one request payload, returning the reply
    /// JSON: locally for `ping`/`health`/`stats` and parse errors,
    /// routed upstream for everything else.
    pub fn handle(&self, payload: &str) -> String {
        self.handle_at(payload, Instant::now())
    }

    /// [`GatewayState::handle`] with an explicit arrival instant: the
    /// clock `deadline_ms=` budgets are decremented against. The server
    /// loop stamps arrival when the frame finishes reading.
    pub fn handle_at(&self, payload: &str, arrival: Instant) -> String {
        let reply = match Request::decode(payload) {
            // Same mapping as the shard's own handler, so a malformed
            // frame gets byte-identical bytes from gateway and shard.
            Err(e) => error_json(&ProtocolError::new("parse", e.to_string())).render(),
            Ok(req) => match req.command {
                Command::Ping => Json::obj([
                    ("ok", Json::Bool(true)),
                    ("command", Json::Str("ping".into())),
                ])
                .render(),
                Command::Health => self.health_json().render(),
                Command::Stats => self.stats_json().render(),
                Command::Batch => self.handle_batch(&req, arrival),
                _ => self.route_one(payload, &req, arrival),
            },
        };
        if reply.starts_with("{\"ok\":false") {
            GatewayMetrics::bump(&self.metrics.served_err);
        } else {
            GatewayMetrics::bump(&self.metrics.served_ok);
        }
        reply
    }

    /// Unpacks a batch, routes every sub-request independently (each to
    /// its own ring position), and reassembles the sub-replies verbatim.
    fn handle_batch(&self, req: &Request, arrival: Instant) -> String {
        GatewayMetrics::bump(&self.metrics.batch_frames);
        let replies: Vec<String> = req
            .batch
            .iter()
            .map(|sub| {
                GatewayMetrics::bump(&self.metrics.batch_subs);
                match Request::decode(sub) {
                    Err(e) => error_json(&ProtocolError::new("parse", e.to_string())).render(),
                    Ok(sub_req) => match sub_req.command {
                        Command::Ping => Json::obj([
                            ("ok", Json::Bool(true)),
                            ("command", Json::Str("ping".into())),
                        ])
                        .render(),
                        // Embedded stats/health describe the process that
                        // answers them (load-dependent by nature), so the
                        // gateway answers with its own view.
                        Command::Health => self.health_json().render(),
                        Command::Stats => self.stats_json().render(),
                        Command::Batch => unreachable!("decoder rejects nested batches"),
                        _ => self.route_one(sub, &sub_req, arrival),
                    },
                }
            })
            .collect();
        batch_response(&replies)
    }

    /// Routes one skeleton-bearing (or calibrate) request: decrements the
    /// propagated deadline (if any), computes the routing key, coalesces
    /// identical in-flight projections, and forwards — hedged for
    /// projections, along the ring's fail-over order otherwise.
    fn route_one(&self, payload: &str, req: &Request, arrival: Instant) -> String {
        let fingerprint = structural_fingerprint(req, payload);
        let key = routing_key(&req.machine, fingerprint);
        // A deadline-bearing request forwards a rewritten payload whose
        // `deadline_ms` is what is left after gateway time; one without a
        // deadline forwards its original bytes verbatim (the no-deadline
        // wire contract stays byte-for-byte unchanged).
        let (rewritten, remaining) = match req.deadline_ms {
            None => (None, None),
            Some(total) => {
                let spent = u64::try_from(arrival.elapsed().as_millis()).unwrap_or(u64::MAX);
                match total.checked_sub(spent).filter(|rem| *rem > 0) {
                    None => {
                        GatewayMetrics::bump(&self.metrics.shed_deadline);
                        return error_json(&deadline_exceeded(total)).render();
                    }
                    Some(rem) => {
                        let mut fwd = req.clone();
                        fwd.deadline_ms = Some(rem);
                        (Some(fwd.encode()), Some(Duration::from_millis(rem)))
                    }
                }
            }
        };
        let fwd_payload = rewritten.as_deref().unwrap_or(payload);
        // Coalescing is for `project` only: the reply is a pure function
        // of the payload, so leader and follower replies are
        // interchangeable. The flight key hashes the payload with its
        // deadline stripped — callers asking for the same projection
        // under different budgets still share one flight, and the
        // gateway's own deadline rewriting cannot split it.
        let reply = if req.command == Command::Project {
            let key_payload: Cow<str> = match req.deadline_ms {
                None => Cow::Borrowed(payload),
                Some(_) => {
                    let mut bare = req.clone();
                    bare.deadline_ms = None;
                    Cow::Owned(bare.encode())
                }
            };
            let flight_key =
                (u128::from(fnv1a(key_payload.as_bytes())) << 64) ^ fingerprint ^ u128::from(key);
            let wait = remaining.unwrap_or(self.config.request_timeout);
            match self.flights.join_with_budget(flight_key, wait) {
                Joined::Follower(reply) => {
                    // A leader that died on *its* deadline (or was shed)
                    // must not poison followers that still have budget:
                    // those re-fly on their own clock.
                    if reply.starts_with("{\"ok\":false")
                        && (reply.contains("\"kind\":\"deadline\"")
                            || reply.contains("\"kind\":\"shed\""))
                    {
                        self.forward_project(fwd_payload, key, remaining)
                    } else {
                        GatewayMetrics::bump(&self.metrics.coalesced);
                        reply
                    }
                }
                Joined::Leader(guard) => {
                    let reply = self.forward_project(fwd_payload, key, remaining);
                    guard.complete(&reply);
                    reply
                }
                Joined::Orphaned => self.forward_project(fwd_payload, key, remaining),
            }
        } else {
            self.forward_failover(fwd_payload, key, remaining)
        };
        // No ok reply may cross its propagated deadline: an upstream
        // success that arrived late (slow forward path, exhausted hedge
        // budget) is worthless to the caller, so it is converted to the
        // same structured error the shard itself would have produced.
        if let Some(total) = req.deadline_ms {
            if reply.starts_with("{\"ok\":true") && arrival.elapsed() > Duration::from_millis(total)
            {
                GatewayMetrics::bump(&self.metrics.shed_deadline);
                return error_json(&deadline_exceeded(total)).render();
            }
        }
        reply
    }

    /// The forward timeout for one attempt: the configured request
    /// timeout, capped at the propagated deadline's remainder.
    fn forward_timeout(&self, remaining: Option<Duration>) -> Duration {
        remaining.map_or(self.config.request_timeout, |rem| {
            rem.min(self.config.request_timeout)
        })
    }

    /// Forwards a `project`: hedged when the pool is warm enough, else —
    /// or after every hedge arm failed — the sequential fail-over walk.
    fn forward_project(&self, payload: &str, key: u64, remaining: Option<Duration>) -> String {
        GatewayMetrics::bump(&self.metrics.routed_total);
        if let Some(reply) = self.hedged_attempt(payload, key, remaining) {
            return reply;
        }
        self.failover_attempts(payload, key, remaining)
    }

    /// The hedging fast path: fire the primary, and if it has not
    /// answered within its rolling p99 (clamped to ≥ 1 ms and to half
    /// the remaining deadline), fire one budget-metered hedge at the ring
    /// successor. The first reply wins; the loser's thread finishes its
    /// own breaker/latency bookkeeping and its reply is dropped (a
    /// blocking forward cannot be interrupted — dropping the receiver is
    /// the cancellation). Returns `None` when hedging is not applicable
    /// (disabled, fewer than two healthy shards, cold latency window) or
    /// when every fired attempt failed, so the caller falls back to the
    /// sequential walk.
    fn hedged_attempt(
        &self,
        payload: &str,
        key: u64,
        remaining: Option<Duration>,
    ) -> Option<String> {
        if !self.config.hedge {
            return None;
        }
        let healthy: Vec<Arc<Shard>> = self
            .pool
            .route(key)
            .into_iter()
            .filter(|s| s.is_healthy())
            .collect();
        if healthy.len() < 2 {
            return None;
        }
        let p99 = healthy[0].p99_us()?;
        let timeout = self.forward_timeout(remaining);
        let mut delay = Duration::from_micros(p99).max(Duration::from_millis(1));
        if let Some(rem) = remaining {
            delay = delay.min(rem / 2);
        }
        let (tx, rx) = mpsc::channel();
        self.spawn_attempt(&healthy[0], payload, timeout, false, tx.clone());
        let mut expected = 1u32;
        let mut outcome = rx.recv_timeout(delay);
        if matches!(outcome, Err(RecvTimeoutError::Timeout)) {
            // Primary is past its p99. Hedge if the budget allows; either
            // way, keep waiting out the full forward timeout.
            if self.hedge_budget.try_withdraw() {
                GatewayMetrics::bump(&self.metrics.hedges_fired);
                self.spawn_attempt(&healthy[1], payload, timeout, true, tx.clone());
                expected = 2;
            }
            outcome = rx.recv_timeout(timeout.saturating_add(ATTEMPT_SLACK));
        }
        drop(tx);
        let mut failures = 0u32;
        loop {
            match outcome {
                Ok((is_hedge, Ok(reply))) => {
                    if is_hedge {
                        GatewayMetrics::bump(&self.metrics.hedges_won);
                    }
                    return Some(reply);
                }
                Ok((_, Err(_))) => {
                    failures += 1;
                    if failures >= expected {
                        return None;
                    }
                }
                Err(_) => return None,
            }
            outcome = rx.recv_timeout(timeout.saturating_add(ATTEMPT_SLACK));
        }
    }

    /// One upstream attempt on its own thread. Bookkeeping (breaker
    /// state, latency window, per-shard counters) happens on that thread,
    /// so a losing hedge still records its outcome after the winner's
    /// reply has been returned to the client.
    fn spawn_attempt(
        &self,
        shard: &Arc<Shard>,
        payload: &str,
        timeout: Duration,
        is_hedge: bool,
        tx: mpsc::Sender<(bool, Result<String, String>)>,
    ) {
        let shard = shard.clone();
        let payload = payload.to_string();
        let faults = self.config.faults.clone();
        let probe_interval = self.config.probe_interval;
        let probe_backoff = self.config.probe_backoff;
        std::thread::spawn(move || {
            let started = Instant::now();
            let result = shard.forward(&payload, timeout, &faults);
            match &result {
                Ok(_) => {
                    shard.mark_healthy(probe_interval);
                    shard.record_latency(started.elapsed());
                    shard.routed.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    shard.forward_errors.fetch_add(1, Ordering::Relaxed);
                    shard.mark_failed(probe_backoff);
                }
            }
            let _ = tx.send((is_hedge, result.map_err(|e| e.to_string())));
        });
    }

    /// Tries the key's shards in ring order: healthy ones first, then —
    /// if every healthy attempt failed — the evicted ones as a last
    /// resort (fail-fast marking may be stale). Every failure marks the
    /// shard unhealthy so later requests skip it immediately.
    fn forward_failover(&self, payload: &str, key: u64, remaining: Option<Duration>) -> String {
        GatewayMetrics::bump(&self.metrics.routed_total);
        self.failover_attempts(payload, key, remaining)
    }

    fn failover_attempts(&self, payload: &str, key: u64, remaining: Option<Duration>) -> String {
        let candidates = self.pool.route(key);
        let timeout = self.forward_timeout(remaining);
        let faults = &self.config.faults;
        // Snapshot health up front: healthy shards first (ring order),
        // then the evicted ones as a last resort — fail-fast marking may
        // be stale, and a full pool of "unhealthy" shards must still get
        // one attempt each rather than an instant `unavailable`.
        let healthy_first: Vec<_> = candidates
            .iter()
            .filter(|s| s.is_healthy())
            .chain(candidates.iter().filter(|s| !s.is_healthy()))
            .collect();
        let mut tried = 0usize;
        for shard in healthy_first {
            tried += 1;
            if tried > 1 {
                GatewayMetrics::bump(&self.metrics.failovers);
            }
            let started = Instant::now();
            match shard.forward(payload, timeout, faults) {
                Ok(reply) => {
                    shard.mark_healthy(self.config.probe_interval);
                    shard.record_latency(started.elapsed());
                    shard.routed.fetch_add(1, Ordering::Relaxed);
                    return reply;
                }
                Err(_) => {
                    shard.forward_errors.fetch_add(1, Ordering::Relaxed);
                    shard.mark_failed(self.config.probe_backoff);
                }
            }
        }
        GatewayMetrics::bump(&self.metrics.unavailable);
        error_json(&ProtocolError::new(
            "unavailable",
            format!(
                "no shard answered after {tried} attempt(s) across {} shard(s)",
                candidates.len()
            ),
        ))
        .render()
    }

    /// The gateway's `health` reply: its role and pool occupancy.
    fn health_json(&self) -> Json {
        Json::obj([
            ("ok", Json::Bool(true)),
            ("command", Json::Str("health".into())),
            ("role", Json::Str("gateway".into())),
            ("shards", Json::Num(self.pool.len() as f64)),
            (
                "healthy_shards",
                Json::Num(self.pool.healthy_count() as f64),
            ),
        ])
    }

    /// The gateway's `stats` reply: per-shard health and routed counts
    /// plus the coalescing and fail-over counters.
    fn stats_json(&self) -> Json {
        let m = &self.metrics;
        let load = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        Json::obj([
            ("ok", Json::Bool(true)),
            ("command", Json::Str("stats".into())),
            (
                "gateway",
                Json::obj([
                    (
                        "shards",
                        Json::Arr(
                            self.pool
                                .shards()
                                .iter()
                                .map(|s| {
                                    Json::obj([
                                        ("label", Json::Str(s.label.clone())),
                                        ("addr", Json::Str(s.addr.clone())),
                                        ("healthy", Json::Bool(s.is_healthy())),
                                        ("breaker", Json::Str(s.breaker().as_str().into())),
                                        ("routed", load(&s.routed)),
                                        ("forward_errors", load(&s.forward_errors)),
                                        ("probe_failures", load(&s.probe_failures)),
                                        ("readmissions", load(&s.readmissions)),
                                        ("breaker_opens", load(&s.breaker_opens)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("served_ok", load(&m.served_ok)),
                    ("served_err", load(&m.served_err)),
                    ("routed_total", load(&m.routed_total)),
                    ("coalesced", load(&m.coalesced)),
                    ("failovers", load(&m.failovers)),
                    ("unavailable", load(&m.unavailable)),
                    ("batch_frames", load(&m.batch_frames)),
                    ("batch_subs", load(&m.batch_subs)),
                    ("rejected_busy", load(&m.rejected_busy)),
                    ("hedges_fired", load(&m.hedges_fired)),
                    ("hedges_won", load(&m.hedges_won)),
                    ("shed_deadline", load(&m.shed_deadline)),
                    (
                        "breaker_opens",
                        Json::Num(
                            self.pool
                                .shards()
                                .iter()
                                .map(|s| s.breaker_opens.load(Ordering::Relaxed))
                                .sum::<u64>() as f64,
                        ),
                    ),
                    (
                        "retry_budget_exhausted",
                        Json::Num(self.hedge_budget.exhausted_count() as f64),
                    ),
                    ("in_flight", Json::Num(self.flights.in_flight() as f64)),
                ]),
            ),
        ])
    }

    /// Marks one busy rejection (called by the acceptor).
    pub fn note_busy(&self) {
        GatewayMetrics::bump(&self.metrics.rejected_busy);
    }
}

/// The routing fingerprint for a request: the program's structural
/// fingerprint when the skeleton parses, else a content hash of the
/// whole payload (malformed skeletons still route somewhere definite,
/// and the shard reports the parse error).
fn structural_fingerprint(req: &Request, payload: &str) -> u128 {
    if req.command.needs_skeleton() {
        if let Ok(program) = gpp_skeleton::text::parse(&req.skeleton) {
            return gpp_gpu_model::program_fingerprint(&program);
        }
    }
    u128::from(fnv1a(payload.as_bytes()))
}

/// How often idle loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(10);

/// A bound, ready-to-run gateway.
pub struct Gateway {
    state: Arc<GatewayState>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

impl Gateway {
    /// Binds the configured address (port 0 gives an ephemeral port).
    pub fn bind(config: GatewayConfig, shard_addrs: Vec<String>) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Gateway {
            state: Arc::new(GatewayState::new(config, shard_addrs)),
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The flag that stops the gateway when set.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Shared state (stats, pool) — for embedding and tests.
    pub fn state(&self) -> Arc<GatewayState> {
        self.state.clone()
    }

    /// Runs until the shutdown flag is set (blocking). Accepted
    /// connections drain before return; the prober thread stops with the
    /// accept loop.
    pub fn run(self) -> io::Result<()> {
        let Gateway {
            state,
            listener,
            shutdown,
        } = self;
        listener.set_nonblocking(true)?;
        let workers = state.config.workers.max(1);
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(state.config.queue_depth.max(1));

        crossbeam::thread::scope(|scope| {
            // Background prober: evicts dead shards, re-admits recovered
            // ones. Exits with the shutdown flag.
            {
                let state = state.clone();
                let shutdown = shutdown.clone();
                scope.spawn(move |_| {
                    while !shutdown.load(Ordering::SeqCst) {
                        state.pool.probe_due(
                            state.config.probe_interval,
                            state.config.probe_backoff,
                            state.config.request_timeout.min(Duration::from_secs(2)),
                            &state.config.faults,
                        );
                        std::thread::sleep(POLL);
                    }
                });
            }
            for _ in 0..workers {
                let rx = rx.clone();
                let state = state.clone();
                let shutdown = shutdown.clone();
                scope.spawn(move |_| {
                    while let Ok(stream) = rx.recv() {
                        let _ = serve_connection(stream, &state, &shutdown);
                    }
                });
            }
            loop {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if let Err(crossbeam::channel::TrySendError::Full(stream)) =
                            tx.try_send(stream)
                        {
                            state.note_busy();
                            let mut stream = stream;
                            let _ = write_frame(&mut stream, &busy_response());
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        eprintln!("gpp-gateway: accept failed: {e}");
                        std::thread::sleep(POLL);
                    }
                }
            }
            drop(tx);
        })
        .expect("gpp-gateway worker panicked");
        Ok(())
    }

    /// Runs the gateway on a background thread; returns a handle with the
    /// bound address and a clean shutdown path.
    pub fn spawn(self) -> io::Result<GatewayHandle> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_flag();
        let state = self.state();
        let thread = std::thread::Builder::new()
            .name("gpp-gateway-acceptor".to_string())
            .spawn(move || self.run())?;
        Ok(GatewayHandle {
            addr,
            shutdown,
            state,
            thread,
        })
    }
}

/// Handle to a gateway running on a background thread.
pub struct GatewayHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<GatewayState>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl GatewayHandle {
    /// The gateway's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (stats, pool).
    pub fn state(&self) -> Arc<GatewayState> {
        self.state.clone()
    }

    /// Requests shutdown and waits for the drain to complete.
    pub fn shutdown_and_join(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("gpp-gateway thread panicked")),
        }
    }
}

/// Serves one client connection: any number of frames until EOF. Reads
/// go through [`DeadlineRead`] so an idle or trickling connection can
/// neither pin a worker past the request timeout nor delay shutdown.
fn serve_connection(
    mut stream: TcpStream,
    state: &GatewayState,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let budget = state.config.request_timeout;
    stream.set_write_timeout(Some(budget))?;
    stream.set_nodelay(true).ok();
    loop {
        let mut reader = DeadlineRead::new(&stream, Instant::now() + budget, shutdown);
        let payload = match read_frame_limited(&mut reader, state.config.max_frame_bytes) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            Err(FrameError::TooLarge { declared, max }) => {
                let reply = error_json(&ProtocolError::new(
                    "too_large",
                    format!("request frame of {declared} B exceeds the {max} B limit"),
                ))
                .render();
                write_frame(&mut stream, &reply)?;
                return Ok(());
            }
            Err(FrameError::Io(e)) => return Err(e),
        };
        // The deadline clock starts once the frame is fully read: the
        // budget covers gateway queueing + forwarding, not a trickling
        // client's own send time.
        let response = state.handle_at(&payload, Instant::now());
        write_frame(&mut stream, &response)?;
    }
}
