//! The overload chaos suite: a pinned `gateway.shard.slow` plan makes the
//! busiest shard stall for longer than the propagated deadline, and the
//! gateway must degrade gracefully — hedged requests rescue the goodput a
//! no-hedge gateway loses, no `ok` reply ever lands after its deadline,
//! hedging stays within its token budget, and with a generous deadline
//! (or none) the replies stay bit-identical to a single-shard no-fault
//! run.

use gpp_gateway::ring::{routing_key, HashRing};
use gpp_gateway::{GatewayConfig, GatewayState};
use gpp_serve::{Client, ServeConfig, Server, ServerHandle};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(20);
const SHARDS: usize = 3;
/// Warm-phase repetitions of the script: enough traffic that every
/// shard's rolling latency window passes `MIN_LATENCY_SAMPLES` and the
/// projection caches are hot before the stall begins.
const WARM_REPS: usize = 3;
/// The injected stall, deliberately longer than the deadline.
const SLOW_MS: u64 = 300;
/// The end-to-end deadline propagated during the measured phase.
const DEADLINE_MS: u64 = 150;

/// Structurally distinct programs (same family as the kill chaos suite).
fn skeleton(n: usize) -> String {
    let size = 1usize << (12 + n % 8);
    format!(
        "program overload-{n}\n\
         array a f32 [{size}]\n\
         array b f32 [{size}]\n\
         array c f32 [{size}]\n\
         \n\
         kernel add\n\
         \x20 parallel i {size}\n\
         \x20 stmt adds={adds}\n\
         \x20   read  a [i]\n\
         \x20   read  b [i]\n\
         \x20   write c [i]\n",
        adds = 1 + n / 8,
    )
}

fn script(deadline_ms: Option<u64>) -> Vec<String> {
    (0..12)
        .map(|n| {
            let deadline = deadline_ms
                .map(|ms| format!(" deadline_ms={ms}"))
                .unwrap_or_default();
            format!("gpp/1 project seed={}{deadline}\n{}", 3000 + n, skeleton(n))
        })
        .collect()
}

fn spawn_shard() -> ServerHandle {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    Server::bind(config).unwrap().spawn().unwrap()
}

/// How many script requests each shard label owns as primary.
fn primary_counts(script: &[String]) -> Vec<usize> {
    let labels: Vec<String> = (0..SHARDS).map(|i| format!("shard{i}")).collect();
    let ring = HashRing::new(&labels);
    let mut counts = vec![0usize; SHARDS];
    for payload in script {
        let skeleton = payload.split_once('\n').unwrap().1;
        let program = gpp_skeleton::text::parse(skeleton).unwrap();
        let fingerprint = gpp_gpu_model::program_fingerprint(&program);
        let key = routing_key("eureka", fingerprint);
        counts[ring.route(key).unwrap()] += 1;
    }
    counts
}

fn victim(script: &[String]) -> (usize, usize) {
    let counts = primary_counts(script);
    let idx = (0..SHARDS).max_by_key(|&i| counts[i]).unwrap();
    assert!(counts[idx] >= 2, "ring gave no shard 2+ keys: {counts:?}");
    (idx, counts[idx])
}

/// One slow-shard run: warm with `WARM_REPS` fault-free script passes
/// (the `after=` guard), then the measured deadline-bearing pass under
/// the stall. Returns (ok replies, per-request wall times, state).
fn slow_shard_run(hedge: bool) -> (usize, Vec<(String, Duration)>, GatewayState) {
    let warm_script = script(None);
    let (victim_idx, victim_load) = victim(&warm_script);
    let shards: Vec<ServerHandle> = (0..SHARDS).map(|_| spawn_shard()).collect();
    // The stall arms only after the warm phase has used up the victim's
    // fault-free consults.
    let plan = format!(
        "seed=7;gateway.shard.slow@shard{victim_idx}:after={},factor={SLOW_MS}",
        WARM_REPS * victim_load
    );
    let config = GatewayConfig {
        hedge,
        faults: Arc::new(gpp_fault::FaultInjector::new(plan.parse().unwrap())),
        ..GatewayConfig::default()
    };
    let state = GatewayState::new(
        config,
        shards.iter().map(|s| s.addr().to_string()).collect(),
    );

    for rep in 0..WARM_REPS {
        for (i, payload) in warm_script.iter().enumerate() {
            let reply = state.handle(payload);
            assert!(
                reply.starts_with("{\"ok\":true"),
                "warm rep {rep} request {i}: {reply}"
            );
        }
    }

    let measured = script(Some(DEADLINE_MS));
    let mut replies = Vec::new();
    let mut ok = 0usize;
    for payload in &measured {
        let started = Instant::now();
        let reply = state.handle(payload);
        let elapsed = started.elapsed();
        if reply.starts_with("{\"ok\":true") {
            ok += 1;
        } else {
            assert!(
                reply.contains("\"kind\":\"deadline\""),
                "only deadline errors are acceptable degradation: {reply}"
            );
        }
        replies.push((reply, elapsed));
    }
    // Shards shut down after the measured phase; abandoned hedge losers
    // still sleeping in the injected stall just fail their sends.
    for s in shards {
        s.shutdown_and_join().unwrap();
    }
    (ok, replies, state)
}

#[test]
fn hedging_beats_the_no_hedge_baseline_under_a_slow_shard() {
    let (ok_without, _, baseline) = slow_shard_run(false);
    let (ok_with, replies, state) = slow_shard_run(true);

    // The no-hedge gateway loses the victim's keys to the deadline; the
    // hedging gateway re-wins them on the ring successor.
    assert!(
        ok_with > ok_without,
        "hedging goodput {ok_with}/12 must beat the no-hedge baseline {ok_without}/12"
    );
    assert_eq!(
        baseline.metrics.hedges_fired.load(Ordering::Relaxed),
        0,
        "--no-hedge must keep hedging off"
    );
    let fired = state.metrics.hedges_fired.load(Ordering::Relaxed);
    let won = state.metrics.hedges_won.load(Ordering::Relaxed);
    assert!(fired >= 1, "the stalled primary never triggered a hedge");
    assert!(won >= 1, "no hedge ever won against a {SLOW_MS}ms stall");
    assert!(won <= fired);
    // Hedges are budget-metered: capacity 8 plus a sub-second trickle of
    // refill can never have fired more than a dozen extra attempts.
    assert!(fired <= 12, "hedge budget overrun: {fired} fired");

    // Zero replies after the deadline: every ok reply landed within the
    // budget (plus scheduling slack).
    let slack = Duration::from_millis(50);
    for (reply, elapsed) in &replies {
        if reply.starts_with("{\"ok\":true") {
            assert!(
                *elapsed <= Duration::from_millis(DEADLINE_MS) + slack,
                "ok reply landed {elapsed:?} after a {DEADLINE_MS}ms deadline"
            );
        }
    }
}

/// Ground truth for the identity check: one fresh shard, no gateway.
fn reference_replies(script: &[String]) -> Vec<String> {
    let shard = spawn_shard();
    let mut client = Client::connect(shard.addr(), TIMEOUT).unwrap();
    let replies: Vec<String> = script.iter().map(|p| client.call_raw(p).unwrap()).collect();
    drop(client);
    shard.shutdown_and_join().unwrap();
    replies
}

#[test]
fn fault_free_replies_stay_bit_identical_with_hedging_on_and_deadlines_met() {
    // The reference never sees a deadline option; the serve protocol
    // keeps replies deadline-free, so a generously-budgeted gateway run
    // must produce the very same bytes.
    let reference = reference_replies(&script(None));
    let shards: Vec<ServerHandle> = (0..SHARDS).map(|_| spawn_shard()).collect();
    let state = GatewayState::new(
        GatewayConfig::default(),
        shards.iter().map(|s| s.addr().to_string()).collect(),
    );
    let no_deadline: Vec<String> = script(None).iter().map(|p| state.handle(p)).collect();
    assert_eq!(no_deadline, reference, "no-deadline bytes drifted");
    let generous: Vec<String> = script(Some(60_000))
        .iter()
        .map(|p| state.handle(p))
        .collect();
    // The second pass hits warm projection caches upstream: identical
    // except the cached flag, so compare with it normalized.
    let normalize = |r: &String| r.replace("\"cached\":true", "\"cached\":false");
    assert_eq!(
        generous.iter().map(normalize).collect::<Vec<_>>(),
        reference.iter().map(normalize).collect::<Vec<_>>(),
        "a met deadline changed the reply bytes"
    );
    assert_eq!(state.metrics.shed_deadline.load(Ordering::Relaxed), 0);
    for s in shards {
        s.shutdown_and_join().unwrap();
    }
}

#[test]
fn expired_deadline_is_answered_locally_without_a_forward() {
    let shards: Vec<ServerHandle> = (0..1).map(|_| spawn_shard()).collect();
    let state = GatewayState::new(
        GatewayConfig::default(),
        shards.iter().map(|s| s.addr().to_string()).collect(),
    );
    let payload = &script(Some(50))[0];
    // An arrival stamped 200ms in the past: the 50ms budget is gone
    // before routing even starts.
    let reply = state.handle_at(payload, Instant::now() - Duration::from_millis(200));
    assert!(reply.contains("\"kind\":\"deadline\""), "{reply}");
    assert_eq!(state.metrics.shed_deadline.load(Ordering::Relaxed), 1);
    assert_eq!(
        state.metrics.routed_total.load(Ordering::Relaxed),
        0,
        "an expired deadline must not reach a shard"
    );
    // The stats reply exposes the overload counters.
    let stats = state.handle("gpp/1 stats");
    for key in [
        "\"hedges_fired\":",
        "\"hedges_won\":",
        "\"shed_deadline\":",
        "\"breaker_opens\":",
        "\"retry_budget_exhausted\":",
        "\"breaker\":\"closed\"",
    ] {
        assert!(stats.contains(key), "stats missing {key}: {stats}");
    }
    for s in shards {
        s.shutdown_and_join().unwrap();
    }
}
