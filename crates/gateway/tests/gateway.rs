//! Gateway integration: real `gpp-serve` shards on ephemeral ports, a
//! real (or state-driven) gateway in front, and the behaviors the crate
//! promises — protocol transparency, sticky routing, single-flight
//! coalescing, and verbatim batch fan-out.

use gpp_gateway::ring::routing_key;
use gpp_gateway::{Gateway, GatewayConfig, GatewayState};
use gpp_serve::{Client, Command, Request, ServeConfig, Server, ServerHandle};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const VEC_ADD: &str = include_str!("../../../skeletons/vector_add.gsk");
const HOTSPOT: &str = include_str!("../../../skeletons/hotspot_1024.gsk");
const TIMEOUT: Duration = Duration::from_secs(20);

fn spawn_shard() -> ServerHandle {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    Server::bind(config).unwrap().spawn().unwrap()
}

fn spawn_shards(n: usize) -> Vec<ServerHandle> {
    (0..n).map(|_| spawn_shard()).collect()
}

fn addrs(shards: &[ServerHandle]) -> Vec<String> {
    shards.iter().map(|s| s.addr().to_string()).collect()
}

fn project(seed: u64, skeleton: &str) -> String {
    format!("gpp/1 project seed={seed}\n{skeleton}")
}

/// A client pointed at the gateway cannot tell it from a shard: ping is
/// byte-identical, project succeeds with the fingerprint field, and the
/// gateway's own health/stats describe the pool.
#[test]
fn gateway_is_protocol_transparent_over_tcp() {
    let shards = spawn_shards(2);
    let gateway = Gateway::bind(GatewayConfig::default(), addrs(&shards))
        .unwrap()
        .spawn()
        .unwrap();

    let mut via_gateway = Client::connect(gateway.addr(), TIMEOUT).unwrap();
    let mut via_shard = Client::connect(shards[0].addr(), TIMEOUT).unwrap();

    // Ping: answered locally by the gateway, byte-identical to a shard's.
    let pong_g = via_gateway.call(&Request::new(Command::Ping)).unwrap();
    let pong_s = via_shard.call(&Request::new(Command::Ping)).unwrap();
    assert_eq!(pong_g, pong_s);

    // Project: forwarded upstream, fingerprint included.
    let reply = via_gateway.call_raw(&project(11, VEC_ADD)).unwrap();
    assert!(reply.starts_with("{\"ok\":true"), "{reply}");
    assert!(reply.contains("\"fingerprint\":\""), "{reply}");

    // Health names the role so pools and gateways are distinguishable.
    let health = via_gateway.call(&Request::new(Command::Health)).unwrap();
    assert!(health.contains("\"role\":\"gateway\""), "{health}");
    assert!(health.contains("\"shards\":2"), "{health}");
    assert!(health.contains("\"healthy_shards\":2"), "{health}");
    let health_s = via_shard.call(&Request::new(Command::Health)).unwrap();
    assert!(health_s.contains("\"role\":\"serve\""), "{health_s}");

    // Stats exposes per-shard health and routed counts.
    let stats = via_gateway.call(&Request::new(Command::Stats)).unwrap();
    assert!(stats.contains("\"gateway\":{"), "{stats}");
    assert!(stats.contains("\"label\":\"shard0\""), "{stats}");
    assert!(stats.contains("\"label\":\"shard1\""), "{stats}");
    assert!(stats.contains("\"routed_total\":1"), "{stats}");

    gateway.shutdown_and_join().unwrap();
    for s in shards {
        s.shutdown_and_join().unwrap();
    }
}

/// Malformed payloads get byte-identical error replies from gateway and
/// shard — clients see one protocol, wherever they point.
#[test]
fn parse_errors_are_byte_identical_to_a_shard() {
    let shards = spawn_shards(1);
    let state = GatewayState::new(GatewayConfig::default(), addrs(&shards));
    let shard_state = gpp_serve::ServiceState::new(ServeConfig::default());
    for payload in [
        "",
        "gpp/2 project\nx",
        "gpp/1 explode\nx",
        "gpp/1 project seed=-1\nx",
        "gpp/1 project\n",
        "gpp/1 batch n=0\n",
    ] {
        assert_eq!(
            state.handle(payload),
            shard_state.handle(payload, 0),
            "payload {payload:?}"
        );
    }
    for s in shards {
        s.shutdown_and_join().unwrap();
    }
}

/// Routing is sticky: every request for one program (any seed) lands on
/// the same shard, so that shard's caches stay warm for it.
#[test]
fn identical_programs_route_to_one_shard() {
    let shards = spawn_shards(3);
    let state = GatewayState::new(GatewayConfig::default(), addrs(&shards));

    for seed in 21..25 {
        let reply = state.handle(&project(seed, VEC_ADD));
        assert!(reply.starts_with("{\"ok\":true"), "{reply}");
    }
    let routed: Vec<u64> = state
        .pool
        .shards()
        .iter()
        .map(|s| s.routed.load(Ordering::Relaxed))
        .collect();
    assert_eq!(routed.iter().sum::<u64>(), 4, "routed: {routed:?}");
    assert_eq!(
        routed.iter().filter(|&&n| n > 0).count(),
        1,
        "one program must stick to one shard: {routed:?}"
    );

    // The shard that served them memoized: seeds differ (projection
    // misses) but calibration work all landed in one cache.
    let primary = routed.iter().position(|&n| n > 0).unwrap();
    assert_eq!(shards[primary].state().snapshot(0).served_ok, 4);
    for s in shards {
        s.shutdown_and_join().unwrap();
    }
}

/// The acceptance gate for coalescing: at least 8 concurrent identical
/// requests produce exactly ONE upstream projection, proven by the
/// shard's own miss counter — every caller still gets the full reply.
#[test]
fn concurrent_identical_requests_coalesce_to_one_upstream_projection() {
    let shards = spawn_shards(1);
    // Slow the leader's forward by 400 ms (first consult only) so the
    // followers reliably pile onto its flight.
    let faults = Arc::new(gpp_fault::FaultInjector::new(
        "seed=7;gateway.shard.slow:first=1,factor=400"
            .parse()
            .unwrap(),
    ));
    let config = GatewayConfig {
        faults,
        ..GatewayConfig::default()
    };
    let state = Arc::new(GatewayState::new(config, addrs(&shards)));

    let payload = Arc::new(project(77, VEC_ADD));
    let leader = {
        let (state, payload) = (state.clone(), payload.clone());
        std::thread::spawn(move || state.handle(&payload))
    };
    // Let the leader take off (it sleeps 400 ms inside its forward).
    std::thread::sleep(Duration::from_millis(100));
    let followers: Vec<_> = (0..8)
        .map(|_| {
            let (state, payload) = (state.clone(), payload.clone());
            std::thread::spawn(move || state.handle(&payload))
        })
        .collect();

    let lead_reply = leader.join().unwrap();
    assert!(lead_reply.starts_with("{\"ok\":true"), "{lead_reply}");
    for f in followers {
        assert_eq!(f.join().unwrap(), lead_reply, "followers share the bytes");
    }

    let snap = shards[0].state().snapshot(0);
    assert_eq!(
        snap.proj_misses, 1,
        "exactly one projection went upstream (snapshot: {snap:?})"
    );
    assert_eq!(snap.proj_hits, 0, "no follower re-asked: {snap:?}");
    assert_eq!(
        state.metrics.coalesced.load(Ordering::Relaxed),
        8,
        "all 8 followers coalesced"
    );
    assert_eq!(state.metrics.routed_total.load(Ordering::Relaxed), 1);
    for s in shards {
        s.shutdown_and_join().unwrap();
    }
}

/// A batch through the gateway returns sub-replies byte-identical to
/// sending the same requests single-shot — even when its subs route to
/// different shards.
#[test]
fn batch_through_the_gateway_matches_single_shot_replies() {
    // Reference shard: fresh caches, single-shot requests.
    let reference = spawn_shard();
    let mut ref_client = Client::connect(reference.addr(), TIMEOUT).unwrap();

    // Gateway pool: fresh too, so cache-fill order matches.
    let shards = spawn_shards(3);
    let state = GatewayState::new(GatewayConfig::default(), addrs(&shards));

    let subs = vec![
        project(31, VEC_ADD),
        "gpp/1 ping".to_string(),
        project(32, HOTSPOT),
        "gpp/1 project\n".to_string(), // error sub rides along
    ];
    let singles: Vec<String> = subs
        .iter()
        .map(|p| ref_client.call_raw(p).unwrap())
        .collect();

    let reply = state.handle(&Request::new_batch(subs).encode());
    let expected = format!(
        "{{\"ok\":true,\"command\":\"batch\",\"count\":{},\"replies\":[{}]}}",
        singles.len(),
        singles.join(",")
    );
    assert_eq!(reply, expected);
    assert_eq!(state.metrics.batch_frames.load(Ordering::Relaxed), 1);
    assert_eq!(state.metrics.batch_subs.load(Ordering::Relaxed), 4);

    reference.shutdown_and_join().unwrap();
    for s in shards {
        s.shutdown_and_join().unwrap();
    }
}

/// Distinct programs spread across the ring: with enough distinct
/// fingerprints, more than one shard ends up owning keys (sanity check
/// that the ring actually distributes).
#[test]
fn distinct_programs_spread_across_shards() {
    let labels: Vec<String> = (0..3).map(|i| format!("shard{i}")).collect();
    let ring = gpp_gateway::ring::HashRing::new(&labels);
    let mut owners = std::collections::HashSet::new();
    for n in 0..32u64 {
        let key = routing_key("eureka", u128::from(n) * 0x9e37_79b9_7f4a_7c15);
        owners.insert(ring.route(key).unwrap());
    }
    assert_eq!(owners.len(), 3, "32 keys must reach all 3 shards");
}
