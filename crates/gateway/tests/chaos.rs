//! The gateway chaos suite: shards die mid-load — injected via pinned
//! fault plans (seeds 7, 42, 2013) and for real (a live `gpp-serve`
//! process shut down under concurrent clients) — and the reply set must
//! be **bit-identical** to a single-shard, no-fault run. Projections are
//! pure functions of (machine, seed, payload), so routing, fail-over,
//! and re-admission must all be invisible at the byte level.

use gpp_gateway::ring::{routing_key, HashRing};
use gpp_gateway::{Gateway, GatewayConfig, GatewayState};
use gpp_serve::{Client, ServeConfig, Server, ServerHandle};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(20);
const SHARDS: usize = 3;

/// A family of structurally distinct programs: each size yields different
/// per-kernel characteristics, hence a different structural fingerprint,
/// hence its own position on the ring.
fn skeleton(n: usize) -> String {
    let size = 1usize << (12 + n % 8);
    format!(
        "program chaos-{n}\n\
         array a f32 [{size}]\n\
         array b f32 [{size}]\n\
         array c f32 [{size}]\n\
         \n\
         kernel add\n\
         \x20 parallel i {size}\n\
         \x20 stmt adds={adds}\n\
         \x20   read  a [i]\n\
         \x20   read  b [i]\n\
         \x20   write c [i]\n",
        adds = 1 + n / 8,
    )
}

/// The scripted load: every request a distinct (program, seed), so every
/// reply is a projection-cache miss wherever it lands — the property that
/// makes single-shard and sharded runs byte-comparable.
fn script() -> Vec<String> {
    (0..12)
        .map(|n| format!("gpp/1 project seed={}\n{}", 3000 + n, skeleton(n)))
        .collect()
}

fn spawn_shard() -> ServerHandle {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    Server::bind(config).unwrap().spawn().unwrap()
}

/// The ground truth: one fresh shard, no gateway, no faults.
fn reference_replies(script: &[String]) -> Vec<String> {
    let shard = spawn_shard();
    let mut client = Client::connect(shard.addr(), TIMEOUT).unwrap();
    let replies: Vec<String> = script.iter().map(|p| client.call_raw(p).unwrap()).collect();
    for (i, reply) in replies.iter().enumerate() {
        assert!(
            reply.starts_with("{\"ok\":true"),
            "reference request {i} failed: {reply}"
        );
    }
    drop(client);
    shard.shutdown_and_join().unwrap();
    replies
}

/// Routes the script through the same ring the pool builds, returning how
/// many requests each shard label owns as primary. Used to pick a victim
/// that actually carries load, so killing it is guaranteed to matter.
fn primary_counts(script: &[String]) -> Vec<usize> {
    let labels: Vec<String> = (0..SHARDS).map(|i| format!("shard{i}")).collect();
    let ring = HashRing::new(&labels);
    let mut counts = vec![0usize; SHARDS];
    for payload in script {
        let skeleton = payload.split_once('\n').unwrap().1;
        let program = gpp_skeleton::text::parse(skeleton).unwrap();
        let fingerprint = gpp_gpu_model::program_fingerprint(&program);
        // Requests in the script never set machine=, so they route under
        // the protocol default.
        let key = routing_key("eureka", fingerprint);
        counts[ring.route(key).unwrap()] += 1;
    }
    counts
}

fn victim(script: &[String]) -> (usize, usize) {
    let counts = primary_counts(script);
    let idx = (0..SHARDS).max_by_key(|&i| counts[i]).unwrap();
    assert!(
        counts[idx] >= 2,
        "ring never gave any shard 2+ keys: {counts:?}"
    );
    (idx, counts[idx])
}

/// One injected-kill chaos run under a pinned plan: the busiest shard
/// goes down (connection-refused on every forward) halfway through its
/// own traffic. Every request must still be answered, and the full reply
/// set must equal the single-shard no-fault reference byte for byte.
fn assert_injected_kill_is_bit_invisible(seed: u64) {
    let script = script();
    let reference = reference_replies(&script);
    let (victim_idx, victim_load) = victim(&script);

    let shards: Vec<ServerHandle> = (0..SHARDS).map(|_| spawn_shard()).collect();
    let kill_after = (victim_load / 2).max(1);
    let plan = format!("seed={seed};gateway.shard.down@shard{victim_idx}:after={kill_after}");
    let config = GatewayConfig {
        faults: Arc::new(gpp_fault::FaultInjector::new(plan.parse().unwrap())),
        ..GatewayConfig::default()
    };
    let state = GatewayState::new(
        config,
        shards.iter().map(|s| s.addr().to_string()).collect(),
    );

    let replies: Vec<String> = script.iter().map(|p| state.handle(p)).collect();
    for (i, reply) in replies.iter().enumerate() {
        assert!(
            reply.starts_with("{\"ok\":true"),
            "seed {seed}: request {i} lost to the kill: {reply}"
        );
    }
    assert_eq!(
        replies, reference,
        "seed {seed}: re-routed replies diverged from the single-shard run"
    );

    // The kill really happened and really re-routed.
    let m = &state.metrics;
    assert!(
        m.failovers.load(Ordering::Relaxed) >= 1,
        "seed {seed}: no fail-over recorded"
    );
    assert_eq!(m.unavailable.load(Ordering::Relaxed), 0);
    let dead = &state.pool.shards()[victim_idx];
    assert!(!dead.is_healthy(), "seed {seed}: victim still healthy");
    assert!(dead.forward_errors.load(Ordering::Relaxed) >= 1);

    for s in shards {
        s.shutdown_and_join().unwrap();
    }
}

#[test]
fn injected_shard_kill_is_bit_invisible_under_seed_7() {
    assert_injected_kill_is_bit_invisible(7);
}

#[test]
fn injected_shard_kill_is_bit_invisible_under_seed_42() {
    assert_injected_kill_is_bit_invisible(42);
}

#[test]
fn injected_shard_kill_is_bit_invisible_under_seed_2013() {
    assert_injected_kill_is_bit_invisible(2013);
}

/// The real thing: a full TCP gateway, four concurrent clients, and a
/// live shard process shut down while they are mid-script. No injection —
/// the fail-over path sees genuine connection-refused errors.
#[test]
fn real_shard_death_under_concurrent_clients_is_bit_invisible() {
    let script = script();
    let reference = reference_replies(&script);
    let (victim_idx, _) = victim(&script);

    let mut shards: Vec<Option<ServerHandle>> = (0..SHARDS).map(|_| Some(spawn_shard())).collect();
    let config = GatewayConfig {
        // Probe fast so the dead shard is also noticed by the prober, not
        // only by fail-fast marking.
        probe_interval: Duration::from_millis(50),
        probe_backoff: Duration::from_millis(10),
        ..GatewayConfig::default()
    };
    let addrs = shards
        .iter()
        .map(|s| s.as_ref().unwrap().addr().to_string())
        .collect();
    let gateway = Gateway::bind(config, addrs).unwrap().spawn().unwrap();

    // Four clients, three requests each. Everyone sends one request, hits
    // the barrier, the victim dies, then the remaining load flows.
    let clients = 4;
    let per_client = script.len() / clients;
    let barrier = Arc::new(Barrier::new(clients + 1));
    let gateway_addr = gateway.addr();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let script: Vec<String> = script[c * per_client..(c + 1) * per_client].to_vec();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(gateway_addr, TIMEOUT).unwrap();
                let mut replies = vec![client.call_raw(&script[0]).unwrap()];
                barrier.wait(); // shard dies here
                barrier.wait(); // ...and is gone
                for payload in &script[1..] {
                    replies.push(client.call_raw(payload).unwrap());
                }
                (c, replies)
            })
        })
        .collect();

    barrier.wait();
    shards[victim_idx]
        .take()
        .unwrap()
        .shutdown_and_join()
        .unwrap();
    barrier.wait();

    let mut replies = vec![String::new(); script.len()];
    for t in threads {
        let (c, batch) = t.join().unwrap();
        for (i, reply) in batch.into_iter().enumerate() {
            replies[c * per_client + i] = reply;
        }
    }
    for (i, reply) in replies.iter().enumerate() {
        assert!(
            reply.starts_with("{\"ok\":true"),
            "request {i} lost to the real kill: {reply}"
        );
    }
    assert_eq!(
        replies, reference,
        "replies after a real shard death diverged from the single-shard run"
    );
    assert!(!gateway.state().pool.shards()[victim_idx].is_healthy());

    gateway.shutdown_and_join().unwrap();
    for s in shards.into_iter().flatten() {
        s.shutdown_and_join().unwrap();
    }
}

/// Recovery: a shard that was down (injected, `first=N` — the fault
/// stops firing after N forwards) is re-admitted by the prober, and the
/// traffic it owns comes back to it. Replies stay bit-identical
/// throughout.
#[test]
fn recovered_shard_is_readmitted_and_reowns_its_keys() {
    let script = script();
    let reference = reference_replies(&script);
    let (victim_idx, _) = victim(&script);

    let shards: Vec<ServerHandle> = (0..SHARDS).map(|_| spawn_shard()).collect();
    // The victim refuses its first 2 forwards, then recovers for good.
    let plan = format!("seed=7;gateway.shard.down@shard{victim_idx}:first=2");
    let config = GatewayConfig {
        probe_backoff: Duration::from_millis(5),
        faults: Arc::new(gpp_fault::FaultInjector::new(plan.parse().unwrap())),
        ..GatewayConfig::default()
    };
    let state = GatewayState::new(
        config.clone(),
        shards.iter().map(|s| s.addr().to_string()).collect(),
    );

    let replies: Vec<String> = script.iter().map(|p| state.handle(p)).collect();
    assert_eq!(replies, reference, "fail-over window changed the bytes");

    let shard = &state.pool.shards()[victim_idx];
    assert!(shard.forward_errors.load(Ordering::Relaxed) >= 1);

    // Drive the prober by hand until the exhausted rule lets a probe
    // through and the shard rejoins the healthy set.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !shard.is_healthy() {
        assert!(Instant::now() < deadline, "shard never re-admitted");
        state.pool.probe_due(
            config.probe_interval,
            config.probe_backoff,
            TIMEOUT,
            &config.faults,
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(shard.readmissions.load(Ordering::SeqCst) >= 1);

    // Its keyspace comes home: re-running a script request that the
    // victim owns routes to it again (and, being cached upstream now,
    // stays byte-identical except for the cached flag — so just assert
    // delivery and destination).
    let owned = script
        .iter()
        .position(|p| {
            let skeleton = p.split_once('\n').unwrap().1;
            let program = gpp_skeleton::text::parse(skeleton).unwrap();
            let key = routing_key("eureka", gpp_gpu_model::program_fingerprint(&program));
            let labels: Vec<String> = (0..SHARDS).map(|i| format!("shard{i}")).collect();
            HashRing::new(&labels).route(key).unwrap() == victim_idx
        })
        .expect("victim owns at least one script key");
    let before = shard.routed.load(Ordering::Relaxed);
    let reply = state.handle(&script[owned]);
    assert!(reply.starts_with("{\"ok\":true"), "{reply}");
    assert_eq!(
        shard.routed.load(Ordering::Relaxed),
        before + 1,
        "re-admitted shard did not get its key back"
    );

    for s in shards {
        s.shutdown_and_join().unwrap();
    }
}
