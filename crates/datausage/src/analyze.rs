//! The dataflow analysis over kernel sequences.

use crate::hints::Hints;
use crate::plan::{Transfer, TransferDir, TransferPlan};
use gpp_brs::{ArrayId, SectionSet};
use gpp_skeleton::sections::{read_sets, write_sets};
use gpp_skeleton::{Program, TransferKind};
use std::collections::BTreeMap;

/// Runs the data usage analysis on a program (a sequence of kernels), in
/// kernel order, producing the transfer plan.
///
/// Algorithm (paper §III-B): walk kernels in order, maintaining the union
/// of device-written sections per array. For each kernel, any read section
/// not covered by prior device writes must be transferred host→device.
/// The union of all written sections, minus hinted temporaries, must come
/// back device→host.
///
/// Skeletons that pin an **explicit** transfer schedule (`h2d`/`d2h`
/// directives; [`Program::has_explicit_transfers`]) are priced *as
/// written* instead: one whole-array transfer per directive, in program
/// order. That is what lets `gpp lint`'s whole-program passes quantify
/// the cost of a wasteful schedule — the projector prices exactly what
/// the skeleton says, not the minimum the analysis could derive.
pub fn analyze(program: &Program, hints: &Hints) -> TransferPlan {
    if program.has_explicit_transfers() {
        return explicit_plan(program, hints);
    }
    let mut written: BTreeMap<ArrayId, SectionSet> = BTreeMap::new();
    let mut inbound: BTreeMap<ArrayId, SectionSet> = BTreeMap::new();

    for kernel in &program.kernels {
        for (array, read) in read_sets(kernel, program) {
            let mut need = read;
            if let Some(w) = written.get(&array) {
                need.subtract(w);
            }
            if need.is_empty() {
                continue;
            }
            match inbound.get_mut(&array) {
                Some(set) => set.union_with(&need),
                None => {
                    inbound.insert(array, need);
                }
            }
        }
        for (array, wset) in write_sets(kernel, program) {
            match written.get_mut(&array) {
                Some(set) => set.union_with(&wset),
                None => {
                    written.insert(array, wset);
                }
            }
        }
    }

    let h2d = inbound
        .into_iter()
        .map(|(array, set)| make_transfer(program, hints, array, &set, TransferDir::ToDevice))
        .collect();

    let d2h = written
        .into_iter()
        .filter(|(array, _)| !hints.is_temporary(*array))
        .map(|(array, set)| make_transfer(program, hints, array, &set, TransferDir::FromDevice))
        .collect();

    TransferPlan { h2d, d2h }
}

/// Prices an explicit `h2d`/`d2h` schedule literally: one whole-array
/// transfer per directive, in program order. Sparse arrays keep the
/// conservative-fallback / hint rules of the derived path; everything
/// else is exact (the directive names the whole allocation).
fn explicit_plan(program: &Program, hints: &Hints) -> TransferPlan {
    let mut h2d = Vec::new();
    let mut d2h = Vec::new();
    for t in &program.transfers {
        let decl = program.array(t.array);
        let (bytes, exact) = if decl.sparse {
            match hints.sparse_bytes(t.array) {
                Some(b) => (b.min(decl.byte_count()), true),
                None => (decl.byte_count(), false),
            }
        } else {
            (decl.byte_count(), true)
        };
        let dir = match t.kind {
            TransferKind::HostToDevice => TransferDir::ToDevice,
            TransferKind::DeviceToHost => TransferDir::FromDevice,
        };
        let rec = Transfer {
            array: t.array,
            name: decl.name.clone(),
            bytes,
            dir,
            exact,
        };
        match dir {
            TransferDir::ToDevice => h2d.push(rec),
            TransferDir::FromDevice => d2h.push(rec),
        }
    }
    TransferPlan { h2d, d2h }
}

/// Builds one transfer record, applying the sparse fallback / hint rules.
fn make_transfer(
    program: &Program,
    hints: &Hints,
    array: ArrayId,
    set: &SectionSet,
    dir: TransferDir,
) -> Transfer {
    let decl = program.array(array);
    let (bytes, exact) = if decl.sparse {
        match hints.sparse_bytes(array) {
            // The user bounded the useful contents.
            Some(b) => (b.min(decl.byte_count()), true),
            // Conservative: the whole allocation may be referenced.
            None => (decl.byte_count(), false),
        }
    } else {
        let b = set.byte_count(decl.elem.bytes()).min(decl.byte_count());
        (b, set.is_exact())
    };
    Transfer {
        array,
        name: decl.name.clone(),
        bytes,
        dir,
        exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_skeleton::builder::{idx, irr, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops};

    /// SRAD-like shape: k1 reads img, writes coeff; k2 reads img+coeff,
    /// writes img.
    fn srad_like(n: usize) -> (Program, ArrayId, ArrayId) {
        let mut p = ProgramBuilder::new("srad-like");
        let img = p.array("img", ElemType::F32, &[n, n]);
        let coeff = p.array("coeff", ElemType::F32, &[n, n]);
        let mut k1 = p.kernel("prep");
        let i = k1.parallel_loop("i", n as u64);
        let j = k1.parallel_loop("j", n as u64);
        k1.statement()
            .read(img, &[idx(i), idx(j)])
            .write(coeff, &[idx(i), idx(j)])
            .flops(Flops {
                adds: 4,
                divs: 1,
                ..Flops::default()
            })
            .finish();
        k1.finish();
        let mut k2 = p.kernel("update");
        let i = k2.parallel_loop("i", n as u64);
        let j = k2.parallel_loop("j", n as u64);
        k2.statement()
            .read(img, &[idx(i), idx(j)])
            .read(coeff, &[idx(i), idx(j)])
            .write(img, &[idx(i), idx(j)])
            .flops(Flops {
                adds: 6,
                muls: 2,
                ..Flops::default()
            })
            .finish();
        k2.finish();
        let prog = p.build().unwrap();
        (prog, img, coeff)
    }

    #[test]
    fn device_produced_data_is_not_sent() {
        let (prog, img, coeff) = srad_like(256);
        let plan = analyze(&prog, &Hints::new());
        // Only img goes in: coeff is written by k1 before k2 reads it.
        assert_eq!(plan.h2d.len(), 1);
        assert_eq!(plan.h2d[0].array, img);
        assert_eq!(plan.h2d[0].bytes, 256 * 256 * 4);
        // Without hints, both written arrays come back.
        assert_eq!(plan.d2h.len(), 2);
        let _ = coeff;
    }

    #[test]
    fn temporary_hint_skips_copy_back() {
        let (prog, img, coeff) = srad_like(256);
        let plan = analyze(&prog, &Hints::new().temporary(coeff));
        assert_eq!(plan.d2h.len(), 1);
        assert_eq!(plan.d2h[0].array, img);
        assert!(plan.is_exact());
    }

    #[test]
    fn partial_prior_write_sends_remainder() {
        // k1 writes the first half of x; k2 reads all of x:
        // only the unwritten second half needs transferring.
        let mut p = ProgramBuilder::new("halves");
        let x = p.array("x", ElemType::F32, &[1000]);
        let y = p.array("y", ElemType::F32, &[1000]);
        let mut k1 = p.kernel("k1");
        let i = k1.parallel_loop("i", 500);
        k1.statement().write(x, &[idx(i)]).finish();
        k1.finish();
        let mut k2 = p.kernel("k2");
        let i = k2.parallel_loop("i", 1000);
        k2.statement()
            .read(x, &[idx(i)])
            .write(y, &[idx(i)])
            .finish();
        k2.finish();
        let prog = p.build().unwrap();
        let plan = analyze(&prog, &Hints::new());
        let x_in = plan.h2d.iter().find(|t| t.array == x).unwrap();
        assert_eq!(x_in.bytes, 500 * 4);
    }

    #[test]
    fn read_after_own_write_in_same_kernel_still_transfers() {
        // Within one kernel, reads are processed before writes take
        // effect (per-kernel granularity: the read may race the write on
        // device, so the input must be present).
        let mut p = ProgramBuilder::new("rw");
        let x = p.array("x", ElemType::F32, &[100]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 100);
        k.statement()
            .read(x, &[idx(i)])
            .write(x, &[idx(i)])
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        let plan = analyze(&prog, &Hints::new());
        assert_eq!(plan.h2d_bytes(), 400);
        assert_eq!(plan.d2h_bytes(), 400);
    }

    #[test]
    fn sparse_array_conservative_then_hinted() {
        let mut p = ProgramBuilder::new("spmv");
        let vals = p.sparse_array("vals", ElemType::F64, &[10_000]);
        let x = p.array("x", ElemType::F64, &[100]);
        let y = p.array("y", ElemType::F64, &[100]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 100);
        k.statement()
            .read_ix(vals, &[irr()])
            .read_ix(x, &[irr()])
            .write(y, &[idx(i)])
            .finish();
        k.finish();
        let prog = p.build().unwrap();

        // Conservative: whole vals allocation.
        let plan = analyze(&prog, &Hints::new());
        let v = plan.h2d.iter().find(|t| t.name == "vals").unwrap();
        assert_eq!(v.bytes, 80_000);
        assert!(!v.exact);

        // Hinted: only nnz × 8 bytes.
        let plan = analyze(
            &prog,
            &Hints::new().sparse_bound(prog.array_by_name("vals").unwrap().id, 3456 * 8),
        );
        let v = plan.h2d.iter().find(|t| t.name == "vals").unwrap();
        assert_eq!(v.bytes, 3456 * 8);
        assert!(v.exact);
    }

    #[test]
    fn sparse_hint_clamped_to_allocation() {
        let mut p = ProgramBuilder::new("clamp");
        let v = p.sparse_array("v", ElemType::F32, &[10]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 10);
        k.statement().read(v, &[idx(i)]).finish();
        k.finish();
        let prog = p.build().unwrap();
        let plan = analyze(&prog, &Hints::new().sparse_bound(v, 1 << 30));
        assert_eq!(plan.h2d[0].bytes, 40);
    }

    #[test]
    fn untouched_arrays_do_not_transfer() {
        let mut p = ProgramBuilder::new("unused");
        let a = p.array("a", ElemType::F32, &[100]);
        let _unused = p.array("unused", ElemType::F64, &[1 << 20]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 100);
        k.statement()
            .read(a, &[idx(i)])
            .write(a, &[idx(i)])
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        let plan = analyze(&prog, &Hints::new());
        assert_eq!(plan.transfer_count(), 2);
        assert!(plan.all().all(|t| t.name == "a"));
    }

    #[test]
    fn explicit_schedule_is_priced_as_written() {
        use gpp_skeleton::TransferKind;
        // Same SRAD-like dataflow, but with a deliberately wasteful
        // explicit schedule: img uploaded twice, coeff downloaded too.
        let mut p = ProgramBuilder::new("explicit");
        let n = 64usize;
        let img = p.array("img", ElemType::F32, &[n, n]);
        let coeff = p.array("coeff", ElemType::F32, &[n, n]);
        p.transfer(img, TransferKind::HostToDevice);
        let mut k1 = p.kernel("prep");
        let i = k1.parallel_loop("i", n as u64);
        let j = k1.parallel_loop("j", n as u64);
        k1.statement()
            .read(img, &[idx(i), idx(j)])
            .write(coeff, &[idx(i), idx(j)])
            .finish();
        k1.finish();
        p.transfer(img, TransferKind::HostToDevice); // redundant re-upload
        let mut k2 = p.kernel("update");
        let i = k2.parallel_loop("i", n as u64);
        let j = k2.parallel_loop("j", n as u64);
        k2.statement()
            .read(img, &[idx(i), idx(j)])
            .read(coeff, &[idx(i), idx(j)])
            .write(img, &[idx(i), idx(j)])
            .finish();
        k2.finish();
        p.transfer(img, TransferKind::DeviceToHost);
        p.transfer(coeff, TransferKind::DeviceToHost);
        let prog = p.build().unwrap();

        let plan = analyze(&prog, &Hints::new());
        let full = (n * n * 4) as u64;
        // Priced literally: 2 uploads + 2 downloads, all whole-array.
        assert_eq!(plan.h2d.len(), 2);
        assert_eq!(plan.d2h.len(), 2);
        assert_eq!(plan.h2d_bytes(), 2 * full);
        assert_eq!(plan.d2h_bytes(), 2 * full);
        assert!(plan.is_exact());
        // The derived plan for the same kernels is strictly smaller.
        let mut derived = prog.clone();
        derived.transfers.clear();
        let minimal = analyze(&derived, &Hints::new());
        assert!(minimal.total_bytes() < plan.total_bytes());
    }

    #[test]
    fn explicit_schedule_keeps_sparse_hint_rules() {
        use gpp_skeleton::TransferKind;
        let mut p = ProgramBuilder::new("explicit-sparse");
        let vals = p.sparse_array("vals", ElemType::F64, &[10_000]);
        let y = p.array("y", ElemType::F64, &[100]);
        p.transfer(vals, TransferKind::HostToDevice);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 100);
        k.statement()
            .read_ix(vals, &[irr()])
            .write(y, &[idx(i)])
            .finish();
        k.finish();
        p.transfer(y, TransferKind::DeviceToHost);
        let prog = p.build().unwrap();

        let plan = analyze(&prog, &Hints::new());
        assert_eq!(plan.h2d[0].bytes, 80_000);
        assert!(!plan.h2d[0].exact);
        let hinted = analyze(
            &prog,
            &Hints::new().sparse_bound(prog.array_by_name("vals").unwrap().id, 500 * 8),
        );
        assert_eq!(hinted.h2d[0].bytes, 4000);
        assert!(hinted.is_exact());
    }

    #[test]
    fn stencil_halo_is_counted() {
        // Writes cover the interior; reads cover everything: the halo ring
        // must be sent even though the interior is overwritten later...
        // and since reads precede writes in kernel order, the *whole* read
        // section goes in (nothing was written before this first kernel).
        let mut p = ProgramBuilder::new("stencil");
        let n = 64usize;
        let a = p.array("a", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", (n - 2) as u64);
        let j = k.parallel_loop("j", (n - 2) as u64);
        k.statement()
            .read(a, &[idx(i), idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j)])
            .read(a, &[idx(i) + 1, idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j) + 2])
            .read(a, &[idx(i) + 2, idx(j) + 1])
            .write(a, &[idx(i) + 1, idx(j) + 1])
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        let plan = analyze(&prog, &Hints::new());
        // Reads: cross pattern union = everything except the 4 corners.
        assert_eq!(plan.h2d_bytes(), (64 * 64 - 4) * 4);
        // Writes: interior only.
        assert_eq!(plan.d2h_bytes(), 62 * 62 * 4);
    }
}
