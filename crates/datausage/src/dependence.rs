//! Inter-kernel dependence reporting.
//!
//! The BRS operations "combined with information about whether an access
//! is a load or a store, allow GROPHECY to determine the dependencies
//! among BRSs" (§III-B). The transfer analysis consumes them implicitly;
//! this module surfaces them explicitly — which kernel pairs have
//! flow/anti/output dependencies on which arrays — both for diagnostics
//! (`gpp deps`) and because the dependence structure justifies the kernel
//! sequencing the skeletons declare (see `gpp-workloads::bsp`).

use gpp_brs::{classify_dependence, ArrayId, DependenceKind};
use gpp_skeleton::sections::kernel_accesses;
use gpp_skeleton::Program;

/// One inter-kernel dependence edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Index of the earlier kernel in program order.
    pub from_kernel: usize,
    /// Index of the later kernel (may equal `from_kernel` for
    /// intra-kernel write/read pairs across statements).
    pub to_kernel: usize,
    /// The array carrying the dependence.
    pub array: ArrayId,
    /// Array name, for reports.
    pub array_name: String,
    /// Flow, anti, or output.
    pub kind: DependenceKind,
}

/// Computes all ordering dependencies between kernels (and within a
/// kernel across statements), using exact section intersection.
///
/// Input dependencies (read-read) are omitted — they carry reuse
/// information but impose no ordering.
pub fn dependences(program: &Program) -> Vec<Dependence> {
    // Collect per-kernel accesses once.
    let per_kernel: Vec<_> = program
        .kernels
        .iter()
        .map(|k| kernel_accesses(k, program))
        .collect();

    let mut out = Vec::new();
    for from in 0..per_kernel.len() {
        for to in from..per_kernel.len() {
            for a in &per_kernel[from] {
                for b in &per_kernel[to] {
                    if a.array != b.array {
                        continue;
                    }
                    // Same-kernel read/write pairs only count once and
                    // only when ordering matters.
                    if from == to && a.kind == b.kind {
                        continue;
                    }
                    if let Some(kind) = classify_dependence(a.kind, &a.section, b.kind, &b.section)
                    {
                        if !kind.is_ordering() {
                            continue;
                        }
                        let dep = Dependence {
                            from_kernel: from,
                            to_kernel: to,
                            array: a.array,
                            array_name: program.array(a.array).name.clone(),
                            kind,
                        };
                        if !out.contains(&dep) {
                            out.push(dep);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Renders the dependence set as a table.
pub fn render(program: &Program, deps: &[Dependence]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "dependences for `{}` ({} edges):",
        program.name,
        deps.len()
    );
    for d in deps {
        let _ = writeln!(
            s,
            "  {:<18} -[{}:{}]-> {}",
            program.kernels[d.from_kernel].name,
            d.kind,
            d.array_name,
            program.kernels[d.to_kernel].name,
        );
    }
    if deps.is_empty() {
        let _ = writeln!(s, "  (none — kernels are independent)");
    }
    s
}

/// The arrays whose flow dependences cross kernel boundaries: exactly the
/// data that stays resident on the device between kernels and therefore
/// never crosses the bus — the analyzer's savings, itemized.
pub fn device_resident_arrays(program: &Program) -> Vec<ArrayId> {
    let mut out: Vec<ArrayId> = dependences(program)
        .into_iter()
        .filter(|d| d.kind == DependenceKind::Flow && d.from_kernel < d.to_kernel)
        .map(|d| d.array)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_skeleton::builder::{idx, ProgramBuilder};
    use gpp_skeleton::ElemType;

    fn two_phase() -> Program {
        let mut p = ProgramBuilder::new("two-phase");
        let img = p.array("img", ElemType::F32, &[256]);
        let coeff = p.array("coeff", ElemType::F32, &[256]);
        let mut k1 = p.kernel("prep");
        let i = k1.parallel_loop("i", 256);
        k1.statement()
            .read(img, &[idx(i)])
            .write(coeff, &[idx(i)])
            .finish();
        k1.finish();
        let mut k2 = p.kernel("update");
        let i = k2.parallel_loop("i", 256);
        k2.statement()
            .read(coeff, &[idx(i)])
            .read(img, &[idx(i)])
            .write(img, &[idx(i)])
            .finish();
        k2.finish();
        p.build().unwrap()
    }

    #[test]
    fn finds_flow_across_kernels() {
        let p = two_phase();
        let deps = dependences(&p);
        assert!(deps.iter().any(|d| {
            d.kind == DependenceKind::Flow
                && d.array_name == "coeff"
                && d.from_kernel == 0
                && d.to_kernel == 1
        }));
        // img: read in k1, written in k2 → anti dependence k1→k2.
        assert!(deps.iter().any(|d| {
            d.kind == DependenceKind::Anti && d.array_name == "img" && d.to_kernel == 1
        }));
    }

    #[test]
    fn device_resident_matches_transfer_savings() {
        let p = two_phase();
        let resident = device_resident_arrays(&p);
        let coeff = p.array_by_name("coeff").unwrap().id;
        assert!(resident.contains(&coeff));
        // And the analyzer indeed never transfers coeff inbound.
        let plan = crate::analyze(&p, &crate::Hints::new());
        assert!(plan.h2d.iter().all(|t| t.array != coeff));
    }

    #[test]
    fn disjoint_kernels_have_no_edges() {
        let mut pb = ProgramBuilder::new("disjoint");
        let a = pb.array("a", ElemType::F32, &[64]);
        let b = pb.array("b", ElemType::F32, &[64]);
        let mut k1 = pb.kernel("ka");
        let i = k1.parallel_loop("i", 64);
        k1.statement()
            .read(a, &[idx(i)])
            .write(a, &[idx(i)])
            .finish();
        k1.finish();
        let mut k2 = pb.kernel("kb");
        let i = k2.parallel_loop("i", 64);
        k2.statement()
            .read(b, &[idx(i)])
            .write(b, &[idx(i)])
            .finish();
        k2.finish();
        let p = pb.build().unwrap();
        let cross: Vec<_> = dependences(&p)
            .into_iter()
            .filter(|d| d.from_kernel != d.to_kernel)
            .collect();
        assert!(cross.is_empty(), "{cross:?}");
    }

    #[test]
    fn disjoint_sections_of_same_array_are_independent() {
        let mut pb = ProgramBuilder::new("halves");
        let x = pb.array("x", ElemType::F32, &[100]);
        let mut k1 = pb.kernel("low");
        let i = k1.parallel_loop("i", 50);
        k1.statement().write(x, &[idx(i)]).finish();
        k1.finish();
        let mut k2 = pb.kernel("high");
        let i = k2.parallel_loop("i", 50);
        k2.statement().read(x, &[idx(i) + 50]).finish();
        k2.finish();
        let p = pb.build().unwrap();
        let cross: Vec<_> = dependences(&p)
            .into_iter()
            .filter(|d| d.from_kernel != d.to_kernel)
            .collect();
        assert!(
            cross.is_empty(),
            "exact sections must see the halves as disjoint"
        );
    }

    #[test]
    fn render_lists_edges() {
        let p = two_phase();
        let out = render(&p, &dependences(&p));
        assert!(out.contains("prep"));
        assert!(out.contains("flow:coeff"));
    }

    #[test]
    fn paper_workloads_have_expected_structure() {
        // CFD's shape in miniature: step_factor and fluxes flow into
        // time_step (reimplemented minimally here to avoid a cyclic dev
        // dependency on gpp-workloads).
        let p = {
            let mut pb = ProgramBuilder::new("cfd-mini");
            let vars = pb.array("variables", ElemType::F32, &[5, 64]);
            let sf = pb.array("step_factor", ElemType::F32, &[64]);
            let fx = pb.array("fluxes", ElemType::F32, &[5, 64]);
            let mut k1 = pb.kernel("compute_step_factor");
            let i = k1.parallel_loop("i", 64);
            k1.statement()
                .read(vars, &[gpp_skeleton::builder::cst(0), idx(i)])
                .write(sf, &[idx(i)])
                .finish();
            k1.finish();
            let mut k2 = pb.kernel("compute_flux");
            let i = k2.parallel_loop("i", 64);
            k2.statement()
                .read(vars, &[gpp_skeleton::builder::cst(0), idx(i)])
                .write(fx, &[gpp_skeleton::builder::cst(0), idx(i)])
                .finish();
            k2.finish();
            let mut k3 = pb.kernel("time_step");
            let i = k3.parallel_loop("i", 64);
            k3.statement()
                .read(sf, &[idx(i)])
                .read(fx, &[gpp_skeleton::builder::cst(0), idx(i)])
                .write(vars, &[gpp_skeleton::builder::cst(0), idx(i)])
                .finish();
            k3.finish();
            pb.build().unwrap()
        };
        let resident = device_resident_arrays(&p);
        assert_eq!(resident.len(), 2); // step_factor and fluxes
    }
}
