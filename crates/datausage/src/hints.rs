//! User hints that refine the conservative analysis.

use gpp_brs::ArrayId;
use std::collections::{BTreeMap, BTreeSet};

/// Optional user-supplied knowledge the analyzer cannot derive statically.
///
/// * *Temporaries*: "Users can optionally provide hints to specify written
///   data that serve as temporaries. Temporary data need not be
///   transferred back to the CPU" (§III-B).
/// * *Sparse bounds*: for irregular arrays, the actual number of useful
///   bytes (e.g. `nnz × elem` for a CSR values vector), replacing the
///   whole-allocation conservative assumption.
#[derive(Debug, Clone, Default)]
pub struct Hints {
    temporaries: BTreeSet<ArrayId>,
    sparse_bytes: BTreeMap<ArrayId, u64>,
}

impl Hints {
    /// No hints: the fully conservative analysis.
    pub fn new() -> Self {
        Hints::default()
    }

    /// Hints seeded from the program itself: arrays declared `temporary`
    /// in the skeleton (`array scratch f32 [64] temporary`) become
    /// temporary hints, so the knowledge travels with the `.gsk` file
    /// instead of needing a `--temporary` flag on every invocation.
    /// Chain further builder calls for per-invocation additions.
    pub fn for_program(p: &gpp_skeleton::Program) -> Self {
        let mut h = Hints::new();
        for a in &p.arrays {
            if a.temporary {
                h = h.temporary(a.id);
            }
        }
        h
    }

    /// Marks an array as a device-side temporary (not copied back).
    #[must_use]
    pub fn temporary(mut self, array: ArrayId) -> Self {
        self.temporaries.insert(array);
        self
    }

    /// Bounds the useful bytes of a sparse array.
    #[must_use]
    pub fn sparse_bound(mut self, array: ArrayId, bytes: u64) -> Self {
        self.sparse_bytes.insert(array, bytes);
        self
    }

    /// True if the array is hinted as a temporary.
    pub fn is_temporary(&self, array: ArrayId) -> bool {
        self.temporaries.contains(&array)
    }

    /// The hinted byte bound for a sparse array, if any.
    pub fn sparse_bytes(&self, array: ArrayId) -> Option<u64> {
        self.sparse_bytes.get(&array).copied()
    }

    /// Number of hints supplied (for reports).
    pub fn len(&self) -> usize {
        self.temporaries.len() + self.sparse_bytes.len()
    }

    /// True if no hints were supplied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let h = Hints::new()
            .temporary(ArrayId(1))
            .temporary(ArrayId(2))
            .sparse_bound(ArrayId(3), 4096);
        assert!(h.is_temporary(ArrayId(1)));
        assert!(h.is_temporary(ArrayId(2)));
        assert!(!h.is_temporary(ArrayId(3)));
        assert_eq!(h.sparse_bytes(ArrayId(3)), Some(4096));
        assert_eq!(h.sparse_bytes(ArrayId(1)), None);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert!(Hints::new().is_empty());
    }

    #[test]
    fn for_program_seeds_declared_temporaries() {
        use gpp_skeleton::builder::{idx, ProgramBuilder};
        use gpp_skeleton::ElemType;
        let mut p = ProgramBuilder::new("t");
        let a = p.array("a", ElemType::F32, &[16]);
        let scratch = p.temporary_array("scratch", ElemType::F32, &[16]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", 16);
        k.statement()
            .read(a, &[idx(i)])
            .write(scratch, &[idx(i)])
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        let h = Hints::for_program(&prog);
        assert!(h.is_temporary(scratch));
        assert!(!h.is_temporary(a));
        // Still chainable for per-invocation additions.
        let h = h.temporary(a);
        assert!(h.is_temporary(a));
    }
}
