//! Transfer plans: the analyzer's output.

use gpp_brs::ArrayId;

/// Direction of one planned transfer. (Kept separate from
/// `gpp_pcie::Direction` so the analyzer has no bus dependency; the core
/// crate maps between them.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDir {
    /// CPU → GPU, before the first kernel.
    ToDevice,
    /// GPU → CPU, after the last kernel.
    FromDevice,
}

impl std::fmt::Display for TransferDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferDir::ToDevice => write!(f, "to-device"),
            TransferDir::FromDevice => write!(f, "from-device"),
        }
    }
}

/// One planned `cudaMemcpy`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// The array moved (u32::MAX-tagged ids denote synthetic batches).
    pub array: ArrayId,
    /// Array name, for reports.
    pub name: String,
    /// Bytes moved.
    pub bytes: u64,
    /// Direction.
    pub dir: TransferDir,
    /// False if the size is a conservative over-approximation (sparse
    /// fallback or inexact section algebra).
    pub exact: bool,
}

/// The complete transfer plan for a kernel sequence.
///
/// For iterative applications the plan is iteration-invariant: "a fixed
/// amount of input data is transferred to the GPU before the first
/// iteration, and a fixed amount of output data is transferred back to the
/// CPU after the final iteration" (§IV-B) — so one plan serves any
/// iteration count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransferPlan {
    /// Host→device transfers, in first-use order.
    pub h2d: Vec<Transfer>,
    /// Device→host transfers.
    pub d2h: Vec<Transfer>,
}

impl TransferPlan {
    /// Total bytes sent to the device.
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d.iter().map(|t| t.bytes).sum()
    }

    /// Total bytes returned to the host.
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h.iter().map(|t| t.bytes).sum()
    }

    /// Total bytes both ways.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes() + self.d2h_bytes()
    }

    /// Number of individual transfers (each pays the α latency).
    pub fn transfer_count(&self) -> usize {
        self.h2d.len() + self.d2h.len()
    }

    /// All transfers in execution order (inputs first).
    pub fn all(&self) -> impl Iterator<Item = &Transfer> {
        self.h2d.iter().chain(self.d2h.iter())
    }

    /// True if every size is exact (no conservative fallback fired).
    pub fn is_exact(&self) -> bool {
        self.all().all(|t| t.exact)
    }

    /// The batched alternative (ablation D3): all input arrays packed into
    /// one transfer and all outputs into another, paying α once per
    /// direction instead of once per array. "In practice transferring
    /// multiple small arrays together as one may provide a minor
    /// performance benefit at the cost of more substantial program
    /// modifications" (§III-B).
    pub fn batched(&self) -> TransferPlan {
        let pack = |ts: &[Transfer], dir: TransferDir| -> Vec<Transfer> {
            if ts.is_empty() {
                return Vec::new();
            }
            vec![Transfer {
                array: ArrayId(u32::MAX),
                name: format!("batched {dir} ({} arrays)", ts.len()),
                bytes: ts.iter().map(|t| t.bytes).sum(),
                dir,
                exact: ts.iter().all(|t| t.exact),
            }]
        };
        TransferPlan {
            h2d: pack(&self.h2d, TransferDir::ToDevice),
            d2h: pack(&self.d2h, TransferDir::FromDevice),
        }
    }
}

impl std::fmt::Display for TransferPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "transfer plan: {} in / {} out / {} transfers",
            human_bytes(self.h2d_bytes()),
            human_bytes(self.d2h_bytes()),
            self.transfer_count()
        )?;
        for t in self.all() {
            writeln!(
                f,
                "  {:>12}  {:<20} {}{}",
                human_bytes(t.bytes),
                t.name,
                t.dir,
                if t.exact { "" } else { " (conservative)" }
            )?;
        }
        Ok(())
    }
}

/// Human-readable byte count (for plan displays).
pub fn human_bytes(b: u64) -> String {
    if b >= 10 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 10 << 10 {
        format!("{:.1} KB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u32, bytes: u64, dir: TransferDir, exact: bool) -> Transfer {
        Transfer {
            array: ArrayId(id),
            name: format!("a{id}"),
            bytes,
            dir,
            exact,
        }
    }

    fn plan() -> TransferPlan {
        TransferPlan {
            h2d: vec![
                t(0, 1000, TransferDir::ToDevice, true),
                t(1, 2000, TransferDir::ToDevice, false),
            ],
            d2h: vec![t(2, 500, TransferDir::FromDevice, true)],
        }
    }

    #[test]
    fn byte_accounting() {
        let p = plan();
        assert_eq!(p.h2d_bytes(), 3000);
        assert_eq!(p.d2h_bytes(), 500);
        assert_eq!(p.total_bytes(), 3500);
        assert_eq!(p.transfer_count(), 3);
        assert!(!p.is_exact());
    }

    #[test]
    fn batched_preserves_bytes_merges_count() {
        let p = plan().batched();
        assert_eq!(p.total_bytes(), 3500);
        assert_eq!(p.transfer_count(), 2);
        assert!(!p.is_exact()); // inexactness propagates
    }

    #[test]
    fn batched_empty_side_stays_empty() {
        let p = TransferPlan {
            h2d: vec![t(0, 10, TransferDir::ToDevice, true)],
            d2h: vec![],
        };
        let b = p.batched();
        assert_eq!(b.h2d.len(), 1);
        assert!(b.d2h.is_empty());
    }

    #[test]
    fn display_lists_transfers() {
        let s = plan().to_string();
        assert!(s.contains("a0") && s.contains("a1") && s.contains("a2"));
        assert!(s.contains("conservative"));
    }

    #[test]
    fn human_bytes_ranges() {
        assert_eq!(human_bytes(42), "42 B");
        assert_eq!(human_bytes(20480), "20.0 KB");
        assert_eq!(human_bytes(64 << 20), "64.0 MB");
    }
}
