//! The data usage analyzer — what must cross the PCIe bus (paper §III-B).
//!
//! Given the dataflow of a sequence of GPU kernels, the analyzer
//! determines:
//!
//! * **host→device**: "we maintain a list of BRSs that are read but are not
//!   previously written. The UNION of all such BRSs is data that needs to
//!   be transferred to the GPU" — data produced by an *earlier kernel on
//!   the device* need not be sent;
//! * **device→host**: "The UNION of all written BRSs is data that needs to
//!   be transferred back from the GPU", except arrays the user hints are
//!   *temporaries*;
//! * **sparse fallback**: "In irregular applications such as sparse linear
//!   algebra, the BRS is unknown. In such scenario, GROPHECY++ uses the
//!   conservative assumption that all elements in the sparse array may be
//!   referenced, and therefore must be transferred, unless users provide
//!   additional hints."
//!
//! Each array is assumed to be transferred separately (one `cudaMemcpy`
//! per array); [`plan::TransferPlan::batched`] models the alternative for
//! the ablation study (DESIGN.md D3).
//!
//! # Example
//!
//! ```
//! use gpp_skeleton::builder::{idx, ProgramBuilder};
//! use gpp_skeleton::ElemType;
//! use gpp_datausage::{analyze, Hints};
//!
//! // Two kernels: the first produces `coeff`, the second consumes it.
//! let mut p = ProgramBuilder::new("two-phase");
//! let img = p.array("img", ElemType::F32, &[1024]);
//! let coeff = p.array("coeff", ElemType::F32, &[1024]);
//! let mut k1 = p.kernel("prep");
//! let i = k1.parallel_loop("i", 1024);
//! k1.statement().read(img, &[idx(i)]).write(coeff, &[idx(i)]).finish();
//! k1.finish();
//! let mut k2 = p.kernel("update");
//! let i = k2.parallel_loop("i", 1024);
//! k2.statement().read(coeff, &[idx(i)]).write(img, &[idx(i)]).finish();
//! k2.finish();
//! let prog = p.build().unwrap();
//!
//! // `coeff` is device-produced (never sent) and a temporary (never
//! // returned): only `img` crosses the bus, each way.
//! let plan = analyze(&prog, &Hints::new().temporary(coeff));
//! assert_eq!(plan.h2d_bytes(), 4096);
//! assert_eq!(plan.d2h_bytes(), 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod dependence;
pub mod hints;
pub mod plan;

pub use analyze::analyze;
pub use dependence::{dependences, device_resident_arrays, Dependence};
pub use hints::Hints;
pub use plan::{Transfer, TransferDir, TransferPlan};
