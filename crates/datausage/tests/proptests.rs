//! Property tests for the data usage analyzer over randomly generated
//! kernel sequences.

use gpp_brs::SectionSet;
use gpp_datausage::{analyze, Hints};
use gpp_skeleton::builder::{idx, ProgramBuilder};
use gpp_skeleton::sections::{read_sets, write_sets};
use gpp_skeleton::{ElemType, Program};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A tiny random program: up to 3 arrays of up to 64 elements, up to 3
/// kernels, each reading/writing random offset windows of random arrays.
fn random_program() -> impl Strategy<Value = Program> {
    let ref_strategy = (0usize..3, 0i64..16, any::<bool>());
    (
        1usize..4, // arrays
        prop::collection::vec(
            prop::collection::vec(ref_strategy, 1..5), // refs per kernel
            1..4,                                      // kernels
        ),
    )
        .prop_map(|(narrays, kernels)| {
            let mut p = ProgramBuilder::new("random");
            let ids: Vec<_> = (0..narrays)
                .map(|a| p.array(format!("a{a}"), ElemType::F32, &[64]))
                .collect();
            for (ki, refs) in kernels.into_iter().enumerate() {
                let mut k = p.kernel(format!("k{ki}"));
                let i = k.parallel_loop("i", 32);
                let mut s = k.statement();
                let mut wrote = false;
                for (arr, off, is_write) in refs {
                    let arr = ids[arr % ids.len()];
                    if is_write {
                        s = s.write(arr, &[idx(i) + off]);
                        wrote = true;
                    } else {
                        s = s.read(arr, &[idx(i) + off]);
                    }
                }
                // Ensure the kernel does something observable.
                if !wrote {
                    s = s.write(ids[0], &[idx(i)]);
                }
                s.finish();
                k.finish();
            }
            p.build().expect("random program is structurally valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: every section a kernel reads is either covered by prior
    /// device writes or contained in the host→device transfer set.
    #[test]
    fn reads_are_always_available_on_device(program in random_program()) {
        let plan = analyze(&program, &Hints::new());
        let mut sent: BTreeMap<_, u64> = BTreeMap::new();
        for t in &plan.h2d {
            sent.insert(t.array, t.bytes);
        }
        let mut written: BTreeMap<_, SectionSet> = BTreeMap::new();
        for kernel in &program.kernels {
            for (array, reads) in read_sets(kernel, &program) {
                let mut need = reads.clone();
                if let Some(w) = written.get(&array) {
                    need.subtract(w);
                }
                if !need.is_empty() {
                    // The remainder must have been transferred (we check
                    // bytes: the plan sends at least that many for this
                    // array).
                    let sent_bytes = sent.get(&array).copied().unwrap_or(0);
                    prop_assert!(
                        sent_bytes >= need.byte_count(4),
                        "array {} needs {} B but plan sends {}",
                        program.array(array).name,
                        need.byte_count(4),
                        sent_bytes
                    );
                }
            }
            for (array, w) in write_sets(kernel, &program) {
                match written.get_mut(&array) {
                    Some(set) => set.union_with(&w),
                    None => {
                        written.insert(array, w);
                    }
                }
            }
        }
    }

    /// Completeness of the output set: every written array appears in the
    /// device→host plan (no hints), with at least the written bytes.
    #[test]
    fn all_writes_come_back_without_hints(program in random_program()) {
        let plan = analyze(&program, &Hints::new());
        let mut written: BTreeMap<_, SectionSet> = BTreeMap::new();
        for kernel in &program.kernels {
            for (array, w) in write_sets(kernel, &program) {
                match written.get_mut(&array) {
                    Some(set) => set.union_with(&w),
                    None => {
                        written.insert(array, w);
                    }
                }
            }
        }
        for (array, set) in &written {
            let t = plan.d2h.iter().find(|t| t.array == *array);
            prop_assert!(t.is_some(), "written array {array} missing from d2h");
            prop_assert!(t.unwrap().bytes >= set.byte_count(4));
        }
        prop_assert_eq!(plan.d2h.len(), written.len());
    }

    /// Transfer sizes never exceed the allocations.
    #[test]
    fn transfers_bounded_by_allocations(program in random_program()) {
        let plan = analyze(&program, &Hints::new());
        for t in plan.all() {
            prop_assert!(t.bytes <= program.array(t.array).byte_count());
        }
    }

    /// Hints are monotone: marking any array temporary never increases
    /// any transfer, and strictly removes it from the output set.
    #[test]
    fn temporary_hints_are_monotone(program in random_program(), victim in 0usize..3) {
        let base = analyze(&program, &Hints::new());
        let arrays: Vec<_> = program.arrays.iter().map(|a| a.id).collect();
        let victim = arrays[victim % arrays.len()];
        let hinted = analyze(&program, &Hints::new().temporary(victim));
        prop_assert!(hinted.d2h_bytes() <= base.d2h_bytes());
        prop_assert_eq!(hinted.h2d_bytes(), base.h2d_bytes());
        prop_assert!(hinted.d2h.iter().all(|t| t.array != victim));
    }

    /// Batching is byte-preserving and transfer-count-reducing.
    #[test]
    fn batching_invariants(program in random_program()) {
        let plan = analyze(&program, &Hints::new());
        let batched = plan.batched();
        prop_assert_eq!(batched.total_bytes(), plan.total_bytes());
        prop_assert!(batched.transfer_count() <= plan.transfer_count());
        prop_assert!(batched.transfer_count() <= 2);
    }

    /// The analyzer is deterministic.
    #[test]
    fn analysis_is_deterministic(program in random_program()) {
        let a = analyze(&program, &Hints::new());
        let b = analyze(&program, &Hints::new());
        prop_assert_eq!(a, b);
    }
}
