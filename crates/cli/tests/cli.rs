//! End-to-end tests of the `gpp` binary.

use std::process::Command;

fn gpp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gpp"))
}

fn skeleton_path(name: &str) -> String {
    format!("{}/../../skeletons/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn analyze_prints_transfer_plan() {
    let out = gpp()
        .args(["analyze", &skeleton_path("hotspot_1024.gsk")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("temp"), "{stdout}");
    assert!(stdout.contains("power"));
    assert!(stdout.contains("to-device"));
    assert!(stdout.contains("from-device"));
}

#[test]
fn project_reports_kernel_and_transfer_times() {
    let out = gpp()
        .args(["project", &skeleton_path("hotspot_1024.gsk")])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("projected kernel time"));
    assert!(stdout.contains("projected transfer time"));
    assert!(stdout.contains("Eureka"));
}

#[test]
fn project_stats_reports_synthesis_memo_and_pool() {
    let out = gpp()
        .args(["project", &skeleton_path("hotspot_1024.gsk"), "--stats"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("search stats:"), "{stdout}");
    assert!(stdout.contains("synthesis memo"), "{stdout}");
    assert!(stdout.contains("miss(es)"), "{stdout}");
    assert!(stdout.contains("thread(s)"), "{stdout}");
    // A fresh process projecting one program must have synthesized at
    // least one staging class per kernel search — misses cannot be zero.
    assert!(!stdout.contains("0 miss(es)"), "{stdout}");
}

#[test]
fn measure_vector_add_says_dont_port() {
    let out = gpp()
        .args(["measure", &skeleton_path("vector_add.gsk")])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("don't port"), "{stdout}");
}

#[test]
fn measure_stassuij_with_hints_flips_verdict() {
    let out = gpp()
        .args([
            "measure",
            &skeleton_path("spmm_stassuij.gsk"),
            "--sparse",
            "csr_vals=5280",
            "--sparse",
            "csr_col=2640",
            "--sparse",
            "csr_ptr=532",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Kernel-only says port; full model says don't.
    assert!(stdout.contains("don't port"), "{stdout}");
}

#[test]
fn fmt_roundtrips() {
    let out = gpp()
        .args(["fmt", &skeleton_path("vector_add.gsk")])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("program vector-add"));
    // Feeding the formatted output back in parses identically.
    let tmp = std::env::temp_dir().join("gpp_fmt_roundtrip.gsk");
    std::fs::write(&tmp, text.as_bytes()).unwrap();
    let out2 = gpp().args(["fmt", tmp.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.stdout, out2.stdout);
}

#[test]
fn calibrate_reports_model() {
    let out = gpp()
        .args(["calibrate", "--machine", "v2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("h2d: T(d)"));
    assert!(stdout.contains("mean error"));
}

fn fixture_path(name: &str) -> String {
    format!("{}/../../fixtures/bad/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn machines_dir() -> String {
    format!("{}/../../fixtures/machines", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn machines_lists_builtins_and_loaded_datasheets() {
    let out = gpp().args(["machines"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("eureka"), "{stdout}");
    assert!(stdout.contains("v2"), "{stdout}");

    let out = gpp()
        .args(["machines", "--machines", &machines_dir()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["eureka", "recorded", "v2", "v3"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
    assert!(stdout.contains("bus replay"), "{stdout}");
}

#[test]
fn machines_check_validates_and_export_is_canonical() {
    let dir = machines_dir();
    let out = gpp()
        .args([
            "machines",
            "--check",
            &format!("{dir}/eureka.gmach"),
            &format!("{dir}/recorded.gmach"),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("eureka.gmach: ok (eureka)"), "{stdout}");
    assert!(stdout.contains("recorded.gmach: ok (recorded)"), "{stdout}");

    // A corrupt datasheet fails --check with the offending line.
    let tmp = std::env::temp_dir().join("gpp_bad_machine.gmach");
    std::fs::write(&tmp, "machine broken\nname \"x\"\nwat 3\n").unwrap();
    let out = gpp()
        .args(["machines", "--check", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3"), "{stderr}");

    // --export prints the canonical datasheet: byte-identical to the
    // committed golden fixture for the built-in.
    let out = gpp()
        .args(["machines", "--export", "eureka"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let golden = std::fs::read(format!("{dir}/eureka.gmach")).unwrap();
    assert_eq!(out.stdout, golden, "eureka.gmach fixture drifted");
}

#[test]
fn project_accepts_loaded_machines_including_replay() {
    let out = gpp()
        .args([
            "project",
            &skeleton_path("vector_add.gsk"),
            "--machines",
            &machines_dir(),
            "--machine",
            "recorded",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("replayed day-0"), "{stdout}");
    assert!(stdout.contains("projected transfer time"), "{stdout}");
}

#[test]
fn lint_clean_skeleton_exits_zero_with_no_output() {
    let out = gpp()
        .args(["lint", &skeleton_path("vector_add.gsk")])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        out.stdout.is_empty(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn lint_defective_skeleton_exits_nonzero_with_spanned_report() {
    let out = gpp()
        .args(["lint", &fixture_path("gpp001_oob.gsk")])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("gpp001_oob.gsk:10:5: error[GPP001]"),
        "{stdout}"
    );
    assert!(stdout.contains("^"), "caret underline missing: {stdout}");
    assert!(stdout.contains("1 error(s)"), "{stdout}");
}

#[test]
fn lint_accepts_many_files_and_json_output() {
    let out = gpp()
        .args([
            "lint",
            &skeleton_path("vector_add.gsk"),
            &fixture_path("gpp004_unused_array.gsk"),
            "--format",
            "json",
        ])
        .output()
        .unwrap();
    // Warnings alone don't fail the build...
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // ...one JSON object per file, sorted by path (not argument order),
    // so the output is deterministic for CI consumers.
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains("\"code\":\"GPP004\""), "{stdout}");
    assert!(lines[1].contains("\"diagnostics\":[]"), "{stdout}");

    // ...unless --deny warnings promotes them.
    let out = gpp()
        .args([
            "lint",
            &fixture_path("gpp004_unused_array.gsk"),
            "--deny",
            "warnings",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // And --allow silences the code entirely.
    let out = gpp()
        .args([
            "lint",
            &fixture_path("gpp004_unused_array.gsk"),
            "--allow",
            "GPP004",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(out.stdout.is_empty());
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Unknown file.
    let out = gpp()
        .args(["project", "/nonexistent.gsk"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Parse error with a line number.
    let tmp = std::env::temp_dir().join("gpp_bad.gsk");
    std::fs::write(&tmp, "program p\nkernel k\n  wat\n").unwrap();
    let out = gpp()
        .args(["analyze", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3"), "{stderr}");
    // Unknown machine: the error names the registry's roster.
    let out = gpp()
        .args(["calibrate", "--machine", "quantum"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown machine `quantum` (known: eureka, v2)"),
        "{stderr}"
    );
    // Unknown hint target.
    let out = gpp()
        .args([
            "analyze",
            &skeleton_path("vector_add.gsk"),
            "--temporary",
            "nope",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

// ---------------------------------------------------------------------------
// Long-running modes: `gpp serve` and `gpp gateway` on ephemeral ports.

/// Kills the child process when the test ends (pass or panic).
struct Daemon(std::process::Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `gpp` with the given args, then reads stdout lines until the
/// expected `PREFIX=value` machine-parsable lines appear (in order),
/// returning their values.
fn spawn_daemon(args: &[&str], prefixes: &[&str]) -> (Daemon, Vec<String>) {
    use std::io::BufRead;
    let mut child = gpp()
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let stdout = child.stdout.take().unwrap();
    let mut daemon = Daemon(child);
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut values = Vec::new();
    for prefix in prefixes {
        let want = format!("{prefix}=");
        loop {
            let Some(Ok(line)) = lines.next() else {
                let mut err = String::new();
                if let Some(mut stderr) = daemon.0.stderr.take() {
                    use std::io::Read;
                    let _ = stderr.read_to_string(&mut err);
                }
                panic!("gpp {args:?} exited before printing {want}*: {err}");
            };
            if let Some(value) = line.strip_prefix(&want) {
                values.push(value.to_string());
                break;
            }
        }
    }
    (daemon, values)
}

#[test]
fn serve_binds_port_zero_and_prints_machine_parsable_addr() {
    let (_daemon, values) = spawn_daemon(
        &["serve", "--addr", "127.0.0.1:0", "--workers", "1"],
        &["GPP_ADDR"],
    );
    let addr = &values[0];
    assert_ne!(addr.rsplit(':').next().unwrap(), "0", "real port: {addr}");

    // `gpp request` reaches it, with the timeout/retry knobs accepted.
    let out = gpp()
        .args([
            "request",
            "--addr",
            addr,
            "--command",
            "ping",
            "--timeout-ms",
            "5000",
            "--retries",
            "2",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
}

#[test]
fn gateway_spawns_shards_and_prints_machine_parsable_addrs() {
    let (_daemon, values) = spawn_daemon(
        &["gateway", "--shards", "2", "--workers", "1"],
        &["GPP_SHARD_ADDR", "GPP_SHARD_ADDR", "GPP_ADDR"],
    );
    let gateway_addr = &values[2];
    assert_ne!(values[0], values[1], "shards get distinct ports");

    // The gateway answers health with its role and pool occupancy.
    let out = gpp()
        .args(["request", "--addr", gateway_addr, "--command", "health"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"role\":\"gateway\""), "{stdout}");
    assert!(stdout.contains("\"healthy_shards\":2"), "{stdout}");

    // And forwards a projection to a shard, fingerprint included.
    let out = gpp()
        .args([
            "request",
            "--addr",
            gateway_addr,
            "--command",
            "project",
            &skeleton_path("vector_add.gsk"),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"fingerprint\":\""), "{stdout}");
}

#[test]
fn request_retries_back_off_before_giving_up() {
    // Nothing listens on port 1; with 2 retries at 100 ms base backoff
    // the attempts land at +0, +100, +200 ms before failing.
    let started = std::time::Instant::now();
    let out = gpp()
        .args([
            "request",
            "--addr",
            "127.0.0.1:1",
            "--command",
            "ping",
            "--retries",
            "2",
            "--timeout-ms",
            "1000",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("failed"), "{stderr}");
    let elapsed = started.elapsed();
    assert!(
        elapsed >= std::time::Duration::from_millis(250),
        "retries should have backed off: {elapsed:?}"
    );
}
