//! `gpp` — the GROPHECY++ command-line tool. Run `gpp --help` for usage.

use gpp_datausage::{analyze, Hints};
use gpp_skeleton::text;
use gpp_skeleton::Program;
use grophecy::machine::MachineConfig;
use grophecy::measurement::measure;
use grophecy::projector::Grophecy;
use grophecy::speedup::SpeedupReport;
use grophecy::MachineRegistry;
use std::process::ExitCode;

struct Options {
    machine: String,
    machines_dir: Option<String>,
    check: bool,
    export: Option<String>,
    seed: u64,
    iters: u32,
    temporaries: Vec<String>,
    sparse: Vec<(String, u64)>,
    file: Option<String>,
    files: Vec<String>,
    format_json: bool,
    deny: Vec<String>,
    allow: Vec<String>,
    fix: bool,
    explain: Option<String>,
    lint: bool,
    profile: bool,
    stats: bool,
    addr: String,
    workers: usize,
    queue_depth: usize,
    timeout_secs: u64,
    timeout_ms: Option<u64>,
    retries: u32,
    retry_budget: Option<u32>,
    deadline_ms: Option<u64>,
    no_hedge: bool,
    shards: usize,
    shard_addrs: Vec<String>,
    remote_command: String,
    fault_plan: Option<String>,
}

const USAGE: &str = "\
gpp — the GROPHECY++ offload advisor

usage:
  gpp project  <file.gsk> [options]   project kernel + transfer times
  gpp measure  <file.gsk> [options]   project, then \"measure\" on the
                                      simulated node and compare
  gpp analyze  <file.gsk> [options]   print the transfer plan
  gpp deps     <file.gsk>             inter-kernel dependence report
  gpp lint     <file.gsk>... [options] static analysis: bounds, liveness,
                                      races, transfer hints, whole-program
                                      transfer dataflow (GPP000-GPP014;
                                      exit 0 clean, 1 findings, 2 errors)
  gpp calibrate [options]             run the two-point PCIe calibration
  gpp machines [options]              list the machine registry; with
                                      --check, validate .gmach datasheets
  gpp fmt      <file.gsk>             parse and re-emit (normalize)
  gpp serve    [options]              run the projection service (TCP)
  gpp gateway  [options]              front N serve shards: consistent-hash
                                      routing, coalescing, fail-over
  gpp request  [file.gsk] [options]   send one request to a running server

options:
  --machine NAME          target system from the registry (default eureka)
  --machines DIR          load extra machine datasheets (*.gmach) from DIR
                          on top of the built-ins (eureka, v2)
  --check                 (machines) parse each .gmach file and verify it
                          round-trips through the canonical writer
  --export NAME           (machines) print NAME's canonical .gmach datasheet
  --threads N             projection search threads (default: GPP_THREADS
                          env, else all cores; 1 = exact serial path)
  --profile               (project) print simulated kernel profiles
  --stats                 (project) print search statistics after the
                          projection: synthesis-memo hits/misses and
                          gpp-par pool utilization
  --seed N                noise seed (default 2013)
  --iters N               iteration count for speedups (default 1)
  --temporary NAME        hint: array is a device-side temporary
  --sparse NAME=BYTES     hint: bound a sparse array's useful bytes
  --addr HOST:PORT        (serve/gateway/request) address; serve and
                          gateway accept port 0 (ephemeral) and print the
                          bound address on stdout as `GPP_ADDR=<addr>`
                          (default 127.0.0.1:4513; gateway 127.0.0.1:0)
  --workers N             (serve/gateway) worker threads (default 4)
  --queue-depth N         (serve/gateway) bounded accept queue (default 64)
  --timeout SECS          (serve/gateway/request) per-request budget
                          (default 30)
  --timeout-ms MS         (request) per-request budget in milliseconds
                          (overrides --timeout)
  --retries N             (request) extra attempts on transport errors and
                          `busy`/`shed` replies, exponential backoff with
                          seeded jitter, honoring server `retry_after_ms`
                          hints (default 0)
  --retry-budget N        (request) token-bucket cap on retry attempts
                          across the run (default: no budget)
  --deadline-ms MS        (request) end-to-end deadline propagated on the
                          wire; gateway and shard shed the request once it
                          cannot be met (default: none)
  --no-hedge              (gateway) disable tail-latency request hedging
  --shards N              (gateway) spawn N embedded serve shards on
                          ephemeral ports (each printed as
                          `GPP_SHARD_ADDR=<addr>`)
  --shard HOST:PORT       (gateway) add an externally running shard
                          (repeatable; combines with --shards)
  --command NAME          (request) project|measure|analyze|deps|calibrate|
                          stats|ping|health (default project)
  --format json           (lint) one JSON object per file instead of text;
                          includes a per-machine `transfer_headroom` report
                          when machine-applicable fixes exist
  --deny CODE|warnings    (lint) escalate a code (or all warnings) to error
  --allow CODE            (lint) suppress a code (GPP000 cannot be allowed)
  --fix                   (lint) apply machine-applicable fix-its in place
                          until a fixpoint, then report what remains
  --explain CODE          (lint) print cause/example/fix docs for a stable
                          code and exit
  --no-lint               (request) skip the server-side lint gate
  --fault-plan PLAN       (serve/gateway) seeded fault-injection plan, e.g.
                          `seed=7;pcie.transfer.error:p=0.05` (default:
                          GPP_FAULT_PLAN env, else no faults)
  --help, -h              print this help";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut opt = Options {
        machine: "eureka".into(),
        machines_dir: None,
        check: false,
        export: None,
        seed: 2013,
        iters: 1,
        temporaries: Vec::new(),
        sparse: Vec::new(),
        file: None,
        files: Vec::new(),
        format_json: false,
        deny: Vec::new(),
        allow: Vec::new(),
        fix: false,
        explain: None,
        lint: true,
        profile: false,
        stats: false,
        addr: "127.0.0.1:4513".into(),
        workers: 4,
        queue_depth: 64,
        timeout_secs: 30,
        timeout_ms: None,
        retries: 0,
        retry_budget: None,
        deadline_ms: None,
        no_hedge: false,
        shards: 0,
        shard_addrs: Vec::new(),
        remote_command: "project".into(),
        fault_plan: None,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--machine" => opt.machine = args.next().unwrap_or_default(),
            "--machines" => match args.next() {
                Some(d) => opt.machines_dir = Some(d),
                None => {
                    eprintln!("--machines needs a directory of .gmach files");
                    return ExitCode::from(2);
                }
            },
            "--check" => opt.check = true,
            "--export" => match args.next() {
                Some(n) => opt.export = Some(n),
                None => {
                    eprintln!("--export needs a machine name");
                    return ExitCode::from(2);
                }
            },
            "--seed" => {
                opt.seed = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--seed needs an integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--iters" => {
                opt.iters = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--iters needs an integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => gpp_par::set_threads(v),
                _ => {
                    eprintln!("--threads needs an integer >= 1");
                    return ExitCode::from(2);
                }
            },
            "--profile" => opt.profile = true,
            "--stats" => opt.stats = true,
            "--temporary" => match args.next() {
                Some(n) => opt.temporaries.push(n),
                None => {
                    eprintln!("--temporary needs an array name");
                    return ExitCode::from(2);
                }
            },
            "--sparse" => {
                let Some(spec) = args.next() else {
                    eprintln!("--sparse needs NAME=BYTES");
                    return ExitCode::from(2);
                };
                let Some((name, bytes)) = spec.split_once('=') else {
                    eprintln!("--sparse needs NAME=BYTES, got `{spec}`");
                    return ExitCode::from(2);
                };
                let Ok(bytes) = bytes.parse() else {
                    eprintln!("bad byte count in `{spec}`");
                    return ExitCode::from(2);
                };
                opt.sparse.push((name.to_string(), bytes));
            }
            "--addr" => match args.next() {
                Some(a) => opt.addr = a,
                None => {
                    eprintln!("--addr needs HOST:PORT");
                    return ExitCode::from(2);
                }
            },
            "--workers" => {
                opt.workers = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--workers needs an integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--queue-depth" => {
                opt.queue_depth = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--queue-depth needs an integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--timeout" => {
                opt.timeout_secs = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--timeout needs an integer (seconds)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--timeout-ms" => {
                opt.timeout_ms = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => Some(v),
                    None => {
                        eprintln!("--timeout-ms needs an integer (milliseconds)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--retries" => {
                opt.retries = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--retries needs an integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--retry-budget" => {
                opt.retry_budget = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => Some(v),
                    None => {
                        eprintln!("--retry-budget needs an integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--deadline-ms" => {
                opt.deadline_ms = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => Some(v),
                    None => {
                        eprintln!("--deadline-ms needs an integer (milliseconds)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--no-hedge" => opt.no_hedge = true,
            "--shards" => {
                opt.shards = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--shards needs an integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--shard" => match args.next() {
                Some(a) => opt.shard_addrs.push(a),
                None => {
                    eprintln!("--shard needs HOST:PORT");
                    return ExitCode::from(2);
                }
            },
            "--fault-plan" => match args.next() {
                Some(p) => opt.fault_plan = Some(p),
                None => {
                    eprintln!("--fault-plan needs a plan string");
                    return ExitCode::from(2);
                }
            },
            "--command" => match args.next() {
                Some(c) => opt.remote_command = c,
                None => {
                    eprintln!("--command needs a command name");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => opt.format_json = true,
                Some("human") => opt.format_json = false,
                _ => {
                    eprintln!("--format needs `human` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--deny" => match args.next() {
                Some(c) => opt.deny.push(c),
                None => {
                    eprintln!("--deny needs a lint code or `warnings`");
                    return ExitCode::from(2);
                }
            },
            "--allow" => match args.next() {
                Some(c) => opt.allow.push(c),
                None => {
                    eprintln!("--allow needs a lint code");
                    return ExitCode::from(2);
                }
            },
            "--fix" => opt.fix = true,
            "--explain" => match args.next() {
                Some(c) => opt.explain = Some(c),
                None => {
                    eprintln!("--explain needs a lint code (e.g. GPP012)");
                    return ExitCode::from(2);
                }
            },
            "--no-lint" => opt.lint = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with("--") => {
                if opt.file.is_none() {
                    opt.file = Some(other.to_string());
                }
                opt.files.push(other.to_string());
            }
            other => {
                eprintln!("unknown option `{other}`");
                return usage();
            }
        }
    }

    if cmd != "lint" && cmd != "machines" && opt.files.len() > 1 {
        eprintln!("`gpp {cmd}` takes a single skeleton file");
        return ExitCode::from(2);
    }

    match cmd.as_str() {
        "lint" => cmd_lint(&opt),
        "project" => with_program(&opt, cmd_project),
        "measure" => with_program(&opt, cmd_measure),
        "analyze" => with_program(&opt, cmd_analyze),
        "deps" => with_program(&opt, |p, _, _| {
            let deps = gpp_datausage::dependences(p);
            print!("{}", gpp_datausage::dependence::render(p, &deps));
            let resident = gpp_datausage::device_resident_arrays(p);
            if !resident.is_empty() {
                let names: Vec<&str> = resident.iter().map(|a| p.array(*a).name.as_str()).collect();
                println!(
                    "device-resident across kernels (never cross the bus): {}",
                    names.join(", ")
                );
            }
            ExitCode::SUCCESS
        }),
        "fmt" => with_program(&opt, |p, _, _| {
            print!("{}", text::to_text(p));
            ExitCode::SUCCESS
        }),
        "calibrate" => cmd_calibrate(&opt),
        "machines" => cmd_machines(&opt),
        "serve" => cmd_serve(&opt),
        "gateway" => cmd_gateway(&opt),
        "request" => cmd_request(&opt),
        other => {
            eprintln!("unknown command `{other}`\n");
            usage()
        }
    }
}

/// The built-in registry, extended with `--machines DIR` datasheets.
fn registry_for(opt: &Options) -> Option<MachineRegistry> {
    let mut registry = MachineRegistry::builtin();
    if let Some(dir) = &opt.machines_dir {
        if let Err(e) = registry.load_dir(std::path::Path::new(dir)) {
            eprintln!("--machines: {e}");
            return None;
        }
    }
    Some(registry)
}

fn machine_for(opt: &Options) -> Option<MachineConfig> {
    let registry = registry_for(opt)?;
    match registry.config(&opt.machine, opt.seed) {
        Ok(machine) => Some(machine),
        Err(e) => {
            eprintln!("{e}");
            None
        }
    }
}

fn cmd_machines(opt: &Options) -> ExitCode {
    if opt.check {
        if opt.files.is_empty() {
            eprintln!("gpp machines --check needs at least one .gmach file");
            return ExitCode::from(2);
        }
        let mut failed = false;
        for path in &opt.files {
            // load_file parses the datasheet (resolving sidecar traces
            // relative to it); re-parsing the canonical writer's output
            // must then give back the same machine.
            let mut scratch = MachineRegistry::empty();
            match scratch.load_file(std::path::Path::new(path)) {
                Ok(id) => {
                    let machine = scratch.get(&id).expect("load_file inserted it");
                    let text = grophecy::datasheet::to_text(machine);
                    match grophecy::datasheet::parse(&text) {
                        Ok(back) if &back == machine => println!("{path}: ok ({id})"),
                        Ok(_) => {
                            eprintln!("{path}: canonical form does not round-trip");
                            failed = true;
                        }
                        Err(e) => {
                            eprintln!("{path}: canonical form fails to re-parse: {e}");
                            failed = true;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    failed = true;
                }
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let Some(registry) = registry_for(opt) else {
        return ExitCode::FAILURE;
    };
    if let Some(name) = &opt.export {
        match registry.get(name) {
            Some(m) => {
                print!("{}", grophecy::datasheet::to_text(m));
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!(
                    "unknown machine `{name}` (known: {})",
                    registry.names().join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    for m in registry.iter() {
        println!(
            "{:<12} bus {:<7} gpu {:<18} {}",
            m.id,
            m.bus.kind(),
            m.gpu_spec.name,
            m.name
        );
    }
    ExitCode::SUCCESS
}

fn with_program(opt: &Options, f: impl FnOnce(&Program, &Hints, &Options) -> ExitCode) -> ExitCode {
    let Some(path) = &opt.file else {
        eprintln!("this command needs a skeleton file");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match text::parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}:{e}");
            return ExitCode::FAILURE;
        }
    };
    // Arrays declared `temporary` in the skeleton seed the hints; flags
    // add to them.
    let mut hints = Hints::for_program(&program);
    for name in &opt.temporaries {
        let Some(a) = program.array_by_name(name) else {
            eprintln!("--temporary: no array named `{name}`");
            return ExitCode::FAILURE;
        };
        hints = hints.temporary(a.id);
    }
    for (name, bytes) in &opt.sparse {
        let Some(a) = program.array_by_name(name) else {
            eprintln!("--sparse: no array named `{name}`");
            return ExitCode::FAILURE;
        };
        hints = hints.sparse_bound(a.id, *bytes);
    }
    f(&program, &hints, opt)
}

/// Applies fix-its to `src` until a fixpoint (each round re-lints the
/// rewritten text; conflicting fixes resolve across rounds). Returns
/// the final text and how many fixes were applied in total, or an
/// error if a rewrite ever stops parsing (a fix-engine bug — the
/// original file is left untouched).
fn lint_fixpoint(
    src: &str,
    path: &str,
    cfg: &gpp_lint::LintConfig,
) -> Result<(String, usize), String> {
    let mut cur = src.to_string();
    let mut total = 0usize;
    for _ in 0..16 {
        let report = gpp_lint::lint_source(&cur, path, cfg);
        let (next, n) = gpp_lint::apply_fixes(&cur, &report.diagnostics);
        if n == 0 {
            break;
        }
        if let Err(e) = text::parse(&next) {
            return Err(format!("{path}: fixed source no longer parses: {e}"));
        }
        cur = next;
        total += n;
    }
    Ok((cur, total))
}

/// Prices `src` against its fix-it-optimized form on every registered
/// machine. `None` when there are no applicable fixes (or the fixed
/// text fails to parse — already reported by `--fix`).
fn lint_headroom(
    src: &str,
    path: &str,
    cfg: &gpp_lint::LintConfig,
    registry: &MachineRegistry,
    seed: u64,
) -> Option<Vec<grophecy::MachineHeadroom>> {
    let (fixed, n) = lint_fixpoint(src, path, cfg).ok()?;
    if n == 0 {
        return None;
    }
    let as_written = text::parse(src).ok()?;
    let optimized = text::parse(&fixed).ok()?;
    Some(grophecy::transfer_headroom(
        registry,
        seed,
        &as_written,
        &optimized,
    ))
}

fn cmd_lint(opt: &Options) -> ExitCode {
    use gpp_lint::{lint_source, render_human, render_json, Code, LintConfig};
    if let Some(code) = &opt.explain {
        return match gpp_lint::render_explain(code) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("--explain: unknown lint code `{code}` (GPP000..GPP014)");
                ExitCode::from(2)
            }
        };
    }
    if opt.files.is_empty() {
        eprintln!("gpp lint needs at least one skeleton file");
        return ExitCode::from(2);
    }
    let mut cfg = LintConfig::new();
    for d in &opt.deny {
        if d == "warnings" {
            cfg.deny_warnings = true;
        } else if let Some(c) = Code::parse(d) {
            cfg.deny(c);
        } else {
            eprintln!("--deny: unknown lint `{d}` (GPP000..GPP014 or `warnings`)");
            return ExitCode::from(2);
        }
    }
    for a in &opt.allow {
        match Code::parse(a) {
            Some(c) => cfg.allow(c),
            None => {
                eprintln!("--allow: unknown lint code `{a}`");
                return ExitCode::from(2);
            }
        }
    }
    let registry = if opt.format_json {
        match registry_for(opt) {
            Some(r) => Some(r),
            None => return ExitCode::from(2),
        }
    } else {
        None
    };
    // Deterministic output and exit code regardless of argument order.
    let mut files = opt.files.clone();
    files.sort();
    files.dedup();
    // Exit severity: 0 clean, 1 findings at/above the deny level,
    // 2 internal error (unreadable file, parse failure, broken fix).
    let mut worst = 0u8;
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                worst = worst.max(2);
                continue;
            }
        };
        // Headroom is always measured against the file as it was read,
        // so `--fix` reports the savings it is about to bank.
        let headroom = registry
            .as_ref()
            .and_then(|r| lint_headroom(&src, path, &cfg, r, opt.seed));
        let effective = if opt.fix {
            match lint_fixpoint(&src, path, &cfg) {
                Ok((fixed, n)) => {
                    if n > 0 && fixed != src {
                        if let Err(e) = std::fs::write(path, &fixed) {
                            eprintln!("cannot write {path}: {e}");
                            worst = worst.max(2);
                            continue;
                        }
                        eprintln!("{path}: applied {n} fix(es)");
                    }
                    fixed
                }
                Err(e) => {
                    eprintln!("{e}");
                    worst = worst.max(2);
                    continue;
                }
            }
        } else {
            src
        };
        let report = lint_source(&effective, path, &cfg);
        if opt.format_json {
            let mut line = render_json(&report);
            if let Some(rows) = &headroom {
                // Splice the per-machine headroom into the object.
                line.pop();
                line.push_str(",\"transfer_headroom\":[");
                for (i, r) in rows.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    line.push_str(&format!(
                        "{{\"machine\":\"{}\",\"as_written\":{},\"optimized\":{},\"headroom\":{}}}",
                        r.machine,
                        r.as_written,
                        r.optimized,
                        r.headroom()
                    ));
                }
                line.push_str("]}");
            }
            println!("{line}");
        } else {
            print!("{}", render_human(&report, Some(&effective)));
        }
        let parse_failed = report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::Structural && d.message.starts_with("parse error:"));
        if parse_failed {
            worst = worst.max(2);
        } else if report.has_errors() {
            worst = worst.max(1);
        }
    }
    ExitCode::from(worst)
}

fn cmd_project(program: &Program, hints: &Hints, opt: &Options) -> ExitCode {
    let Some(machine) = machine_for(opt) else {
        return ExitCode::from(2);
    };
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);
    let proj = gro.project(program, hints);
    println!("machine: {}", machine.name);
    println!(
        "PCIe:    h2d {} | d2h {}",
        gro.pcie_model().h2d,
        gro.pcie_model().d2h
    );
    println!();
    for k in &proj.kernels {
        println!(
            "kernel {:<24} {:>10.3} ms   ({}, {})",
            k.name,
            k.time * 1e3,
            k.config,
            k.bound
        );
    }
    if opt.profile {
        println!();
        for (kernel, kp) in program.kernels.iter().zip(&proj.kernels) {
            let inst = grophecy::lowering::lower_kernel(kernel, program, kp.config);
            print!("{}", gpp_gpu_sim::profile(&machine.gpu, &inst));
        }
    }
    println!("\n{}", proj.plan);
    println!(
        "projected kernel time   : {:>10.3} ms x {} iter(s)",
        proj.kernel_time * 1e3,
        opt.iters
    );
    println!(
        "projected transfer time : {:>10.3} ms",
        proj.transfer_time * 1e3
    );
    println!(
        "projected total GPU time: {:>10.3} ms",
        proj.total_time(opt.iters) * 1e3
    );
    if let Some(tl) = &proj.timeline {
        // Stream-annotated schedules also quote the overlapped pass: what
        // the pipelined copies save against the serial schedule above.
        println!(
            "with stream overlap     : {:>10.3} ms   (saves {:.3} ms/iter pass)",
            proj.overlapped_total_time(opt.iters) * 1e3,
            tl.saved() * 1e3
        );
        if !tl.has_overlap() {
            println!(
                "  note: no transfer overlaps a kernel — annotations are sync or at schedule edges"
            );
        }
    }
    if let Some(mg) = &proj.multi_gpu {
        println!();
        println!(
            "data-parallel split across {} device(s){}:",
            mg.device_count(),
            if mg.is_contended() {
                " (root-complex contended)"
            } else {
                ""
            }
        );
        for d in &mg.devices {
            println!(
                "  device {:>2}: kernel {:>10.3} ms + transfers {:>10.3} ms   (bus factor {:.2})",
                d.id,
                d.kernel_seconds * 1e3,
                d.transfer_seconds * 1e3,
                d.bandwidth_factor
            );
        }
        println!(
            "  split total GPU time  : {:>10.3} ms  (straggler: device {})",
            mg.total_time(opt.iters) * 1e3,
            mg.straggler().id
        );
    }
    if opt.stats {
        let (hits, misses) = gpp_gpu_model::synth_memo_stats();
        let pool = gpp_par::Pool::global().stats();
        println!();
        println!(
            "search stats: synthesis memo {hits} hit(s) / {misses} miss(es); \
             pool {} thread(s), {} task(s) in {} region(s)",
            pool.threads, pool.tasks_executed, pool.parallel_regions
        );
    }
    ExitCode::SUCCESS
}

fn cmd_measure(program: &Program, hints: &Hints, opt: &Options) -> ExitCode {
    let Some(machine) = machine_for(opt) else {
        return ExitCode::from(2);
    };
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);
    let proj = gro.project(program, hints);
    let meas = measure(&mut node, program, &proj);
    let r = SpeedupReport::build(&program.name, "cli", &proj, &meas, opt.iters);
    println!("machine: {}", machine.name);
    println!(
        "\n{:<26} {:>12} {:>12} {:>8}",
        "", "predicted", "measured", "err%"
    );
    println!(
        "{:<26} {:>9.3} ms {:>9.3} ms {:>8.1}",
        "kernel time",
        proj.kernel_time * 1e3,
        meas.kernel_time * 1e3,
        r.kernel_time_error
    );
    println!(
        "{:<26} {:>9.3} ms {:>9.3} ms {:>8.1}",
        "transfer time",
        proj.transfer_time * 1e3,
        meas.transfer_time * 1e3,
        r.transfer_time_error
    );
    println!(
        "{:<26} {:>9.3} ms {:>9.3} ms",
        "total GPU time",
        proj.total_time(opt.iters) * 1e3,
        meas.total_time(opt.iters) * 1e3
    );
    println!(
        "{:<26} {:>9.3} ms",
        "measured CPU time",
        meas.cpu_total(opt.iters) * 1e3
    );
    println!(
        "\nspeedup: measured {:.2}x | predicted {:.2}x (kernel-only {:.2}x, transfer-only {:.2}x)",
        r.measured, r.predicted_combined, r.predicted_kernel_only, r.predicted_transfer_only
    );
    println!(
        "verdict: {}",
        if r.predicted_combined >= 1.0 {
            "port it"
        } else {
            "don't port"
        }
    );
    ExitCode::SUCCESS
}

fn cmd_analyze(program: &Program, hints: &Hints, _opt: &Options) -> ExitCode {
    let plan = analyze(program, hints);
    print!("{plan}");
    if !plan.is_exact() {
        println!("note: conservative sizes present — add --sparse hints to tighten them.");
    }
    ExitCode::SUCCESS
}

/// Resolves the fault plan for a long-running command: `--fault-plan`
/// wins; otherwise `GPP_FAULT_PLAN`; otherwise no faults. `None` means a
/// plan was given but does not parse (already reported).
fn faults_for(opt: &Options, who: &str) -> Option<std::sync::Arc<gpp_fault::FaultInjector>> {
    use gpp_fault::{FaultInjector, FaultPlan};
    let faults = match &opt.fault_plan {
        Some(spec) => match spec.parse::<FaultPlan>() {
            Ok(plan) => std::sync::Arc::new(FaultInjector::new(plan)),
            Err(e) => {
                eprintln!("--fault-plan: {e}");
                return None;
            }
        },
        None => match FaultInjector::from_env() {
            Ok(inj) => inj,
            Err(e) => {
                eprintln!("{}: {e}", gpp_fault::ENV_FAULT_PLAN);
                return None;
            }
        },
    };
    if faults.is_active() {
        eprintln!("{who}: fault injection armed: {}", faults.plan());
    }
    Some(faults)
}

fn cmd_serve(opt: &Options) -> ExitCode {
    use gpp_serve::{server::signals, ServeConfig, Server};
    use std::sync::Arc;
    use std::time::Duration;
    let Some(faults) = faults_for(opt, "gpp-serve") else {
        return ExitCode::from(2);
    };
    let Some(registry) = registry_for(opt) else {
        return ExitCode::from(2);
    };
    eprintln!("gpp-serve: machines: {}", registry.names().join(", "));
    let config = ServeConfig {
        addr: opt.addr.clone(),
        workers: opt.workers,
        queue_depth: opt.queue_depth,
        request_timeout: Duration::from_secs(opt.timeout_secs),
        faults,
        machines: Arc::new(registry),
        ..ServeConfig::default()
    };
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", opt.addr);
            return ExitCode::FAILURE;
        }
    };
    signals::install();
    match server.local_addr() {
        Ok(addr) => {
            // Machine-parsable bound address (meaningful with --addr
            // host:0): scripts read this line to find the server.
            println!("GPP_ADDR={addr}");
            eprintln!(
                "gpp-serve listening on {addr} ({} workers, queue {})",
                opt.workers, opt.queue_depth
            );
        }
        Err(e) => eprintln!("gpp-serve listening ({e})"),
    }
    if let Err(e) = server.run() {
        eprintln!("gpp-serve failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("gpp-serve: drained and stopped");
    ExitCode::SUCCESS
}

fn cmd_gateway(opt: &Options) -> ExitCode {
    use gpp_gateway::{Gateway, GatewayConfig};
    use gpp_serve::{server::signals, ServeConfig, Server};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;
    let Some(faults) = faults_for(opt, "gpp-gateway") else {
        return ExitCode::from(2);
    };
    if opt.shards == 0 && opt.shard_addrs.is_empty() {
        eprintln!("gpp gateway needs shards: --shards N (embedded) and/or --shard ADDR");
        return ExitCode::from(2);
    }
    let Some(registry) = registry_for(opt) else {
        return ExitCode::from(2);
    };
    let registry = Arc::new(registry);
    // Embedded shards: in-process gpp-serve instances on ephemeral ports.
    // They share the gateway's fault plan, so shard-scoped chaos points
    // (serve.* ones) apply to them too.
    let mut shard_handles = Vec::new();
    let mut shard_addrs = Vec::new();
    for i in 0..opt.shards {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: opt.workers,
            queue_depth: opt.queue_depth,
            request_timeout: Duration::from_secs(opt.timeout_secs),
            faults: faults.clone(),
            machines: registry.clone(),
            ..ServeConfig::default()
        };
        let handle = match Server::bind(config).and_then(Server::spawn) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("cannot start embedded shard {i}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("GPP_SHARD_ADDR={}", handle.addr());
        shard_addrs.push(handle.addr().to_string());
        shard_handles.push(handle);
    }
    shard_addrs.extend(opt.shard_addrs.iter().cloned());
    let config = GatewayConfig {
        addr: if opt.addr == "127.0.0.1:4513" {
            // The serve default port would collide with a local shard
            // fleet; the gateway defaults to an ephemeral port instead.
            "127.0.0.1:0".to_string()
        } else {
            opt.addr.clone()
        },
        workers: opt.workers,
        queue_depth: opt.queue_depth,
        request_timeout: Duration::from_secs(opt.timeout_secs),
        hedge: !opt.no_hedge,
        faults,
        ..GatewayConfig::default()
    };
    let gateway = match Gateway::bind(config, shard_addrs) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot bind gateway: {e}");
            return ExitCode::FAILURE;
        }
    };
    signals::install();
    match gateway.local_addr() {
        Ok(addr) => {
            println!("GPP_ADDR={addr}");
            eprintln!(
                "gpp-gateway listening on {addr} ({} shard(s), {} workers)",
                gateway.state().pool.len(),
                opt.workers
            );
        }
        Err(e) => eprintln!("gpp-gateway listening ({e})"),
    }
    // Gateway::run polls only its own flag; relay SIGINT/SIGTERM to it.
    let flag = gateway.shutdown_flag();
    std::thread::spawn(move || loop {
        if signals::requested() {
            flag.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    if let Err(e) = gateway.run() {
        eprintln!("gpp-gateway failed: {e}");
        return ExitCode::FAILURE;
    }
    for handle in shard_handles {
        let _ = handle.shutdown_and_join();
    }
    eprintln!("gpp-gateway: drained and stopped");
    ExitCode::SUCCESS
}

fn cmd_request(opt: &Options) -> ExitCode {
    use gpp_serve::{request_with_retries_budgeted, Command, Request, RetryBudget};
    use std::time::Duration;
    let Some(command) = Command::parse(&opt.remote_command) else {
        eprintln!(
            "unknown request command `{}` (known: project, measure, analyze, deps, calibrate, stats, ping, health)",
            opt.remote_command
        );
        return ExitCode::from(2);
    };
    let mut req = Request::new(command);
    req.machine = opt.machine.clone();
    req.seed = opt.seed;
    req.iters = opt.iters;
    req.temporaries = opt.temporaries.clone();
    req.sparse = opt.sparse.clone();
    req.lint = opt.lint;
    req.deadline_ms = opt.deadline_ms;
    if command.needs_skeleton() {
        let Some(path) = &opt.file else {
            eprintln!("`gpp request --command {command}` needs a skeleton file");
            return ExitCode::from(2);
        };
        req.skeleton = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    let timeout = match opt.timeout_ms {
        Some(ms) => Duration::from_millis(ms),
        None => Duration::from_secs(opt.timeout_secs),
    };
    let budget = opt.retry_budget.map(RetryBudget::new);
    match request_with_retries_budgeted(
        opt.addr.as_str(),
        &req,
        timeout,
        opt.retries,
        Duration::from_millis(100),
        budget.as_ref(),
    ) {
        Ok(response) => {
            println!("{response}");
            if response.starts_with("{\"ok\":false") {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("request to {} failed: {e}", opt.addr);
            ExitCode::FAILURE
        }
    }
}

fn cmd_calibrate(opt: &Options) -> ExitCode {
    use gpp_pcie::{Direction, MemType, SweepValidation};
    let Some(machine) = machine_for(opt) else {
        return ExitCode::from(2);
    };
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);
    println!("machine: {}", machine.name);
    println!("h2d: {}", gro.pcie_model().h2d);
    println!("d2h: {}", gro.pcie_model().d2h);
    for dir in Direction::ALL {
        let v = SweepValidation::paper_sweep(&mut node.bus, gro.pcie_model(), dir, MemType::Pinned);
        println!(
            "{dir}: mean error {:.2}%  max {:.2}%  (above 1 MB: {:.2}%)",
            v.mean_error(),
            v.max_error(),
            v.mean_error_above(1 << 20)
        );
    }
    ExitCode::SUCCESS
}
