//! "Real" measurements on the simulated node.
//!
//! Implements the paper's measurement protocol (§IV-A): the GPU
//! implementation uses the optimization strategies GROPHECY suggested
//! (via [`crate::lowering`]), employs pinned memory for transfers, and
//! every reported time is the arithmetic mean of ten separate runs. The
//! CPU baseline is the OpenMP implementation of the same region (its
//! timing model lives in `gpp-cpu-sim`).

use crate::lowering::lower_kernel;
use crate::machine::SimulatedNode;
use crate::projector::AppProjection;
use gpp_cpu_sim::WorkEstimate;
use gpp_datausage::{Transfer, TransferDir};
use gpp_pcie::{Bus, Direction, MemType};
use gpp_skeleton::sections::{read_sets, write_sets};
use gpp_skeleton::Program;

/// Measured (simulated-hardware) times for one application + data size.
#[derive(Debug, Clone)]
pub struct AppMeasurement {
    /// Mean measured time per kernel, in program order, seconds.
    pub kernel_times: Vec<(String, f64)>,
    /// Σ kernel times (one iteration).
    pub kernel_time: f64,
    /// Mean measured time per transfer, parallel to the plan's `all()`
    /// order.
    pub transfer_times: Vec<(Transfer, f64)>,
    /// Σ transfer times.
    pub transfer_time: f64,
    /// Measured CPU time of the same region (one iteration).
    pub cpu_time: f64,
}

impl AppMeasurement {
    /// Total measured GPU time for `iters` iterations.
    pub fn total_time(&self, iters: u32) -> f64 {
        self.kernel_time * iters as f64 + self.transfer_time
    }

    /// Measured CPU time for `iters` iterations.
    pub fn cpu_total(&self, iters: u32) -> f64 {
        self.cpu_time * iters as f64
    }

    /// Measured GPU speedup for `iters` iterations.
    pub fn speedup(&self, iters: u32) -> f64 {
        self.cpu_total(iters) / self.total_time(iters)
    }

    /// Fraction of one-iteration GPU time spent transferring — Table I's
    /// "Percent Transfer" column.
    pub fn percent_transfer(&self) -> f64 {
        100.0 * self.transfer_time / (self.kernel_time + self.transfer_time)
    }
}

/// The number of runs each measurement averages (§IV-A).
pub const MEASUREMENT_RUNS: u32 = 10;

/// Measures an application on the node, using the projection's chosen
/// per-kernel transformations (the paper's hand-port methodology).
pub fn measure(
    node: &mut SimulatedNode,
    program: &Program,
    projection: &AppProjection,
) -> AppMeasurement {
    assert_eq!(
        projection.kernels.len(),
        program.kernels.len(),
        "projection does not match program"
    );
    // Reality check before timing anything: the working set must fit in
    // device memory, exactly as the real port's cudaMalloc calls would
    // demand.
    let device_bytes = program.total_array_bytes();
    assert!(
        device_bytes <= node.gpu.device().dram_bytes,
        "working set ({device_bytes} B) exceeds device memory ({} B) on {}",
        node.gpu.device().dram_bytes,
        node.gpu.device().name
    );

    // Kernels: mean of ten launches each, at GROPHECY's suggested config.
    let mut kernel_times = Vec::with_capacity(program.kernels.len());
    for (kernel, proj) in program.kernels.iter().zip(&projection.kernels) {
        let instance = lower_kernel(kernel, program, proj.config);
        let t = node.gpu.mean_time(&instance, MEASUREMENT_RUNS);
        kernel_times.push((kernel.name.clone(), t));
    }
    let kernel_time = kernel_times.iter().map(|(_, t)| t).sum();

    // Transfers: pinned memory, mean of ten runs each.
    let mut transfer_times = Vec::with_capacity(projection.plan.transfer_count());
    for t in projection.plan.all() {
        let dir = match t.dir {
            TransferDir::ToDevice => Direction::HostToDevice,
            TransferDir::FromDevice => Direction::DeviceToHost,
        };
        let mean: f64 = (0..MEASUREMENT_RUNS)
            .map(|_| node.bus.transfer(t.bytes, dir, MemType::Pinned))
            .sum::<f64>()
            / MEASUREMENT_RUNS as f64;
        transfer_times.push((t.clone(), mean));
    }
    let transfer_time = transfer_times.iter().map(|(_, t)| t).sum();

    let cpu_time = node.cpu.region_time(&cpu_work(program));

    AppMeasurement {
        kernel_times,
        kernel_time,
        transfer_times,
        transfer_time,
        cpu_time,
    }
}

/// Derives the CPU-side work estimate of the ported region: total flops,
/// and DRAM traffic equal to the unique bytes each kernel sweep touches
/// (arrays larger than cache are streamed once per kernel).
pub fn cpu_work(program: &Program) -> WorkEstimate {
    let mut flops = 0.0;
    let mut bytes = 0.0;
    let mut working_set = 0u64;
    let mut random_lines = 0.0;
    for kernel in &program.kernels {
        // CPU issue cost: every flop and every memory reference occupies a
        // slot (the E5405 retires loads and arithmetic from the same
        // narrow pipeline on these scalar-ish codes).
        let iters_k = kernel.total_iterations() as f64;
        for stmt in &kernel.statements {
            flops += (stmt.flops.total() as f64 + stmt.refs.len() as f64)
                * iters_k
                * stmt.active_fraction
                * kernel.cpu_compute_scale;
        }
        let mut touched = 0u64;
        for (array, set) in read_sets(kernel, program) {
            let decl = program.array(array);
            touched += set.byte_count(decl.elem.bytes()).min(decl.byte_count());
        }
        for (array, set) in write_sets(kernel, program) {
            let decl = program.array(array);
            touched += set.byte_count(decl.elem.bytes()).min(decl.byte_count());
        }
        bytes += touched as f64;
        working_set = working_set.max(touched);
        // Fully data-dependent gathers miss the cache on the CPU too: one
        // random line per irregular reference execution. Bounded-irregular
        // refs (mesh-local gathers) stay cache-resident and are excluded.
        for stmt in &kernel.statements {
            let irregular_refs = stmt
                .refs
                .iter()
                .filter(|r| {
                    r.index
                        .iter()
                        .any(|ix| matches!(ix, gpp_skeleton::IndexExpr::Irregular))
                })
                .count() as f64;
            random_lines += irregular_refs * iters_k * stmt.active_fraction;
        }
    }
    WorkEstimate {
        flops,
        dram_bytes: bytes,
        working_set,
        random_lines,
        invocations: program.kernels.len() as u32,
        parallel_fraction: 0.995,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::projector::Grophecy;
    use gpp_datausage::Hints;
    use gpp_skeleton::builder::{idx, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops};

    fn vadd(n: usize) -> Program {
        let mut p = ProgramBuilder::new("vadd");
        let a = p.array("a", ElemType::F32, &[n]);
        let b = p.array("b", ElemType::F32, &[n]);
        let c = p.array("c", ElemType::F32, &[n]);
        let mut k = p.kernel("add");
        let i = k.parallel_loop("i", n as u64);
        k.statement()
            .read(a, &[idx(i)])
            .read(b, &[idx(i)])
            .write(c, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().unwrap()
    }

    fn setup(n: usize) -> (SimulatedNode, Program, AppProjection) {
        let machine = MachineConfig::anl_eureka_node(11);
        let mut node = machine.node();
        let gro = Grophecy::calibrate(&machine, &mut node);
        let program = vadd(n);
        let proj = gro.project(&program, &Hints::new());
        (node, program, proj)
    }

    #[test]
    fn measurement_has_all_parts() {
        let (mut node, program, proj) = setup(1 << 22);
        let m = measure(&mut node, &program, &proj);
        assert_eq!(m.kernel_times.len(), 1);
        assert_eq!(m.transfer_times.len(), 3);
        assert!(m.kernel_time > 0.0 && m.transfer_time > 0.0 && m.cpu_time > 0.0);
    }

    #[test]
    fn vector_add_gpu_loses_end_to_end() {
        // §II-B: "the CPU will actually complete the entire vector
        // addition about 10x faster than the GPU" (once transfers count).
        let (mut node, program, proj) = setup(1 << 24);
        let m = measure(&mut node, &program, &proj);
        assert!(m.speedup(1) < 1.0, "speedup {}", m.speedup(1));
        // But kernel-vs-CPU alone looks like a win.
        assert!(m.cpu_time / m.kernel_time > 1.0);
        assert!(m.percent_transfer() > 60.0);
    }

    #[test]
    fn prediction_tracks_measurement_within_paper_error() {
        let (mut node, program, proj) = setup(1 << 22);
        let m = measure(&mut node, &program, &proj);
        let kerr = (proj.kernel_time - m.kernel_time).abs() / m.kernel_time;
        let terr = (proj.transfer_time - m.transfer_time).abs() / m.transfer_time;
        assert!(kerr < 0.40, "kernel error {kerr}");
        assert!(terr < 0.15, "transfer error {terr}");
    }

    #[test]
    fn cpu_work_accounts_all_kernels() {
        let program = vadd(1 << 20);
        let w = cpu_work(&program);
        // 1 flop + 3 memory references per element.
        assert_eq!(w.flops, (1 << 20) as f64 * 4.0);
        assert_eq!(w.dram_bytes, (1 << 20) as f64 * 12.0);
        assert_eq!(w.invocations, 1);
        assert_eq!(w.random_lines, 0.0);
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let (mut n1, p1, pr1) = setup(1 << 20);
        let (mut n2, p2, pr2) = setup(1 << 20);
        let m1 = measure(&mut n1, &p1, &pr1);
        let m2 = measure(&mut n2, &p2, &pr2);
        assert_eq!(m1.kernel_time, m2.kernel_time);
        assert_eq!(m1.transfer_time, m2.transfer_time);
    }
}
