//! The modeled system: configuration + the simulated node.

use gpp_cpu_sim::{CpuParams, CpuSim};
use gpp_gpu_model::GpuSpec;
use gpp_gpu_sim::{DeviceParams, GpuSim};
use gpp_pcie::{BusParams, BusSimulator};

/// Everything that defines one target system.
///
/// The `gpu_spec` is the *datasheet* the analytic model sees; `gpu`, `cpu`
/// and `bus` parameterize the simulators that stand in for the physical
/// hardware. Keeping them separate is what makes the projection honest —
/// the model plans from public numbers while "reality" has its own.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Name, for reports.
    pub name: String,
    /// The GPU datasheet the analytic model uses.
    pub gpu_spec: GpuSpec,
    /// The simulated GPU hardware.
    pub gpu: DeviceParams,
    /// The simulated host CPU.
    pub cpu: CpuParams,
    /// The simulated PCIe bus.
    pub bus: BusParams,
    /// Noise seed for the whole node ("which day you measured on").
    pub seed: u64,
}

impl MachineConfig {
    /// The paper's testbed: one node of Argonne's data analysis and
    /// visualization cluster (Eureka): Xeon E5405 + Quadro FX 5600 on
    /// PCIe v1 x16 (§IV-A).
    pub fn anl_eureka_node(seed: u64) -> Self {
        MachineConfig {
            name: "ANL Eureka node (simulated): Xeon E5405 + Quadro FX 5600, PCIe v1 x16".into(),
            gpu_spec: GpuSpec::quadro_fx_5600(),
            gpu: DeviceParams::quadro_fx_5600(),
            cpu: CpuParams::xeon_e5405(),
            bus: BusParams::pcie_v1_x16(),
            seed,
        }
    }

    /// A newer-generation comparison system (Nehalem host + GT200 GPU on
    /// PCIe v2), for cross-system experiments.
    pub fn pcie_v2_gt200_node(seed: u64) -> Self {
        MachineConfig {
            name: "PCIe v2 node (simulated): Xeon X5550 + Tesla C1060".into(),
            gpu_spec: GpuSpec::tesla_c1060(),
            gpu: DeviceParams::tesla_c1060(),
            cpu: CpuParams::xeon_x5550(),
            bus: BusParams::pcie_v2_x16(),
            seed,
        }
    }

    /// A noise-free copy (for exactness tests).
    pub fn quiet(mut self) -> Self {
        self.gpu = self.gpu.quiet();
        self.bus = self.bus.quiet();
        self
    }

    /// Instantiates the simulated hardware.
    pub fn node(&self) -> SimulatedNode {
        SimulatedNode {
            gpu: GpuSim::new(self.gpu.clone(), self.seed),
            cpu: CpuSim::new(self.cpu.clone()),
            bus: BusSimulator::new(self.bus.clone(), self.seed.wrapping_add(1)),
        }
    }
}

/// The simulated hardware node: what "measured" means in this repo.
#[derive(Debug, Clone)]
pub struct SimulatedNode {
    /// The GPU.
    pub gpu: GpuSim,
    /// The host CPU.
    pub cpu: CpuSim,
    /// The PCIe bus between them.
    pub bus: BusSimulator,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_pcie::Bus as _;

    #[test]
    fn eureka_node_wires_the_right_parts() {
        let m = MachineConfig::anl_eureka_node(1);
        assert!(m.name.contains("Eureka"));
        assert_eq!(m.gpu.sms, 16);
        assert_eq!(m.cpu.cores, 4);
        let node = m.node();
        assert_eq!(node.gpu.device().sms, 16);
        assert!(node.bus.describe().contains("V1"));
    }

    #[test]
    fn quiet_node_strips_noise() {
        let m = MachineConfig::anl_eureka_node(1).quiet();
        assert_eq!(m.gpu.noise_rel_sigma, 0.0);
        assert_eq!(m.bus.noise_rel_sigma, 0.0);
    }

    #[test]
    fn v2_node_differs() {
        let m = MachineConfig::pcie_v2_gt200_node(1);
        assert_eq!(m.gpu.sms, 30);
        assert!(m.bus.effective_pinned_bw() > 5e9);
    }
}
