//! The modeled system: configuration + the simulated node.

use crate::seeds;
use gpp_cpu_sim::{CpuParams, CpuSim};
use gpp_gpu_model::GpuSpec;
use gpp_gpu_sim::{DeviceParams, GpuSim};
use gpp_pcie::replay::TraceError;
use gpp_pcie::{BusBackend, BusParams, BusSimulator, Direction, MemType, RecordedBus};

/// What stands behind a machine's PCIe link: the mechanistic simulator, or
/// a recorded trace replayed deterministically (for machines we cannot run
/// code on). A datasheet declares one or the other; everything downstream
/// talks to the resulting [`BusBackend`] through the `Bus` trait.
#[derive(Debug, Clone, PartialEq)]
pub enum BusSpec {
    /// Simulate the bus mechanistically from parameters.
    Sim(BusParams),
    /// Replay a recorded trace.
    Replay(ReplayTrace),
}

/// A recorded transfer-time table, kept as raw samples so datasheets are
/// plain comparable data; [`ReplayTrace::bus`] compiles it into the
/// interpolating [`RecordedBus`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayTrace {
    /// Trace label, for reports (e.g. the recording's origin).
    pub label: String,
    /// `(bytes, direction, memtype, seconds)` samples.
    pub samples: Vec<(u64, Direction, MemType, f64)>,
}

impl ReplayTrace {
    /// Compiles the samples into a replayable bus. Fails when a covered
    /// curve has fewer than two distinct sizes.
    pub fn bus(&self) -> Result<RecordedBus, TraceError> {
        RecordedBus::from_samples(self.label.clone(), &self.samples)
    }
}

impl BusSpec {
    /// Short tag for reports: `sim` or `replay`.
    pub fn kind(&self) -> &'static str {
        match self {
            BusSpec::Sim(_) => "sim",
            BusSpec::Replay(_) => "replay",
        }
    }

    /// The simulator parameters, when this is a simulated bus.
    pub fn sim_params(&self) -> Option<&BusParams> {
        match self {
            BusSpec::Sim(p) => Some(p),
            BusSpec::Replay(_) => None,
        }
    }

    /// A noise-free copy (replay traces carry no fresh noise already).
    pub fn quiet(self) -> Self {
        match self {
            BusSpec::Sim(p) => BusSpec::Sim(p.quiet()),
            replay => replay,
        }
    }

    /// Checks that the spec can be instantiated (a replay trace compiles).
    pub fn validate(&self) -> Result<(), TraceError> {
        match self {
            BusSpec::Sim(_) => Ok(()),
            BusSpec::Replay(t) => t.bus().map(|_| ()),
        }
    }

    /// Instantiates the backend. `seed` feeds the simulator's noise stream
    /// and is unused by replay (a recorded trace has no fresh noise).
    ///
    /// # Panics
    ///
    /// Panics on a replay trace that fails [`BusSpec::validate`] — the
    /// datasheet parser and registry validate at load time, so this only
    /// trips on hand-built invalid configs.
    pub fn backend(&self, seed: u64) -> BusBackend {
        match self {
            BusSpec::Sim(p) => BusBackend::Sim(BusSimulator::new(p.clone(), seed)),
            BusSpec::Replay(t) => BusBackend::Replay(
                t.bus()
                    .unwrap_or_else(|e| panic!("invalid replay trace `{}`: {e}", t.label)),
            ),
        }
    }
}

/// One additional GPU device behind the node's root complex, with its own
/// bus link. The machine's primary device is described by the top-level
/// `gpu_spec`/`gpu`/`bus` fields; `MachineConfig::devices` lists the
/// extras, so single-GPU datasheets are untouched by multi-GPU support.
///
/// Extra devices share the primary GPU's datasheet (a homogeneous fleet —
/// the common multi-GPU node) but each has its own link parameters, so
/// asymmetric slot wiring (x16 vs x8) is expressible.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLink {
    /// Device index as declared in the datasheet (`device 1`, `device 2`,
    /// …; 0 is the primary device and never appears here).
    pub id: u32,
    /// The device's own bus link.
    pub bus: BusParams,
}

/// Root-complex contention: all device links funnel through one host
/// interface with `shared_bw` bytes/second of aggregate bandwidth. When
/// `D` devices transfer concurrently, each link's effective bandwidth is
/// `min(link_bw, shared_bw / D)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RootComplex {
    /// Aggregate host-side bandwidth shared by all device links, bytes/s.
    pub shared_bw: f64,
}

/// Everything that defines one target system.
///
/// The `gpu_spec` is the *datasheet* the analytic model sees; `gpu`, `cpu`
/// and `bus` parameterize the simulators that stand in for the physical
/// hardware. Keeping them separate is what makes the projection honest —
/// the model plans from public numbers while "reality" has its own.
///
/// A `MachineConfig` is plain data: it serializes to the `.gmach` text
/// format (see [`crate::datasheet`]) and is routed by its short `id`
/// through the [`crate::registry::MachineRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Short registry identifier (e.g. `eureka`), used for routing
    /// (`machine=<id>` on the wire), cache keys, and machine-scoped fault
    /// points.
    pub id: String,
    /// Name, for reports.
    pub name: String,
    /// The GPU datasheet the analytic model uses.
    pub gpu_spec: GpuSpec,
    /// The simulated GPU hardware.
    pub gpu: DeviceParams,
    /// The simulated host CPU.
    pub cpu: CpuParams,
    /// The bus backend specification (simulated or replayed).
    pub bus: BusSpec,
    /// Noise seed for the whole node ("which day you measured on").
    /// Per-component streams derive from it via [`crate::seeds`].
    pub seed: u64,
    /// Additional GPU devices (`device N` datasheet blocks). Empty for a
    /// single-GPU machine — the overwhelmingly common case, and the one
    /// whose projections must stay bit-identical to pre-multi-GPU builds.
    pub devices: Vec<DeviceLink>,
    /// Root-complex contention model shared by every device link (`None`
    /// = unconstrained, the single-device default).
    pub root_complex: Option<RootComplex>,
}

impl MachineConfig {
    /// The paper's testbed: one node of Argonne's data analysis and
    /// visualization cluster (Eureka): Xeon E5405 + Quadro FX 5600 on
    /// PCIe v1 x16 (§IV-A).
    pub fn anl_eureka_node(seed: u64) -> Self {
        MachineConfig {
            id: "eureka".into(),
            name: "ANL Eureka node (simulated): Xeon E5405 + Quadro FX 5600, PCIe v1 x16".into(),
            gpu_spec: GpuSpec::quadro_fx_5600(),
            gpu: DeviceParams::quadro_fx_5600(),
            cpu: CpuParams::xeon_e5405(),
            bus: BusSpec::Sim(BusParams::pcie_v1_x16()),
            seed,
            devices: Vec::new(),
            root_complex: None,
        }
    }

    /// A newer-generation comparison system (Nehalem host + GT200 GPU on
    /// PCIe v2), for cross-system experiments.
    pub fn pcie_v2_gt200_node(seed: u64) -> Self {
        MachineConfig {
            id: "v2".into(),
            name: "PCIe v2 node (simulated): Xeon X5550 + Tesla C1060".into(),
            gpu_spec: GpuSpec::tesla_c1060(),
            gpu: DeviceParams::tesla_c1060(),
            cpu: CpuParams::xeon_x5550(),
            bus: BusSpec::Sim(BusParams::pcie_v2_x16()),
            seed,
            devices: Vec::new(),
            root_complex: None,
        }
    }

    /// Total GPU devices on the node: the primary plus every extra
    /// [`DeviceLink`].
    pub fn device_count(&self) -> usize {
        1 + self.devices.len()
    }

    /// True when the node hosts more than one GPU.
    pub fn is_multi_device(&self) -> bool {
        !self.devices.is_empty()
    }

    /// A copy with a different node seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A noise-free copy (for exactness tests).
    pub fn quiet(mut self) -> Self {
        self.gpu = self.gpu.quiet();
        self.bus = self.bus.quiet();
        self
    }

    /// Instantiates the simulated hardware. Seed streams derive from the
    /// node seed through [`crate::seeds`] — one place, by design.
    pub fn node(&self) -> SimulatedNode {
        SimulatedNode {
            gpu: GpuSim::new(self.gpu.clone(), seeds::gpu_seed(self.seed)),
            cpu: CpuSim::new(self.cpu.clone()),
            bus: self.bus.backend(seeds::bus_seed(self.seed)),
        }
    }
}

/// The simulated hardware node: what "measured" means in this repo.
#[derive(Debug, Clone)]
pub struct SimulatedNode {
    /// The GPU.
    pub gpu: GpuSim,
    /// The host CPU.
    pub cpu: CpuSim,
    /// The bus between them (simulated or replayed).
    pub bus: BusBackend,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_pcie::Bus as _;

    #[test]
    fn eureka_node_wires_the_right_parts() {
        let m = MachineConfig::anl_eureka_node(1);
        assert_eq!(m.id, "eureka");
        assert!(m.name.contains("Eureka"));
        assert_eq!(m.gpu.sms, 16);
        assert_eq!(m.cpu.cores, 4);
        let node = m.node();
        assert_eq!(node.gpu.device().sms, 16);
        assert!(node.bus.describe().contains("V1"));
        assert_eq!(node.bus.kind(), "sim");
    }

    #[test]
    fn quiet_node_strips_noise() {
        let m = MachineConfig::anl_eureka_node(1).quiet();
        assert_eq!(m.gpu.noise_rel_sigma, 0.0);
        assert_eq!(m.bus.sim_params().unwrap().noise_rel_sigma, 0.0);
    }

    #[test]
    fn v2_node_differs() {
        let m = MachineConfig::pcie_v2_gt200_node(1);
        assert_eq!(m.id, "v2");
        assert_eq!(m.gpu.sms, 30);
        assert!(m.bus.sim_params().unwrap().effective_pinned_bw() > 5e9);
    }

    #[test]
    fn node_seeding_is_unchanged_by_the_seeds_refactor() {
        // The bus RNG stream must still start at seed + 1: instantiate the
        // historical wiring directly and compare transfer-for-transfer.
        let m = MachineConfig::anl_eureka_node(7);
        let mut node = m.node();
        let mut legacy = BusSimulator::new(BusParams::pcie_v1_x16(), 7u64.wrapping_add(1));
        for &bytes in &[1u64, 4096, 1 << 20] {
            let a = node
                .bus
                .transfer(bytes, Direction::HostToDevice, MemType::Pinned);
            let b = legacy.transfer(bytes, Direction::HostToDevice, MemType::Pinned);
            assert_eq!(a.to_bits(), b.to_bits(), "bytes={bytes}");
        }
    }

    #[test]
    fn replay_spec_builds_a_replay_node() {
        let mut m = MachineConfig::anl_eureka_node(3);
        m.bus = BusSpec::Replay(ReplayTrace {
            label: "t".into(),
            samples: vec![
                (1, Direction::HostToDevice, MemType::Pinned, 9.9e-6),
                (536870912, Direction::HostToDevice, MemType::Pinned, 0.215),
                (1, Direction::DeviceToHost, MemType::Pinned, 1.13e-5),
                (536870912, Direction::DeviceToHost, MemType::Pinned, 0.216),
            ],
        });
        assert!(m.bus.validate().is_ok());
        assert_eq!(m.bus.kind(), "replay");
        assert!(m.bus.sim_params().is_none());
        let mut node = m.node();
        let t = node
            .bus
            .transfer(1, Direction::HostToDevice, MemType::Pinned);
        assert_eq!(t, 9.9e-6); // replay is exact at a knot
                               // quiet() must leave a replay spec untouched.
        assert_eq!(m.clone().quiet().bus, m.bus);
    }

    #[test]
    fn invalid_replay_trace_fails_validation() {
        let t = ReplayTrace {
            label: "short".into(),
            samples: vec![(1, Direction::HostToDevice, MemType::Pinned, 1e-6)],
        };
        assert!(BusSpec::Replay(t).validate().is_err());
    }
}
