//! Transfer headroom: how much projected time a skeleton's explicit
//! transfer schedule leaves on the table.
//!
//! `gpp lint` can rewrite a `.gsk` with an explicit `h2d`/`d2h`
//! schedule into an equivalent one without the redundant traffic it
//! diagnosed (GPP010–GPP013), or with stream/chunk annotations that
//! pipeline large copies against compute (GPP014). This module prices
//! both versions with the full projector on every registered machine:
//! the *headroom* is the projector-measured delta between the program
//! as written and the fix-it-optimized schedule. Each side is priced at
//! its overlapped total when it carries stream annotations (identical
//! to the serial total otherwise), so both traffic-removing and
//! overlap-adding fixes surface their win; the delta is zero when the
//! schedule is already optimal.

use crate::projector::Grophecy;
use crate::registry::MachineRegistry;
use gpp_datausage::Hints;
use gpp_skeleton::Program;

/// Projected cost of one skeleton, as written vs. optimized, on one
/// machine. All times are seconds for a single iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineHeadroom {
    /// Machine id (registry name).
    pub machine: String,
    /// Projected total time of the program as written (overlapped total
    /// when the schedule carries stream annotations).
    pub as_written: f64,
    /// Projected total time of the fix-it-optimized program (overlapped
    /// total when the fix added stream annotations).
    pub optimized: f64,
}

impl MachineHeadroom {
    /// Seconds saved by adopting the optimized schedule (never
    /// negative; fixes only remove or reorder transfers).
    pub fn headroom(&self) -> f64 {
        (self.as_written - self.optimized).max(0.0)
    }
}

/// Prices `as_written` and `optimized` on every machine in `registry`
/// (deterministically seeded with `seed`), in registry name order.
///
/// Hints are derived per program with [`Hints::for_program`], so a fix
/// that adds a `temporary` attribute is honored on the optimized side.
pub fn transfer_headroom(
    registry: &MachineRegistry,
    seed: u64,
    as_written: &Program,
    optimized: &Program,
) -> Vec<MachineHeadroom> {
    let h0 = Hints::for_program(as_written);
    let h1 = Hints::for_program(optimized);
    registry
        .names()
        .into_iter()
        .map(|name| {
            let cfg = registry
                .config(&name, seed)
                .expect("name came from the registry");
            let mut node = cfg.node();
            let gro = Grophecy::calibrate(&cfg, &mut node);
            MachineHeadroom {
                machine: name,
                as_written: gro.project(as_written, &h0).overlapped_total_time(1),
                optimized: gro.project(optimized, &h1).overlapped_total_time(1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        gpp_skeleton::text::parse(src).expect("fixture parses")
    }

    const WASTEFUL: &str = "\
program p
array a f32 [4096]
array b f32 [4096]
h2d a
kernel k
  parallel i 4096
  stmt adds=1
    read  a [i]
    write b [i]
h2d a
d2h b
";

    const TIGHT: &str = "\
program p
array a f32 [4096]
array b f32 [4096]
h2d a
kernel k
  parallel i 4096
  stmt adds=1
    read  a [i]
    write b [i]
d2h b
";

    #[test]
    fn redundant_upload_has_positive_headroom_everywhere() {
        let reg = MachineRegistry::builtin();
        let rows = transfer_headroom(&reg, 7, &parse(WASTEFUL), &parse(TIGHT));
        assert_eq!(rows.len(), reg.len());
        for r in &rows {
            assert!(
                r.headroom() > 0.0,
                "{}: {} vs {}",
                r.machine,
                r.as_written,
                r.optimized
            );
        }
    }

    #[test]
    fn identical_programs_have_zero_headroom() {
        let reg = MachineRegistry::builtin();
        for r in transfer_headroom(&reg, 7, &parse(TIGHT), &parse(TIGHT)) {
            assert_eq!(r.headroom(), 0.0, "{}", r.machine);
        }
    }

    #[test]
    fn overlap_annotations_surface_positive_headroom() {
        // The GPP014 rewrite: same traffic, but pipelined against the
        // kernel on a concurrent stream. The overlapped pricing must
        // credit the overlap.
        let serial = "\
program p
array a f32 [1048576]
array b f32 [1048576]
h2d a
kernel k
  parallel i 1048576
  stmt adds=1
    read  a [i]
    write b [i]
d2h b
";
        let streamed = serial
            .replace("h2d a", "h2d a stream 1 chunks=4")
            .replace("d2h b", "d2h b stream 1 chunks=4");
        let reg = MachineRegistry::builtin();
        for r in transfer_headroom(&reg, 7, &parse(serial), &parse(&streamed)) {
            assert!(
                r.headroom() > 0.0,
                "{}: {} vs {}",
                r.machine,
                r.as_written,
                r.optimized
            );
        }
    }

    #[test]
    fn headroom_equals_projector_delta() {
        let reg = MachineRegistry::builtin();
        let (w, t) = (parse(WASTEFUL), parse(TIGHT));
        for r in transfer_headroom(&reg, 11, &w, &t) {
            let cfg = reg.config(&r.machine, 11).unwrap();
            let mut node = cfg.node();
            let gro = Grophecy::calibrate(&cfg, &mut node);
            let d = gro.project(&w, &Hints::for_program(&w)).total_time(1)
                - gro.project(&t, &Hints::for_program(&t)).total_time(1);
            assert!((r.headroom() - d).abs() < 1e-12, "{}", r.machine);
        }
    }
}
