//! GROPHECY++ — the integrated projection framework.
//!
//! This crate assembles the paper's complete system (Figure 1):
//!
//! ```text
//!   code skeleton ──► GROPHECY (transformations + GPU model) ──► kernel time
//!        │                                                           │
//!        └──► data usage analyzer ──► transfer plan ──► PCIe model ──┤
//!                                                                    ▼
//!                                               projected GPU-accelerated time
//! ```
//!
//! * [`machine`] — the modeled system: GPU datasheet + simulated node
//!   (GPU/CPU/bus simulators standing in for the paper's Argonne machine).
//! * [`projector`] — [`projector::Grophecy`]: calibrates the PCIe model on
//!   first contact with a machine (§III-C), projects per-kernel best times
//!   (§II-C), runs the data usage analyzer (§III-B), and combines them.
//! * [`lowering`] — turns a chosen transformation into the concrete kernel
//!   instance the simulator executes, mirroring the paper's methodology:
//!   "the real kernel execution time is measured using a hand-coded
//!   version of the kernel that employs the same optimization strategies
//!   suggested by GROPHECY" (§IV-A).
//! * [`measurement`] — takes the "real" (simulated-hardware) measurements.
//! * [`speedup`] — the speedup accounting of §IV-A/§V: measured and
//!   predicted speedups (kernel-only / transfer-only / combined), error
//!   magnitudes, and iteration sweeps.
//!
//! # Quickstart
//!
//! ```
//! use grophecy::machine::MachineConfig;
//! use grophecy::projector::Grophecy;
//! use gpp_datausage::Hints;
//! use gpp_skeleton::builder::{idx, ProgramBuilder};
//! use gpp_skeleton::{ElemType, Flops};
//!
//! // Describe the CPU code as a skeleton.
//! let mut p = ProgramBuilder::new("vadd");
//! let n = 1 << 22;
//! let a = p.array("a", ElemType::F32, &[n]);
//! let b = p.array("b", ElemType::F32, &[n]);
//! let c = p.array("c", ElemType::F32, &[n]);
//! let mut k = p.kernel("add");
//! let i = k.parallel_loop("i", n as u64);
//! k.statement()
//!     .read(a, &[idx(i)])
//!     .read(b, &[idx(i)])
//!     .write(c, &[idx(i)])
//!     .flops(Flops { adds: 1, ..Flops::default() })
//!     .finish();
//! k.finish();
//! let program = p.build().unwrap();
//!
//! // Project on the paper's machine.
//! let machine = MachineConfig::anl_eureka_node(42);
//! let mut node = machine.node();
//! let gro = Grophecy::calibrate(&machine, &mut node);
//! let proj = gro.project(&program, &Hints::new());
//! assert!(proj.transfer_time > proj.kernel_time); // §II-B's warning
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasheet;
pub mod fusion;
pub mod headroom;
pub mod lowering;
pub mod machine;
pub mod measurement;
pub mod memtype;
pub mod projector;
pub mod registry;
pub mod report;
pub mod seeds;
pub mod speedup;
pub mod timeline;

pub use fusion::{explore_fusion, FusionAnalysis};
pub use headroom::{transfer_headroom, MachineHeadroom};
pub use machine::{BusSpec, MachineConfig, ReplayTrace, SimulatedNode};
pub use measurement::{measure, AppMeasurement};
pub use memtype::{DualCalibration, MemTypeReport};
pub use projector::{AppProjection, Grophecy};
pub use registry::{MachineRegistry, UnknownMachine};
pub use speedup::{SpeedupReport, SpeedupSeries};
pub use timeline::{DeviceSlice, MultiGpuProjection, Timeline, TimelineEvent};
