//! `.gmach` — the dependency-free machine datasheet text format.
//!
//! A machine is data, not a constructor (GROPHECY frames projection "onto
//! hypothetical GPU designs from a parameterized spec"). This module
//! serializes a complete [`MachineConfig`] — registry id, report name, GPU
//! datasheet, simulated GPU/CPU/bus parameters, and node seed — to a
//! line-oriented text format in the same hand-rolled style as the `.gsk`
//! skeleton format ([`gpp_skeleton::text`]): `#` comments, indentation
//! ignored, no external parser dependencies.
//!
//! ```text
//! machine eureka
//! name "ANL Eureka node ..."
//! seed 2013
//!
//! gpu_spec "Quadro FX 5600"
//!   sms 16
//!   clock_hz 1350000000
//!   ...
//!
//! gpu "Quadro FX 5600 (simulated)"
//!   ...
//!
//! cpu
//!   cores 4
//!   ...
//!
//! bus sim
//!   gen v1
//!   lanes 16
//!   ...
//! ```
//!
//! A replay-backed machine declares its bus as a recorded trace instead,
//! either inline or from a sidecar file in the [`RecordedBus`] text format
//! (`from` is resolved by the loader — see [`parse_with`]):
//!
//! ```text
//! bus replay "eureka-2009-06"
//!   sample 1 h2d pinned 0.0000099
//!   sample 536870912 h2d pinned 0.215
//!   ...
//! # or: bus replay "eureka-2009-06" from "eureka.trace"
//! ```
//!
//! A multi-GPU node appends one `device <id>` section per *extra* device
//! (same key set as `bus sim`; the primary device is the top-level
//! `gpu_spec`/`gpu`/`bus`) and optionally a `root_complex` section giving
//! the aggregate host-side bandwidth all links contend for. Both are
//! omitted entirely for single-GPU machines, so existing datasheets are
//! byte-identical:
//!
//! ```text
//! device 1
//!   gen v2
//!   lanes 16
//!   ...
//!
//! root_complex
//!   shared_bw 12000000000
//! ```
//!
//! # Round trip
//!
//! [`to_text`] is byte-stable and [`parse`] is its exact inverse:
//! `parse(&to_text(&m)) == Ok(m)` for any machine (floats print in Rust's
//! shortest round-trip decimal form, so no precision is lost), and
//! `to_text(&parse(t)?) == t` for canonical text. Names must not contain
//! `"` or newlines. Key order inside a section is free on input; output is
//! canonical (declaration order of the underlying structs).
//!
//! [`RecordedBus`]: gpp_pcie::RecordedBus

use crate::machine::{BusSpec, DeviceLink, MachineConfig, ReplayTrace, RootComplex};
use gpp_cpu_sim::CpuParams;
use gpp_gpu_model::GpuSpec;
use gpp_gpu_sim::DeviceParams;
use gpp_pcie::{BusParams, Direction, MemType, PcieGen};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A datasheet parse failure with its 1-based line number (0 = whole file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GmachError {
    /// Offending line (0 when the error concerns the file as a whole).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl GmachError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        GmachError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for GmachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "datasheet: {}", self.message)
        } else {
            write!(f, "datasheet line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for GmachError {}

// ---------------------------------------------------------------- writing

fn push_kv(out: &mut String, key: &str, value: impl std::fmt::Display) {
    let _ = writeln!(out, "  {key} {value}");
}

fn gen_tag(g: PcieGen) -> &'static str {
    match g {
        PcieGen::V1 => "v1",
        PcieGen::V2 => "v2",
        PcieGen::V3 => "v3",
    }
}

fn dir_tag(d: Direction) -> &'static str {
    match d {
        Direction::HostToDevice => "h2d",
        Direction::DeviceToHost => "d2h",
    }
}

fn mem_tag(m: MemType) -> &'static str {
    match m {
        MemType::Pinned => "pinned",
        MemType::Pageable => "pageable",
    }
}

/// Serializes a machine to canonical `.gmach` text. Byte-stable: equal
/// configs produce identical bytes, and [`parse`] inverts it exactly.
pub fn to_text(m: &MachineConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "machine {}", m.id);
    let _ = writeln!(out, "name \"{}\"", m.name);
    let _ = writeln!(out, "seed {}", m.seed);

    let s = &m.gpu_spec;
    let _ = writeln!(out, "\ngpu_spec \"{}\"", s.name);
    push_kv(&mut out, "sms", s.sms);
    push_kv(&mut out, "sps_per_sm", s.sps_per_sm);
    push_kv(&mut out, "warp_size", s.warp_size);
    push_kv(&mut out, "clock_hz", s.clock_hz);
    push_kv(&mut out, "mem_bw", s.mem_bw);
    push_kv(&mut out, "bw_derate", s.bw_derate);
    push_kv(&mut out, "mem_latency_cycles", s.mem_latency_cycles);
    push_kv(&mut out, "segment_bytes", s.segment_bytes);
    push_kv(&mut out, "max_threads_per_sm", s.max_threads_per_sm);
    push_kv(&mut out, "max_blocks_per_sm", s.max_blocks_per_sm);
    push_kv(&mut out, "max_threads_per_block", s.max_threads_per_block);
    push_kv(&mut out, "shared_per_sm", s.shared_per_sm);
    push_kv(&mut out, "regs_per_sm", s.regs_per_sm);
    push_kv(&mut out, "launch_overhead", s.launch_overhead);
    push_kv(
        &mut out,
        "misaligned_halfwarp_transactions",
        s.misaligned_halfwarp_transactions,
    );

    let g = &m.gpu;
    let _ = writeln!(out, "\ngpu \"{}\"", g.name);
    push_kv(&mut out, "sms", g.sms);
    push_kv(&mut out, "sps_per_sm", g.sps_per_sm);
    push_kv(&mut out, "warp_size", g.warp_size);
    push_kv(&mut out, "clock_hz", g.clock_hz);
    push_kv(&mut out, "mem_bw", g.mem_bw);
    push_kv(&mut out, "mem_efficiency", g.mem_efficiency);
    push_kv(&mut out, "mem_latency_cycles", g.mem_latency_cycles);
    push_kv(&mut out, "segment_bytes", g.segment_bytes);
    push_kv(&mut out, "max_threads_per_sm", g.max_threads_per_sm);
    push_kv(&mut out, "max_blocks_per_sm", g.max_blocks_per_sm);
    push_kv(&mut out, "max_threads_per_block", g.max_threads_per_block);
    push_kv(&mut out, "shared_per_sm", g.shared_per_sm);
    push_kv(&mut out, "regs_per_sm", g.regs_per_sm);
    push_kv(&mut out, "dram_bytes", g.dram_bytes);
    push_kv(&mut out, "launch_overhead", g.launch_overhead);
    push_kv(&mut out, "noise_rel_sigma", g.noise_rel_sigma);
    push_kv(&mut out, "misaligned_factor", g.misaligned_factor);
    push_kv(&mut out, "scatter_efficiency", g.scatter_efficiency);
    push_kv(&mut out, "sfu_slowdown", g.sfu_slowdown);

    let c = &m.cpu;
    out.push_str("\ncpu\n");
    push_kv(&mut out, "cores", c.cores);
    push_kv(&mut out, "threads", c.threads);
    push_kv(&mut out, "freq_hz", c.freq_hz);
    push_kv(&mut out, "flops_per_cycle", c.flops_per_cycle);
    push_kv(&mut out, "compute_efficiency", c.compute_efficiency);
    push_kv(&mut out, "mem_bw", c.mem_bw);
    push_kv(&mut out, "llc_bytes", c.llc_bytes);
    push_kv(&mut out, "parallel_efficiency", c.parallel_efficiency);
    push_kv(&mut out, "region_overhead", c.region_overhead);
    push_kv(&mut out, "random_line_rate", c.random_line_rate);

    match &m.bus {
        BusSpec::Sim(b) => {
            out.push_str("\nbus sim\n");
            push_bus_params(&mut out, b);
        }
        BusSpec::Replay(t) => {
            let _ = writeln!(out, "\nbus replay \"{}\"", t.label);
            for &(bytes, dir, mem, secs) in &t.samples {
                let _ = writeln!(
                    out,
                    "  sample {bytes} {} {} {secs}",
                    dir_tag(dir),
                    mem_tag(mem)
                );
            }
        }
    }

    for d in &m.devices {
        let _ = writeln!(out, "\ndevice {}", d.id);
        push_bus_params(&mut out, &d.bus);
    }
    if let Some(rc) = &m.root_complex {
        out.push_str("\nroot_complex\n");
        push_kv(&mut out, "shared_bw", rc.shared_bw);
    }
    out
}

/// Emits the canonical key lines of one [`BusParams`] block — shared by
/// the `bus sim` section and each extra `device <id>` section.
fn push_bus_params(out: &mut String, b: &BusParams) {
    push_kv(out, "gen", gen_tag(b.gen));
    push_kv(out, "lanes", b.lanes);
    push_kv(out, "max_payload", b.max_payload);
    push_kv(out, "tlp_overhead", b.tlp_overhead);
    push_kv(out, "link_efficiency", b.link_efficiency);
    push_kv(out, "dma_setup_h2d", b.dma_setup_h2d);
    push_kv(out, "dma_setup_d2h", b.dma_setup_d2h);
    push_kv(out, "host_copy_bw", b.host_copy_bw);
    push_kv(out, "staging_chunk", b.staging_chunk);
    push_kv(out, "staging_overhead", b.staging_overhead);
    push_kv(out, "staging_overlap", b.staging_overlap);
    push_kv(out, "pageable_fastpath_bytes", b.pageable_fastpath_bytes);
    push_kv(
        out,
        "pageable_fastpath_latency",
        b.pageable_fastpath_latency,
    );
    push_kv(out, "noise_rel_sigma", b.noise_rel_sigma);
    push_kv(out, "noise_abs_sigma", b.noise_abs_sigma);
    push_kv(out, "hiccup_prob", b.hiccup_prob);
}

// ---------------------------------------------------------------- lexing

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Str(String),
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Word(w) => format!("`{w}`"),
            Token::Str(s) => format!("\"{s}\""),
        }
    }
}

/// Splits one line into bare words and `"quoted strings"` (no escapes),
/// dropping everything after an unquoted `#`.
fn lex_line(line: &str, lineno: usize) -> Result<Vec<Token>, GmachError> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '#' {
            break;
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some(ch) => s.push(ch),
                    None => return Err(GmachError::new(lineno, "unterminated string")),
                }
            }
            tokens.push(Token::Str(s));
        } else {
            let mut w = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() || ch == '#' || ch == '"' {
                    break;
                }
                w.push(ch);
                chars.next();
            }
            tokens.push(Token::Word(w));
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------- parsing

/// Key → (line, raw value) for one section, with duplicate detection.
#[derive(Debug, Default)]
struct Fields(BTreeMap<String, (usize, String)>);

impl Fields {
    fn insert(&mut self, key: String, line: usize, value: String) -> Result<(), GmachError> {
        if self.0.insert(key.clone(), (line, value)).is_some() {
            return Err(GmachError::new(line, format!("duplicate key `{key}`")));
        }
        Ok(())
    }

    fn take(&mut self, section: &str, key: &str) -> Result<(usize, String), GmachError> {
        self.0
            .remove(key)
            .ok_or_else(|| GmachError::new(0, format!("section `{section}` is missing `{key}`")))
    }

    fn f64(&mut self, section: &str, key: &str) -> Result<f64, GmachError> {
        let (line, v) = self.take(section, key)?;
        v.parse()
            .map_err(|_| GmachError::new(line, format!("`{key}`: bad number `{v}`")))
    }

    fn u32(&mut self, section: &str, key: &str) -> Result<u32, GmachError> {
        let (line, v) = self.take(section, key)?;
        v.parse()
            .map_err(|_| GmachError::new(line, format!("`{key}`: bad integer `{v}`")))
    }

    fn u64(&mut self, section: &str, key: &str) -> Result<u64, GmachError> {
        let (line, v) = self.take(section, key)?;
        v.parse()
            .map_err(|_| GmachError::new(line, format!("`{key}`: bad integer `{v}`")))
    }

    fn finish(self, section: &str) -> Result<(), GmachError> {
        if let Some((key, (line, _))) = self.0.into_iter().next() {
            return Err(GmachError::new(
                line,
                format!("unknown key `{key}` in section `{section}`"),
            ));
        }
        Ok(())
    }
}

#[derive(Debug)]
enum Section {
    None,
    GpuSpec,
    Gpu,
    Cpu,
    BusSim,
    BusReplay,
    /// Index into the parser's per-device fields vector.
    Device(usize),
    RootComplex,
}

/// Builds one [`BusParams`] from a collected key/value section — shared by
/// `bus sim` and each `device <id>` section. Does not call `finish`; the
/// caller reports leftovers under its own section name.
fn bus_params_from_fields(sec: &str, f: &mut Fields) -> Result<BusParams, GmachError> {
    let (gen_line, gen_word) = f.take(sec, "gen")?;
    let gen = match gen_word.as_str() {
        "v1" => PcieGen::V1,
        "v2" => PcieGen::V2,
        "v3" => PcieGen::V3,
        other => {
            return Err(GmachError::new(
                gen_line,
                format!("`gen` must be v1|v2|v3, got `{other}`"),
            ));
        }
    };
    Ok(BusParams {
        gen,
        lanes: f.u32(sec, "lanes")?,
        max_payload: f.u32(sec, "max_payload")?,
        tlp_overhead: f.u32(sec, "tlp_overhead")?,
        link_efficiency: f.f64(sec, "link_efficiency")?,
        dma_setup_h2d: f.f64(sec, "dma_setup_h2d")?,
        dma_setup_d2h: f.f64(sec, "dma_setup_d2h")?,
        host_copy_bw: f.f64(sec, "host_copy_bw")?,
        staging_chunk: f.u64(sec, "staging_chunk")?,
        staging_overhead: f.f64(sec, "staging_overhead")?,
        staging_overlap: f.f64(sec, "staging_overlap")?,
        pageable_fastpath_bytes: f.u64(sec, "pageable_fastpath_bytes")?,
        pageable_fastpath_latency: f.f64(sec, "pageable_fastpath_latency")?,
        noise_rel_sigma: f.f64(sec, "noise_rel_sigma")?,
        noise_abs_sigma: f.f64(sec, "noise_abs_sigma")?,
        hiccup_prob: f.f64(sec, "hiccup_prob")?,
    })
}

/// Parses `.gmach` text into a machine. Inline datasheets only: a
/// `bus replay ... from "file"` reference fails here — use [`parse_with`]
/// (or the registry's directory loader) to resolve sidecar trace files.
pub fn parse(input: &str) -> Result<MachineConfig, GmachError> {
    parse_with(input, &mut |path| {
        Err(format!(
            "external trace `{path}` cannot be resolved here (load the datasheet \
             through MachineRegistry::load_dir, which reads sidecar files)"
        ))
    })
}

/// Like [`parse`], but `resolve` supplies the contents of sidecar trace
/// files named by `bus replay "label" from "path"` lines. The resolved text
/// is in the [`gpp_pcie::RecordedBus`] trace format (`bytes dir mem secs`
/// per line, `#` comments).
pub fn parse_with(
    input: &str,
    resolve: &mut dyn FnMut(&str) -> Result<String, String>,
) -> Result<MachineConfig, GmachError> {
    let mut id: Option<String> = None;
    let mut name: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut gpu_spec_name: Option<String> = None;
    let mut gpu_name: Option<String> = None;
    let mut replay_label: Option<String> = None;
    let mut replay_samples: Vec<(u64, Direction, MemType, f64)> = Vec::new();
    let mut saw_cpu = false;
    let mut bus_seen = false;
    let mut saw_root_complex = false;
    let mut gpu_spec_fields = Fields::default();
    let mut gpu_fields = Fields::default();
    let mut cpu_fields = Fields::default();
    let mut bus_fields = Fields::default();
    let mut device_sections: Vec<(u32, Fields)> = Vec::new();
    let mut rc_fields = Fields::default();
    let mut section = Section::None;

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let tokens = lex_line(raw, lineno)?;
        if tokens.is_empty() {
            continue;
        }
        let head = match &tokens[0] {
            Token::Word(w) => w.as_str(),
            Token::Str(_) => {
                return Err(GmachError::new(lineno, "line starts with a string"));
            }
        };
        match head {
            "machine" => {
                let [_, Token::Word(v)] = &tokens[..] else {
                    return Err(GmachError::new(lineno, "usage: machine <id>"));
                };
                if id.replace(v.clone()).is_some() {
                    return Err(GmachError::new(lineno, "duplicate `machine`"));
                }
                section = Section::None;
            }
            "name" => {
                let [_, Token::Str(v)] = &tokens[..] else {
                    return Err(GmachError::new(lineno, "usage: name \"<name>\""));
                };
                if name.replace(v.clone()).is_some() {
                    return Err(GmachError::new(lineno, "duplicate `name`"));
                }
                section = Section::None;
            }
            "seed" => {
                let [_, Token::Word(v)] = &tokens[..] else {
                    return Err(GmachError::new(lineno, "usage: seed <u64>"));
                };
                let v: u64 = v
                    .parse()
                    .map_err(|_| GmachError::new(lineno, format!("bad seed `{v}`")))?;
                if seed.replace(v).is_some() {
                    return Err(GmachError::new(lineno, "duplicate `seed`"));
                }
                section = Section::None;
            }
            "gpu_spec" => {
                let [_, Token::Str(v)] = &tokens[..] else {
                    return Err(GmachError::new(lineno, "usage: gpu_spec \"<name>\""));
                };
                if gpu_spec_name.replace(v.clone()).is_some() {
                    return Err(GmachError::new(lineno, "duplicate `gpu_spec` section"));
                }
                section = Section::GpuSpec;
            }
            "gpu" => {
                let [_, Token::Str(v)] = &tokens[..] else {
                    return Err(GmachError::new(lineno, "usage: gpu \"<name>\""));
                };
                if gpu_name.replace(v.clone()).is_some() {
                    return Err(GmachError::new(lineno, "duplicate `gpu` section"));
                }
                section = Section::Gpu;
            }
            "cpu" => {
                if tokens.len() != 1 {
                    return Err(GmachError::new(lineno, "usage: cpu"));
                }
                if saw_cpu {
                    return Err(GmachError::new(lineno, "duplicate `cpu` section"));
                }
                saw_cpu = true;
                section = Section::Cpu;
            }
            "bus" => {
                if bus_seen {
                    return Err(GmachError::new(lineno, "duplicate `bus` section"));
                }
                bus_seen = true;
                match &tokens[1..] {
                    [Token::Word(k)] if k == "sim" => section = Section::BusSim,
                    [Token::Word(k), Token::Str(label)] if k == "replay" => {
                        replay_label = Some(label.clone());
                        section = Section::BusReplay;
                    }
                    [Token::Word(k), Token::Str(label), Token::Word(from), Token::Str(path)]
                        if k == "replay" && from == "from" =>
                    {
                        let text = resolve(path).map_err(|e| GmachError::new(lineno, e))?;
                        replay_samples = parse_trace_samples(&text).map_err(|e| {
                            GmachError::new(lineno, format!("in trace `{path}`: {e}"))
                        })?;
                        replay_label = Some(label.clone());
                        section = Section::BusReplay;
                    }
                    _ => {
                        return Err(GmachError::new(
                            lineno,
                            "usage: bus sim | bus replay \"<label>\" [from \"<file>\"]",
                        ));
                    }
                }
            }
            "device" => {
                let [_, Token::Word(v)] = &tokens[..] else {
                    return Err(GmachError::new(lineno, "usage: device <id>"));
                };
                let dev_id: u32 = v
                    .parse()
                    .map_err(|_| GmachError::new(lineno, format!("bad device id `{v}`")))?;
                if dev_id == 0 {
                    return Err(GmachError::new(
                        lineno,
                        "device 0 is the primary device (the top-level `bus` section)",
                    ));
                }
                if device_sections.iter().any(|(id, _)| *id == dev_id) {
                    return Err(GmachError::new(
                        lineno,
                        format!("duplicate `device {dev_id}` section"),
                    ));
                }
                device_sections.push((dev_id, Fields::default()));
                section = Section::Device(device_sections.len() - 1);
            }
            "root_complex" => {
                if tokens.len() != 1 {
                    return Err(GmachError::new(lineno, "usage: root_complex"));
                }
                if saw_root_complex {
                    return Err(GmachError::new(lineno, "duplicate `root_complex` section"));
                }
                saw_root_complex = true;
                section = Section::RootComplex;
            }
            "sample" => {
                if !matches!(section, Section::BusReplay) {
                    return Err(GmachError::new(
                        lineno,
                        "`sample` only belongs in a `bus replay` section",
                    ));
                }
                let words: Vec<&str> = tokens[1..]
                    .iter()
                    .map(|t| match t {
                        Token::Word(w) => Ok(w.as_str()),
                        Token::Str(_) => Err(GmachError::new(lineno, "bad sample field")),
                    })
                    .collect::<Result<_, _>>()?;
                let sample = parse_sample_words(&words).map_err(|e| GmachError::new(lineno, e))?;
                replay_samples.push(sample);
            }
            key => match section {
                Section::None => {
                    return Err(GmachError::new(
                        lineno,
                        format!("unknown directive `{key}` outside any section"),
                    ));
                }
                ref sec => {
                    let [_, value] = &tokens[..] else {
                        return Err(GmachError::new(lineno, format!("usage: {key} <value>")));
                    };
                    let Token::Word(value) = value else {
                        return Err(GmachError::new(
                            lineno,
                            format!("`{key}`: expected a bare value, got {}", value.describe()),
                        ));
                    };
                    let fields = match sec {
                        Section::GpuSpec => &mut gpu_spec_fields,
                        Section::Gpu => &mut gpu_fields,
                        Section::Cpu => &mut cpu_fields,
                        Section::BusSim => &mut bus_fields,
                        Section::Device(i) => &mut device_sections[*i].1,
                        Section::RootComplex => &mut rc_fields,
                        Section::BusReplay => {
                            return Err(GmachError::new(
                                lineno,
                                format!("unknown replay directive `{key}` (expected `sample`)"),
                            ));
                        }
                        Section::None => unreachable!(),
                    };
                    fields.insert(key.to_string(), lineno, value.clone())?;
                }
            },
        }
    }

    let id = id.ok_or_else(|| GmachError::new(0, "missing `machine <id>`"))?;
    if id.is_empty() {
        return Err(GmachError::new(0, "machine id must be non-empty"));
    }
    let name = name.ok_or_else(|| GmachError::new(0, "missing `name`"))?;
    let seed = seed.ok_or_else(|| GmachError::new(0, "missing `seed`"))?;

    let sec = "gpu_spec";
    let spec_name = gpu_spec_name.ok_or_else(|| GmachError::new(0, "missing `gpu_spec`"))?;
    let f = &mut gpu_spec_fields;
    let gpu_spec = GpuSpec {
        name: spec_name,
        sms: f.u32(sec, "sms")?,
        sps_per_sm: f.u32(sec, "sps_per_sm")?,
        warp_size: f.u32(sec, "warp_size")?,
        clock_hz: f.f64(sec, "clock_hz")?,
        mem_bw: f.f64(sec, "mem_bw")?,
        bw_derate: f.f64(sec, "bw_derate")?,
        mem_latency_cycles: f.f64(sec, "mem_latency_cycles")?,
        segment_bytes: f.u32(sec, "segment_bytes")?,
        max_threads_per_sm: f.u32(sec, "max_threads_per_sm")?,
        max_blocks_per_sm: f.u32(sec, "max_blocks_per_sm")?,
        max_threads_per_block: f.u32(sec, "max_threads_per_block")?,
        shared_per_sm: f.u32(sec, "shared_per_sm")?,
        regs_per_sm: f.u32(sec, "regs_per_sm")?,
        launch_overhead: f.f64(sec, "launch_overhead")?,
        misaligned_halfwarp_transactions: f.f64(sec, "misaligned_halfwarp_transactions")?,
    };
    gpu_spec_fields.finish(sec)?;

    let sec = "gpu";
    let dev_name = gpu_name.ok_or_else(|| GmachError::new(0, "missing `gpu`"))?;
    let f = &mut gpu_fields;
    let gpu = DeviceParams {
        name: dev_name,
        sms: f.u32(sec, "sms")?,
        sps_per_sm: f.u32(sec, "sps_per_sm")?,
        warp_size: f.u32(sec, "warp_size")?,
        clock_hz: f.f64(sec, "clock_hz")?,
        mem_bw: f.f64(sec, "mem_bw")?,
        mem_efficiency: f.f64(sec, "mem_efficiency")?,
        mem_latency_cycles: f.f64(sec, "mem_latency_cycles")?,
        segment_bytes: f.u32(sec, "segment_bytes")?,
        max_threads_per_sm: f.u32(sec, "max_threads_per_sm")?,
        max_blocks_per_sm: f.u32(sec, "max_blocks_per_sm")?,
        max_threads_per_block: f.u32(sec, "max_threads_per_block")?,
        shared_per_sm: f.u32(sec, "shared_per_sm")?,
        regs_per_sm: f.u32(sec, "regs_per_sm")?,
        dram_bytes: f.u64(sec, "dram_bytes")?,
        launch_overhead: f.f64(sec, "launch_overhead")?,
        noise_rel_sigma: f.f64(sec, "noise_rel_sigma")?,
        misaligned_factor: f.f64(sec, "misaligned_factor")?,
        scatter_efficiency: f.f64(sec, "scatter_efficiency")?,
        sfu_slowdown: f.f64(sec, "sfu_slowdown")?,
    };
    gpu_fields.finish(sec)?;

    let sec = "cpu";
    if !saw_cpu {
        return Err(GmachError::new(0, "missing `cpu`"));
    }
    let f = &mut cpu_fields;
    let cpu = CpuParams {
        cores: f.u32(sec, "cores")?,
        threads: f.u32(sec, "threads")?,
        freq_hz: f.f64(sec, "freq_hz")?,
        flops_per_cycle: f.f64(sec, "flops_per_cycle")?,
        compute_efficiency: f.f64(sec, "compute_efficiency")?,
        mem_bw: f.f64(sec, "mem_bw")?,
        llc_bytes: f.u64(sec, "llc_bytes")?,
        parallel_efficiency: f.f64(sec, "parallel_efficiency")?,
        region_overhead: f.f64(sec, "region_overhead")?,
        random_line_rate: f.f64(sec, "random_line_rate")?,
    };
    cpu_fields.finish(sec)?;

    if !bus_seen {
        return Err(GmachError::new(0, "missing `bus`"));
    }
    let bus = if let Some(label) = replay_label {
        BusSpec::Replay(ReplayTrace {
            label,
            samples: replay_samples,
        })
    } else {
        let sec = "bus sim";
        let bus = bus_params_from_fields(sec, &mut bus_fields)?;
        bus_fields.finish(sec)?;
        BusSpec::Sim(bus)
    };

    let mut devices = Vec::with_capacity(device_sections.len());
    for (dev_id, mut fields) in device_sections {
        let sec = format!("device {dev_id}");
        let dev_bus = bus_params_from_fields(&sec, &mut fields)?;
        fields.finish(&sec)?;
        devices.push(DeviceLink {
            id: dev_id,
            bus: dev_bus,
        });
    }

    let root_complex = if saw_root_complex {
        let sec = "root_complex";
        let shared_bw = rc_fields.f64(sec, "shared_bw")?;
        rc_fields.finish(sec)?;
        if !(shared_bw.is_finite() && shared_bw > 0.0) {
            return Err(GmachError::new(0, "`shared_bw` must be positive"));
        }
        Some(RootComplex { shared_bw })
    } else {
        None
    };

    let config = MachineConfig {
        id,
        name,
        gpu_spec,
        gpu,
        cpu,
        bus,
        seed,
        devices,
        root_complex,
    };
    config
        .bus
        .validate()
        .map_err(|e| GmachError::new(0, format!("invalid replay trace: {e}")))?;
    Ok(config)
}

fn parse_sample_words(words: &[&str]) -> Result<(u64, Direction, MemType, f64), String> {
    let [bytes, dir, mem, secs] = words else {
        return Err("usage: sample <bytes> <h2d|d2h> <pinned|pageable> <seconds>".into());
    };
    let bytes: u64 = bytes
        .parse()
        .map_err(|_| format!("bad byte count `{bytes}`"))?;
    let dir = match *dir {
        "h2d" => Direction::HostToDevice,
        "d2h" => Direction::DeviceToHost,
        other => return Err(format!("direction must be h2d|d2h, got `{other}`")),
    };
    let mem = match *mem {
        "pinned" => MemType::Pinned,
        "pageable" => MemType::Pageable,
        other => return Err(format!("memtype must be pinned|pageable, got `{other}`")),
    };
    let secs: f64 = secs.parse().map_err(|_| format!("bad seconds `{secs}`"))?;
    if !(secs.is_finite() && secs > 0.0) {
        return Err("seconds must be positive".into());
    }
    Ok((bytes, dir, mem, secs))
}

/// Parses sidecar trace text (the [`gpp_pcie::RecordedBus`] line format)
/// into raw samples.
fn parse_trace_samples(input: &str) -> Result<Vec<(u64, Direction, MemType, f64)>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let sample = parse_sample_words(&words).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        samples.push(sample);
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_round_trip_exactly() {
        for m in [
            MachineConfig::anl_eureka_node(2013),
            MachineConfig::pcie_v2_gt200_node(2013),
        ] {
            let text = to_text(&m);
            let back = parse(&text).unwrap();
            assert_eq!(back, m);
            // Byte-stable: re-serializing is the identity.
            assert_eq!(to_text(&back), text);
        }
    }

    #[test]
    fn replay_machines_round_trip_exactly() {
        let mut m = MachineConfig::anl_eureka_node(5);
        m.id = "recorded".into();
        m.bus = BusSpec::Replay(ReplayTrace {
            label: "eureka-2009-06".into(),
            samples: vec![
                (1, Direction::HostToDevice, MemType::Pinned, 9.9e-6),
                (536870912, Direction::HostToDevice, MemType::Pinned, 0.215),
                (1, Direction::DeviceToHost, MemType::Pinned, 1.13e-5),
                (536870912, Direction::DeviceToHost, MemType::Pinned, 0.216),
            ],
        });
        let text = to_text(&m);
        assert!(text.contains("bus replay \"eureka-2009-06\""));
        assert!(text.contains("sample 1 h2d pinned 0.0000099"));
        let back = parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(to_text(&back), text);
    }

    #[test]
    fn comments_and_key_order_are_free() {
        let canonical = to_text(&MachineConfig::anl_eureka_node(1));
        // Reverse every section's key lines and sprinkle comments: same
        // machine.
        let mut lines: Vec<&str> = canonical.lines().collect();
        lines.insert(1, "# a comment");
        let mut shuffled: Vec<String> = Vec::new();
        let mut section: Vec<String> = Vec::new();
        for l in lines {
            if l.starts_with("  ") {
                section.push(l.to_string());
            } else {
                shuffled.extend(section.drain(..).rev());
                shuffled.push(l.to_string());
            }
        }
        shuffled.extend(section.drain(..).rev());
        let back = parse(&shuffled.join("\n")).unwrap();
        assert_eq!(back, MachineConfig::anl_eureka_node(1));
    }

    #[test]
    fn errors_name_the_problem() {
        let e = parse("").unwrap_err();
        assert!(e.to_string().contains("machine"));
        let good = to_text(&MachineConfig::anl_eureka_node(1));
        let e = parse(&good.replace("  sms 16\n", "")).unwrap_err();
        assert!(e.to_string().contains("missing `sms`"), "{e}");
        let e = parse(&good.replace("  gen v1", "  gen v9")).unwrap_err();
        assert!(e.to_string().contains("v1|v2|v3"), "{e}");
        let e = parse(&(good.clone() + "bogus 3\n")).unwrap_err();
        assert!(e.to_string().contains("bogus"), "{e}");
        let e = parse(&(good + "seed 4\n")).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
    }

    #[test]
    fn multi_device_machines_round_trip_exactly() {
        let mut m = MachineConfig::anl_eureka_node(7);
        m.id = "dual".into();
        let mut second = BusParams::pcie_v1_x16();
        second.lanes = 8; // asymmetric slot wiring
        m.devices.push(DeviceLink { id: 1, bus: second });
        m.root_complex = Some(RootComplex { shared_bw: 5.0e9 });
        let text = to_text(&m);
        assert!(text.contains("\ndevice 1\n"));
        assert!(text.contains("\nroot_complex\n  shared_bw 5000000000\n"));
        let back = parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(to_text(&back), text);
        assert_eq!(back.device_count(), 2);
        assert!(back.is_multi_device());
    }

    #[test]
    fn device_section_errors_name_the_problem() {
        let base = to_text(&MachineConfig::anl_eureka_node(1));
        let e = parse(&(base.clone() + "\ndevice 0\n")).unwrap_err();
        assert!(e.to_string().contains("primary device"), "{e}");
        let e = parse(&(base.clone() + "\ndevice x\n")).unwrap_err();
        assert!(e.to_string().contains("bad device id"), "{e}");
        let dev = {
            let mut s = String::from("\ndevice 1\n");
            push_bus_params(&mut s, &BusParams::pcie_v1_x16());
            s
        };
        let e = parse(&(base.clone() + &dev + &dev)).unwrap_err();
        assert!(e.to_string().contains("duplicate `device 1`"), "{e}");
        let e = parse(&(base.clone() + "\ndevice 1\n  gen v1\n")).unwrap_err();
        assert!(
            e.to_string().contains("section `device 1` is missing"),
            "{e}"
        );
        let e = parse(&(base.clone() + "\nroot_complex\n  shared_bw -3\n")).unwrap_err();
        assert!(e.to_string().contains("must be positive"), "{e}");
        let e = parse(&(base + "\nroot_complex\n  shared_bw 1e9\n\nroot_complex\n")).unwrap_err();
        assert!(e.to_string().contains("duplicate `root_complex`"), "{e}");
    }

    #[test]
    fn external_trace_requires_a_resolver() {
        let mut m = MachineConfig::anl_eureka_node(1);
        m.bus = BusSpec::Replay(ReplayTrace {
            label: "x".into(),
            samples: vec![],
        });
        let text = to_text(&m).replace("bus replay \"x\"", "bus replay \"x\" from \"side.trace\"");
        let e = parse(&text).unwrap_err();
        assert!(e.to_string().contains("side.trace"), "{e}");
        let back = parse_with(&text, &mut |path| {
            assert_eq!(path, "side.trace");
            Ok("1 h2d pinned 1e-6\n2048 h2d pinned 2e-6\n\
                1 d2h pinned 1e-6\n2048 d2h pinned 2e-6\n"
                .into())
        })
        .unwrap();
        assert_eq!(back.bus.kind(), "replay");
        match &back.bus {
            BusSpec::Replay(t) => assert_eq!(t.samples.len(), 4),
            _ => unreachable!(),
        }
    }

    #[test]
    fn invalid_inline_trace_is_rejected_at_parse_time() {
        let mut m = MachineConfig::anl_eureka_node(1);
        m.bus = BusSpec::Replay(ReplayTrace {
            label: "short".into(),
            samples: vec![(1, Direction::HostToDevice, MemType::Pinned, 1e-6)],
        });
        let e = parse(&to_text(&m)).unwrap_err();
        assert!(e.to_string().contains("two distinct sizes"), "{e}");
    }
}
