//! Speedup accounting and error analysis (§IV-A, §V).
//!
//! "The GPU speedup is the total CPU time divided by the total GPU time."
//! Predictions divide the *measured* CPU time by the *predicted* GPU time;
//! the paper compares three predictors (Table II):
//!
//! * kernel-only — plain GROPHECY,
//! * transfer-only — the PCIe model alone,
//! * kernel + transfer — GROPHECY++.

use crate::measurement::AppMeasurement;
use crate::projector::AppProjection;
use gpp_pcie::error_magnitude;

/// The complete speedup comparison for one application + data size.
#[derive(Debug, Clone)]
pub struct SpeedupReport {
    /// Application name.
    pub app: String,
    /// Data-size label ("1024 x 1024", "97K", ...).
    pub dataset: String,
    /// Iteration count the report is evaluated at.
    pub iters: u32,
    /// Measured speedup.
    pub measured: f64,
    /// Predicted speedup, kernel time only.
    pub predicted_kernel_only: f64,
    /// Predicted speedup, transfer time only.
    pub predicted_transfer_only: f64,
    /// Predicted speedup, kernel + transfer (GROPHECY++).
    pub predicted_combined: f64,
    /// Error magnitude (%) of the kernel-time prediction itself.
    pub kernel_time_error: f64,
    /// Error magnitude (%) of the transfer-time prediction itself.
    pub transfer_time_error: f64,
}

impl SpeedupReport {
    /// Builds the report from a projection and a measurement.
    pub fn build(
        app: impl Into<String>,
        dataset: impl Into<String>,
        projection: &AppProjection,
        measurement: &AppMeasurement,
        iters: u32,
    ) -> Self {
        let cpu = measurement.cpu_total(iters);
        SpeedupReport {
            app: app.into(),
            dataset: dataset.into(),
            iters,
            measured: measurement.speedup(iters),
            predicted_kernel_only: projection.speedup_kernel_only(cpu, iters),
            predicted_transfer_only: projection.speedup_transfer_only(cpu, iters),
            predicted_combined: projection.speedup(cpu, iters),
            kernel_time_error: error_magnitude(projection.kernel_time, measurement.kernel_time),
            transfer_time_error: error_magnitude(
                projection.transfer_time,
                measurement.transfer_time,
            ),
        }
    }

    /// Error magnitude (%) of the kernel-only speedup prediction
    /// (Table II, column 1).
    pub fn error_kernel_only(&self) -> f64 {
        error_magnitude(self.predicted_kernel_only, self.measured)
    }

    /// Error magnitude (%) of the transfer-only prediction (column 2).
    pub fn error_transfer_only(&self) -> f64 {
        error_magnitude(self.predicted_transfer_only, self.measured)
    }

    /// Error magnitude (%) of the combined prediction (column 3).
    pub fn error_combined(&self) -> f64 {
        error_magnitude(self.predicted_combined, self.measured)
    }

    /// True if the prediction got the port/don't-port decision right —
    /// the Stassuij criterion (§V-B-4): is the speedup on the same side
    /// of 1.0?
    pub fn verdict_correct(&self, predicted: f64) -> bool {
        (predicted >= 1.0) == (self.measured >= 1.0)
    }
}

/// A speedup-vs-iterations sweep (Figures 8, 10, 12).
#[derive(Debug, Clone)]
pub struct SpeedupSeries {
    /// Application name.
    pub app: String,
    /// Data-size label.
    pub dataset: String,
    /// `(iters, measured, predicted_with_transfer, predicted_without)`.
    pub points: Vec<SeriesPoint>,
}

/// One point of an iteration sweep.
#[derive(Debug, Clone, Copy)]
pub struct SeriesPoint {
    /// Iteration count.
    pub iters: u32,
    /// Measured speedup.
    pub measured: f64,
    /// GROPHECY++ prediction (with transfer time).
    pub with_transfer: f64,
    /// Plain GROPHECY prediction (kernel only).
    pub without_transfer: f64,
}

impl SpeedupSeries {
    /// Sweeps iteration counts.
    pub fn sweep(
        app: impl Into<String>,
        dataset: impl Into<String>,
        projection: &AppProjection,
        measurement: &AppMeasurement,
        iters: impl IntoIterator<Item = u32>,
    ) -> Self {
        let points = iters
            .into_iter()
            .map(|n| {
                let cpu = measurement.cpu_total(n);
                SeriesPoint {
                    iters: n,
                    measured: measurement.speedup(n),
                    with_transfer: projection.speedup(cpu, n),
                    without_transfer: projection.speedup_kernel_only(cpu, n),
                }
            })
            .collect();
        SpeedupSeries {
            app: app.into(),
            dataset: dataset.into(),
            points,
        }
    }

    /// The asymptotic (infinite-iteration) limit of each curve:
    /// transfers amortize away, so measured → cpu/kernel_meas and both
    /// predictions → cpu/kernel_pred.
    pub fn limit(projection: &AppProjection, measurement: &AppMeasurement) -> SeriesPoint {
        SeriesPoint {
            iters: u32::MAX,
            measured: measurement.cpu_time / measurement.kernel_time,
            with_transfer: measurement.cpu_time / projection.kernel_time,
            without_transfer: measurement.cpu_time / projection.kernel_time,
        }
    }

    /// The largest iteration count at which the transfer-aware prediction
    /// is at least twice as accurate (error magnitude at most half) as the
    /// kernel-only one — the paper's headline claim for Figures 8/10/12.
    pub fn twice_as_accurate_until(&self) -> Option<u32> {
        self.points
            .iter()
            .take_while(|p| {
                let e_with = (p.with_transfer - p.measured).abs();
                let e_without = (p.without_transfer - p.measured).abs();
                e_with * 2.0 <= e_without
            })
            .map(|p| p.iters)
            .last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::measurement::measure;
    use crate::projector::Grophecy;
    use gpp_datausage::Hints;
    use gpp_skeleton::builder::{idx, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops, Program};

    fn stencil(n: usize) -> Program {
        let mut p = ProgramBuilder::new("stencil");
        let a = p.array("in", ElemType::F32, &[n, n]);
        let b = p.array("out", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", (n - 2) as u64);
        let j = k.parallel_loop("j", (n - 2) as u64);
        k.statement()
            .read(a, &[idx(i), idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j)])
            .read(a, &[idx(i) + 1, idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j) + 2])
            .read(a, &[idx(i) + 2, idx(j) + 1])
            .write(b, &[idx(i) + 1, idx(j) + 1])
            .flops(Flops {
                adds: 8,
                muls: 4,
                divs: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().unwrap()
    }

    fn full_run(n: usize) -> (crate::projector::AppProjection, AppMeasurement) {
        let machine = MachineConfig::anl_eureka_node(21);
        let mut node = machine.node();
        let gro = Grophecy::calibrate(&machine, &mut node);
        let program = stencil(n);
        let proj = gro.project(&program, &Hints::new());
        let meas = measure(&mut node, &program, &proj);
        (proj, meas)
    }

    #[test]
    fn combined_prediction_beats_kernel_only() {
        let (proj, meas) = full_run(1024);
        let r = SpeedupReport::build("stencil", "1024", &proj, &meas, 1);
        assert!(
            r.error_combined() < r.error_kernel_only(),
            "combined {} vs kernel-only {}",
            r.error_combined(),
            r.error_kernel_only()
        );
        // Kernel-only grossly overpredicts (transfer dominates).
        assert!(r.predicted_kernel_only > 2.0 * r.measured);
    }

    #[test]
    fn sweep_converges_with_iterations() {
        let (proj, meas) = full_run(512);
        let s = SpeedupSeries::sweep("stencil", "512", &proj, &meas, [1, 2, 4, 16, 64, 256]);
        assert_eq!(s.points.len(), 6);
        // With more iterations, the two predictions converge.
        let gap = |p: &SeriesPoint| (p.with_transfer - p.without_transfer).abs();
        assert!(gap(&s.points[5]) < gap(&s.points[0]) * 0.1);
        // Measured speedup grows with iterations (transfer amortizes).
        assert!(s.points[5].measured > s.points[0].measured);
        // And approaches the limit.
        let lim = SpeedupSeries::limit(&proj, &meas);
        assert!((s.points[5].measured - lim.measured).abs() / lim.measured < 0.1);
    }

    #[test]
    fn transfer_aware_is_twice_as_accurate_for_a_while() {
        let (proj, meas) = full_run(1024);
        let s = SpeedupSeries::sweep("stencil", "1024", &proj, &meas, [1, 2, 4, 8, 16, 32, 64]);
        let until = s.twice_as_accurate_until();
        assert!(until.is_some(), "transfer-aware never 2x better");
        assert!(until.unwrap() >= 4, "only until {:?}", until);
    }

    #[test]
    fn verdict_check() {
        let (proj, meas) = full_run(512);
        let r = SpeedupReport::build("stencil", "512", &proj, &meas, 1);
        assert!(r.verdict_correct(r.measured));
        assert!(!r.verdict_correct(if r.measured >= 1.0 { 0.5 } else { 2.0 }));
    }
}
