//! The GROPHECY++ projector: kernel time + transfer time, from a skeleton.

use crate::machine::{BusSpec, DeviceLink, MachineConfig, RootComplex, SimulatedNode};
use crate::timeline::{MultiGpuProjection, Timeline};
use gpp_datausage::{analyze, Hints, TransferDir, TransferPlan};
use gpp_fault::FaultInjector;
use gpp_gpu_model::{project_best_with, GpuSpec, KernelProjection, SearchOpts};
use gpp_pcie::model::DirectionalModel;
use gpp_pcie::overlap::DEFAULT_STAGING_LATENCY;
use gpp_pcie::{
    AllocModel, Bus, CalibrationError, Calibrator, ChunkedModel, Direction, FaultyBus, MemType,
};
use gpp_skeleton::Program;
use std::sync::Arc;

/// The calibrated GROPHECY++ instance for one machine.
///
/// Construction runs the two-point PCIe calibration benchmark on the
/// machine's bus — "automatically invoked by GROPHECY++ when run on a new
/// system" (§III-C). Projections afterwards never touch the hardware.
pub struct Grophecy {
    spec: GpuSpec,
    pcie: DirectionalModel,
    mem: MemType,
    alloc: Option<AllocModel>,
    /// Per-chunk pinned-staging latency σ for chunked transfer pricing:
    /// derived from the machine's mechanistic bus parameters when it has
    /// them, the replay-era default otherwise.
    staging_latency: f64,
    /// Extra GPU devices of a multi-GPU node (empty = single GPU).
    devices: Vec<DeviceLink>,
    /// Root-complex contention shared by all device links.
    root_complex: Option<RootComplex>,
}

/// Staging latency for a machine: mechanistic buses derive it from their
/// parameters, replay traces use the default.
fn staging_latency_of(machine: &MachineConfig) -> f64 {
    match &machine.bus {
        BusSpec::Sim(p) => p.staging_overhead * (1.0 - p.staging_overlap),
        BusSpec::Replay(_) => DEFAULT_STAGING_LATENCY,
    }
}

/// A complete application projection.
#[derive(Debug, Clone)]
pub struct AppProjection {
    /// Best projection per kernel, in program order.
    pub kernels: Vec<KernelProjection>,
    /// Σ best kernel times, seconds (one iteration).
    ///
    /// **Invariant:** always a *serial, program-order* reduction over
    /// `kernels`, even when the per-kernel searches ran in parallel —
    /// float summation order must never depend on `GPP_THREADS`.
    pub kernel_time: f64,
    /// The transfer plan from the data usage analyzer.
    pub plan: TransferPlan,
    /// Per-transfer predicted times, parallel to `plan.all()` order.
    pub transfer_times: Vec<f64>,
    /// Σ predicted transfer times, seconds.
    ///
    /// **Invariant:** a serial, plan-order reduction over
    /// `transfer_times`, for the same reason as `kernel_time`.
    pub transfer_time: f64,
    /// Optional one-time allocation overhead (future-work feature, §VII).
    pub alloc_time: f64,
    /// The priced event timeline, present only when the skeleton carries
    /// stream/chunk annotations (`None` keeps annotation-free projections
    /// bit-identical to pre-timeline builds).
    pub timeline: Option<Timeline>,
    /// The data-parallel split across all devices of a multi-GPU node
    /// (`None` on single-GPU machines).
    pub multi_gpu: Option<MultiGpuProjection>,
}

impl AppProjection {
    /// Projected total GPU time for `iters` iterations of the kernel
    /// sequence: kernels repeat, transfers happen once (§IV-B).
    pub fn total_time(&self, iters: u32) -> f64 {
        self.kernel_time * iters as f64 + self.transfer_time + self.alloc_time
    }

    /// Projected total honoring the annotated concurrent schedule:
    /// transfers happen once, overlapped against the pass they bracket;
    /// the remaining `iters - 1` passes are pure kernel time. Falls back
    /// to the serial [`AppProjection::total_time`] when the program pinned
    /// no concurrent schedule.
    pub fn overlapped_total_time(&self, iters: u32) -> f64 {
        match &self.timeline {
            Some(tl) => {
                self.kernel_time * (iters.saturating_sub(1)) as f64
                    + tl.overlapped_pass
                    + self.alloc_time
            }
            None => self.total_time(iters),
        }
    }

    /// Projected speedup over a measured CPU time (`cpu_time` must cover
    /// the same `iters`).
    pub fn speedup(&self, cpu_time: f64, iters: u32) -> f64 {
        cpu_time / self.total_time(iters)
    }

    /// The kernel-only projected speedup — what plain GROPHECY would
    /// report.
    pub fn speedup_kernel_only(&self, cpu_time: f64, iters: u32) -> f64 {
        cpu_time / (self.kernel_time * iters as f64)
    }

    /// The transfer-only projected speedup (Table II's middle column).
    pub fn speedup_transfer_only(&self, cpu_time: f64, _iters: u32) -> f64 {
        cpu_time / self.transfer_time
    }
}

impl Grophecy {
    /// Calibrates GROPHECY++ against a machine: runs the synthetic PCIe
    /// benchmark on its bus, then keeps only the datasheet + fitted model.
    pub fn calibrate(machine: &MachineConfig, node: &mut SimulatedNode) -> Self {
        let calibrator = Calibrator::default();
        let pcie = calibrator.calibrate(&mut node.bus);
        Grophecy {
            spec: machine.gpu_spec.clone(),
            pcie,
            mem: MemType::Pinned,
            alloc: None,
            staging_latency: staging_latency_of(machine),
            devices: machine.devices.clone(),
            root_complex: machine.root_complex.clone(),
        }
    }

    /// Fault-aware calibration: like [`Grophecy::calibrate`], but wires a
    /// fault injector through the whole node — the bus is wrapped in a
    /// [`FaultyBus`] and calibrated via the outlier-rejecting
    /// [`Calibrator::calibrate_checked`] path, and the node's GPU is armed
    /// so later measurements see transient launch faults.
    ///
    /// With an **inactive** injector this delegates to the plain path, so
    /// fault-free runs stay bit-identical to builds without fault support
    /// (the robust path's validation probes would otherwise consume extra
    /// bus-RNG draws and shift every downstream measurement).
    pub fn try_calibrate(
        machine: &MachineConfig,
        node: &mut SimulatedNode,
        faults: Arc<FaultInjector>,
    ) -> Result<Self, CalibrationError> {
        if !faults.is_active() {
            return Ok(Self::calibrate(machine, node));
        }
        node.gpu.arm_faults(faults.clone());
        let mut bus = FaultyBus::new(&mut node.bus, faults).with_machine(&machine.id);
        let pcie = Calibrator::default().calibrate_checked(&mut bus)?;
        Ok(Grophecy {
            spec: machine.gpu_spec.clone(),
            pcie,
            mem: MemType::Pinned,
            alloc: None,
            staging_latency: staging_latency_of(machine),
            devices: machine.devices.clone(),
            root_complex: machine.root_complex.clone(),
        })
    }

    /// Builds a projector from an already-fitted PCIe model (used by
    /// ablations that want to inject specific α/β values).
    pub fn with_model(spec: GpuSpec, pcie: DirectionalModel) -> Self {
        Grophecy {
            spec,
            pcie,
            mem: MemType::Pinned,
            alloc: None,
            staging_latency: DEFAULT_STAGING_LATENCY,
            devices: Vec::new(),
            root_complex: None,
        }
    }

    /// Calibrates against any [`Bus`] implementation.
    pub fn calibrate_on_bus(spec: GpuSpec, bus: &mut dyn Bus) -> Self {
        let pcie = Calibrator::default().calibrate(bus);
        Grophecy {
            spec,
            pcie,
            mem: MemType::Pinned,
            alloc: None,
            staging_latency: DEFAULT_STAGING_LATENCY,
            devices: Vec::new(),
            root_complex: None,
        }
    }

    /// Enables the allocation-overhead term (paper future work, §VII).
    #[must_use]
    pub fn with_alloc_model(mut self, alloc: AllocModel) -> Self {
        self.alloc = Some(alloc);
        self
    }

    /// The fitted PCIe model.
    pub fn pcie_model(&self) -> &DirectionalModel {
        &self.pcie
    }

    /// The GPU datasheet in use.
    pub fn gpu_spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Predicted time for one transfer of `bytes` in `dir`.
    pub fn predict_transfer(&self, bytes: u64, dir: TransferDir) -> f64 {
        let d = match dir {
            TransferDir::ToDevice => Direction::HostToDevice,
            TransferDir::FromDevice => Direction::DeviceToHost,
        };
        self.pcie.predict(bytes, d)
    }

    /// Projects a whole application: best kernel times + transfer plan +
    /// transfer times.
    ///
    /// Each kernel's transformation search also explores loop interchange:
    /// every parallel loop is tried as the thread axis, since the mapping
    /// determines every coalescing class.
    pub fn project(&self, program: &Program, hints: &Hints) -> AppProjection {
        self.project_with(program, hints, SearchOpts::default())
    }

    /// [`Grophecy::project`] with explicit search options (benchmarks and
    /// the determinism suite compare the code paths).
    ///
    /// The kernel × axis × transformation search is flattened into one
    /// task list and distributed over the `gpp-par` global pool; results
    /// land in pre-sized index slots and every reduction below is serial
    /// in program order, so the projection is bit-identical to the serial
    /// path (`GPP_THREADS=1`) at any thread count.
    pub fn project_with(
        &self,
        program: &Program,
        hints: &Hints,
        opts: SearchOpts,
    ) -> AppProjection {
        // One task per (kernel, axis-candidate) pair.
        let tasks: Vec<(usize, usize, gpp_skeleton::LoopId)> = program
            .kernels
            .iter()
            .enumerate()
            .flat_map(|(ki, k)| {
                k.axis_candidates()
                    .into_iter()
                    .enumerate()
                    .map(move |(ai, axis)| (ki, ai, axis))
            })
            .collect();
        let searched: Vec<KernelProjection> = gpp_par::par_map(tasks.len(), |t| {
            let (ki, ai, axis) = tasks[t];
            let k = &program.kernels[ki];
            let chars = k.characteristics_with_axis(program, axis);
            let mut proj = project_best_with(&k.name, &chars, &self.spec, opts);
            // Record non-default axis choices so the lowering (and
            // reports) reproduce the same mapping. Index 0 is the
            // innermost parallel loop — the default.
            proj.config.thread_axis = (ai > 0).then_some(axis);
            proj
        });

        // Serial reduction, kernel by kernel in axis-candidate order:
        // strict `<` keeps the earliest axis on ties, exactly like the
        // serial loop.
        let mut kernels: Vec<KernelProjection> = Vec::with_capacity(program.kernels.len());
        for (ki, _) in program.kernels.iter().enumerate() {
            let mut best: Option<&KernelProjection> = None;
            for ((tki, _, _), proj) in tasks.iter().zip(&searched) {
                if *tki == ki && best.is_none_or(|b| proj.time < b.time) {
                    best = Some(proj);
                }
            }
            kernels.push(
                best.expect("kernel has at least one parallel loop (validated)")
                    .clone(),
            );
        }
        let kernel_time = kernels.iter().map(|k| k.time).sum();

        let plan = analyze(program, hints);
        // Per-transfer annotations in `plan.all()` (bucket) order: an
        // explicit schedule's h2d directives map to `plan.h2d` in program
        // order and d2h likewise; derived plans have no annotations.
        let annotations: Vec<(u32, u32)> = if program.has_explicit_transfers() {
            let side = |kind: gpp_skeleton::TransferKind| {
                program
                    .transfers
                    .iter()
                    .filter(move |t| t.kind == kind)
                    .map(|t| (t.stream, t.chunks.max(1)))
            };
            side(gpp_skeleton::TransferKind::HostToDevice)
                .chain(side(gpp_skeleton::TransferKind::DeviceToHost))
                .collect()
        } else {
            vec![(0, 1); plan.transfer_count()]
        };
        let transfer_times: Vec<f64> = plan
            .all()
            .zip(&annotations)
            .map(|(t, &(_, chunks))| {
                if chunks > 1 {
                    // Chunked pricing: each chunk pays α plus a staging
                    // rotation — executed serially this costs *more* than
                    // Equation 1; the timeline below is what wins it back.
                    let dir = match t.dir {
                        TransferDir::ToDevice => self.pcie.h2d,
                        TransferDir::FromDevice => self.pcie.d2h,
                    };
                    ChunkedModel::new(dir, self.staging_latency).serial_time(t.bytes, chunks)
                } else {
                    self.predict_transfer(t.bytes, t.dir)
                }
            })
            .collect();
        let transfer_time = transfer_times.iter().sum();

        let alloc_time = self.alloc.map_or(0.0, |a| {
            let device_bytes: u64 = plan.all().map(|t| t.bytes).sum();
            a.offload_setup(
                device_bytes,
                plan.h2d_bytes().max(plan.d2h_bytes()),
                match self.mem {
                    MemType::Pinned => MemType::Pinned,
                    MemType::Pageable => MemType::Pageable,
                },
            )
        });

        let timeline = program.has_stream_annotations().then(|| {
            let kernel_times: Vec<f64> = kernels.iter().map(|k| k.time).collect();
            Timeline::build(program, &kernel_times, &plan, &transfer_times)
        });
        let multi_gpu = (!self.devices.is_empty()).then(|| {
            MultiGpuProjection::build(
                &self.pcie,
                &self.devices,
                self.root_complex.as_ref(),
                &plan,
                kernel_time,
            )
        });

        AppProjection {
            kernels,
            kernel_time,
            plan,
            transfer_times,
            transfer_time,
            alloc_time,
            timeline,
            multi_gpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_skeleton::builder::{idx, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops};

    fn vadd(n: usize) -> Program {
        let mut p = ProgramBuilder::new("vadd");
        let a = p.array("a", ElemType::F32, &[n]);
        let b = p.array("b", ElemType::F32, &[n]);
        let c = p.array("c", ElemType::F32, &[n]);
        let mut k = p.kernel("add");
        let i = k.parallel_loop("i", n as u64);
        k.statement()
            .read(a, &[idx(i)])
            .read(b, &[idx(i)])
            .write(c, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().unwrap()
    }

    fn projector() -> Grophecy {
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        Grophecy::calibrate(&machine, &mut node)
    }

    #[test]
    fn vadd_projection_shape_matches_paper_background() {
        // §II-B: for vector addition, transfer time swamps kernel time —
        // the CPU wins end to end.
        let gro = projector();
        let proj = gro.project(&vadd(1 << 22), &Hints::new());
        assert_eq!(proj.kernels.len(), 1);
        assert_eq!(proj.plan.transfer_count(), 3);
        // 2 × 16 MB in + 16 MB out at ~2.5 GB/s ≈ 19 ms, vs ~3 ms kernel.
        assert!(proj.transfer_time > 3.0 * proj.kernel_time);
        assert!(proj.total_time(1) > proj.kernel_time * 4.0);
    }

    #[test]
    fn iterations_amortize_transfers() {
        let gro = projector();
        let proj = gro.project(&vadd(1 << 20), &Hints::new());
        let t1 = proj.total_time(1);
        let t100 = proj.total_time(100);
        // Transfers paid once: 100 iterations cost far less than 100×.
        assert!(t100 < t1 * 100.0 * 0.5);
        assert!((t100 - (proj.kernel_time * 100.0 + proj.transfer_time)).abs() < 1e-12);
    }

    #[test]
    fn speedup_variants_order_sensibly() {
        let gro = projector();
        let proj = gro.project(&vadd(1 << 22), &Hints::new());
        let cpu_time = 10e-3;
        let with = proj.speedup(cpu_time, 1);
        let kernel_only = proj.speedup_kernel_only(cpu_time, 1);
        let transfer_only = proj.speedup_transfer_only(cpu_time, 1);
        assert!(kernel_only > with, "{kernel_only} vs {with}");
        assert!(transfer_only > with);
        assert!(with < kernel_only.min(transfer_only));
    }

    #[test]
    fn calibrated_model_matches_bus_scale() {
        let gro = projector();
        let m = gro.pcie_model();
        assert!(
            (8.0e-6..13.0e-6).contains(&m.h2d.alpha),
            "alpha {}",
            m.h2d.alpha
        );
        assert!((2.2e9..2.8e9).contains(&m.h2d.bandwidth()));
    }

    #[test]
    fn loop_interchange_fixes_column_major_access() {
        // A kernel that writes b[j][i] over loops (i, j): with the default
        // axis (j innermost) the store strides by a whole row; swapping
        // the thread axis to i makes it coalesced. The projector must
        // discover the interchange and project a big win from it.
        let n = 1024usize;
        let mut p = ProgramBuilder::new("transpose-ish");
        let a = p.array("a", ElemType::F32, &[n, n]);
        let b = p.array("b", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", n as u64);
        let j = k.parallel_loop("j", n as u64);
        k.statement()
            .read(a, &[idx(j), idx(i)])
            .write(b, &[idx(j), idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        let program = p.build().unwrap();

        let gro = projector();
        let proj = gro.project(&program, &Hints::new());
        let best = &proj.kernels[0];
        assert!(
            best.config.thread_axis.is_some(),
            "interchange not chosen: {}",
            best.config
        );
        // Compare against the default-axis best.
        let chars = program.kernels[0].characteristics(&program);
        let default_best = gpp_gpu_model::project_best("k", &chars, gro.gpu_spec());
        assert!(
            best.time < default_best.time * 0.5,
            "interchange {} vs default {}",
            best.time,
            default_best.time
        );
        // And the measured implementation honors the same mapping.
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        let meas = crate::measurement::measure(&mut node, &program, &proj);
        assert!(meas.kernel_time < default_best.time * 2.0);
    }

    #[test]
    fn try_calibrate_with_empty_plan_is_bit_identical() {
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        let plain = Grophecy::calibrate(&machine, &mut node);
        let mut node = machine.node();
        let faulted =
            Grophecy::try_calibrate(&machine, &mut node, FaultInjector::disabled()).unwrap();
        let (p, f) = (plain.pcie_model(), faulted.pcie_model());
        assert_eq!(p.h2d.alpha.to_bits(), f.h2d.alpha.to_bits());
        assert_eq!(p.h2d.beta.to_bits(), f.h2d.beta.to_bits());
        assert_eq!(p.d2h.alpha.to_bits(), f.d2h.alpha.to_bits());
        assert_eq!(p.d2h.beta.to_bits(), f.d2h.beta.to_bits());
    }

    #[test]
    fn try_calibrate_survives_sporadic_outliers() {
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        let plan: gpp_fault::FaultPlan = "seed=2;pcie.calibration.outlier:p=0.2,factor=40"
            .parse()
            .unwrap();
        let faults = Arc::new(FaultInjector::new(plan));
        let gro = Grophecy::try_calibrate(&machine, &mut node, faults.clone()).unwrap();
        let m = gro.pcie_model();
        assert!(
            (8.0e-6..13.0e-6).contains(&m.h2d.alpha),
            "alpha {}",
            m.h2d.alpha
        );
        assert!((2.2e9..2.8e9).contains(&m.h2d.bandwidth()));
        assert!(faults.total_fired() > 0);
    }

    #[test]
    fn try_calibrate_reports_hopeless_buses() {
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        let plan: gpp_fault::FaultPlan = "pcie.transfer.error:always".parse().unwrap();
        let Err(err) =
            Grophecy::try_calibrate(&machine, &mut node, Arc::new(FaultInjector::new(plan)))
        else {
            panic!("calibration should have failed");
        };
        assert!(err.to_string().contains("calibration failed"));
    }

    /// vadd with an explicit chunked-async schedule: inputs stream in
    /// against the kernel, the output streams out behind it.
    fn vadd_streamed(n: usize, stream: u32, chunks: u32) -> Program {
        use gpp_skeleton::TransferKind;
        let mut p = ProgramBuilder::new("vadd-streamed");
        let a = p.array("a", ElemType::F32, &[n]);
        let b = p.array("b", ElemType::F32, &[n]);
        let c = p.array("c", ElemType::F32, &[n]);
        p.transfer_with(a, TransferKind::HostToDevice, 0, stream, chunks);
        p.transfer_with(b, TransferKind::HostToDevice, 0, stream, chunks);
        let mut k = p.kernel("add");
        let i = k.parallel_loop("i", n as u64);
        k.statement()
            .read(a, &[idx(i)])
            .read(b, &[idx(i)])
            .write(c, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.transfer_with(c, TransferKind::DeviceToHost, 1, stream, chunks);
        p.build().unwrap()
    }

    #[test]
    fn plain_programs_have_no_timeline_or_split() {
        let gro = projector();
        let proj = gro.project(&vadd(1 << 20), &Hints::new());
        assert!(proj.timeline.is_none());
        assert!(proj.multi_gpu.is_none());
        assert_eq!(proj.overlapped_total_time(3), proj.total_time(3));
    }

    #[test]
    fn streamed_schedule_lands_strictly_between_max_and_sum() {
        // §acceptance: a committed overlapped multi-stream case must be
        // strictly between max(transfer, compute) and their sum.
        let gro = projector();
        let proj = gro.project(&vadd_streamed(1 << 22, 1, 8), &Hints::new());
        let tl = proj.timeline.as_ref().expect("annotated program");
        assert!(tl.has_overlap());
        let lo = proj.transfer_time.max(proj.kernel_time);
        let hi = proj.transfer_time + proj.kernel_time;
        assert!(
            tl.overlapped_pass > lo && tl.overlapped_pass < hi,
            "{} not in ({lo}, {hi})",
            tl.overlapped_pass
        );
        assert!(proj.overlapped_total_time(1) < proj.total_time(1));
        // Later iterations are pure kernel passes in both schedules, so
        // the saving is iteration-invariant.
        let saved_1 = proj.total_time(1) - proj.overlapped_total_time(1);
        let saved_9 = proj.total_time(9) - proj.overlapped_total_time(9);
        assert!((saved_1 - saved_9).abs() < 1e-12);
    }

    #[test]
    fn sync_annotations_price_like_the_serial_paper_model() {
        // stream 0, chunks=1 on every directive is the paper's serial
        // schedule: no timeline, and per-transfer pricing identical to
        // the derived plan's.
        let gro = projector();
        let proj = gro.project(&vadd_streamed(1 << 20, 0, 1), &Hints::new());
        assert!(proj.timeline.is_none());
        let derived = gro.project(&vadd(1 << 20), &Hints::new());
        // Same plan shape → same serial pricing per transfer.
        assert_eq!(proj.plan.transfer_count(), derived.plan.transfer_count());
        assert_eq!(
            proj.transfer_time.to_bits(),
            derived.transfer_time.to_bits()
        );
    }

    #[test]
    fn chunking_without_overlap_costs_more_serially() {
        let gro = projector();
        let plain = gro.project(&vadd_streamed(1 << 22, 0, 1), &Hints::new());
        let chunked = gro.project(&vadd_streamed(1 << 22, 0, 8), &Hints::new());
        // chunks=8 on the sync stream: pays 8 α/σ rotations, overlaps
        // nothing.
        assert!(chunked.transfer_time > plain.transfer_time);
        let tl = chunked.timeline.as_ref().expect("annotated");
        assert!(!tl.has_overlap());
        assert_eq!(tl.serial_pass, tl.overlapped_pass);
    }

    #[test]
    fn multi_gpu_split_shows_contention_degraded_bandwidth() {
        // §acceptance: a dual-GPU machine with a tight root complex must
        // show per-device bandwidth strictly below the uncontended link
        // rate, and the split total must beat the single-GPU serial total.
        use crate::machine::{DeviceLink, RootComplex};
        let mut machine = MachineConfig::anl_eureka_node(7);
        machine.devices.push(DeviceLink {
            id: 1,
            bus: gpp_pcie::BusParams::pcie_v1_x16(),
        });
        machine.root_complex = Some(RootComplex { shared_bw: 3.0e9 });
        let mut node = machine.node();
        let gro = Grophecy::calibrate(&machine, &mut node);
        let proj = gro.project(&vadd(1 << 22), &Hints::new());
        let split = proj.multi_gpu.as_ref().expect("multi-GPU machine");
        assert_eq!(split.device_count(), 2);
        assert!(split.is_contended());
        for d in &split.devices {
            assert!(d.bandwidth_factor < 1.0, "{}", d.bandwidth_factor);
            assert!(d.kernel_seconds < proj.kernel_time);
        }
        assert!(split.total_time(1) < proj.total_time(1));
    }

    #[test]
    fn multi_gpu_calibration_matches_single_gpu_twin_bitwise() {
        // Registering extra devices must not consume calibration RNG:
        // the primary model — and every scalar projection field — is
        // bit-identical to the single-GPU twin.
        use crate::machine::{DeviceLink, RootComplex};
        let single = MachineConfig::anl_eureka_node(7);
        let mut dual = single.clone();
        dual.devices.push(DeviceLink {
            id: 1,
            bus: gpp_pcie::BusParams::pcie_v2_x16(),
        });
        dual.root_complex = Some(RootComplex { shared_bw: 4.0e9 });
        let mut node_s = single.node();
        let p_s = Grophecy::calibrate(&single, &mut node_s).project(&vadd(1 << 20), &Hints::new());
        let mut node_d = dual.node();
        let p_d = Grophecy::calibrate(&dual, &mut node_d).project(&vadd(1 << 20), &Hints::new());
        assert_eq!(p_s.kernel_time.to_bits(), p_d.kernel_time.to_bits());
        assert_eq!(p_s.transfer_time.to_bits(), p_d.transfer_time.to_bits());
        assert!(p_s.multi_gpu.is_none() && p_d.multi_gpu.is_some());
    }

    #[test]
    fn alloc_model_adds_setup_cost() {
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        let gro =
            Grophecy::calibrate(&machine, &mut node).with_alloc_model(AllocModel::cuda2_era());
        let proj = gro.project(&vadd(1 << 22), &Hints::new());
        assert!(proj.alloc_time > 0.0);
        let plain = projector().project(&vadd(1 << 22), &Hints::new());
        assert!(proj.total_time(1) > plain.total_time(1));
    }
}
