//! The GROPHECY++ projector: kernel time + transfer time, from a skeleton.

use crate::machine::{MachineConfig, SimulatedNode};
use gpp_datausage::{analyze, Hints, TransferDir, TransferPlan};
use gpp_fault::FaultInjector;
use gpp_gpu_model::{project_best_with, GpuSpec, KernelProjection, SearchOpts};
use gpp_pcie::model::DirectionalModel;
use gpp_pcie::{AllocModel, Bus, CalibrationError, Calibrator, Direction, FaultyBus, MemType};
use gpp_skeleton::Program;
use std::sync::Arc;

/// The calibrated GROPHECY++ instance for one machine.
///
/// Construction runs the two-point PCIe calibration benchmark on the
/// machine's bus — "automatically invoked by GROPHECY++ when run on a new
/// system" (§III-C). Projections afterwards never touch the hardware.
pub struct Grophecy {
    spec: GpuSpec,
    pcie: DirectionalModel,
    mem: MemType,
    alloc: Option<AllocModel>,
}

/// A complete application projection.
#[derive(Debug, Clone)]
pub struct AppProjection {
    /// Best projection per kernel, in program order.
    pub kernels: Vec<KernelProjection>,
    /// Σ best kernel times, seconds (one iteration).
    ///
    /// **Invariant:** always a *serial, program-order* reduction over
    /// `kernels`, even when the per-kernel searches ran in parallel —
    /// float summation order must never depend on `GPP_THREADS`.
    pub kernel_time: f64,
    /// The transfer plan from the data usage analyzer.
    pub plan: TransferPlan,
    /// Per-transfer predicted times, parallel to `plan.all()` order.
    pub transfer_times: Vec<f64>,
    /// Σ predicted transfer times, seconds.
    ///
    /// **Invariant:** a serial, plan-order reduction over
    /// `transfer_times`, for the same reason as `kernel_time`.
    pub transfer_time: f64,
    /// Optional one-time allocation overhead (future-work feature, §VII).
    pub alloc_time: f64,
}

impl AppProjection {
    /// Projected total GPU time for `iters` iterations of the kernel
    /// sequence: kernels repeat, transfers happen once (§IV-B).
    pub fn total_time(&self, iters: u32) -> f64 {
        self.kernel_time * iters as f64 + self.transfer_time + self.alloc_time
    }

    /// Projected speedup over a measured CPU time (`cpu_time` must cover
    /// the same `iters`).
    pub fn speedup(&self, cpu_time: f64, iters: u32) -> f64 {
        cpu_time / self.total_time(iters)
    }

    /// The kernel-only projected speedup — what plain GROPHECY would
    /// report.
    pub fn speedup_kernel_only(&self, cpu_time: f64, iters: u32) -> f64 {
        cpu_time / (self.kernel_time * iters as f64)
    }

    /// The transfer-only projected speedup (Table II's middle column).
    pub fn speedup_transfer_only(&self, cpu_time: f64, _iters: u32) -> f64 {
        cpu_time / self.transfer_time
    }
}

impl Grophecy {
    /// Calibrates GROPHECY++ against a machine: runs the synthetic PCIe
    /// benchmark on its bus, then keeps only the datasheet + fitted model.
    pub fn calibrate(machine: &MachineConfig, node: &mut SimulatedNode) -> Self {
        let calibrator = Calibrator::default();
        let pcie = calibrator.calibrate(&mut node.bus);
        Grophecy {
            spec: machine.gpu_spec.clone(),
            pcie,
            mem: MemType::Pinned,
            alloc: None,
        }
    }

    /// Fault-aware calibration: like [`Grophecy::calibrate`], but wires a
    /// fault injector through the whole node — the bus is wrapped in a
    /// [`FaultyBus`] and calibrated via the outlier-rejecting
    /// [`Calibrator::calibrate_checked`] path, and the node's GPU is armed
    /// so later measurements see transient launch faults.
    ///
    /// With an **inactive** injector this delegates to the plain path, so
    /// fault-free runs stay bit-identical to builds without fault support
    /// (the robust path's validation probes would otherwise consume extra
    /// bus-RNG draws and shift every downstream measurement).
    pub fn try_calibrate(
        machine: &MachineConfig,
        node: &mut SimulatedNode,
        faults: Arc<FaultInjector>,
    ) -> Result<Self, CalibrationError> {
        if !faults.is_active() {
            return Ok(Self::calibrate(machine, node));
        }
        node.gpu.arm_faults(faults.clone());
        let mut bus = FaultyBus::new(&mut node.bus, faults).with_machine(&machine.id);
        let pcie = Calibrator::default().calibrate_checked(&mut bus)?;
        Ok(Grophecy {
            spec: machine.gpu_spec.clone(),
            pcie,
            mem: MemType::Pinned,
            alloc: None,
        })
    }

    /// Builds a projector from an already-fitted PCIe model (used by
    /// ablations that want to inject specific α/β values).
    pub fn with_model(spec: GpuSpec, pcie: DirectionalModel) -> Self {
        Grophecy {
            spec,
            pcie,
            mem: MemType::Pinned,
            alloc: None,
        }
    }

    /// Calibrates against any [`Bus`] implementation.
    pub fn calibrate_on_bus(spec: GpuSpec, bus: &mut dyn Bus) -> Self {
        let pcie = Calibrator::default().calibrate(bus);
        Grophecy {
            spec,
            pcie,
            mem: MemType::Pinned,
            alloc: None,
        }
    }

    /// Enables the allocation-overhead term (paper future work, §VII).
    #[must_use]
    pub fn with_alloc_model(mut self, alloc: AllocModel) -> Self {
        self.alloc = Some(alloc);
        self
    }

    /// The fitted PCIe model.
    pub fn pcie_model(&self) -> &DirectionalModel {
        &self.pcie
    }

    /// The GPU datasheet in use.
    pub fn gpu_spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Predicted time for one transfer of `bytes` in `dir`.
    pub fn predict_transfer(&self, bytes: u64, dir: TransferDir) -> f64 {
        let d = match dir {
            TransferDir::ToDevice => Direction::HostToDevice,
            TransferDir::FromDevice => Direction::DeviceToHost,
        };
        self.pcie.predict(bytes, d)
    }

    /// Projects a whole application: best kernel times + transfer plan +
    /// transfer times.
    ///
    /// Each kernel's transformation search also explores loop interchange:
    /// every parallel loop is tried as the thread axis, since the mapping
    /// determines every coalescing class.
    pub fn project(&self, program: &Program, hints: &Hints) -> AppProjection {
        self.project_with(program, hints, SearchOpts::default())
    }

    /// [`Grophecy::project`] with explicit search options (benchmarks and
    /// the determinism suite compare the code paths).
    ///
    /// The kernel × axis × transformation search is flattened into one
    /// task list and distributed over the `gpp-par` global pool; results
    /// land in pre-sized index slots and every reduction below is serial
    /// in program order, so the projection is bit-identical to the serial
    /// path (`GPP_THREADS=1`) at any thread count.
    pub fn project_with(
        &self,
        program: &Program,
        hints: &Hints,
        opts: SearchOpts,
    ) -> AppProjection {
        // One task per (kernel, axis-candidate) pair.
        let tasks: Vec<(usize, usize, gpp_skeleton::LoopId)> = program
            .kernels
            .iter()
            .enumerate()
            .flat_map(|(ki, k)| {
                k.axis_candidates()
                    .into_iter()
                    .enumerate()
                    .map(move |(ai, axis)| (ki, ai, axis))
            })
            .collect();
        let searched: Vec<KernelProjection> = gpp_par::par_map(tasks.len(), |t| {
            let (ki, ai, axis) = tasks[t];
            let k = &program.kernels[ki];
            let chars = k.characteristics_with_axis(program, axis);
            let mut proj = project_best_with(&k.name, &chars, &self.spec, opts);
            // Record non-default axis choices so the lowering (and
            // reports) reproduce the same mapping. Index 0 is the
            // innermost parallel loop — the default.
            proj.config.thread_axis = (ai > 0).then_some(axis);
            proj
        });

        // Serial reduction, kernel by kernel in axis-candidate order:
        // strict `<` keeps the earliest axis on ties, exactly like the
        // serial loop.
        let mut kernels: Vec<KernelProjection> = Vec::with_capacity(program.kernels.len());
        for (ki, _) in program.kernels.iter().enumerate() {
            let mut best: Option<&KernelProjection> = None;
            for ((tki, _, _), proj) in tasks.iter().zip(&searched) {
                if *tki == ki && best.is_none_or(|b| proj.time < b.time) {
                    best = Some(proj);
                }
            }
            kernels.push(
                best.expect("kernel has at least one parallel loop (validated)")
                    .clone(),
            );
        }
        let kernel_time = kernels.iter().map(|k| k.time).sum();

        let plan = analyze(program, hints);
        let transfer_times: Vec<f64> = plan
            .all()
            .map(|t| self.predict_transfer(t.bytes, t.dir))
            .collect();
        let transfer_time = transfer_times.iter().sum();

        let alloc_time = self.alloc.map_or(0.0, |a| {
            let device_bytes: u64 = plan.all().map(|t| t.bytes).sum();
            a.offload_setup(
                device_bytes,
                plan.h2d_bytes().max(plan.d2h_bytes()),
                match self.mem {
                    MemType::Pinned => MemType::Pinned,
                    MemType::Pageable => MemType::Pageable,
                },
            )
        });

        AppProjection {
            kernels,
            kernel_time,
            plan,
            transfer_times,
            transfer_time,
            alloc_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_skeleton::builder::{idx, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops};

    fn vadd(n: usize) -> Program {
        let mut p = ProgramBuilder::new("vadd");
        let a = p.array("a", ElemType::F32, &[n]);
        let b = p.array("b", ElemType::F32, &[n]);
        let c = p.array("c", ElemType::F32, &[n]);
        let mut k = p.kernel("add");
        let i = k.parallel_loop("i", n as u64);
        k.statement()
            .read(a, &[idx(i)])
            .read(b, &[idx(i)])
            .write(c, &[idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().unwrap()
    }

    fn projector() -> Grophecy {
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        Grophecy::calibrate(&machine, &mut node)
    }

    #[test]
    fn vadd_projection_shape_matches_paper_background() {
        // §II-B: for vector addition, transfer time swamps kernel time —
        // the CPU wins end to end.
        let gro = projector();
        let proj = gro.project(&vadd(1 << 22), &Hints::new());
        assert_eq!(proj.kernels.len(), 1);
        assert_eq!(proj.plan.transfer_count(), 3);
        // 2 × 16 MB in + 16 MB out at ~2.5 GB/s ≈ 19 ms, vs ~3 ms kernel.
        assert!(proj.transfer_time > 3.0 * proj.kernel_time);
        assert!(proj.total_time(1) > proj.kernel_time * 4.0);
    }

    #[test]
    fn iterations_amortize_transfers() {
        let gro = projector();
        let proj = gro.project(&vadd(1 << 20), &Hints::new());
        let t1 = proj.total_time(1);
        let t100 = proj.total_time(100);
        // Transfers paid once: 100 iterations cost far less than 100×.
        assert!(t100 < t1 * 100.0 * 0.5);
        assert!((t100 - (proj.kernel_time * 100.0 + proj.transfer_time)).abs() < 1e-12);
    }

    #[test]
    fn speedup_variants_order_sensibly() {
        let gro = projector();
        let proj = gro.project(&vadd(1 << 22), &Hints::new());
        let cpu_time = 10e-3;
        let with = proj.speedup(cpu_time, 1);
        let kernel_only = proj.speedup_kernel_only(cpu_time, 1);
        let transfer_only = proj.speedup_transfer_only(cpu_time, 1);
        assert!(kernel_only > with, "{kernel_only} vs {with}");
        assert!(transfer_only > with);
        assert!(with < kernel_only.min(transfer_only));
    }

    #[test]
    fn calibrated_model_matches_bus_scale() {
        let gro = projector();
        let m = gro.pcie_model();
        assert!(
            (8.0e-6..13.0e-6).contains(&m.h2d.alpha),
            "alpha {}",
            m.h2d.alpha
        );
        assert!((2.2e9..2.8e9).contains(&m.h2d.bandwidth()));
    }

    #[test]
    fn loop_interchange_fixes_column_major_access() {
        // A kernel that writes b[j][i] over loops (i, j): with the default
        // axis (j innermost) the store strides by a whole row; swapping
        // the thread axis to i makes it coalesced. The projector must
        // discover the interchange and project a big win from it.
        let n = 1024usize;
        let mut p = ProgramBuilder::new("transpose-ish");
        let a = p.array("a", ElemType::F32, &[n, n]);
        let b = p.array("b", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", n as u64);
        let j = k.parallel_loop("j", n as u64);
        k.statement()
            .read(a, &[idx(j), idx(i)])
            .write(b, &[idx(j), idx(i)])
            .flops(Flops {
                adds: 1,
                ..Flops::default()
            })
            .finish();
        k.finish();
        let program = p.build().unwrap();

        let gro = projector();
        let proj = gro.project(&program, &Hints::new());
        let best = &proj.kernels[0];
        assert!(
            best.config.thread_axis.is_some(),
            "interchange not chosen: {}",
            best.config
        );
        // Compare against the default-axis best.
        let chars = program.kernels[0].characteristics(&program);
        let default_best = gpp_gpu_model::project_best("k", &chars, gro.gpu_spec());
        assert!(
            best.time < default_best.time * 0.5,
            "interchange {} vs default {}",
            best.time,
            default_best.time
        );
        // And the measured implementation honors the same mapping.
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        let meas = crate::measurement::measure(&mut node, &program, &proj);
        assert!(meas.kernel_time < default_best.time * 2.0);
    }

    #[test]
    fn try_calibrate_with_empty_plan_is_bit_identical() {
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        let plain = Grophecy::calibrate(&machine, &mut node);
        let mut node = machine.node();
        let faulted =
            Grophecy::try_calibrate(&machine, &mut node, FaultInjector::disabled()).unwrap();
        let (p, f) = (plain.pcie_model(), faulted.pcie_model());
        assert_eq!(p.h2d.alpha.to_bits(), f.h2d.alpha.to_bits());
        assert_eq!(p.h2d.beta.to_bits(), f.h2d.beta.to_bits());
        assert_eq!(p.d2h.alpha.to_bits(), f.d2h.alpha.to_bits());
        assert_eq!(p.d2h.beta.to_bits(), f.d2h.beta.to_bits());
    }

    #[test]
    fn try_calibrate_survives_sporadic_outliers() {
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        let plan: gpp_fault::FaultPlan = "seed=2;pcie.calibration.outlier:p=0.2,factor=40"
            .parse()
            .unwrap();
        let faults = Arc::new(FaultInjector::new(plan));
        let gro = Grophecy::try_calibrate(&machine, &mut node, faults.clone()).unwrap();
        let m = gro.pcie_model();
        assert!(
            (8.0e-6..13.0e-6).contains(&m.h2d.alpha),
            "alpha {}",
            m.h2d.alpha
        );
        assert!((2.2e9..2.8e9).contains(&m.h2d.bandwidth()));
        assert!(faults.total_fired() > 0);
    }

    #[test]
    fn try_calibrate_reports_hopeless_buses() {
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        let plan: gpp_fault::FaultPlan = "pcie.transfer.error:always".parse().unwrap();
        let Err(err) =
            Grophecy::try_calibrate(&machine, &mut node, Arc::new(FaultInjector::new(plan)))
        else {
            panic!("calibration should have failed");
        };
        assert!(err.to_string().contains("calibration failed"));
    }

    #[test]
    fn alloc_model_adds_setup_cost() {
        let machine = MachineConfig::anl_eureka_node(7);
        let mut node = machine.node();
        let gro =
            Grophecy::calibrate(&machine, &mut node).with_alloc_model(AllocModel::cuda2_era());
        let proj = gro.project(&vadd(1 << 22), &Hints::new());
        assert!(proj.alloc_time > 0.0);
        let plain = projector().project(&vadd(1 << 22), &Hints::new());
        assert!(proj.total_time(1) > plain.total_time(1));
    }
}
