//! Lowering: from a chosen transformation to a concrete kernel instance.
//!
//! The paper's measured numbers come from hand-written CUDA kernels "that
//! employ the same optimization strategies suggested by GROPHECY" (§IV-A).
//! Our equivalent: take the transformation GROPHECY++ selected, apply it to
//! the kernel's characteristics, and emit the `gpp_gpu_sim::KernelInstance`
//! the hardware simulator executes. The instance carries detail the
//! analytic model ignored — per-access alignment flags in particular — so
//! the simulator resolves the things a real GPU would.

use gpp_gpu_model::{synthesize_transformed, Transformation};
use gpp_gpu_sim::{KernelInstance, MemOp, ThreadProgram};
use gpp_skeleton::{Kernel, KernelCharacteristics, Program};

/// Lowers a kernel from the program, re-deriving its characteristics with
/// the transformation's thread-axis choice (loop interchange).
pub fn lower_kernel(kernel: &Kernel, program: &Program, config: Transformation) -> KernelInstance {
    let chars = match config.thread_axis {
        Some(axis) => kernel.characteristics_with_axis(program, axis),
        None => kernel.characteristics(program),
    };
    lower(&chars, config)
}

/// Lowers one kernel (with its chosen transformation) to an executable
/// instance.
pub fn lower(chars: &KernelCharacteristics, config: Transformation) -> KernelInstance {
    let synth = synthesize_transformed(chars, config);

    let mut mem_ops: Vec<MemOp> = synth
        .global_ops
        .iter()
        .map(|acc| MemOp {
            bytes: acc.elem_bytes as u32,
            class: acc.class,
            count: acc.per_thread,
            is_load: acc.kind.is_read(),
            shared: false,
            aligned: acc.aligned,
        })
        .collect();

    if synth.shared_accesses > 0.0 {
        mem_ops.push(MemOp {
            bytes: 4,
            class: gpp_skeleton::CoalesceClass::Coalesced,
            count: synth.shared_accesses,
            is_load: true,
            shared: true,
            aligned: true,
        });
    }

    KernelInstance {
        name: chars.name.clone(),
        grid_blocks: synth.threads.div_ceil(config.block_threads as u64).max(1),
        block_threads: config.block_threads,
        regs_per_thread: synth.regs_per_thread,
        shared_per_block: synth.shared_per_block,
        program: ThreadProgram {
            compute_slots: synth.compute_slots,
            mem_ops,
            syncs: synth.syncs,
            active_fraction: synth.active_fraction,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_skeleton::builder::{idx, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops};

    fn stencil_chars() -> KernelCharacteristics {
        let n = 512usize;
        let mut p = ProgramBuilder::new("s");
        let a = p.array("in", ElemType::F32, &[n, n]);
        let b = p.array("out", ElemType::F32, &[n, n]);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", (n - 2) as u64);
        let j = k.parallel_loop("j", (n - 2) as u64);
        k.statement()
            .read(a, &[idx(i), idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j)])
            .read(a, &[idx(i) + 1, idx(j) + 1])
            .read(a, &[idx(i) + 1, idx(j) + 2])
            .read(a, &[idx(i) + 2, idx(j) + 1])
            .write(b, &[idx(i) + 1, idx(j) + 1])
            .flops(Flops {
                adds: 8,
                muls: 3,
                ..Flops::default()
            })
            .finish();
        k.finish();
        let prog = p.build().unwrap();
        prog.kernels[0].characteristics(&prog)
    }

    #[test]
    fn plain_lowering_preserves_refs_and_alignment() {
        let chars = stencil_chars();
        let cfg = Transformation {
            block_threads: 256,
            use_shared: false,
            unroll: 1,
            thread_axis: None,
        };
        let inst = lower(&chars, cfg);
        assert_eq!(inst.block_threads, 256);
        assert_eq!(inst.program.mem_ops.len(), 6);
        // Column-offset refs are misaligned; only the offset-0 column is
        // segment-aligned.
        let misaligned = inst.program.mem_ops.iter().filter(|m| !m.aligned).count();
        assert!(misaligned >= 4, "misaligned = {misaligned}");
        assert_eq!(inst.program.syncs, 0);
        assert_eq!(inst.shared_per_block, 0);
    }

    #[test]
    fn shared_lowering_stages_reuse_group() {
        let chars = stencil_chars();
        let cfg = Transformation {
            block_threads: 256,
            use_shared: true,
            unroll: 1,
            thread_axis: None,
        };
        let inst = lower(&chars, cfg);
        // All 5 stencil loads staged: remaining globals = tile fill + store.
        let globals: Vec<_> = inst.program.mem_ops.iter().filter(|m| !m.shared).collect();
        assert_eq!(globals.len(), 2);
        // The tile fill inherits the halo's misalignment (unpadded
        // stencil); the store keeps its offset misalignment too.
        assert!(globals.iter().any(|m| m.is_load && !m.aligned));
        let shared: Vec<_> = inst.program.mem_ops.iter().filter(|m| m.shared).collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].count, 5.0);
        assert_eq!(inst.program.syncs, 2);
        assert!(inst.shared_per_block > 0);
    }

    #[test]
    fn grid_rounds_up_and_is_never_zero() {
        let chars = KernelCharacteristics {
            threads: 100,
            ..stencil_chars()
        };
        let cfg = Transformation {
            block_threads: 256,
            use_shared: false,
            unroll: 1,
            thread_axis: None,
        };
        let inst = lower(&chars, cfg);
        assert_eq!(inst.grid_blocks, 1);
    }
}
