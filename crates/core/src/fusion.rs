//! Temporal kernel fusion: "Multiple invocations of the same kernel
//! across several iterations can be fused together" (§IV-B, on HotSpot).
//!
//! Fusing `f` time steps into one launch trades two costs:
//!
//! * **saves** `f−1` of every `f` kernel-launch overheads, and
//! * **pays** redundant halo work — each fused step widens the region a
//!   block must read and compute by the stencil's halo, so per-step work
//!   grows roughly linearly in `f` at a rate set by the halo-to-tile
//!   ratio (classic temporal blocking / trapezoidal tiling).
//!
//! For launch-overhead-dominated cases (small grids, e.g. HotSpot 64×64)
//! the optimum is `f > 1`; for large grids the redundancy dominates
//! immediately and `f = 1` wins — which is why the paper's measured
//! configurations run one invocation per iteration.

use crate::projector::Grophecy;
use gpp_gpu_model::KernelProjection;

/// The fusion exploration for one kernel.
#[derive(Debug, Clone)]
pub struct FusionAnalysis {
    /// Kernel name.
    pub kernel: String,
    /// `(factor, projected seconds per iteration)` for each candidate.
    pub candidates: Vec<(u32, f64)>,
    /// The factor with the lowest per-iteration time.
    pub best_factor: u32,
    /// Projected per-iteration time at `best_factor`.
    pub best_time: f64,
    /// Per-iteration time without fusion (factor 1).
    pub unfused_time: f64,
}

impl FusionAnalysis {
    /// Fractional improvement of the best factor over no fusion.
    pub fn saving(&self) -> f64 {
        1.0 - self.best_time / self.unfused_time
    }
}

/// Explores fusion factors `1..=max_factor` for a projected kernel.
///
/// `halo` is the stencil's dependency radius in elements per step (1 for
/// a 5-point stencil; 0 for embarrassingly parallel kernels, which then
/// always prefer the maximum factor since fusing is free of redundancy).
pub fn explore_fusion(
    gro: &Grophecy,
    projection: &KernelProjection,
    halo: u32,
    max_factor: u32,
) -> FusionAnalysis {
    let launch = gro.gpu_spec().launch_overhead;
    let exec = (projection.time - launch).max(0.0);
    // Redundancy growth per additional fused step: the block's tile edge
    // gains 2·halo elements of re-computation per step.
    let tile_edge = (projection.config.block_threads as f64).sqrt().max(1.0);
    let rho = 2.0 * halo as f64 / tile_edge;

    let per_iteration = |f: u32| -> f64 {
        let f64f = f as f64;
        exec * (1.0 + rho * (f64f - 1.0)) + launch / f64f
    };

    let candidates: Vec<(u32, f64)> = (1..=max_factor.max(1))
        .map(|f| (f, per_iteration(f)))
        .collect();
    let &(best_factor, best_time) = candidates
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least factor 1");
    FusionAnalysis {
        kernel: projection.name.clone(),
        candidates,
        best_factor,
        best_time,
        unfused_time: per_iteration(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::projector::Grophecy;
    use gpp_datausage::Hints;
    use gpp_workloads::hotspot::HotSpot;

    fn gro() -> Grophecy {
        let machine = MachineConfig::anl_eureka_node(3);
        let mut node = machine.node();
        Grophecy::calibrate(&machine, &mut node)
    }

    #[test]
    fn tiny_grid_wants_fusion() {
        // HotSpot 64²: the kernel is launch-overhead-dominated, so fusing
        // several steps per launch wins despite the halo redundancy.
        let gro = gro();
        let hs = HotSpot { n: 64 };
        let proj = gro.project(&hs.program(), &hs.hints());
        let fa = explore_fusion(&gro, &proj.kernels[0], 1, 16);
        assert!(fa.best_factor > 1, "best factor {}", fa.best_factor);
        assert!(fa.saving() > 0.10, "saving {}", fa.saving());
    }

    #[test]
    fn large_grid_rejects_fusion() {
        // HotSpot 1024²: execution dwarfs launch overhead; redundancy
        // makes any fusion a loss — matching the paper's unfused runs.
        let gro = gro();
        let hs = HotSpot { n: 1024 };
        let proj = gro.project(&hs.program(), &hs.hints());
        let fa = explore_fusion(&gro, &proj.kernels[0], 1, 16);
        assert_eq!(fa.best_factor, 1);
        assert_eq!(fa.best_time, fa.unfused_time);
        assert_eq!(fa.saving(), 0.0);
    }

    #[test]
    fn halo_free_kernels_fuse_maximally() {
        // With no halo there is no redundancy: every saved launch is pure
        // profit, so the explorer takes the cap.
        let gro = gro();
        let hs = HotSpot { n: 256 };
        let proj = gro.project(&hs.program(), &hs.hints());
        let fa = explore_fusion(&gro, &proj.kernels[0], 0, 8);
        assert_eq!(fa.best_factor, 8);
        assert!(fa.best_time < fa.unfused_time);
    }

    #[test]
    fn candidates_cover_the_range_and_are_consistent() {
        let gro = gro();
        let hs = HotSpot { n: 128 };
        let proj = gro.project(&hs.program(), &hs.hints());
        let fa = explore_fusion(&gro, &proj.kernels[0], 1, 12);
        assert_eq!(fa.candidates.len(), 12);
        assert!(fa.candidates.iter().all(|&(_, t)| t >= fa.best_time));
        assert_eq!(fa.candidates[0].1, fa.unfused_time);
        let _ = Hints::new(); // silence unused-import lint paths in some cfgs
    }
}
