//! The projection timeline: stream/overlap scheduling and the multi-GPU
//! data-parallel split.
//!
//! The paper's schedule is strictly serial — every transfer completes
//! before the kernel that needs it starts, so the projected total is a
//! scalar sum (`kernel_time·iters + transfer_time`). Skeletons that carry
//! `stream`/`chunks=K` annotations (see [`gpp_skeleton::text`]) pin a
//! *concurrent* schedule instead, and this module prices it as an explicit
//! event timeline:
//!
//! * an **async `h2d` at position `p`** is double-buffered against kernel
//!   `p` (the consumer): chunk `i+1` streams in while the kernel works on
//!   chunk `i`;
//! * an **async `d2h` at position `p`** is double-buffered against kernel
//!   `p-1` (the producer): finished chunks drain while the kernel still
//!   computes the rest;
//! * all async transfers bracketing the same kernel share one bus, so
//!   their chunked serial costs add *on the bus* and the combined bus time
//!   overlaps the kernel under the pipeline law
//!   ([`gpp_pcie::pipelined_window`]);
//! * `stream 0` (synchronous) transfers — and async transfers with no
//!   adjacent kernel — serialize exactly as in the paper.
//!
//! Unchunked async transfers still serialize with their kernel: a kernel
//! cannot consume data that has not arrived, and overlap is bought by
//! chunking (`pipelined_window` with `chunks == 1` degenerates to the
//! serial sum). That keeps the timeline total **bounded**: strictly
//! between `max(bus, compute)` and `bus + compute` for any genuinely
//! pipelined window, never below the straggling side.
//!
//! The multi-GPU split ([`MultiGpuProjection`]) projects the same program
//! data-parallel across every device of a multi-GPU node: each device runs
//! `1/D` of the compute and moves `1/D` of every array over its own link,
//! with per-link bandwidth degraded to `min(link_bw, shared_bw / D)` when
//! the node declares root-complex contention. The node finishes with its
//! straggler.

use crate::machine::{DeviceLink, RootComplex};
use gpp_datausage::{TransferDir, TransferPlan};
use gpp_pcie::model::DirectionalModel;
use gpp_pcie::{pipelined_window, Direction, LinearModel};
use gpp_skeleton::{Program, TransferKind};

/// One scheduled transfer on the projection timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Array name (from the transfer plan).
    pub array: String,
    /// Direction.
    pub dir: TransferDir,
    /// Kernel-sequence position of the directive (0 = before the first
    /// kernel, `n` = after the last).
    pub pos: usize,
    /// Stream id (0 = the synchronous default stream).
    pub stream: u32,
    /// Pipelining chunk count (1 = unchunked).
    pub chunks: u32,
    /// Bytes moved.
    pub bytes: u64,
    /// Serial cost of this transfer, seconds (chunked pricing when
    /// `chunks > 1`).
    pub seconds: f64,
    /// Index of the kernel this event is double-buffered against, when it
    /// is scheduled into an overlap window.
    pub overlaps_kernel: Option<usize>,
}

/// The priced event timeline of one annotated kernel-sequence pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// All transfer events, in program order.
    pub events: Vec<TimelineEvent>,
    /// The serial schedule's pass time: Σ kernel times + Σ event costs.
    pub serial_pass: f64,
    /// The overlapped pass time: per-kernel pipeline windows plus
    /// serialized events. Never exceeds `serial_pass`.
    pub overlapped_pass: f64,
}

impl Timeline {
    /// Seconds the concurrent schedule saves over the serial one (≥ 0).
    pub fn saved(&self) -> f64 {
        (self.serial_pass - self.overlapped_pass).max(0.0)
    }

    /// True if any event actually landed in an overlap window.
    pub fn has_overlap(&self) -> bool {
        self.events.iter().any(|e| e.overlaps_kernel.is_some())
    }

    /// Builds the timeline for a program with explicit transfer
    /// directives. `kernel_times` is the best projected time per kernel in
    /// program order; `transfer_times` is parallel to `plan.all()` order
    /// (h2d bucket then d2h bucket) and already carries chunked pricing.
    pub fn build(
        program: &Program,
        kernel_times: &[f64],
        plan: &TransferPlan,
        transfer_times: &[f64],
    ) -> Timeline {
        let n = kernel_times.len();
        // Per-kernel overlap windows: accumulated bus seconds + the
        // effective chunk depth (max over contributing events — the
        // schedule pipelines at the granularity of its finest-split copy).
        let mut bus: Vec<f64> = vec![0.0; n];
        let mut depth: Vec<u32> = vec![1; n];
        let mut serialized = 0.0;

        let mut events = Vec::with_capacity(program.transfers.len());
        let (mut next_h2d, mut next_d2h) = (0usize, 0usize);
        for t in &program.transfers {
            let (bucket, dir) = match t.kind {
                TransferKind::HostToDevice => {
                    let i = next_h2d;
                    next_h2d += 1;
                    (i, TransferDir::ToDevice)
                }
                TransferKind::DeviceToHost => {
                    let i = plan.h2d.len() + next_d2h;
                    next_d2h += 1;
                    (i, TransferDir::FromDevice)
                }
            };
            let planned = match dir {
                TransferDir::ToDevice => &plan.h2d[bucket],
                TransferDir::FromDevice => &plan.d2h[bucket - plan.h2d.len()],
            };
            let seconds = transfer_times[bucket];
            // Async events pair with the kernel they double-buffer
            // against; everything else serializes.
            let overlaps_kernel = if t.stream == 0 {
                None
            } else {
                match dir {
                    TransferDir::ToDevice if t.pos < n => Some(t.pos),
                    TransferDir::FromDevice if t.pos > 0 => Some(t.pos - 1),
                    _ => None,
                }
            };
            match overlaps_kernel {
                Some(k) => {
                    bus[k] += seconds;
                    depth[k] = depth[k].max(t.chunks.max(1));
                }
                None => serialized += seconds,
            }
            events.push(TimelineEvent {
                array: planned.name.clone(),
                dir,
                pos: t.pos,
                stream: t.stream,
                chunks: t.chunks.max(1),
                bytes: planned.bytes,
                seconds,
                overlaps_kernel,
            });
        }

        // Serial reductions in program order: the timeline must be as
        // thread-count-independent as the scalar projection.
        let mut serial_pass = serialized;
        let mut overlapped_pass = serialized;
        for (k, &kt) in kernel_times.iter().enumerate() {
            serial_pass += kt + bus[k];
            overlapped_pass += pipelined_window(bus[k], kt, depth[k]);
        }
        Timeline {
            events,
            serial_pass,
            overlapped_pass,
        }
    }
}

/// One device's share of a data-parallel split projection.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSlice {
    /// Device index (0 = the primary device).
    pub id: u32,
    /// This device's kernel time per iteration (`kernel_time / D`).
    pub kernel_seconds: f64,
    /// This device's transfer time: `1/D` of every planned array over its
    /// own (possibly contention-degraded) link.
    pub transfer_seconds: f64,
    /// Contention degradation of the link's h2d bandwidth: effective over
    /// uncontended, in `(0, 1]` (1 = the root complex is not the
    /// bottleneck for this link).
    pub bandwidth_factor: f64,
}

impl DeviceSlice {
    /// This device's finish time for `iters` iterations.
    pub fn total_time(&self, iters: u32) -> f64 {
        self.kernel_seconds * iters as f64 + self.transfer_seconds
    }
}

/// The data-parallel split of one projection across all devices of a
/// multi-GPU node. The work (compute and bytes) is divided evenly; the
/// node finishes when its straggler does.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiGpuProjection {
    /// Per-device slices, primary first.
    pub devices: Vec<DeviceSlice>,
}

impl MultiGpuProjection {
    /// Number of devices sharing the work.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Straggler finish time for `iters` iterations — the split
    /// projection's total.
    pub fn total_time(&self, iters: u32) -> f64 {
        self.devices
            .iter()
            .map(|d| d.total_time(iters))
            .fold(0.0, f64::max)
    }

    /// The slowest device at one iteration.
    pub fn straggler(&self) -> &DeviceSlice {
        self.devices
            .iter()
            .max_by(|a, b| a.total_time(1).total_cmp(&b.total_time(1)))
            .expect("a split projection has at least one device")
    }

    /// True if any link's bandwidth is degraded by root-complex
    /// contention.
    pub fn is_contended(&self) -> bool {
        self.devices.iter().any(|d| d.bandwidth_factor < 1.0)
    }

    /// Builds the split. `pcie` is the primary device's *calibrated*
    /// model; extra devices are priced analytically from their datasheet
    /// link parameters (α from the DMA setup cost, β from the effective
    /// pinned bandwidth) — deliberately not calibrated, so registering a
    /// multi-GPU machine consumes exactly the same RNG draws as its
    /// single-GPU twin and leaves every other projection bit-identical.
    pub fn build(
        pcie: &DirectionalModel,
        extras: &[DeviceLink],
        root_complex: Option<&RootComplex>,
        plan: &TransferPlan,
        kernel_time: f64,
    ) -> MultiGpuProjection {
        let d = (1 + extras.len()) as f64;
        // Root-complex cap on any single link's share when all D devices
        // transfer concurrently (the split's worst — and steady — case).
        let beta_cap = root_complex.map(|rc| d / rc.shared_bw);

        let links = std::iter::once((0u32, pcie.h2d, pcie.d2h)).chain(extras.iter().map(|dev| {
            let beta = 1.0 / dev.bus.effective_pinned_bw();
            (
                dev.id,
                LinearModel::new(dev.bus.dma_setup_h2d, beta),
                LinearModel::new(dev.bus.dma_setup_d2h, beta),
            )
        }));

        let devices = links
            .map(|(id, h2d, d2h)| {
                let contend = |m: LinearModel| match beta_cap {
                    Some(cap) => LinearModel::new(m.alpha, m.beta.max(cap)),
                    None => m,
                };
                let (ch2d, cd2h) = (contend(h2d), contend(d2h));
                let mut transfer_seconds = 0.0;
                for t in plan.all() {
                    let slice = (t.bytes as f64 / d).ceil() as u64;
                    let m = match t.dir {
                        TransferDir::ToDevice => &ch2d,
                        TransferDir::FromDevice => &cd2h,
                    };
                    transfer_seconds += m.predict(slice);
                }
                DeviceSlice {
                    id,
                    kernel_seconds: kernel_time / d,
                    transfer_seconds,
                    bandwidth_factor: h2d.beta / ch2d.beta,
                }
            })
            .collect();
        MultiGpuProjection { devices }
    }
}

/// Maps the analyzer's direction to the bus direction (the core crate owns
/// this mapping; the analyzer has no bus dependency).
pub fn bus_direction(dir: TransferDir) -> Direction {
    match dir {
        TransferDir::ToDevice => Direction::HostToDevice,
        TransferDir::FromDevice => Direction::DeviceToHost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_pcie::BusParams;
    use gpp_skeleton::builder::{idx, ProgramBuilder};
    use gpp_skeleton::{ElemType, Flops};

    fn annotated_program(stream: u32, chunks: u32) -> Program {
        let n = 1 << 20;
        let mut p = ProgramBuilder::new("pipe");
        let a = p.array("a", ElemType::F32, &[n]);
        let b = p.array("b", ElemType::F32, &[n]);
        p.transfer_with(a, TransferKind::HostToDevice, 0, stream, chunks);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", n as u64);
        k.statement()
            .read(a, &[idx(i)])
            .write(b, &[idx(i)])
            .flops(Flops {
                adds: 8,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.transfer_with(b, TransferKind::DeviceToHost, 1, stream, chunks);
        p.build().unwrap()
    }

    fn plan_for(p: &Program) -> TransferPlan {
        gpp_datausage::analyze(p, &gpp_datausage::Hints::new())
    }

    #[test]
    fn sync_schedule_has_no_overlap_and_matches_serial() {
        let p = annotated_program(0, 1);
        let plan = plan_for(&p);
        let times = vec![1.0e-3, 2.0e-3];
        let tl = Timeline::build(&p, &[5.0e-3], &plan, &times);
        assert!(!tl.has_overlap());
        assert_eq!(tl.serial_pass, tl.overlapped_pass);
        assert!((tl.serial_pass - (5.0e-3 + 3.0e-3)).abs() < 1e-15);
    }

    #[test]
    fn chunked_async_pass_is_strictly_between_max_and_sum() {
        let p = annotated_program(1, 8);
        let plan = plan_for(&p);
        let (tx_in, tx_out) = (2.0e-3, 1.5e-3);
        let compute = 4.0e-3;
        let tl = Timeline::build(&p, &[compute], &plan, &[tx_in, tx_out]);
        assert!(tl.has_overlap());
        let bus = tx_in + tx_out;
        let lo = bus.max(compute);
        let hi = bus + compute;
        assert!(
            tl.overlapped_pass > lo && tl.overlapped_pass < hi,
            "{} not in ({lo}, {hi})",
            tl.overlapped_pass
        );
        assert!((tl.serial_pass - hi).abs() < 1e-15);
        assert!(tl.saved() > 0.0);
    }

    #[test]
    fn unchunked_async_still_serializes() {
        let p = annotated_program(1, 1);
        let plan = plan_for(&p);
        let tl = Timeline::build(&p, &[4.0e-3], &plan, &[2.0e-3, 1.5e-3]);
        // Scheduled into windows, but chunks=1 pipelines nothing.
        assert!(tl.has_overlap());
        assert_eq!(tl.serial_pass, tl.overlapped_pass);
    }

    #[test]
    fn edge_positions_serialize() {
        // h2d after the last kernel / d2h before the first have no kernel
        // to hide behind.
        let n = 1usize << 16;
        let mut p = ProgramBuilder::new("edges");
        let a = p.array("a", ElemType::F32, &[n]);
        p.transfer_with(a, TransferKind::DeviceToHost, 0, 2, 4);
        let mut k = p.kernel("k");
        let i = k.parallel_loop("i", n as u64);
        k.statement()
            .read(a, &[idx(i)])
            .write(a, &[idx(i)])
            .finish();
        k.finish();
        p.transfer_with(a, TransferKind::HostToDevice, 1, 2, 4);
        let p = p.build().unwrap();
        let plan = plan_for(&p);
        let tl = Timeline::build(&p, &[3.0e-3], &plan, &[1.0e-3, 1.0e-3]);
        assert!(!tl.has_overlap());
        assert_eq!(tl.serial_pass, tl.overlapped_pass);
    }

    fn toy_plan(bytes_in: u64, bytes_out: u64) -> TransferPlan {
        use gpp_datausage::Transfer;
        TransferPlan {
            h2d: vec![Transfer {
                array: gpp_brs::ArrayId(0),
                name: "in".into(),
                bytes: bytes_in,
                dir: TransferDir::ToDevice,
                exact: true,
            }],
            d2h: vec![Transfer {
                array: gpp_brs::ArrayId(1),
                name: "out".into(),
                bytes: bytes_out,
                dir: TransferDir::FromDevice,
                exact: true,
            }],
        }
    }

    fn model() -> DirectionalModel {
        DirectionalModel {
            h2d: LinearModel::new(1.0e-5, 4.0e-10),
            d2h: LinearModel::new(1.2e-5, 4.2e-10),
        }
    }

    #[test]
    fn split_divides_work_and_takes_the_straggler() {
        let extras = [DeviceLink {
            id: 1,
            bus: BusParams::pcie_v1_x16(),
        }];
        let split =
            MultiGpuProjection::build(&model(), &extras, None, &toy_plan(64 << 20, 64 << 20), 0.1);
        assert_eq!(split.device_count(), 2);
        for d in &split.devices {
            assert!((d.kernel_seconds - 0.05).abs() < 1e-15);
            assert_eq!(d.bandwidth_factor, 1.0);
        }
        assert!(!split.is_contended());
        let t = split.total_time(1);
        assert_eq!(t, split.straggler().total_time(1));
        assert!(split.devices.iter().all(|d| d.total_time(1) <= t));
    }

    #[test]
    fn root_complex_contention_degrades_links() {
        let extras = [DeviceLink {
            id: 1,
            bus: BusParams::pcie_v1_x16(),
        }];
        let plan = toy_plan(64 << 20, 64 << 20);
        let free = MultiGpuProjection::build(&model(), &extras, None, &plan, 0.1);
        // Shared bandwidth well below 2× the per-link rate: both links
        // degrade.
        let rc = RootComplex { shared_bw: 2.0e9 };
        let capped = MultiGpuProjection::build(&model(), &extras, Some(&rc), &plan, 0.1);
        assert!(capped.is_contended());
        for (f, c) in free.devices.iter().zip(&capped.devices) {
            assert!(c.bandwidth_factor < 1.0, "{}", c.bandwidth_factor);
            assert!(c.transfer_seconds > f.transfer_seconds);
            assert_eq!(c.kernel_seconds, f.kernel_seconds);
        }
        // Effective per-link bandwidth is shared_bw / D.
        let eff_beta = 2.0 / rc.shared_bw;
        let got = capped.devices[0].bandwidth_factor;
        let want = model().h2d.beta / eff_beta;
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn ample_root_complex_changes_nothing() {
        let extras = [DeviceLink {
            id: 1,
            bus: BusParams::pcie_v1_x16(),
        }];
        let plan = toy_plan(8 << 20, 8 << 20);
        let free = MultiGpuProjection::build(&model(), &extras, None, &plan, 0.1);
        let rc = RootComplex { shared_bw: 1.0e12 };
        let ample = MultiGpuProjection::build(&model(), &extras, Some(&rc), &plan, 0.1);
        assert_eq!(free, ample);
    }
}
