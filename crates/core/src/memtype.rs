//! Pinned-vs-pageable tradeoff exploration — the paper's stated future
//! work (§VII): "we plan to expand the scope of the data transfer overhead
//! modeling to explore the tradeoffs of using different types of memory
//! (i.e., pinned and pageable) and account for the overhead of memory
//! allocation."
//!
//! The tradeoff is real: pinned transfers are faster per byte, but
//! `cudaHostAlloc` must lock every page up front, so a workload that
//! transfers little (or only once) can come out ahead with plain
//! `malloc`. This module calibrates *both* memory types, adds the
//! allocation model, and recommends a host memory type per workload.

use crate::projector::Grophecy;
use gpp_datausage::{TransferDir, TransferPlan};
use gpp_pcie::model::DirectionalModel;
use gpp_pcie::{AllocModel, Bus, Calibrator, Direction, MemType};

/// The outcome of the tradeoff exploration for one transfer plan.
#[derive(Debug, Clone)]
pub struct MemTypeReport {
    /// Projected transfer seconds with pinned host memory.
    pub pinned_transfer: f64,
    /// Projected transfer seconds with pageable host memory.
    pub pageable_transfer: f64,
    /// One-time host allocation overhead, pinned.
    pub pinned_alloc: f64,
    /// One-time host allocation overhead, pageable.
    pub pageable_alloc: f64,
    /// Iteration counts considered equal or better for pageable memory:
    /// below this many *offload sessions* (allocate + transfer cycles),
    /// pageable wins; above it, pinned's faster transfers amortize the
    /// page-locking cost. `None` when pinned wins even once.
    pub pageable_wins_below_sessions: Option<u32>,
}

impl MemTypeReport {
    /// Total projected cost of `sessions` offload sessions with each type.
    pub fn totals(&self, sessions: u32) -> (f64, f64) {
        (
            self.pinned_alloc + self.pinned_transfer * sessions as f64,
            self.pageable_alloc + self.pageable_transfer * sessions as f64,
        )
    }

    /// The recommended memory type for `sessions` offload sessions.
    pub fn recommend(&self, sessions: u32) -> MemType {
        let (pin, page) = self.totals(sessions);
        if pin <= page {
            MemType::Pinned
        } else {
            MemType::Pageable
        }
    }
}

/// A both-memory-types calibration: the pinned model (the paper's default)
/// plus a pageable model fitted by the same two-point procedure.
pub struct DualCalibration {
    /// Pinned-memory fit.
    pub pinned: DirectionalModel,
    /// Pageable-memory fit.
    pub pageable: DirectionalModel,
    /// Allocation-cost model.
    pub alloc: AllocModel,
}

impl DualCalibration {
    /// Calibrates both memory types on a bus.
    pub fn run(bus: &mut dyn Bus) -> Self {
        let pinned = Calibrator::default().calibrate(bus);
        let pageable = Calibrator {
            mem: MemType::Pageable,
            ..Calibrator::default()
        }
        .calibrate(bus);
        DualCalibration {
            pinned,
            pageable,
            alloc: AllocModel::cuda2_era(),
        }
    }

    /// Projects the plan's transfer time under one memory type's model.
    pub fn transfer_time(&self, plan: &TransferPlan, mem: MemType) -> f64 {
        let model = match mem {
            MemType::Pinned => &self.pinned,
            MemType::Pageable => &self.pageable,
        };
        plan.all()
            .map(|t| {
                let dir = match t.dir {
                    TransferDir::ToDevice => Direction::HostToDevice,
                    TransferDir::FromDevice => Direction::DeviceToHost,
                };
                model.predict(t.bytes, dir)
            })
            .sum()
    }

    /// Runs the full tradeoff analysis for a transfer plan.
    ///
    /// A "session" is one allocate-transfer-compute-transfer cycle; host
    /// buffers are allocated once and reused across sessions, so the
    /// allocation cost is paid once while the per-session transfer
    /// difference accumulates.
    pub fn explore(&self, plan: &TransferPlan) -> MemTypeReport {
        let host_bytes = plan.h2d_bytes().max(plan.d2h_bytes());
        let pinned_transfer = self.transfer_time(plan, MemType::Pinned);
        let pageable_transfer = self.transfer_time(plan, MemType::Pageable);
        let pinned_alloc = self.alloc.host(host_bytes, MemType::Pinned);
        let pageable_alloc = self.alloc.host(host_bytes, MemType::Pageable);

        // Find the break-even session count: pinned_alloc + s·pin_t =
        // pageable_alloc + s·page_t  ⇒  s = Δalloc / Δtransfer.
        let d_alloc = pinned_alloc - pageable_alloc;
        let d_transfer = pageable_transfer - pinned_transfer;
        let pageable_wins_below_sessions = if d_transfer <= 0.0 {
            // Pageable transfers are no slower: pageable always wins.
            Some(u32::MAX)
        } else if d_alloc <= 0.0 {
            // Pinned allocation is no more expensive: pinned always wins.
            None
        } else {
            Some((d_alloc / d_transfer).ceil() as u32)
        };

        MemTypeReport {
            pinned_transfer,
            pageable_transfer,
            pinned_alloc,
            pageable_alloc,
            pageable_wins_below_sessions,
        }
    }
}

impl Grophecy {
    /// Convenience: run the dual calibration and tradeoff exploration for
    /// a program's transfer plan on the given bus. (The projector itself
    /// stays pinned-only, matching the paper's assumption; this is the
    /// opt-in future-work analysis.)
    pub fn explore_memtype(&self, bus: &mut dyn Bus, plan: &TransferPlan) -> MemTypeReport {
        DualCalibration::run(bus).explore(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_pcie::{BusParams, BusSimulator};
    use gpp_workloads::{hotspot::HotSpot, srad::Srad};

    fn dual() -> (BusSimulator, DualCalibration) {
        let mut bus = BusSimulator::new(BusParams::pcie_v1_x16(), 5);
        let cal = DualCalibration::run(&mut bus);
        (bus, cal)
    }

    #[test]
    fn pageable_model_is_slower_per_byte() {
        let (_, cal) = dual();
        assert!(cal.pageable.h2d.bandwidth() < cal.pinned.h2d.bandwidth());
        assert!(cal.pageable.d2h.bandwidth() < cal.pinned.d2h.bandwidth());
    }

    #[test]
    fn single_session_small_workload_prefers_pageable() {
        // HotSpot 64x64 moves ~48 KB: locking pages costs more than the
        // slower transfer.
        let (_, cal) = dual();
        let hs = HotSpot { n: 64 };
        let plan = gpp_datausage::analyze(&hs.program(), &hs.hints());
        let report = cal.explore(&plan);
        assert_eq!(report.recommend(1), MemType::Pageable);
    }

    #[test]
    fn repeated_sessions_prefer_pinned_for_big_workloads() {
        let (_, cal) = dual();
        let s = Srad { n: 2048 };
        let plan = gpp_datausage::analyze(&s.program(), &s.hints());
        let report = cal.explore(&plan);
        // 32 MB each way: pinned transfer advantage is milliseconds per
        // session; after a handful of sessions pinned must win.
        assert_eq!(report.recommend(100), MemType::Pinned);
        let crossover = report.pageable_wins_below_sessions.unwrap_or(0);
        assert!(crossover < 100, "crossover {crossover}");
    }

    #[test]
    fn totals_are_consistent_with_recommendation() {
        let (_, cal) = dual();
        let s = Srad { n: 1024 };
        let plan = gpp_datausage::analyze(&s.program(), &s.hints());
        let report = cal.explore(&plan);
        for sessions in [1u32, 2, 5, 20, 200] {
            let (pin, page) = report.totals(sessions);
            match report.recommend(sessions) {
                MemType::Pinned => assert!(pin <= page),
                MemType::Pageable => assert!(page < pin),
            }
        }
    }

    #[test]
    fn grophecy_hook_works() {
        use crate::machine::MachineConfig;
        let machine = MachineConfig::anl_eureka_node(5);
        let mut node = machine.node();
        let gro = Grophecy::calibrate(&machine, &mut node);
        let hs = HotSpot { n: 512 };
        let plan = gpp_datausage::analyze(&hs.program(), &hs.hints());
        let report = gro.explore_memtype(&mut node.bus, &plan);
        assert!(report.pinned_transfer > 0.0 && report.pageable_transfer > 0.0);
        assert!(report.pageable_transfer > report.pinned_transfer);
    }
}
