//! Machine-readable reports: a minimal JSON emitter for projections,
//! measurements, and speedup analyses.
//!
//! Downstream tooling (plotting scripts, CI dashboards) wants the
//! evaluation as data, not text tables. The sanctioned dependency set has
//! no JSON serializer, so this module carries a small, correct one: string
//! escaping per RFC 8259, `null` for non-finite floats, and a tiny
//! builder API used by the report constructors below.

use crate::measurement::AppMeasurement;
use crate::projector::AppProjection;
use crate::speedup::SpeedupReport;

/// A JSON value under construction.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON spliced in verbatim. The caller guarantees the
    /// string is valid JSON — used when a reply embeds other replies
    /// byte-for-byte (the `batch` frame).
    Raw(String),
}

impl Json {
    /// Object constructor.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integers print without a trailing ".0".
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Raw(json) => out.push_str(json),
        }
    }
}

/// Serializes a projection. The `timeline` and `multi_gpu` keys appear
/// only when the projection carries them (stream-annotated programs /
/// multi-device machines), so reports for plain programs on single-GPU
/// machines are byte-identical to pre-overlap builds.
pub fn projection_json(p: &AppProjection) -> Json {
    let mut fields = vec![
        (
            "kernels",
            Json::Arr(
                p.kernels
                    .iter()
                    .map(|k| {
                        Json::obj([
                            ("name", Json::Str(k.name.clone())),
                            ("seconds", Json::Num(k.time)),
                            ("config", Json::Str(k.config.to_string())),
                            ("bound", Json::Str(k.bound.to_string())),
                            ("dram_bytes", Json::Num(k.dram_bytes)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("kernel_seconds", Json::Num(p.kernel_time)),
        (
            "transfers",
            Json::Arr(
                p.plan
                    .all()
                    .zip(&p.transfer_times)
                    .map(|(t, secs)| {
                        Json::obj([
                            ("array", Json::Str(t.name.clone())),
                            ("bytes", Json::Num(t.bytes as f64)),
                            ("direction", Json::Str(t.dir.to_string())),
                            ("exact", Json::Bool(t.exact)),
                            ("seconds", Json::Num(*secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("transfer_seconds", Json::Num(p.transfer_time)),
        ("total_seconds_1_iter", Json::Num(p.total_time(1))),
    ];
    if let Some(tl) = &p.timeline {
        fields.push((
            "timeline",
            Json::obj([
                (
                    "events",
                    Json::Arr(
                        tl.events
                            .iter()
                            .map(|e| {
                                Json::obj([
                                    ("array", Json::Str(e.array.clone())),
                                    ("direction", Json::Str(e.dir.to_string())),
                                    ("pos", Json::Num(e.pos as f64)),
                                    ("stream", Json::Num(e.stream as f64)),
                                    ("chunks", Json::Num(e.chunks as f64)),
                                    ("bytes", Json::Num(e.bytes as f64)),
                                    ("seconds", Json::Num(e.seconds)),
                                    (
                                        "overlaps_kernel",
                                        e.overlaps_kernel
                                            .map_or(Json::Null, |k| Json::Num(k as f64)),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("serial_pass_seconds", Json::Num(tl.serial_pass)),
                ("overlapped_pass_seconds", Json::Num(tl.overlapped_pass)),
                ("saved_seconds", Json::Num(tl.saved())),
                (
                    "overlapped_total_1_iter",
                    Json::Num(p.overlapped_total_time(1)),
                ),
            ]),
        ));
    }
    if let Some(mg) = &p.multi_gpu {
        fields.push((
            "multi_gpu",
            Json::obj([
                ("device_count", Json::Num(mg.device_count() as f64)),
                ("contended", Json::Bool(mg.is_contended())),
                (
                    "devices",
                    Json::Arr(
                        mg.devices
                            .iter()
                            .map(|d| {
                                Json::obj([
                                    ("device", Json::Num(d.id as f64)),
                                    ("kernel_seconds", Json::Num(d.kernel_seconds)),
                                    ("transfer_seconds", Json::Num(d.transfer_seconds)),
                                    ("bandwidth_factor", Json::Num(d.bandwidth_factor)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("total_seconds_1_iter", Json::Num(mg.total_time(1))),
            ]),
        ));
    }
    Json::obj(fields)
}

/// Serializes a measurement.
pub fn measurement_json(m: &AppMeasurement) -> Json {
    Json::obj([
        (
            "kernels",
            Json::Arr(
                m.kernel_times
                    .iter()
                    .map(|(name, t)| {
                        Json::obj([
                            ("name", Json::Str(name.clone())),
                            ("seconds", Json::Num(*t)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("kernel_seconds", Json::Num(m.kernel_time)),
        ("transfer_seconds", Json::Num(m.transfer_time)),
        ("cpu_seconds", Json::Num(m.cpu_time)),
        ("percent_transfer", Json::Num(m.percent_transfer())),
        ("speedup_1_iter", Json::Num(m.speedup(1))),
    ])
}

/// Serializes a speedup report (one Table II row).
pub fn speedup_json(r: &SpeedupReport) -> Json {
    Json::obj([
        ("app", Json::Str(r.app.clone())),
        ("dataset", Json::Str(r.dataset.clone())),
        ("iters", Json::Num(r.iters as f64)),
        ("measured", Json::Num(r.measured)),
        ("predicted_kernel_only", Json::Num(r.predicted_kernel_only)),
        (
            "predicted_transfer_only",
            Json::Num(r.predicted_transfer_only),
        ),
        ("predicted_combined", Json::Num(r.predicted_combined)),
        ("error_kernel_only_pct", Json::Num(r.error_kernel_only())),
        (
            "error_transfer_only_pct",
            Json::Num(r.error_transfer_only()),
        ),
        ("error_combined_pct", Json::Num(r.error_combined())),
        ("kernel_time_error_pct", Json::Num(r.kernel_time_error)),
        ("transfer_time_error_pct", Json::Num(r.transfer_time_error)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::measurement::measure;
    use crate::projector::Grophecy;
    use gpp_datausage::Hints;
    use gpp_workloads::hotspot::HotSpot;

    #[test]
    fn primitives_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            concat!(r#""a\"b\\c\nd"#, r"\u0001", "\"")
        );
        assert_eq!(
            Json::Arr(vec![Json::Num(1.0), Json::Null]).render(),
            "[1,null]"
        );
        assert_eq!(
            Json::obj([("k", Json::Num(2.0)), ("s", Json::Str("x".into()))]).render(),
            r#"{"k":2,"s":"x"}"#
        );
    }

    #[test]
    fn full_report_is_valid_shape() {
        let machine = MachineConfig::anl_eureka_node(3);
        let mut node = machine.node();
        let gro = Grophecy::calibrate(&machine, &mut node);
        let hs = HotSpot { n: 256 };
        let program = hs.program();
        let proj = gro.project(&program, &Hints::new());
        let meas = measure(&mut node, &program, &proj);
        let r = SpeedupReport::build("HotSpot", "256 x 256", &proj, &meas, 1);

        let json = Json::obj([
            ("projection", projection_json(&proj)),
            ("measurement", measurement_json(&meas)),
            ("speedup", speedup_json(&r)),
        ])
        .render();
        // Structural smoke checks: balanced braces, expected keys, no NaNs.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            r#""kernel_seconds""#,
            r#""transfer_seconds""#,
            r#""percent_transfer""#,
            r#""error_combined_pct""#,
            r#""direction""#,
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("NaN"));
        let _ = Hints::new();
    }

    #[test]
    fn overlap_keys_appear_only_when_present() {
        use gpp_skeleton::builder::{idx, ProgramBuilder};
        use gpp_skeleton::{ElemType, Flops, TransferKind};

        let build = |stream, chunks| {
            let mut p = ProgramBuilder::new("vadd");
            let n = 1 << 20;
            let a = p.array("a", ElemType::F32, &[n]);
            let b = p.array("b", ElemType::F32, &[n]);
            let mut k = p.kernel("add");
            let i = k.parallel_loop("i", n as u64);
            k.statement()
                .read(a, &[idx(i)])
                .write(b, &[idx(i)])
                .flops(Flops {
                    adds: 1,
                    ..Flops::default()
                })
                .finish();
            k.finish();
            p.transfer_with(a, TransferKind::HostToDevice, 0, stream, chunks);
            p.transfer_with(b, TransferKind::DeviceToHost, 1, stream, chunks);
            p.build().unwrap()
        };

        let mut machine = MachineConfig::anl_eureka_node(3);
        let mut node = machine.node();
        let gro = Grophecy::calibrate(&machine, &mut node);
        // Synchronous schedule, single device: legacy shape exactly.
        let plain = projection_json(&gro.project(&build(0, 1), &Hints::new())).render();
        assert!(!plain.contains(r#""timeline""#), "{plain}");
        assert!(!plain.contains(r#""multi_gpu""#), "{plain}");

        // Streamed schedule on a dual-GPU machine: both sections appear.
        machine.devices.push(crate::machine::DeviceLink {
            id: 1,
            bus: gpp_pcie::BusParams::pcie_v2_x16(),
        });
        let mut node = machine.node();
        let gro = Grophecy::calibrate(&machine, &mut node);
        let rich = projection_json(&gro.project(&build(1, 4), &Hints::new())).render();
        for key in [
            r#""timeline""#,
            r#""overlapped_pass_seconds""#,
            r#""overlaps_kernel""#,
            r#""multi_gpu""#,
            r#""bandwidth_factor""#,
        ] {
            assert!(rich.contains(key), "missing {key} in {rich}");
        }
        assert_eq!(rich.matches('{').count(), rich.matches('}').count());
    }

    #[test]
    fn numbers_round_trip_textually() {
        // The emitter must not mangle magnitudes.
        let x = 0.004087;
        let s = Json::Num(x).render();
        let back: f64 = s.parse().unwrap();
        assert_eq!(back, x);
    }
}
