//! Per-component seed-stream derivation for a simulated node.
//!
//! One node seed ("which day you measured on") fans out into independent
//! RNG streams for each simulated component. The derivations live here —
//! and only here — so call sites can't silently diverge: historically the
//! bus offset was an inline `seed.wrapping_add(1)` inside
//! [`crate::machine::MachineConfig::node`], one copy away from a
//! determinism bug.
//!
//! The exact values are load-bearing: every pinned expectation in the
//! determinism and chaos suites was recorded against GPU = `seed`,
//! bus = `seed + 1`. Changing a derivation is a breaking change to every
//! recorded measurement.

/// The GPU simulator's seed stream: the node seed itself.
pub fn gpu_seed(node_seed: u64) -> u64 {
    node_seed
}

/// The bus simulator's seed stream: offset by one so bus noise draws are
/// independent of GPU noise draws at the same node seed.
pub fn bus_seed(node_seed: u64) -> u64 {
    node_seed.wrapping_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_distinct_and_pinned() {
        assert_eq!(gpu_seed(2013), 2013);
        assert_eq!(bus_seed(2013), 2014);
        assert_eq!(bus_seed(u64::MAX), 0); // wraps, never panics
        assert_ne!(gpu_seed(7), bus_seed(7));
    }
}
