//! The machine registry: named [`MachineConfig`] datasheets, built-in and
//! user-loaded.
//!
//! Every layer that used to string-match `eureka`/`v2` now routes through a
//! registry lookup: the CLI (`--machine <name>`, `gpp machines`), the
//! serving layer (per-machine calibration caches and stats), and the bench
//! cross-machine evaluation. Built-ins are the registry's *definitions* of
//! the two paper systems; user machines come from `.gmach` datasheets
//! loaded out of a directory ([`MachineRegistry::load_dir`]).

use crate::datasheet;
use crate::machine::MachineConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A lookup for a machine name that isn't registered. Carries the sorted
/// known-name list so every surface (serve replies, CLI stderr) can print
/// the same hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMachine {
    /// The name that was asked for.
    pub requested: String,
    /// All registered names, sorted.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown machine `{}` (known: {})",
            self.requested,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownMachine {}

/// A datasheet file that failed to load into the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryError {
    /// The file (or directory) that failed.
    pub path: PathBuf,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for RegistryError {}

/// Named machine datasheets, keyed by their short `id`.
///
/// Iteration and name listings are in sorted (BTreeMap) order, so every
/// consumer — reports, `stats`, error hints — is deterministic.
#[derive(Debug, Clone)]
pub struct MachineRegistry {
    machines: BTreeMap<String, MachineConfig>,
}

impl Default for MachineRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl MachineRegistry {
    /// An empty registry (no machines at all).
    pub fn empty() -> Self {
        MachineRegistry {
            machines: BTreeMap::new(),
        }
    }

    /// The built-in registry: the two systems of the paper's cross-machine
    /// experiment, `eureka` and `v2`. This is the single place that names
    /// them; everything else looks them up.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.insert(MachineConfig::anl_eureka_node(0));
        r.insert(MachineConfig::pcie_v2_gt200_node(0));
        r
    }

    /// Registers (or replaces) a machine under its `id`. Returns the
    /// previous entry with that id, if any.
    pub fn insert(&mut self, machine: MachineConfig) -> Option<MachineConfig> {
        self.machines.insert(machine.id.clone(), machine)
    }

    /// Sorted registered names.
    pub fn names(&self) -> Vec<String> {
        self.machines.keys().cloned().collect()
    }

    /// The registered machine, as loaded (its own stored seed).
    pub fn get(&self, name: &str) -> Option<&MachineConfig> {
        self.machines.get(name)
    }

    /// Resolves a machine for use at `seed`, the way every routing layer
    /// consumes the registry: clone the datasheet, override the node seed.
    pub fn config(&self, name: &str, seed: u64) -> Result<MachineConfig, UnknownMachine> {
        match self.machines.get(name) {
            Some(m) => Ok(m.clone().with_seed(seed)),
            None => Err(UnknownMachine {
                requested: name.to_string(),
                known: self.names(),
            }),
        }
    }

    /// All machines, in sorted-name order.
    pub fn iter(&self) -> impl Iterator<Item = &MachineConfig> {
        self.machines.values()
    }

    /// Number of registered machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Loads one `.gmach` datasheet, resolving `bus replay ... from`
    /// sidecar traces relative to the file's directory. Returns the
    /// registered id.
    pub fn load_file(&mut self, path: &Path) -> Result<String, RegistryError> {
        let err = |message: String| RegistryError {
            path: path.to_path_buf(),
            message,
        };
        let text = std::fs::read_to_string(path).map_err(|e| err(e.to_string()))?;
        let dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();
        let machine = datasheet::parse_with(&text, &mut |rel| {
            std::fs::read_to_string(dir.join(rel)).map_err(|e| format!("{rel}: {e}"))
        })
        .map_err(|e| err(e.to_string()))?;
        let id = machine.id.clone();
        self.insert(machine);
        Ok(id)
    }

    /// Loads every `*.gmach` in a directory (sorted by file name, so later
    /// files win id collisions deterministically). Returns the registered
    /// ids in load order.
    pub fn load_dir(&mut self, dir: &Path) -> Result<Vec<String>, RegistryError> {
        let err = |message: String| RegistryError {
            path: dir.to_path_buf(),
            message,
        };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| err(e.to_string()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "gmach"))
            .collect();
        paths.sort();
        let mut ids = Vec::with_capacity(paths.len());
        for p in &paths {
            ids.push(self.load_file(p)?);
        }
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_are_sorted_and_complete() {
        let r = MachineRegistry::builtin();
        assert_eq!(r.names(), vec!["eureka".to_string(), "v2".to_string()]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn config_overrides_the_seed() {
        let r = MachineRegistry::builtin();
        let m = r.config("eureka", 42).unwrap();
        assert_eq!(m.seed, 42);
        assert_eq!(m, MachineConfig::anl_eureka_node(42));
        let m = r.config("v2", 7).unwrap();
        assert_eq!(m, MachineConfig::pcie_v2_gt200_node(7));
    }

    #[test]
    fn unknown_machines_list_the_known_ones() {
        let e = MachineRegistry::builtin().config("cray-1", 1).unwrap_err();
        assert_eq!(
            e.to_string(),
            "unknown machine `cray-1` (known: eureka, v2)"
        );
    }

    #[test]
    fn iteration_is_sorted() {
        let mut r = MachineRegistry::builtin();
        let mut extra = MachineConfig::anl_eureka_node(0);
        extra.id = "aaa".into();
        r.insert(extra);
        let ids: Vec<&str> = r.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(ids, vec!["aaa", "eureka", "v2"]);
    }

    #[test]
    fn load_dir_reads_datasheets_and_sidecar_traces() {
        let dir = std::env::temp_dir().join(format!("gmach-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let eureka = crate::datasheet::to_text(&MachineConfig::anl_eureka_node(2013));
        std::fs::write(dir.join("eureka.gmach"), &eureka).unwrap();
        let mut recorded = MachineConfig::anl_eureka_node(2013);
        recorded.id = "recorded".into();
        recorded.name = "replayed".into();
        let sheet = crate::datasheet::to_text(&recorded)
            .replace("bus sim\n", "bus replay \"trace\" from \"side.trace\"\n");
        // Strip the sim key lines, now orphaned under the replay header.
        let sheet: String = sheet
            .lines()
            .scan(false, |in_bus, l| {
                if l.starts_with("bus ") {
                    *in_bus = true;
                } else if !l.starts_with("  ") {
                    *in_bus = false;
                }
                Some((*in_bus && l.starts_with("  "), l))
            })
            .filter(|&(drop, _)| !drop)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        std::fs::write(dir.join("recorded.gmach"), sheet).unwrap();
        std::fs::write(
            dir.join("side.trace"),
            "1 h2d pinned 1e-5\n536870912 h2d pinned 0.2\n\
             1 d2h pinned 1e-5\n536870912 d2h pinned 0.21\n",
        )
        .unwrap();

        let mut r = MachineRegistry::builtin();
        let ids = r.load_dir(&dir).unwrap();
        assert_eq!(ids, vec!["eureka".to_string(), "recorded".to_string()]);
        assert_eq!(r.len(), 3); // eureka overwritten, v2 kept, recorded new
        assert_eq!(r.get("recorded").unwrap().bus.kind(), "replay");
        assert_eq!(r.get("eureka").unwrap().seed, 2013);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_errors_carry_the_path() {
        let mut r = MachineRegistry::empty();
        let e = r.load_file(Path::new("/nonexistent/x.gmach")).unwrap_err();
        assert!(e.to_string().contains("x.gmach"));
    }
}
