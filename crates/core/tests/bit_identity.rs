//! Bit-identity gate for the timeline projector refactor.
//!
//! The goldens in `fixtures/goldens/projection_bits.txt` were generated
//! from the pre-timeline scalar projector. Every committed
//! annotation-free skeleton projected on every committed single-device
//! machine must reproduce those bit patterns exactly — at every thread
//! count — or the refactor changed observable output for programs that
//! never asked for streams.
//!
//! Regenerate (only when an intentional numeric change lands) with:
//!
//! ```text
//! GPP_BLESS=1 cargo test -p grophecy --test bit_identity
//! ```

use gpp_datausage::Hints;
use gpp_skeleton::text;
use grophecy::projector::Grophecy;
use grophecy::MachineRegistry;
use std::fmt::Write as _;

const SEED: u64 = 2013;
const THREADS: [usize; 3] = [1, 2, 8];

/// The committed single-device machines (multi-GPU fixtures are
/// deliberately absent: their projections did not exist pre-refactor).
const MACHINES: [&str; 4] = ["eureka", "recorded", "v2", "v3"];

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn registry() -> MachineRegistry {
    let mut registry = MachineRegistry::builtin();
    registry
        .load_dir(std::path::Path::new(&repo_path("fixtures/machines")))
        .unwrap();
    registry
}

fn skeletons() -> Vec<(String, String)> {
    let dir = repo_path("skeletons");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.ends_with(".gsk").then_some(name)
        })
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let src = std::fs::read_to_string(format!("{dir}/{n}")).unwrap();
            (n, src)
        })
        .collect()
}

/// One golden line per (skeleton, machine, threads) triple: every float
/// the projection exposes, as raw bits.
fn render_current() -> String {
    let registry = registry();
    let mut out = String::new();
    for threads in THREADS {
        gpp_par::set_threads(threads);
        for (name, src) in skeletons() {
            let program = text::parse(&src).unwrap();
            // Stream-annotated skeletons are out of scope by definition:
            // the goldens pin the *annotation-free* surface the scalar
            // projector produced before the timeline existed.
            if program.has_stream_annotations() {
                continue;
            }
            let hints = Hints::for_program(&program);
            for machine_name in MACHINES {
                let machine = registry.config(machine_name, SEED).unwrap();
                let mut node = machine.node();
                let gro = Grophecy::calibrate(&machine, &mut node);
                let proj = gro.project(&program, &hints);
                write!(
                    out,
                    "{name} {machine_name} threads={threads} \
                     kernel={:016x} transfer={:016x} alloc={:016x} total={:016x}",
                    proj.kernel_time.to_bits(),
                    proj.transfer_time.to_bits(),
                    proj.alloc_time.to_bits(),
                    proj.total_time(1).to_bits(),
                )
                .unwrap();
                for t in &proj.transfer_times {
                    write!(out, " {:016x}", t.to_bits()).unwrap();
                }
                out.push('\n');
            }
        }
    }
    gpp_par::set_threads(0);
    out
}

#[test]
fn annotation_free_projections_are_bit_identical_to_the_goldens() {
    let path = repo_path("fixtures/goldens/projection_bits.txt");
    let current = render_current();
    if std::env::var("GPP_BLESS").is_ok() {
        std::fs::create_dir_all(repo_path("fixtures/goldens")).unwrap();
        std::fs::write(&path, &current).unwrap();
        eprintln!("blessed {path}");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("missing goldens — run with GPP_BLESS=1 to generate them");
    for (i, (got, want)) in current.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "projection bits drifted from the pre-refactor goldens (line {})",
            i + 1
        );
    }
    assert_eq!(
        current.lines().count(),
        golden.lines().count(),
        "golden coverage changed"
    );
}
