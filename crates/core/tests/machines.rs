//! Integration tests for the machine abstraction: `.gmach` datasheet
//! round-trips (property + golden fixtures) and replay-bus calibration
//! parity between the registry path and a bare [`RecordedBus`].

use gpp_pcie::{BusParams, Calibrator, Direction, MemType, RecordedBus};
use grophecy::machine::{BusSpec, DeviceLink, ReplayTrace, RootComplex};
use grophecy::projector::Grophecy;
use grophecy::{datasheet, MachineConfig, MachineRegistry};
use proptest::prelude::*;

const IDS: [&str; 4] = ["alpha", "b-2", "node_3", "x99.lab"];
const NAMES: [&str; 4] = [
    "A test node",
    "quoted 'single' ok",
    "unicode: Müller-node",
    "trailing space kept ",
];

/// Builds a machine from proptest-chosen knobs: either built-in base,
/// arbitrary identity/seed, mutated float/integer parameters, and an
/// optionally replayed bus.
#[allow(clippy::too_many_arguments)]
fn build_machine(
    base: u8,
    idx: usize,
    seed: u64,
    lanes: u32,
    link_eff: f64,
    mem_eff: f64,
    clock: u64,
    replay: bool,
    times: Vec<f64>,
    extras: u32,
    shared_bw: Option<f64>,
) -> MachineConfig {
    let mut m = if base == 0 {
        MachineConfig::anl_eureka_node(seed)
    } else {
        MachineConfig::pcie_v2_gt200_node(seed)
    };
    m.id = IDS[idx % IDS.len()].to_string();
    m.name = NAMES[idx % NAMES.len()].to_string();
    m.gpu.mem_efficiency = mem_eff;
    m.gpu_spec.clock_hz = clock as f64;
    if replay {
        // Two sizes per curve (the minimum a trace needs), times from the
        // strategy — exercising float rendering across magnitudes.
        let sizes = [1u64, 1 << 29];
        let mut samples = Vec::new();
        for (i, &(dir, mem)) in [
            (Direction::HostToDevice, MemType::Pinned),
            (Direction::DeviceToHost, MemType::Pinned),
        ]
        .iter()
        .enumerate()
        {
            for (j, &bytes) in sizes.iter().enumerate() {
                samples.push((bytes, dir, mem, times[(2 * i + j) % times.len()]));
            }
        }
        m.bus = BusSpec::Replay(ReplayTrace {
            label: format!("trace-{}", IDS[idx % IDS.len()]),
            samples,
        });
    } else if let BusSpec::Sim(p) = &mut m.bus {
        p.lanes = lanes;
        p.link_efficiency = link_eff;
    }
    for i in 0..extras {
        // Extra GPU links, alternating slot widths (asymmetric wiring).
        let mut bus = BusParams::pcie_v2_x16();
        bus.lanes = if i % 2 == 0 { 16 } else { 8 };
        m.devices.push(DeviceLink { id: i + 1, bus });
    }
    if let Some(shared_bw) = shared_bw {
        m.root_complex = Some(RootComplex { shared_bw });
    }
    m
}

proptest! {
    /// §satellite: `parse(display(m)) == m` for generated datasheets, and
    /// the canonical form is a fixed point of the writer.
    #[test]
    fn datasheet_roundtrip_is_lossless(
        base in 0u8..2,
        idx in 0usize..4,
        seed in 0u64..u64::MAX,
        lanes_pick in 0usize..4,
        link_eff in 0.5f64..0.95,
        mem_eff in 0.5f64..0.95,
        clock in 100_000_000u64..3_000_000_000,
        replay in any::<bool>(),
        times in proptest::collection::vec(1e-6f64..1.0, 4..8),
        extras in 0u32..4,
        contended in any::<bool>(),
        shared_bw in 1e8f64..1e11,
    ) {
        let lanes = [1u32, 4, 8, 16][lanes_pick];
        let m = build_machine(
            base, idx, seed, lanes, link_eff, mem_eff, clock, replay, times, extras,
            contended.then_some(shared_bw),
        );
        let text = datasheet::to_text(&m);
        let back = datasheet::parse(&text)
            .unwrap_or_else(|e| panic!("canonical text failed to parse: {e}\n{text}"));
        prop_assert_eq!(&back, &m);
        // Byte-stable: writing the re-parsed machine reproduces the text.
        prop_assert_eq!(datasheet::to_text(&back), text);
    }
}

/// The committed fixtures are byte-for-byte the canonical datasheets of
/// the built-ins — `gpp machines --export` regenerates them.
#[test]
fn golden_fixtures_match_the_builtins() {
    for (file, builtin) in [
        ("eureka.gmach", MachineConfig::anl_eureka_node(0)),
        ("v2.gmach", MachineConfig::pcie_v2_gt200_node(0)),
    ] {
        let path = format!(
            "{}/../../fixtures/machines/{file}",
            env!("CARGO_MANIFEST_DIR")
        );
        let golden = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            datasheet::to_text(&builtin),
            golden,
            "{file} drifted from the built-in — regenerate with `gpp machines --export`"
        );
    }
}

/// Every fixture in the directory loads through the registry, including
/// the replay-backed one with its sidecar trace.
#[test]
fn fixture_directory_loads_into_the_registry() {
    let dir = format!("{}/../../fixtures/machines", env!("CARGO_MANIFEST_DIR"));
    let mut registry = MachineRegistry::builtin();
    let loaded = registry.load_dir(std::path::Path::new(&dir)).unwrap();
    let expect = vec!["dual-v2", "eureka", "quad-v2", "recorded", "v2", "v3"];
    assert_eq!(loaded, expect);
    assert_eq!(registry.names(), expect);
    let recorded = registry.get("recorded").unwrap();
    assert_eq!(recorded.bus.kind(), "replay");
    // Loaded built-ins are identical to the compiled-in ones.
    assert_eq!(
        registry.get("eureka").unwrap(),
        &MachineConfig::anl_eureka_node(0)
    );
}

/// The committed multi-GPU fixtures are byte-for-byte canonical (the
/// writer's fixed point) and carry the topology they claim: extra
/// `device` links and a shared root complex.
#[test]
fn multi_gpu_fixtures_are_canonical_and_contended() {
    let dir = format!("{}/../../fixtures/machines", env!("CARGO_MANIFEST_DIR"));
    for (file, extra_devices) in [("dual-v2.gmach", 1), ("quad-v2.gmach", 3)] {
        let text = std::fs::read_to_string(format!("{dir}/{file}")).unwrap();
        let m = datasheet::parse(&text).unwrap();
        assert_eq!(
            datasheet::to_text(&m),
            text,
            "{file} is not the canonical writer's fixed point"
        );
        assert!(m.is_multi_device(), "{file}");
        assert_eq!(m.devices.len(), extra_devices, "{file}");
        assert_eq!(m.device_count(), extra_devices + 1, "{file}");
        let rc = m.root_complex.as_ref().expect("shared root complex");
        assert!(rc.shared_bw > 0.0);
    }
}

/// Calibrating through the registry's replay machine gives exactly the
/// α/β a bare [`RecordedBus`] over the same samples gives: the machine
/// abstraction adds nothing between the trace and the model.
#[test]
fn replay_calibration_matches_a_bare_recorded_bus() {
    let dir = format!("{}/../../fixtures/machines", env!("CARGO_MANIFEST_DIR"));
    let mut registry = MachineRegistry::empty();
    registry
        .load_file(std::path::Path::new(&format!("{dir}/recorded.gmach")))
        .unwrap();
    let machine = registry.config("recorded", 2013).unwrap();
    let mut node = machine.node();
    let gro = Grophecy::calibrate(&machine, &mut node);

    let trace = std::fs::read_to_string(format!("{dir}/eureka-day0.trace")).unwrap();
    let mut bare = RecordedBus::parse("eureka-day0", &trace).unwrap();
    let direct = Calibrator::default().calibrate(&mut bare);

    assert_eq!(
        gro.pcie_model().h2d.alpha.to_bits(),
        direct.h2d.alpha.to_bits()
    );
    assert_eq!(
        gro.pcie_model().h2d.beta.to_bits(),
        direct.h2d.beta.to_bits()
    );
    assert_eq!(
        gro.pcie_model().d2h.alpha.to_bits(),
        direct.d2h.alpha.to_bits()
    );
    assert_eq!(
        gro.pcie_model().d2h.beta.to_bits(),
        direct.d2h.beta.to_bits()
    );
    // And a different seed changes nothing: a trace has no fresh noise.
    let mut node2 = registry.config("recorded", 9999).unwrap().node();
    let gro2 = Grophecy::calibrate(&machine, &mut node2);
    assert_eq!(
        gro.pcie_model().h2d.alpha.to_bits(),
        gro2.pcie_model().h2d.alpha.to_bits()
    );
}
