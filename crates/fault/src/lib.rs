//! Deterministically seeded fault injection for the GROPHECY++ stack.
//!
//! Real clusters fail in ways a clean simulator never does: PCIe transfers
//! error out or stall, calibration measurements come back as wild
//! outliers, workers panic, clients trickle bytes. This crate makes those
//! conditions *first-class and reproducible*: a [`FaultPlan`] maps named
//! **fault points** (string keys like `pcie.transfer.error`) to seeded
//! probability/schedule rules, and a [`FaultInjector`] compiled from the
//! plan answers "does occurrence #N of this point fail?" identically on
//! every run with the same seed.
//!
//! Design constraints:
//!
//! * **Dependency-free** — every crate in the stack (pcie, gpu-sim, core,
//!   serve, cli) can depend on it without cycles. The RNG is a local
//!   splitmix64, one independent stream per fault point, so consulting one
//!   point never perturbs another.
//! * **Zero-cost when disabled** — an empty plan answers [`fires`] with a
//!   single branch, no locks, no RNG draws; code paths guarded by an
//!   inactive injector are bit-identical to code without one.
//! * **Deterministic traces** — per-point decisions depend only on the
//!   plan seed and the point's own occurrence counter, so the recovery
//!   trace ([`FaultInjector::trace`]) is identical for identical seeds
//!   regardless of thread interleaving across points.
//!
//! [`fires`]: FaultInjector::fires
//!
//! # Plan grammar
//!
//! ```text
//! plan   := [clause (';' clause)*]
//! clause := 'seed=' N | point ':' spec (',' spec)*
//! spec   := 'p=' F        probability per occurrence (seeded Bernoulli)
//!         | 'every=' N    every Nth occurrence fires (N, 2N, 3N, ...)
//!         | 'first=' N    the first N occurrences fire, the rest pass
//!         | 'after=' N    occurrences beyond the Nth all fire
//!         | 'always'      every occurrence fires
//!         | 'factor=' F   magnitude for stall/outlier faults (default 20)
//! ```
//!
//! Example: `seed=42;pcie.transfer.error:p=0.2;serve.worker.panic:every=7`.
//!
//! # Example
//!
//! ```
//! use gpp_fault::{FaultInjector, FaultPlan};
//!
//! let plan: FaultPlan = "seed=7;demo.point:every=3".parse().unwrap();
//! let inj = FaultInjector::new(plan);
//! let fired: Vec<bool> = (0..6).map(|_| inj.fires("demo.point")).collect();
//! assert_eq!(fired, [false, false, true, false, false, true]);
//! assert_eq!(inj.total_fired(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex, PoisonError};

/// Fault point: a PCIe transfer fails outright (`Bus::try_transfer`
/// returns an error; the infallible path retries internally).
pub const PCIE_TRANSFER_ERROR: &str = "pcie.transfer.error";
/// Fault point: a PCIe transfer stalls — its measured time is multiplied
/// by the rule's `factor`.
pub const PCIE_TRANSFER_STALL: &str = "pcie.transfer.stall";
/// Fault point: a calibration measurement comes back as an outlier — the
/// sample is multiplied by the rule's `factor`.
pub const PCIE_CALIBRATION_OUTLIER: &str = "pcie.calibration.outlier";
/// Fault point: a GPU kernel launch fails transiently (driver hiccup).
pub const GPU_LAUNCH_TRANSIENT: &str = "gpu.launch.transient";
/// Fault point: a serve worker panics mid-request (caught and isolated).
pub const SERVE_WORKER_PANIC: &str = "serve.worker.panic";
/// Fault point: an inbound request frame is corrupted before decoding.
pub const SERVE_FRAME_CORRUPT: &str = "serve.frame.corrupt";
/// Fault point: one whole calibration attempt in the serving layer fails
/// (consulted once per attempt — the knob for "re-calibration keeps
/// failing" scenarios that must fall back to the last-good cache).
pub const SERVE_CALIBRATE_FAIL: &str = "serve.calibrate.fail";
/// Fault point: the gateway's forward to a shard fails as if the shard
/// were dead (consulted once per forward attempt; scope it with
/// `gateway.shard.down@shard1` to kill one shard of a pool). The gateway
/// marks the shard unhealthy and fails over along the hash ring.
pub const GATEWAY_SHARD_DOWN: &str = "gateway.shard.down";
/// Fault point: a gateway→shard forward stalls — the gateway sleeps for
/// the rule's `factor`, interpreted as **milliseconds**, before issuing
/// the upstream call (scopeable per shard like
/// [`GATEWAY_SHARD_DOWN`]). The chaos knob for widening the in-flight
/// window that single-flight coalescing collapses.
pub const GATEWAY_SHARD_SLOW: &str = "gateway.shard.slow";
/// Fault point: a serve worker's projection compute stalls — the worker
/// sleeps for the rule's `factor`, interpreted as **milliseconds**, before
/// computing (scopeable per machine like the pcie points). The chaos knob
/// for driving deadline-aware admission: queued requests age past their
/// `deadline_ms` budget and must be shed rather than computed.
pub const SERVE_COMPUTE_SLOW: &str = "serve.compute.slow";
/// Fault point: a gateway→shard forward hangs until the forward timeout —
/// the gateway sleeps min(`factor` ms, the attempt's timeout) and then
/// fails as timed out (scopeable per shard like [`GATEWAY_SHARD_DOWN`]).
/// Unlike [`GATEWAY_SHARD_SLOW`], the upstream call never happens: this is
/// the chaos knob for hedged requests, where the ring successor must win
/// while the primary hangs.
pub const GATEWAY_SHARD_HANG: &str = "gateway.shard.hang";

/// Every fault point the stack consults, for docs and plan validation
/// diagnostics (plans may name other points; unknown points simply never
/// get consulted).
pub const KNOWN_POINTS: &[&str] = &[
    PCIE_TRANSFER_ERROR,
    PCIE_TRANSFER_STALL,
    PCIE_CALIBRATION_OUTLIER,
    GPU_LAUNCH_TRANSIENT,
    SERVE_WORKER_PANIC,
    SERVE_FRAME_CORRUPT,
    SERVE_CALIBRATE_FAIL,
    GATEWAY_SHARD_DOWN,
    GATEWAY_SHARD_SLOW,
    SERVE_COMPUTE_SLOW,
    GATEWAY_SHARD_HANG,
];

/// The machine-scoped spelling of a fault point: `point@machine`.
///
/// Scoped rules let one plan target a single machine in a multi-machine
/// registry (e.g. `pcie.transfer.error@v2:always`). The plan grammar treats
/// the whole string as an opaque point name, so no parser change is needed;
/// injection sites that know their machine consult the scoped name first
/// via [`FaultInjector::fire_factor_scoped`].
pub fn scoped_point(point: &str, machine: &str) -> String {
    format!("{point}@{machine}")
}

/// Environment variable holding the process-wide fault plan.
pub const ENV_FAULT_PLAN: &str = "GPP_FAULT_PLAN";

/// When a rule decides an occurrence fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Seeded Bernoulli with this probability per occurrence.
    Prob(f64),
    /// Occurrences N, 2N, 3N, ... fire (1-based).
    Every(u64),
    /// The first N occurrences fire; the rest pass.
    First(u64),
    /// Occurrences beyond the Nth fire; the first N pass.
    After(u64),
    /// Every occurrence fires.
    Always,
}

/// One fault point's rule: when it fires, and how hard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rule {
    /// The firing schedule.
    pub mode: Mode,
    /// Magnitude for faults that inflate a measurement (stalls, outliers):
    /// the sample is multiplied by this factor.
    pub factor: f64,
}

impl Rule {
    /// A rule with the default factor (20×).
    pub fn new(mode: Mode) -> Rule {
        Rule { mode, factor: 20.0 }
    }

    /// Sets the magnitude factor.
    #[must_use]
    pub fn factor(mut self, factor: f64) -> Rule {
        self.factor = factor;
        self
    }
}

/// A parsed fault plan: a seed plus (point, rule) pairs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every per-point RNG stream.
    pub seed: u64,
    rules: Vec<(String, Rule)>,
}

impl FaultPlan {
    /// The empty plan: no point ever fires.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder: adds (or replaces) a rule for a point.
    #[must_use]
    pub fn with(mut self, point: &str, rule: Rule) -> FaultPlan {
        self.rules.retain(|(p, _)| p != point);
        self.rules.push((point.to_string(), rule));
        self
    }

    /// Builder: sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// The configured (point, rule) pairs, in plan order.
    pub fn rules(&self) -> &[(String, Rule)] {
        &self.rules
    }

    /// Whether the plan has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for (point, rule) in &self.rules {
            write!(f, ";{point}:")?;
            match rule.mode {
                Mode::Prob(p) => write!(f, "p={p}")?,
                Mode::Every(n) => write!(f, "every={n}")?,
                Mode::First(n) => write!(f, "first={n}")?,
                Mode::After(n) => write!(f, "after={n}")?,
                Mode::Always => write!(f, "always")?,
            }
            if rule.factor != 20.0 {
                write!(f, ",factor={}", rule.factor)?;
            }
        }
        Ok(())
    }
}

/// A plan string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// What went wrong, mentioning the offending clause.
    pub message: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.message)
    }
}

impl std::error::Error for PlanError {}

fn plan_err(message: impl Into<String>) -> PlanError {
    PlanError {
        message: message.into(),
    }
}

impl FromStr for FaultPlan {
    type Err = PlanError;

    fn from_str(s: &str) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan::empty();
        for clause in s.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| plan_err(format!("seed `{seed}` is not an integer")))?;
                continue;
            }
            let Some((point, spec)) = clause.split_once(':') else {
                return Err(plan_err(format!(
                    "clause `{clause}` is neither seed=N nor point:spec"
                )));
            };
            let point = point.trim();
            if point.is_empty() {
                return Err(plan_err(format!("clause `{clause}` has an empty point")));
            }
            let mut mode = None;
            let mut factor = 20.0;
            for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                if part == "always" {
                    mode = Some(Mode::Always);
                    continue;
                }
                let Some((key, value)) = part.split_once('=') else {
                    return Err(plan_err(format!("spec `{part}` is not key=value")));
                };
                let (key, value) = (key.trim(), value.trim());
                let int = || -> Result<u64, PlanError> {
                    value
                        .parse()
                        .map_err(|_| plan_err(format!("{key}=`{value}` is not an integer")))
                };
                let float = || -> Result<f64, PlanError> {
                    value
                        .parse()
                        .map_err(|_| plan_err(format!("{key}=`{value}` is not a number")))
                };
                match key {
                    "p" => {
                        let p = float()?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(plan_err(format!("p={p} outside [0, 1]")));
                        }
                        mode = Some(Mode::Prob(p));
                    }
                    "every" => {
                        let n = int()?;
                        if n == 0 {
                            return Err(plan_err("every=0 is meaningless (use always)"));
                        }
                        mode = Some(Mode::Every(n));
                    }
                    "first" => mode = Some(Mode::First(int()?)),
                    "after" => mode = Some(Mode::After(int()?)),
                    "factor" => {
                        factor = float()?;
                        if !(factor.is_finite() && factor > 0.0) {
                            return Err(plan_err(format!("factor={value} must be finite and > 0")));
                        }
                    }
                    other => return Err(plan_err(format!("unknown spec key `{other}`"))),
                }
            }
            let Some(mode) = mode else {
                return Err(plan_err(format!(
                    "point `{point}` has no firing rule (p/every/first/after/always)"
                )));
            };
            plan = plan.with(point, Rule { mode, factor });
        }
        Ok(plan)
    }
}

/// splitmix64 — the per-point RNG stream. Tiny, fast, and good enough for
/// Bernoulli draws; chosen over xoshiro to keep the state a single word.
#[derive(Debug, Clone)]
struct SplitMix64 {
    x: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { x: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53 mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, used to derive an independent RNG stream per point name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How many fired-occurrence indices each point remembers for the trace.
const TRACE_CAP: usize = 64;

struct PointState {
    rng: SplitMix64,
    occurrences: u64,
    fired: u64,
    fired_at: Vec<u64>,
}

struct Point {
    name: String,
    rule: Rule,
    state: Mutex<PointState>,
}

/// A compiled, thread-safe fault plan: answers per-occurrence fire/pass
/// decisions and keeps per-point counters for the recovery trace.
///
/// Decisions for one point depend only on (plan seed, point name, that
/// point's occurrence counter) — never on other points or on wall-clock —
/// so two runs with the same plan and the same per-point consultation
/// counts produce the same trace even under concurrency.
pub struct FaultInjector {
    plan: FaultPlan,
    points: Vec<Point>,
    by_name: HashMap<String, usize>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan.to_string())
            .field("fired", &self.total_fired())
            .finish()
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new(FaultPlan::empty())
    }
}

impl FaultInjector {
    /// Compiles a plan. Each point gets an RNG stream seeded from the plan
    /// seed and the point name, so streams are mutually independent.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let points: Vec<Point> = plan
            .rules()
            .iter()
            .map(|(name, rule)| Point {
                name: name.clone(),
                rule: *rule,
                state: Mutex::new(PointState {
                    rng: SplitMix64::new(plan.seed ^ fnv1a(name.as_bytes())),
                    occurrences: 0,
                    fired: 0,
                    fired_at: Vec::new(),
                }),
            })
            .collect();
        let by_name = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
        FaultInjector {
            plan,
            points,
            by_name,
        }
    }

    /// An injector that never fires (shared-ready, for defaults).
    pub fn disabled() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::default())
    }

    /// Compiles the plan in [`ENV_FAULT_PLAN`], or the empty plan if the
    /// variable is unset. A malformed plan is an error (silently ignoring
    /// a chaos plan would make a chaos CI run vacuous).
    pub fn from_env() -> Result<Arc<FaultInjector>, PlanError> {
        match std::env::var(ENV_FAULT_PLAN) {
            Ok(s) => Ok(Arc::new(FaultInjector::new(s.parse()?))),
            Err(_) => Ok(FaultInjector::disabled()),
        }
    }

    /// Whether any rule exists at all. Inactive injectors answer every
    /// query with a single branch — no locks, no RNG.
    pub fn is_active(&self) -> bool {
        !self.points.is_empty()
    }

    /// The plan this injector was compiled from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Records one occurrence of `point` and decides whether it fires.
    pub fn fires(&self, point: &str) -> bool {
        self.fire_factor(point).is_some()
    }

    /// Like [`fires`](FaultInjector::fires), but returns the rule's
    /// magnitude factor when the occurrence fires.
    pub fn fire_factor(&self, point: &str) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let idx = *self.by_name.get(point)?;
        let p = &self.points[idx];
        let mut st = p.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.occurrences += 1;
        let n = st.occurrences;
        let fired = match p.rule.mode {
            Mode::Prob(prob) => st.rng.next_f64() < prob,
            Mode::Every(k) => n.is_multiple_of(k),
            Mode::First(k) => n <= k,
            Mode::After(k) => n > k,
            Mode::Always => true,
        };
        if fired {
            st.fired += 1;
            if st.fired_at.len() < TRACE_CAP {
                st.fired_at.push(n);
            }
            Some(p.rule.factor)
        } else {
            None
        }
    }

    /// Machine-scoped variant of [`fires`](FaultInjector::fires): see
    /// [`fire_factor_scoped`](FaultInjector::fire_factor_scoped).
    pub fn fires_scoped(&self, point: &str, machine: Option<&str>) -> bool {
        self.fire_factor_scoped(point, machine).is_some()
    }

    /// Like [`fire_factor`](FaultInjector::fire_factor), but consulted from
    /// a site that knows which target machine it is acting for.
    ///
    /// A plan may scope a rule to one machine by naming the point
    /// `point@machine` (e.g. `pcie.transfer.error@v2:p=0.5`) — the scoped
    /// rule is consulted *instead of* the bare one for that machine, while
    /// other machines keep using the bare rule. Plans without scoped rules
    /// behave exactly as before: the scoped name misses `by_name` without
    /// touching any counter or RNG stream, and the bare lookup proceeds
    /// unchanged, so unscoped plans stay bit-identical.
    pub fn fire_factor_scoped(&self, point: &str, machine: Option<&str>) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if let Some(label) = machine {
            let scoped = scoped_point(point, label);
            if self.by_name.contains_key(&scoped) {
                return self.fire_factor(&scoped);
            }
        }
        self.fire_factor(point)
    }

    /// Total faults injected across all points so far.
    pub fn total_fired(&self) -> u64 {
        self.points
            .iter()
            .map(|p| p.state.lock().unwrap_or_else(PoisonError::into_inner).fired)
            .sum()
    }

    /// Per-point (name, consulted, fired) counters, sorted by name.
    pub fn counts(&self) -> Vec<(String, u64, u64)> {
        let mut rows: Vec<(String, u64, u64)> = self
            .points
            .iter()
            .map(|p| {
                let st = p.state.lock().unwrap_or_else(PoisonError::into_inner);
                (p.name.clone(), st.occurrences, st.fired)
            })
            .collect();
        rows.sort();
        rows
    }

    /// The recovery trace: one line per point (sorted by name) listing how
    /// often it was consulted, how often it fired, and the first fired
    /// occurrence indices. Identical seeds + identical per-point workloads
    /// yield byte-identical traces.
    pub fn trace(&self) -> String {
        let mut out = String::new();
        let mut points: Vec<&Point> = self.points.iter().collect();
        points.sort_by(|a, b| a.name.cmp(&b.name));
        for p in points {
            let st = p.state.lock().unwrap_or_else(PoisonError::into_inner);
            let at: Vec<String> = st.fired_at.iter().map(u64::to_string).collect();
            let ellipsis = if st.fired as usize > st.fired_at.len() {
                ", ..."
            } else {
                ""
            };
            out.push_str(&format!(
                "{}: fired {}/{} at [{}{}]\n",
                p.name,
                st.fired,
                st.occurrences,
                at.join(", "),
                ellipsis
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires_and_is_inactive() {
        let inj = FaultInjector::default();
        assert!(!inj.is_active());
        for _ in 0..100 {
            assert!(!inj.fires(PCIE_TRANSFER_ERROR));
        }
        assert_eq!(inj.total_fired(), 0);
        assert_eq!(inj.trace(), "");
    }

    #[test]
    fn grammar_round_trips() {
        let text = "seed=42;pcie.transfer.error:p=0.25;serve.worker.panic:every=7;\
                    pcie.calibration.outlier:first=3,factor=50;x.y:after=2;z.w:always";
        let plan: FaultPlan = text.parse().unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules().len(), 5);
        let rendered = plan.to_string();
        let reparsed: FaultPlan = rendered.parse().unwrap();
        assert_eq!(plan, reparsed, "canonical form must re-parse to itself");
    }

    #[test]
    fn grammar_rejects_malformed_plans() {
        for bad in [
            "nonsense",
            "seed=abc",
            "point:",
            "point:p=1.5",
            "point:p=nope",
            "point:every=0",
            "point:factor=2", // factor without a firing rule
            "point:wibble=3",
            ":p=0.5",
            "point:factor=-1,always",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "`{bad}` should fail");
        }
        // Whitespace and empty clauses are tolerated.
        let ok: FaultPlan = " seed=1 ; a.b : p=0.5 ;; ".parse().unwrap();
        assert_eq!(ok.rules().len(), 1);
    }

    #[test]
    fn schedules_fire_exactly_as_specified() {
        let plan = FaultPlan::empty()
            .with("e", Rule::new(Mode::Every(3)))
            .with("f", Rule::new(Mode::First(2)))
            .with("a", Rule::new(Mode::After(4)))
            .with("w", Rule::new(Mode::Always));
        let inj = FaultInjector::new(plan);
        let seq = |p: &str| -> Vec<bool> { (0..6).map(|_| inj.fires(p)).collect() };
        assert_eq!(seq("e"), [false, false, true, false, false, true]);
        assert_eq!(seq("f"), [true, true, false, false, false, false]);
        assert_eq!(seq("a"), [false, false, false, false, true, true]);
        assert_eq!(seq("w"), [true; 6]);
    }

    #[test]
    fn probability_is_seeded_and_reasonable() {
        let plan: FaultPlan = "seed=9;p.x:p=0.3".parse().unwrap();
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let da: Vec<bool> = (0..2000).map(|_| a.fires("p.x")).collect();
        let db: Vec<bool> = (0..2000).map(|_| b.fires("p.x")).collect();
        assert_eq!(da, db, "same seed, same decisions");
        let rate = da.iter().filter(|&&f| f).count() as f64 / da.len() as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate}");
        // A different seed gives a different sequence.
        let c = FaultInjector::new("seed=10;p.x:p=0.3".parse().unwrap());
        let dc: Vec<bool> = (0..2000).map(|_| c.fires("p.x")).collect();
        assert_ne!(da, dc);
    }

    #[test]
    fn point_streams_are_independent() {
        // Consulting point B must not shift point A's decisions.
        let plan: FaultPlan = "seed=5;a.a:p=0.5;b.b:p=0.5".parse().unwrap();
        let solo = FaultInjector::new(plan.clone());
        let solo_a: Vec<bool> = (0..100).map(|_| solo.fires("a.a")).collect();
        let mixed = FaultInjector::new(plan);
        let mixed_a: Vec<bool> = (0..100)
            .map(|_| {
                mixed.fires("b.b");
                mixed.fires("a.a")
            })
            .collect();
        assert_eq!(solo_a, mixed_a);
    }

    #[test]
    fn trace_reports_fired_occurrences() {
        let inj = FaultInjector::new("seed=1;t.t:every=2".parse().unwrap());
        for _ in 0..5 {
            inj.fires("t.t");
        }
        assert_eq!(inj.trace(), "t.t: fired 2/5 at [2, 4]\n");
        assert_eq!(inj.counts(), vec![("t.t".to_string(), 5, 2)]);
        assert_eq!(inj.total_fired(), 2);
    }

    #[test]
    fn factors_flow_through() {
        let inj = FaultInjector::new("s.s:always,factor=123.5".parse().unwrap());
        assert_eq!(inj.fire_factor("s.s"), Some(123.5));
        assert_eq!(inj.fire_factor("unlisted"), None);
    }

    #[test]
    fn scoped_rules_parse_and_round_trip() {
        let plan: FaultPlan = "seed=9;pcie.transfer.error@v2:p=0.5".parse().unwrap();
        assert_eq!(plan.to_string(), "seed=9;pcie.transfer.error@v2:p=0.5");
    }

    #[test]
    fn scoped_rule_overrides_bare_for_its_machine_only() {
        let plan: FaultPlan = "t.t:always,factor=2;t.t@v2:always,factor=7"
            .parse()
            .unwrap();
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.fire_factor_scoped("t.t", Some("v2")), Some(7.0));
        assert_eq!(inj.fire_factor_scoped("t.t", Some("eureka")), Some(2.0));
        assert_eq!(inj.fire_factor_scoped("t.t", None), Some(2.0));
    }

    #[test]
    fn scoped_lookup_on_unscoped_plan_is_bit_identical_to_bare() {
        // Two injectors from the same probabilistic plan: one consulted with
        // a machine label, one without. Because the scoped name misses
        // `by_name` without touching any state, the decision streams match
        // exactly.
        let plan: FaultPlan = "seed=3;t.t:p=0.4".parse().unwrap();
        let bare = FaultInjector::new(plan.clone());
        let scoped = FaultInjector::new(plan);
        for _ in 0..64 {
            assert_eq!(
                bare.fire_factor("t.t"),
                scoped.fire_factor_scoped("t.t", Some("eureka"))
            );
        }
        assert_eq!(bare.trace(), scoped.trace());
    }

    #[test]
    fn scoped_point_spelling() {
        assert_eq!(
            scoped_point(PCIE_TRANSFER_ERROR, "v2"),
            "pcie.transfer.error@v2"
        );
    }
}
