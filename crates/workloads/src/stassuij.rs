//! Stassuij: sparse-real × dense-complex matrix product from Green's
//! Function Monte Carlo.
//!
//! "Stassuij lies in the core of Green's Function Monte Carlo, which
//! performs Monte Carlo calculations for light nuclei. It multiplies a
//! 132×132 sparse matrix of real numbers with a 132×2048 dense matrix of
//! complex numbers. The sparse matrix is represented in CSR format with
//! three vectors." (§IV-B)
//!
//! The production matrix is proprietary (INCITE application); we generate
//! a seeded synthetic CSR matrix of the same shape and density class. The
//! values do not affect timing — only `nnz` does, and that is the
//! quantity the paper's sparse hint communicates to the analyzer.
//!
//! This is the paper's star witness: the kernel-only projection predicts
//! a 1.10× speedup, but transfers make the real outcome a 0.39× slowdown
//! (§V-B-4) — only the transfer-aware model gets the port/don't-port
//! verdict right.

use crate::par::{par_chunks, REFERENCE_THREADS};
use crate::WorkloadCase;
use gpp_datausage::Hints;
use gpp_skeleton::builder::{idx, irrb, ProgramBuilder};
use gpp_skeleton::{AffineExpr, ElemType, Flops, IndexExpr, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sparse matrix rows/cols.
pub const N: usize = 132;
/// Dense matrix columns.
pub const M: usize = 2048;

/// A CSR sparse matrix of real numbers.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Row pointers, length `N + 1`.
    pub row_ptr: Vec<u32>,
    /// Column indices, length `nnz`.
    pub col_idx: Vec<u32>,
    /// Values, length `nnz`.
    pub vals: Vec<f64>,
}

impl Csr {
    /// Synthetic N×N matrix with ~`avg_nnz_per_row` entries per row
    /// (seeded, banded-ish like a nuclear-structure operator).
    pub fn synthetic(avg_nnz_per_row: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut row_ptr = Vec::with_capacity(N + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for r in 0..N {
            let k = rng
                .gen_range(avg_nnz_per_row / 2..=avg_nnz_per_row * 3 / 2)
                .max(1);
            let mut cols: Vec<u32> = (0..k)
                .map(|_| {
                    // Band-biased column choice.
                    let span = N / 4;
                    let lo = r.saturating_sub(span);
                    let hi = (r + span).min(N - 1);
                    rng.gen_range(lo..=hi) as u32
                })
                .collect();
            cols.sort_unstable();
            cols.dedup();
            for c in cols {
                col_idx.push(c);
                vals.push(rng.gen_range(-1.0..1.0));
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr {
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Mean entries per row.
    pub fn avg_row_nnz(&self) -> f64 {
        self.nnz() as f64 / N as f64
    }
}

/// Complex number as (re, im) pairs; a dense matrix is row-major
/// `N × M` of these.
pub type C64 = (f64, f64);

/// `C += A · B` where A is `N×N` CSR real and B, C are `N×M` complex.
/// Sequential reference.
pub fn spmm_seq(a: &Csr, b: &[C64], c: &mut [C64]) {
    assert_eq!(b.len(), N * M);
    assert_eq!(c.len(), N * M);
    for r in 0..N {
        for k in a.row_ptr[r] as usize..a.row_ptr[r + 1] as usize {
            let col = a.col_idx[k] as usize;
            let v = a.vals[k];
            for j in 0..M {
                let (br, bi) = b[col * M + j];
                let t = &mut c[r * M + j];
                t.0 += v * br;
                t.1 += v * bi;
            }
        }
    }
}

/// `C += A · B`, parallel over rows of C (the OpenMP analogue).
pub fn spmm_par(a: &Csr, b: &[C64], c: &mut [C64]) {
    assert_eq!(b.len(), N * M);
    assert_eq!(c.len(), N * M);
    par_chunks(c, REFERENCE_THREADS, M, |start, chunk| {
        debug_assert_eq!(start % M, 0);
        let r0 = start / M;
        for (rk, row) in chunk.chunks_mut(M).enumerate() {
            let r = r0 + rk;
            for k in a.row_ptr[r] as usize..a.row_ptr[r + 1] as usize {
                let col = a.col_idx[k] as usize;
                let v = a.vals[k];
                for (j, t) in row.iter_mut().enumerate() {
                    let (br, bi) = b[col * M + j];
                    t.0 += v * br;
                    t.1 += v * bi;
                }
            }
        }
    });
}

/// Dense reference multiply for validation.
pub fn dense_reference(a: &Csr, b: &[C64]) -> Vec<C64> {
    // Expand A to dense, then naive triple loop.
    let mut ad = vec![0.0f64; N * N];
    for r in 0..N {
        for k in a.row_ptr[r] as usize..a.row_ptr[r + 1] as usize {
            ad[r * N + a.col_idx[k] as usize] += a.vals[k];
        }
    }
    let mut c = vec![(0.0, 0.0); N * M];
    for r in 0..N {
        for col in 0..N {
            let v = ad[r * N + col];
            if v == 0.0 {
                continue;
            }
            for j in 0..M {
                let (br, bi) = b[col * M + j];
                c[r * M + j].0 += v * br;
                c[r * M + j].1 += v * bi;
            }
        }
    }
    c
}

/// Seeded dense complex input.
pub fn synthetic_dense(seed: u64) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N * M)
        .map(|_| (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

/// The Stassuij workload.
#[derive(Debug, Clone)]
pub struct Stassuij {
    /// The sparse operator.
    pub csr: Csr,
}

impl Stassuij {
    /// The paper's single configuration.
    pub fn paper() -> Self {
        Stassuij {
            csr: Csr::synthetic(5, 2013),
        }
    }

    /// Data-size label (the paper prints none; we use the shape).
    pub fn label(&self) -> String {
        format!("{N}x{N} x {N}x{M}")
    }

    /// The skeleton: one kernel, threads over (row, col) of C, serial loop
    /// over the row's nonzeros.
    ///
    /// Access-pattern notes: CSR metadata (`vals`, `col_idx`, `row_ptr`)
    /// is uniform across a warp (all threads of a warp share `r`), so it
    /// broadcasts; the gathered B row is coalesced along the thread axis
    /// `c` at a data-dependent row address (bounded by the operator's
    /// band). The complex-double arithmetic is costed with the heavy
    /// weights double emulation takes on a G80 (no native f64).
    pub fn program(&self) -> Program {
        let avg = self.csr.avg_row_nnz().round().max(1.0) as u64;
        let mut p = ProgramBuilder::new("stassuij");
        let b = p.array("b_dense", ElemType::C128, &[N, M]);
        let c = p.array("c_out", ElemType::C128, &[N, M]);
        let vals = p.sparse_array("csr_vals", ElemType::F64, &[self.csr.nnz()]);
        let cols = p.sparse_array("csr_col", ElemType::I32, &[self.csr.nnz()]);
        let ptr = p.sparse_array("csr_ptr", ElemType::I32, &[N + 1]);

        let mut k = p.kernel("spmm");
        // Double-precision complex arithmetic has no native path on a G80
        // (compute capability 1.0 has no f64 units): every flop expands
        // into a long emulation sequence.
        k.gpu_compute_scale(38.0);
        // The unit-stride complex inner loop vectorizes well on SSE2.
        k.cpu_compute_scale(0.45);
        let r = k.parallel_loop("r", N as u64);
        let cj = k.parallel_loop("c", M as u64);
        let kk = k.serial_loop("k", avg);

        // Row pointers: two broadcast loads per thread (start, end).
        k.statement()
            .read(ptr, &[idx(r)])
            .read(ptr, &[idx(r) + 1])
            .finish();

        // The nonzero loop: vals/col broadcast (warp-uniform,
        // data-dependent base — modeled as an affine walk of the sparse
        // stream, which the sparse flag already makes conservative for
        // sections), B gathered by column index, C accumulated in
        // registers then written once — but the paper's kernel re-reads C
        // to accumulate, so we model the read too.
        let warp_uniform = idx(r) * avg as i64 + idx(kk);
        k.statement()
            .read(vals, std::slice::from_ref(&warp_uniform))
            .read(cols, &[warp_uniform])
            .read_ix(
                b,
                &[irrb((N / 4) as u32), IndexExpr::Affine(AffineExpr::var(cj))],
            )
            .flops(Flops {
                adds: 4,
                muls: 4,
                ..Flops::default()
            })
            .finish();

        k.statement()
            .read(c, &[idx(r), idx(cj)])
            .write(c, &[idx(r), idx(cj)])
            .flops(Flops {
                adds: 4,
                ..Flops::default()
            })
            .active(1.0)
            .finish();

        k.finish();
        p.build().expect("stassuij skeleton is well-formed")
    }

    /// The paper's sparse hints: the analyzer would otherwise transfer
    /// whole allocations; the user bounds them by the actual nnz.
    pub fn hints(&self) -> Hints {
        let prog = self.program();
        let id = |name: &str| prog.array_by_name(name).expect("array exists").id;
        Hints::new()
            .sparse_bound(id("csr_vals"), self.csr.nnz() as u64 * 8)
            .sparse_bound(id("csr_col"), self.csr.nnz() as u64 * 4)
            .sparse_bound(id("csr_ptr"), (N as u64 + 1) * 4)
    }

    /// Bundles skeleton + hints as one evaluation case.
    pub fn case(&self) -> WorkloadCase {
        WorkloadCase {
            app: "Stassuij",
            dataset: self.label(),
            program: self.program(),
            hints: self.hints(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let s = Stassuij::paper();
        let b = synthetic_dense(5);
        let mut c1 = vec![(0.0, 0.0); N * M];
        let mut c2 = vec![(0.0, 0.0); N * M];
        spmm_seq(&s.csr, &b, &mut c1);
        spmm_par(&s.csr, &b, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn matches_dense_reference() {
        let s = Stassuij::paper();
        let b = synthetic_dense(6);
        let mut c = vec![(0.0, 0.0); N * M];
        spmm_par(&s.csr, &b, &mut c);
        let reference = dense_reference(&s.csr, &b);
        for (x, y) in c.iter().zip(&reference) {
            assert!((x.0 - y.0).abs() < 1e-9 && (x.1 - y.1).abs() < 1e-9);
        }
    }

    #[test]
    fn accumulation_adds_onto_existing_c() {
        let s = Stassuij::paper();
        let b = synthetic_dense(7);
        let mut c = vec![(1.0, -1.0); N * M];
        spmm_par(&s.csr, &b, &mut c);
        let mut fresh = vec![(0.0, 0.0); N * M];
        spmm_par(&s.csr, &b, &mut fresh);
        for (x, y) in c.iter().zip(&fresh) {
            assert!((x.0 - (y.0 + 1.0)).abs() < 1e-9);
            assert!((x.1 - (y.1 - 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_shape_is_sane() {
        let csr = Csr::synthetic(5, 2013);
        assert_eq!(csr.row_ptr.len(), N + 1);
        assert_eq!(csr.col_idx.len(), csr.vals.len());
        assert!(csr.avg_row_nnz() >= 2.0 && csr.avg_row_nnz() <= 10.0);
        assert!(csr.col_idx.iter().all(|&c| (c as usize) < N));
        assert!(csr.row_ptr.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn transfer_plan_matches_paper_shape() {
        // Paper Table I: input 8.5 MB, output 4.1 MB. Ours: B (4.3 MB) +
        // C (4.3 MB, read for accumulation) + CSR vectors in; C out.
        let s = Stassuij::paper();
        let plan = gpp_datausage::analyze(&s.program(), &s.hints());
        let mb = |b: u64| b as f64 / (1 << 20) as f64;
        assert!(
            (8.0..9.5).contains(&mb(plan.h2d_bytes())),
            "in {}",
            mb(plan.h2d_bytes())
        );
        assert!(
            (4.0..4.5).contains(&mb(plan.d2h_bytes())),
            "out {}",
            mb(plan.d2h_bytes())
        );
    }

    #[test]
    fn without_hints_sparse_fallback_is_conservative() {
        let s = Stassuij::paper();
        let with = gpp_datausage::analyze(&s.program(), &s.hints());
        let without = gpp_datausage::analyze(&s.program(), &Hints::new());
        // Whole allocations are transferred; with our synthetic nnz the
        // allocations equal nnz exactly, so sizes match but are flagged
        // inexact.
        assert!(with.is_exact());
        assert!(!without.is_exact());
        assert!(without.h2d_bytes() >= with.h2d_bytes());
    }

    #[test]
    fn skeleton_classifies_access_patterns() {
        use gpp_skeleton::CoalesceClass;
        let s = Stassuij::paper();
        let prog = s.program();
        let chars = prog.kernels[0].characteristics(&prog);
        let by_name = |name: &str| {
            let id = prog.array_by_name(name).unwrap().id;
            chars.accesses.iter().find(|a| a.array == id).unwrap().class
        };
        assert_eq!(by_name("csr_vals"), CoalesceClass::Broadcast);
        assert_eq!(by_name("csr_ptr"), CoalesceClass::Broadcast);
        assert_eq!(by_name("b_dense"), CoalesceClass::Coalesced);
        assert_eq!(by_name("c_out"), CoalesceClass::Coalesced);
    }
}
