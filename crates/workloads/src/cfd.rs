//! CFD: unstructured-grid finite-volume Euler solver (Rodinia's euler3d).
//!
//! "An unstructured-grid, finite-volume solver for the 3D Euler equations
//! for compressible flow. The core part of the benchmark is spread over
//! three GPU kernels... The data size in CFD represents the number of
//! particles being simulated." (§IV-B)
//!
//! The paper's meshes (`fvcorr.domn.097K` etc.) are Rodinia input files we
//! treat as unavailable; [`Mesh::synthetic`] generates the equivalent: an
//! element graph with four neighbours per element whose numbering has the
//! bounded locality a bandwidth-reduced mesh ordering produces (captured
//! in the skeleton with bounded-irregular indices), and per-face normals
//! that cancel per element so that a uniform flow state is a fixed point —
//! the property our conservation test checks.

use crate::par::{par_chunks, REFERENCE_THREADS};
use crate::WorkloadCase;
use gpp_datausage::Hints;
use gpp_skeleton::builder::{cst, idx, irrb, ProgramBuilder};
use gpp_skeleton::{ElemType, Flops, IndexExpr, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ratio of specific heats for air.
pub const GAMMA: f32 = 1.4;
/// CFL number used by the step-factor kernel.
pub const CFL: f32 = 0.1;
/// Neighbour locality window of the synthetic mesh numbering, in elements
/// (the bounded-irregular span the skeleton declares).
pub const MESH_SPAN: u32 = 4;

/// Number of conserved variables: density, 3 momenta, energy.
pub const NVAR: usize = 5;
/// Faces (neighbours) per element.
pub const NFACE: usize = 4;

/// The CFD workload at one mesh size.
#[derive(Debug, Clone, Copy)]
pub struct Cfd {
    /// Number of mesh elements.
    pub nel: usize,
}

/// A synthetic unstructured mesh.
pub struct Mesh {
    /// Elements.
    pub nel: usize,
    /// Neighbour element index per face, `[face][element]` (SoA).
    pub neighbors: Vec<i32>,
    /// Signed face-normal magnitude per face, `[face][element]`; the four
    /// normals of each element sum to zero.
    pub normals: Vec<f32>,
    /// Element volumes/areas.
    pub areas: Vec<f32>,
}

impl Mesh {
    /// Generates a mesh with `nel` elements: a 2-D structured
    /// neighbourhood (locality!) with seeded jitter so the graph is
    /// genuinely irregular.
    pub fn synthetic(nel: usize, seed: u64) -> Mesh {
        assert!(nel >= 16, "mesh too small");
        let w = (nel as f64).sqrt() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut neighbors = vec![0i32; NFACE * nel];
        let mut normals = vec![0.0f32; NFACE * nel];
        let mut areas = vec![0.0f32; nel];
        for i in 0..nel {
            let base = [
                i.saturating_sub(1),
                (i + 1).min(nel - 1),
                i.saturating_sub(w),
                (i + w).min(nel - 1),
            ];
            for (f, &nb) in base.iter().enumerate() {
                // Jitter ~20% of edges within the locality window.
                let nb = if rng.gen_bool(0.2) {
                    let lo = nb.saturating_sub(MESH_SPAN as usize);
                    let hi = (nb + MESH_SPAN as usize).min(nel - 1);
                    rng.gen_range(lo..=hi)
                } else {
                    nb
                };
                neighbors[f * nel + i] = nb as i32;
            }
            // Opposite faces get opposite normals: Σ normals = 0.
            let a: f32 = rng.gen_range(0.5..1.5);
            let b: f32 = rng.gen_range(0.5..1.5);
            normals[i] = a;
            normals[nel + i] = -a;
            normals[2 * nel + i] = b;
            normals[3 * nel + i] = -b;
            areas[i] = rng.gen_range(0.8..1.2);
        }
        Mesh {
            nel,
            neighbors,
            normals,
            areas,
        }
    }
}

/// Flow state: conserved variables, `[var][element]` (SoA — the layout
/// GROPHECY's coalescing-friendly transformation of euler3d uses).
#[derive(Clone)]
pub struct FlowState {
    /// `NVAR × nel` values.
    pub vars: Vec<f32>,
    /// Element count.
    pub nel: usize,
}

impl FlowState {
    /// Free-stream initial condition with a density bump in the middle.
    pub fn initial(nel: usize) -> FlowState {
        let mut vars = vec![0.0f32; NVAR * nel];
        for i in 0..nel {
            let rho = if (nel / 3..2 * nel / 3).contains(&i) {
                1.2
            } else {
                1.0
            };
            let u = 0.3f32;
            let p = 1.0f32;
            vars[i] = rho;
            vars[nel + i] = rho * u; // x-momentum
            vars[2 * nel + i] = 0.0;
            vars[3 * nel + i] = 0.0;
            vars[4 * nel + i] = p / (GAMMA - 1.0) + 0.5 * rho * u * u;
        }
        FlowState { vars, nel }
    }

    /// Uniform free-stream state (a fixed point of the flux).
    pub fn uniform(nel: usize) -> FlowState {
        let mut s = FlowState::initial(nel);
        for i in 0..nel {
            s.vars[i] = 1.0;
            let u = 0.3f32;
            s.vars[nel + i] = u;
            s.vars[2 * nel + i] = 0.0;
            s.vars[3 * nel + i] = 0.0;
            s.vars[4 * nel + i] = 1.0 / (GAMMA - 1.0) + 0.5 * u * u;
        }
        s
    }
}

/// Primitive quantities of element `i`.
#[inline]
fn primitives(vars: &[f32], nel: usize, i: usize) -> (f32, f32, f32, f32) {
    let rho = vars[i].max(1e-6);
    let u = vars[nel + i] / rho;
    let e = vars[4 * nel + i];
    let p = ((GAMMA - 1.0) * (e - 0.5 * rho * u * u)).max(1e-6);
    let c = (GAMMA * p / rho).sqrt();
    (rho, u, p, c)
}

/// Kernel 1: per-element stable time-step factor.
pub fn compute_step_factor(state: &FlowState, areas: &[f32], sf: &mut [f32]) {
    let nel = state.nel;
    let vars = &state.vars;
    par_chunks(sf, REFERENCE_THREADS, 1024, |start, chunk| {
        for (k, v) in chunk.iter_mut().enumerate() {
            let i = start + k;
            let (_, u, _, c) = primitives(vars, nel, i);
            *v = 0.5 * CFL * areas[i].sqrt() / (c + u.abs());
        }
    });
}

/// 1-D Euler flux of element `i` projected on a unit normal.
#[inline]
fn flux_of(vars: &[f32], nel: usize, i: usize) -> [f32; NVAR] {
    let (rho, u, p, _) = primitives(vars, nel, i);
    let e = vars[4 * nel + i];
    [
        rho * u,
        rho * u * u + p,
        vars[2 * nel + i] * u,
        vars[3 * nel + i] * u,
        u * (e + p),
    ]
}

/// Kernel 2: accumulate Rusanov fluxes over the four faces.
/// `fluxes` is `[var][element]`.
pub fn compute_flux(state: &FlowState, mesh: &Mesh, fluxes: &mut [f32]) {
    let nel = state.nel;
    let vars = &state.vars;
    // Each worker owns a disjoint run of elements (AoS accumulator), then
    // a single transpose writes the SoA flux planes.
    let mut aos: Vec<[f32; NVAR]> = vec![[0.0; NVAR]; nel];
    par_chunks(&mut aos, REFERENCE_THREADS, 1024, |start, chunk| {
        for (k, acc) in chunk.iter_mut().enumerate() {
            let i = start + k;
            let fi = flux_of(vars, nel, i);
            let (_, ui, _, ci) = primitives(vars, nel, i);
            let mut sum = [0.0f32; NVAR];
            for f in 0..NFACE {
                let nb = mesh.neighbors[f * nel + i] as usize;
                let nrm = mesh.normals[f * nel + i];
                let fn_ = flux_of(vars, nel, nb);
                let (_, un, _, cn) = primitives(vars, nel, nb);
                let lam = (ui.abs() + ci).max(un.abs() + cn);
                for v in 0..NVAR {
                    let jump = vars[v * nel + nb] - vars[v * nel + i];
                    sum[v] += 0.5 * nrm * (fi[v] + fn_[v]) - 0.5 * nrm.abs() * lam * jump;
                }
            }
            *acc = sum;
        }
    });
    for (i, acc) in aos.iter().enumerate() {
        for v in 0..NVAR {
            fluxes[v * nel + i] = acc[v];
        }
    }
}

/// Kernel 3: advance the conserved variables.
pub fn time_step(state: &mut FlowState, sf: &[f32], fluxes: &[f32]) {
    let nel = state.nel;
    let sf_ref = sf;
    par_chunks(&mut state.vars, REFERENCE_THREADS, nel, |start, chunk| {
        for (k, v) in chunk.iter_mut().enumerate() {
            let flat = start + k;
            let i = flat % nel;
            *v -= sf_ref[i] * fluxes[flat];
        }
    });
}

/// One full solver iteration (the three kernels in order).
pub fn iterate(state: &mut FlowState, mesh: &Mesh, sf: &mut [f32], fluxes: &mut [f32]) {
    compute_step_factor(state, &mesh.areas, sf);
    compute_flux(state, mesh, fluxes);
    time_step(state, sf, fluxes);
}

impl Cfd {
    /// The paper's three data sizes (element counts; labels match the
    /// Rodinia mesh names the paper uses).
    pub const PAPER_SIZES: [usize; 3] = [97_000, 193_000, 232_000];

    /// Data-size label as Table I prints it.
    pub fn label(&self) -> String {
        match self.nel {
            97_000 => "97K".to_string(),
            193_000 => "193K".to_string(),
            232_000 => "233K".to_string(),
            n => format!("{}K", n / 1000),
        }
    }

    /// The skeleton: three kernels per iteration (§IV-B), SoA layout,
    /// neighbour gathers declared bounded-irregular with the mesh's
    /// locality window.
    pub fn program(&self) -> Program {
        let nel = self.nel;
        let mut p = ProgramBuilder::new(format!("cfd-{}", self.label()));
        let vars = p.array("variables", ElemType::F32, &[NVAR, nel]);
        let sf = p.array("step_factor", ElemType::F32, &[nel]);
        let fluxes = p.array("fluxes", ElemType::F32, &[NVAR, nel]);
        let areas = p.array("areas", ElemType::F32, &[nel]);
        let esn = p.array("neighbors", ElemType::I32, &[NFACE, nel]);
        let normals = p.array("normals", ElemType::F32, &[NFACE, nel]);

        // Kernel 1: step factor.
        let mut k1 = p.kernel("compute_step_factor");
        let i = k1.parallel_loop("i", nel as u64);
        let mut s = k1.statement();
        for v in 0..NVAR as i64 {
            s = s.read(vars, &[cst(v), idx(i)]);
        }
        s.read(areas, &[idx(i)])
            .write(sf, &[idx(i)])
            .flops(Flops {
                adds: 6,
                muls: 8,
                divs: 2,
                specials: 2,
                compares: 2,
            })
            .finish();
        k1.finish();

        // Kernel 2: flux accumulation with neighbour gathers.
        let mut k2 = p.kernel("compute_flux");
        let i = k2.parallel_loop("i", nel as u64);
        let mut s = k2.statement();
        for f in 0..NFACE as i64 {
            s = s.read(esn, &[cst(f), idx(i)]);
            s = s.read(normals, &[cst(f), idx(i)]);
        }
        for v in 0..NVAR as i64 {
            s = s.read(vars, &[cst(v), idx(i)]); // own state
        }
        // Neighbour state: 4 faces × 5 variables, data-dependent rows
        // within the mesh's locality window.
        for _ in 0..NFACE {
            for v in 0..NVAR as i64 {
                s = s.read_ix(vars, &[IndexExpr::Affine(cst(v)), irrb(MESH_SPAN)]);
            }
        }
        for v in 0..NVAR as i64 {
            s = s.write(fluxes, &[cst(v), idx(i)]);
        }
        s.flops(Flops {
            adds: 44,
            muls: 52,
            divs: 4,
            specials: 4,
            compares: 8,
        })
        .finish();
        k2.finish();

        // Kernel 3: time integration.
        let mut k3 = p.kernel("time_step");
        let i = k3.parallel_loop("i", nel as u64);
        let mut s = k3.statement();
        s = s.read(sf, &[idx(i)]);
        for v in 0..NVAR as i64 {
            s = s.read(fluxes, &[cst(v), idx(i)]);
            s = s.read(vars, &[cst(v), idx(i)]);
            s = s.write(vars, &[cst(v), idx(i)]);
        }
        s.flops(Flops {
            adds: 5,
            muls: 5,
            ..Flops::default()
        })
        .finish();
        k3.finish();

        p.build().expect("cfd skeleton is well-formed")
    }

    /// Hints: `step_factor` and `fluxes` are device-side temporaries.
    pub fn hints(&self) -> Hints {
        let prog = self.program();
        Hints::new()
            .temporary(prog.array_by_name("step_factor").expect("sf").id)
            .temporary(prog.array_by_name("fluxes").expect("fluxes").id)
    }

    /// Bundles skeleton + hints as one evaluation case.
    pub fn case(&self) -> WorkloadCase {
        WorkloadCase {
            app: "CFD",
            dataset: self.label(),
            program: self.program(),
            hints: self.hints(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_state_is_a_fixed_point() {
        // Normals cancel per element, so a uniform flow has zero net flux
        // and the solver must not change it.
        let mesh = Mesh::synthetic(4096, 7);
        let mut state = FlowState::uniform(4096);
        let before = state.vars.clone();
        let mut sf = vec![0.0; 4096];
        let mut fluxes = vec![0.0; NVAR * 4096];
        iterate(&mut state, &mesh, &mut sf, &mut fluxes);
        for (a, b) in state.vars.iter().zip(&before) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn perturbed_state_stays_physical() {
        let mesh = Mesh::synthetic(4096, 7);
        let mut state = FlowState::initial(4096);
        let mut sf = vec![0.0; 4096];
        let mut fluxes = vec![0.0; NVAR * 4096];
        for _ in 0..20 {
            iterate(&mut state, &mesh, &mut sf, &mut fluxes);
        }
        for i in 0..4096 {
            assert!(state.vars[i] > 0.0, "density went non-positive at {i}");
        }
        assert!(state.vars.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn step_factors_are_positive_and_bounded() {
        let mesh = Mesh::synthetic(1024, 3);
        let state = FlowState::initial(1024);
        let mut sf = vec![0.0; 1024];
        compute_step_factor(&state, &mesh.areas, &mut sf);
        assert!(sf.iter().all(|s| *s > 0.0 && *s < 1.0));
    }

    #[test]
    fn diffusion_smooths_the_density_bump() {
        // The initial density is a two-level step (1.0 / 1.2). Rusanov
        // dissipation erodes the discontinuity, so intermediate densities
        // appear where there were none.
        let mesh = Mesh::synthetic(4096, 9);
        let mut state = FlowState::initial(4096);
        let intermediate = |v: &[f32]| {
            v[..4096]
                .iter()
                .filter(|d| (1.02..1.18).contains(*d))
                .count()
        };
        let before = intermediate(&state.vars);
        assert_eq!(before, 0);
        let mut sf = vec![0.0; 4096];
        let mut fluxes = vec![0.0; NVAR * 4096];
        for _ in 0..50 {
            iterate(&mut state, &mesh, &mut sf, &mut fluxes);
        }
        assert!(intermediate(&state.vars) > 50, "bump did not smooth");
    }

    #[test]
    fn mesh_is_deterministic_and_local() {
        let a = Mesh::synthetic(10_000, 42);
        let b = Mesh::synthetic(10_000, 42);
        assert_eq!(a.neighbors, b.neighbors);
        // Per-element normals cancel.
        for i in 0..a.nel {
            let s: f32 = (0..NFACE).map(|f| a.normals[f * a.nel + i]).sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn skeleton_has_three_kernels_and_temporaries() {
        let cfd = Cfd { nel: 97_000 };
        let prog = cfd.program();
        assert_eq!(prog.kernels.len(), 3);
        let plan = gpp_datausage::analyze(&prog, &cfd.hints());
        // In: variables + areas + neighbors + normals. Out: variables.
        assert_eq!(plan.h2d.len(), 4);
        assert_eq!(plan.d2h.len(), 1);
        assert_eq!(plan.d2h[0].name, "variables");
        let nel = 97_000u64;
        assert_eq!(plan.h2d_bytes(), nel * 4 * (5 + 1 + 4 + 4));
        assert_eq!(plan.d2h_bytes(), nel * 4 * 5);
    }

    #[test]
    fn flux_kernel_is_gather_heavy() {
        let cfd = Cfd { nel: 97_000 };
        let prog = cfd.program();
        let flux = prog.kernel_by_name("compute_flux").unwrap();
        let chars = flux.characteristics(&prog);
        use gpp_skeleton::CoalesceClass;
        let gathers = chars
            .accesses
            .iter()
            .filter(|a| matches!(a.class, CoalesceClass::Strided(_)))
            .count();
        assert_eq!(gathers, NFACE * NVAR);
    }
}
