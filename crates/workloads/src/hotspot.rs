//! HotSpot: structured-grid thermal simulation (Rodinia).
//!
//! "An ordinary differential equation solver over a structured grid which
//! is used to estimate micro-architecture temperature. Every element is
//! computed by gathering a 3×3 neighborhood of elements (i.e., the
//! stencil) from the input array." (§IV-B; we use the classic 5-point
//! variant of Rodinia's hotspot kernel.)
//!
//! Data sizes: 64×64, 512×512, 1024×1024. Per Table I, the transfer set
//! is `temp` + `power` in (2·N²·4 bytes) and the final `temp` out
//! (N²·4 bytes).

use crate::par::{par_chunks, REFERENCE_THREADS};
use crate::WorkloadCase;
use gpp_datausage::Hints;
use gpp_skeleton::builder::{idx, ProgramBuilder};
use gpp_skeleton::{ElemType, Flops, Program};

/// Physical constants of the thermal model (Rodinia defaults, folded to
/// the per-step coefficients).
#[derive(Debug, Clone, Copy)]
pub struct ThermalParams {
    /// Coupling to the north/south neighbours.
    pub ry: f32,
    /// Coupling to the east/west neighbours.
    pub rx: f32,
    /// Coupling to the ambient (vertical).
    pub rz: f32,
    /// Time step × inverse heat capacity.
    pub step_div_cap: f32,
    /// Ambient temperature.
    pub amb: f32,
}

impl Default for ThermalParams {
    fn default() -> Self {
        ThermalParams {
            ry: 0.1,
            rx: 0.1,
            rz: 0.0125,
            step_div_cap: 0.5,
            amb: 80.0,
        }
    }
}

/// The HotSpot workload at one grid size.
#[derive(Debug, Clone, Copy)]
pub struct HotSpot {
    /// Grid edge length.
    pub n: usize,
}

impl HotSpot {
    /// The paper's three data sizes.
    pub const PAPER_SIZES: [usize; 3] = [64, 512, 1024];

    /// Data-size label as Table I prints it.
    pub fn label(&self) -> String {
        format!("{} x {}", self.n, self.n)
    }

    /// The code skeleton: one kernel over the full grid (boundary lanes
    /// guarded, as Rodinia's CUDA kernel does), 5-point stencil on `temp`
    /// (a reuse group the optimizer can stage in shared memory), one
    /// `power` load, one `temp_out` store.
    pub fn program(&self) -> Program {
        let n = self.n;
        let mut p = ProgramBuilder::new(format!("hotspot-{n}"));
        let temp = p.array("temp", ElemType::F32, &[n, n]);
        let power = p.array("power", ElemType::F32, &[n, n]);
        let temp_out = p.array("temp_out", ElemType::F32, &[n, n]);
        let mut k = p.kernel("hotspot_step");
        let i = k.parallel_loop("i", n as u64);
        let j = k.parallel_loop("j", n as u64);
        k.statement()
            .read(temp, &[idx(i) - 1, idx(j)]) // north
            .read(temp, &[idx(i) + 1, idx(j)]) // south
            .read(temp, &[idx(i), idx(j) - 1]) // west
            .read(temp, &[idx(i), idx(j) + 1]) // east
            .read(temp, &[idx(i), idx(j)]) // centre
            .read(power, &[idx(i), idx(j)])
            .write(temp_out, &[idx(i), idx(j)])
            .flops(Flops {
                adds: 10,
                muls: 6,
                ..Flops::default()
            })
            .finish();
        k.finish();
        p.build().expect("hotspot skeleton is well-formed")
    }

    /// No hints needed: `power` is read-only and the updated temperature
    /// is the desired output.
    pub fn hints(&self) -> Hints {
        Hints::new()
    }

    /// Bundles skeleton + hints as one evaluation case.
    pub fn case(&self) -> WorkloadCase {
        WorkloadCase {
            app: "HotSpot",
            dataset: self.label(),
            program: self.program(),
            hints: self.hints(),
        }
    }

    /// Synthetic input: a hot square in the middle of an 80° die, with a
    /// power bump under it. Deterministic.
    pub fn initial_state(&self) -> (Vec<f32>, Vec<f32>) {
        let n = self.n;
        let mut temp = vec![80.0f32; n * n];
        let mut power = vec![0.0f32; n * n];
        for r in n / 4..3 * n / 4 {
            for c in n / 4..3 * n / 4 {
                temp[r * n + c] = 95.0;
                power[r * n + c] = 0.8;
            }
        }
        (temp, power)
    }
}

/// One explicit time step, sequential reference.
pub fn step_seq(temp: &[f32], power: &[f32], out: &mut [f32], n: usize, p: &ThermalParams) {
    assert_eq!(temp.len(), n * n);
    assert_eq!(power.len(), n * n);
    assert_eq!(out.len(), n * n);
    out.copy_from_slice(temp); // boundary rows/cols keep their value
    for r in 1..n - 1 {
        for c in 1..n - 1 {
            out[r * n + c] = cell_update(temp, power, n, r, c, p);
        }
    }
}

/// One explicit time step, parallel over row bands (the OpenMP analogue).
pub fn step_par(temp: &[f32], power: &[f32], out: &mut [f32], n: usize, p: &ThermalParams) {
    assert_eq!(out.len(), n * n);
    par_chunks(out, REFERENCE_THREADS, n, |start, chunk| {
        debug_assert_eq!(start % n, 0);
        let r0 = start / n;
        for (k, v) in chunk.iter_mut().enumerate() {
            let r = r0 + (k / n);
            let c = k % n;
            *v = if r == 0 || r == n - 1 || c == 0 || c == n - 1 {
                temp[r * n + c]
            } else {
                cell_update(temp, power, n, r, c, p)
            };
        }
    });
}

#[inline]
fn cell_update(
    temp: &[f32],
    power: &[f32],
    n: usize,
    r: usize,
    c: usize,
    p: &ThermalParams,
) -> f32 {
    let t = temp[r * n + c];
    let tn = temp[(r - 1) * n + c];
    let ts = temp[(r + 1) * n + c];
    let tw = temp[r * n + c - 1];
    let te = temp[r * n + c + 1];
    t + p.step_div_cap
        * (power[r * n + c]
            + p.ry * (tn + ts - 2.0 * t)
            + p.rx * (tw + te - 2.0 * t)
            + p.rz * (p.amb - t))
}

/// Runs `iters` steps (ping-pong buffers), returning the final grid.
pub fn run(temp0: &[f32], power: &[f32], n: usize, iters: u32, p: &ThermalParams) -> Vec<f32> {
    let mut a = temp0.to_vec();
    let mut b = vec![0.0f32; n * n];
    for _ in 0..iters {
        step_par(&a, power, &mut b, n, p);
        std::mem::swap(&mut a, &mut b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_exactly() {
        let hs = HotSpot { n: 64 };
        let (temp, power) = hs.initial_state();
        let p = ThermalParams::default();
        let mut seq = vec![0.0; 64 * 64];
        let mut par = vec![0.0; 64 * 64];
        step_seq(&temp, &power, &mut seq, 64, &p);
        step_par(&temp, &power, &mut par, 64, &p);
        assert_eq!(seq, par);
    }

    #[test]
    fn heat_diffuses_toward_equilibrium() {
        let hs = HotSpot { n: 64 };
        let (temp, power) = hs.initial_state();
        let p = ThermalParams::default();
        let range = |g: &[f32]| {
            let mx = g.iter().cloned().fold(f32::MIN, f32::max);
            let mn = g.iter().cloned().fold(f32::MAX, f32::min);
            mx - mn
        };
        // With zero power, the hot square smears out: range shrinks.
        let zero_power = vec![0.0; power.len()];
        let after = run(&temp, &zero_power, 64, 50, &p);
        assert!(range(&after) < range(&temp));
        // All temperatures stay within physical bounds.
        assert!(after.iter().all(|t| (*t >= 75.0) && (*t <= 95.0)));
    }

    #[test]
    fn power_heats_the_die() {
        let hs = HotSpot { n: 64 };
        let (temp, power) = hs.initial_state();
        let p = ThermalParams::default();
        let heated = run(&temp, &power, 64, 20, &p);
        let cooled = run(&temp, &vec![0.0; power.len()], 64, 20, &p);
        let sum = |g: &[f32]| g.iter().map(|t| *t as f64).sum::<f64>();
        assert!(sum(&heated) > sum(&cooled));
    }

    #[test]
    fn skeleton_transfer_sizes_match_table1() {
        // Table I @ 1024x1024: input 8.0 MB, output 4.0 MB.
        let hs = HotSpot { n: 1024 };
        let plan = gpp_datausage::analyze(&hs.program(), &hs.hints());
        assert_eq!(plan.h2d_bytes(), 2 * 1024 * 1024 * 4);
        assert_eq!(plan.d2h_bytes(), 1024 * 1024 * 4);
        assert!(plan.is_exact());
    }

    #[test]
    fn skeleton_has_stageable_stencil() {
        let hs = HotSpot { n: 512 };
        let prog = hs.program();
        let chars = prog.kernels[0].characteristics(&prog);
        // 5 temp loads share one reuse group: 4/6 of loads are redundant.
        assert!((chars.sharable_load_fraction - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(chars.threads, 512 * 512);
    }

    #[test]
    fn boundary_is_preserved() {
        let hs = HotSpot { n: 32 };
        let (temp, power) = hs.initial_state();
        let after = run(&temp, &power, 32, 5, &ThermalParams::default());
        for c in 0..32 {
            assert_eq!(after[c], temp[c]);
            assert_eq!(after[31 * 32 + c], temp[31 * 32 + c]);
        }
    }
}
