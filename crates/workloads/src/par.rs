//! Tiny data-parallel helper over crossbeam scoped threads.
//!
//! The paper's CPU baselines are OpenMP loops; this is the Rust
//! equivalent: split an output slice into contiguous chunks, one worker
//! per chunk, no locks, data-race freedom enforced by `split_at_mut`
//! semantics (each worker owns a disjoint `&mut` chunk).

/// Applies `f(start_index, chunk)` to disjoint chunks of `out`, in
/// parallel across `threads` workers. `f` receives the global start index
/// of its chunk so workers can locate themselves in the input arrays.
pub fn par_chunks<T: Send, F>(out: &mut [T], threads: usize, chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if out.is_empty() {
        return;
    }
    let threads = threads.max(1);
    if threads == 1 || out.len() <= chunk_len {
        f(0, out);
        return;
    }
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let mut rest = out;
        let mut start = 0usize;
        // Hand each worker a run of whole chunks.
        let per_worker = out_len_chunks(rest.len(), chunk_len).div_ceil(threads) * chunk_len;
        while !rest.is_empty() {
            let take = per_worker.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let head_start = start;
            scope.spawn(move |_| f(head_start, head));
            start += take;
            rest = tail;
        }
    })
    .expect("worker panicked");
}

fn out_len_chunks(len: usize, chunk: usize) -> usize {
    len.div_ceil(chunk)
}

/// Default worker count for the reference implementations — the paper's
/// OpenMP runs use 8 threads (§IV-B).
pub const REFERENCE_THREADS: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let n = 10_007; // deliberately not a multiple of anything
        let input: Vec<u64> = (0..n as u64).collect();
        let mut seq = vec![0u64; n];
        for (i, v) in seq.iter_mut().enumerate() {
            *v = input[i] * 3 + 1;
        }
        let mut par = vec![0u64; n];
        par_chunks(&mut par, 8, 64, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = input[start + k] * 3 + 1;
            }
        });
        assert_eq!(seq, par);
    }

    #[test]
    fn single_thread_and_empty_paths() {
        let mut out = vec![0u8; 10];
        par_chunks(&mut out, 1, 4, |s, c| {
            for (k, v) in c.iter_mut().enumerate() {
                *v = (s + k) as u8;
            }
        });
        assert_eq!(out, (0..10u8).collect::<Vec<_>>());
        let mut empty: Vec<u8> = vec![];
        par_chunks(&mut empty, 4, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "chunk_len")]
    fn zero_chunk_panics() {
        let mut out = vec![0u8; 4];
        par_chunks(&mut out, 2, 0, |_, _| {});
    }
}
