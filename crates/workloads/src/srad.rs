//! SRAD: speckle-reducing anisotropic diffusion (Rodinia).
//!
//! "A diffusion method to remove speckles from ultrasonic and radar
//! imaging applications without destroying important image features. It
//! has two kernels: the first one generates diffusion coefficients, and
//! the second one updates the image." (§IV-B)
//!
//! Data sizes: 1024², 2048², 4096². Per Table I the transfer set is the
//! image in and the image out (the diffusion-coefficient array is a
//! device-side temporary — the canonical use of the paper's temporary
//! hint).

use crate::par::{par_chunks, REFERENCE_THREADS};
use crate::WorkloadCase;
use gpp_datausage::Hints;
use gpp_skeleton::builder::{idx, ProgramBuilder};
use gpp_skeleton::{ElemType, Flops, Program};

/// Diffusion strength (Rodinia's `lambda`).
pub const LAMBDA: f32 = 0.5;

/// The SRAD workload at one image size.
#[derive(Debug, Clone, Copy)]
pub struct Srad {
    /// Image edge length.
    pub n: usize,
}

impl Srad {
    /// The paper's three data sizes.
    pub const PAPER_SIZES: [usize; 3] = [1024, 2048, 4096];

    /// Data-size label as Table I prints it.
    pub fn label(&self) -> String {
        format!("{} x {}", self.n, self.n)
    }

    /// The skeleton: two kernels with a flow dependence on `coeff`.
    ///
    /// Kernel 1 (`srad_prep`) gathers the 4-neighbourhood of `img`
    /// (a reuse group), computes the instantaneous coefficient of
    /// variation (divisions!), writes `coeff`. Kernel 2 (`srad_update`)
    /// gathers `coeff` at C/S/E plus `img`, applies the diffusion update,
    /// writes `img`. "Data dependency among the two kernels involves
    /// several arrays, and each data-parallel task in the consumer kernel
    /// depends on several tasks in the producer kernel."
    pub fn program(&self) -> Program {
        let n = self.n;
        let mut p = ProgramBuilder::new(format!("srad-{n}"));
        let img = p.array("img", ElemType::F32, &[n, n]);
        let coeff = p.array("coeff", ElemType::F32, &[n, n]);

        // Both kernels run over the full grid with guarded boundary lanes
        // (as Rodinia's srad_cuda_1/2 do), so kernel 1 defines `coeff`
        // everywhere and no halo of it ever crosses the bus.
        let mut k1 = p.kernel("srad_prep");
        let i = k1.parallel_loop("i", n as u64);
        let j = k1.parallel_loop("j", n as u64);
        k1.statement()
            .read(img, &[idx(i) - 1, idx(j)])
            .read(img, &[idx(i) + 1, idx(j)])
            .read(img, &[idx(i), idx(j) - 1])
            .read(img, &[idx(i), idx(j) + 1])
            .read(img, &[idx(i), idx(j)])
            .write(coeff, &[idx(i), idx(j)])
            .flops(Flops {
                adds: 12,
                muls: 10,
                divs: 3,
                ..Flops::default()
            })
            .finish();
        k1.finish();

        let mut k2 = p.kernel("srad_update");
        let i = k2.parallel_loop("i", n as u64);
        let j = k2.parallel_loop("j", n as u64);
        k2.statement()
            .read(coeff, &[idx(i), idx(j)])
            .read(coeff, &[idx(i) + 1, idx(j)])
            .read(coeff, &[idx(i), idx(j) + 1])
            .read(img, &[idx(i) - 1, idx(j)])
            .read(img, &[idx(i) + 1, idx(j)])
            .read(img, &[idx(i), idx(j) - 1])
            .read(img, &[idx(i), idx(j) + 1])
            .read(img, &[idx(i), idx(j)])
            .write(img, &[idx(i), idx(j)])
            .flops(Flops {
                adds: 10,
                muls: 8,
                ..Flops::default()
            })
            .finish();
        k2.finish();

        p.build().expect("srad skeleton is well-formed")
    }

    /// The paper's hint: `coeff` is a temporary and is never copied back.
    pub fn hints(&self) -> Hints {
        let prog = self.program();
        Hints::new().temporary(prog.array_by_name("coeff").expect("coeff exists").id)
    }

    /// Bundles skeleton + hints as one evaluation case.
    pub fn case(&self) -> WorkloadCase {
        WorkloadCase {
            app: "SRAD",
            dataset: self.label(),
            program: self.program(),
            hints: self.hints(),
        }
    }

    /// Synthetic speckled input: a smooth ramp with multiplicative noise
    /// (deterministic LCG).
    pub fn initial_image(&self) -> Vec<f32> {
        let n = self.n;
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n * n)
            .map(|k| {
                let (r, c) = (k / n, k % n);
                let base = 100.0 + 50.0 * ((r as f32 / n as f32) + (c as f32 / n as f32));
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((state >> 33) as f32) / (u32::MAX >> 1) as f32; // [0,2)
                base * (0.75 + 0.25 * u)
            })
            .collect()
    }
}

/// Kernel 1: diffusion coefficients from the coefficient of variation.
pub fn prep(img: &[f32], coeff: &mut [f32], n: usize, q0sqr: f32) {
    par_chunks(coeff, REFERENCE_THREADS, n, |start, chunk| {
        for (k, v) in chunk.iter_mut().enumerate() {
            let idx = start + k;
            let (r, c) = (idx / n, idx % n);
            if r == 0 || r == n - 1 || c == 0 || c == n - 1 {
                *v = 1.0;
                continue;
            }
            let jc = img[r * n + c];
            let dn = img[(r - 1) * n + c] - jc;
            let ds = img[(r + 1) * n + c] - jc;
            let dw = img[r * n + c - 1] - jc;
            let de = img[r * n + c + 1] - jc;
            let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
            let l = (dn + ds + dw + de) / jc;
            let num = 0.5 * g2 - (1.0 / 16.0) * l * l;
            let den = 1.0 + 0.25 * l;
            let qsqr = num / (den * den);
            let d = (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr));
            *v = (1.0 / (1.0 + d)).clamp(0.0, 1.0);
        }
    });
}

/// Kernel 2: the diffusion update.
pub fn update(img: &mut [f32], coeff: &[f32], n: usize) {
    let old = img.to_vec();
    par_chunks(img, REFERENCE_THREADS, n, |start, chunk| {
        for (k, v) in chunk.iter_mut().enumerate() {
            let idx = start + k;
            let (r, c) = (idx / n, idx % n);
            if r == 0 || r == n - 1 || c == 0 || c == n - 1 {
                continue;
            }
            let jc = old[r * n + c];
            let dn = old[(r - 1) * n + c] - jc;
            let ds = old[(r + 1) * n + c] - jc;
            let dw = old[r * n + c - 1] - jc;
            let de = old[r * n + c + 1] - jc;
            let cn = coeff[r * n + c];
            let cs = coeff[(r + 1) * n + c];
            let cw = coeff[r * n + c];
            let ce = coeff[r * n + c + 1];
            *v = jc + 0.25 * LAMBDA * (cn * dn + cs * ds + cw * dw + ce * de);
        }
    });
}

/// Mean/variance statistics of the region of interest (whole interior).
pub fn roi_stats(img: &[f32], n: usize) -> (f32, f32) {
    let mut sum = 0.0f64;
    let mut sum2 = 0.0f64;
    let mut count = 0u64;
    for r in 1..n - 1 {
        for c in 1..n - 1 {
            let v = img[r * n + c] as f64;
            sum += v;
            sum2 += v * v;
            count += 1;
        }
    }
    let mean = sum / count as f64;
    let var = sum2 / count as f64 - mean * mean;
    (mean as f32, var as f32)
}

/// Runs `iters` full SRAD iterations in place.
pub fn run(img: &mut [f32], n: usize, iters: u32) {
    let mut coeff = vec![0.0f32; n * n];
    for _ in 0..iters {
        let (mean, var) = roi_stats(img, n);
        let q0sqr = var / (mean * mean);
        prep(img, &mut coeff, n, q0sqr);
        update(img, &coeff, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speckle_variance_decreases() {
        let s = Srad { n: 128 };
        let mut img = s.initial_image();
        let (_, var_before) = roi_stats(&img, 128);
        run(&mut img, 128, 10);
        let (_, var_after) = roi_stats(&img, 128);
        // Normalized variance (speckle) must drop substantially.
        assert!(var_after < var_before * 0.8, "{var_before} -> {var_after}");
        assert!(img.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn mean_brightness_is_roughly_preserved() {
        let s = Srad { n: 128 };
        let mut img = s.initial_image();
        let (mean_before, _) = roi_stats(&img, 128);
        run(&mut img, 128, 10);
        let (mean_after, _) = roi_stats(&img, 128);
        assert!((mean_after / mean_before - 1.0).abs() < 0.05);
    }

    #[test]
    fn coefficients_are_normalized() {
        let s = Srad { n: 64 };
        let img = s.initial_image();
        let (mean, var) = roi_stats(&img, 64);
        let mut coeff = vec![0.0; 64 * 64];
        prep(&img, &mut coeff, 64, var / (mean * mean));
        assert!(coeff.iter().all(|c| (0.0..=1.0).contains(c)));
    }

    #[test]
    fn skeleton_transfer_sizes_match_table1() {
        // Table I @ 2048x2048: input 16 MB, output 16 MB (image only —
        // the coefficient array is a temporary).
        let s = Srad { n: 2048 };
        let plan = gpp_datausage::analyze(&s.program(), &s.hints());
        assert_eq!(plan.h2d_bytes(), 2048 * 2048 * 4);
        assert_eq!(plan.d2h_bytes(), 2048 * 2048 * 4);
        assert_eq!(plan.h2d.len(), 1);
        assert_eq!(plan.d2h.len(), 1);
    }

    #[test]
    fn without_hint_coeff_is_copied_back_too() {
        // Ablation D5: forgetting the temporary hint doubles the output.
        let s = Srad { n: 1024 };
        let plan = gpp_datausage::analyze(&s.program(), &Hints::new());
        assert_eq!(plan.d2h_bytes(), 2 * 1024 * 1024 * 4);
    }

    #[test]
    fn coeff_flows_on_device_not_over_bus() {
        // The flow dependence k1→k2 on coeff must not create a transfer.
        let s = Srad { n: 1024 };
        let plan = gpp_datausage::analyze(&s.program(), &s.hints());
        assert!(plan.h2d.iter().all(|t| t.name == "img"));
    }

    #[test]
    fn two_kernels_with_reuse() {
        let s = Srad { n: 1024 };
        let prog = s.program();
        assert_eq!(prog.kernels.len(), 2);
        let c1 = prog.kernels[0].characteristics(&prog);
        assert!(c1.sharable_load_fraction > 0.5);
    }
}
