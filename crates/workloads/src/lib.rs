//! The paper's evaluation workloads (§IV-B).
//!
//! "We use four benchmarks that are key components in representative
//! applications in the areas of medical imaging, microprocessor design,
//! fluid dynamics, and quantum physics. SRAD, HotSpot, and CFD are
//! benchmarks found in the Rodinia benchmark suite. Stassuij is extracted
//! from a production application in DOE's INCITE program."
//!
//! Each module provides, for one benchmark:
//!
//! * a **real numeric implementation** (sequential and crossbeam-parallel,
//!   validated against each other and against analytic properties) — our
//!   stand-in for the original C++/OpenMP code, proving the skeletons
//!   describe real algorithms;
//! * a **code skeleton** (`gpp-skeleton` program) describing the same
//!   computation the way a GROPHECY++ user would; and
//! * the **hints** the paper's methodology uses (SRAD's temporary
//!   diffusion-coefficient array, Stassuij's sparse CSR bounds).
//!
//! [`paper_cases`] enumerates the ten application × data-size rows of
//! Table I.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsp;
pub mod cfd;
pub mod hotspot;
pub mod par;
pub mod srad;
pub mod stassuij;

use gpp_datausage::Hints;
use gpp_skeleton::Program;

/// One evaluation case: an application at one data size.
pub struct WorkloadCase {
    /// Application name ("CFD", "HotSpot", "SRAD", "Stassuij").
    pub app: &'static str,
    /// Data-size label as the paper prints it ("97K", "1024 x 1024", ...).
    pub dataset: String,
    /// The code skeleton.
    pub program: Program,
    /// The user hints that accompany it.
    pub hints: Hints,
}

/// All ten rows of Table I, in the paper's order.
pub fn paper_cases() -> Vec<WorkloadCase> {
    let mut cases = Vec::with_capacity(10);
    for &nel in &cfd::Cfd::PAPER_SIZES {
        cases.push(cfd::Cfd { nel }.case());
    }
    for &n in &hotspot::HotSpot::PAPER_SIZES {
        cases.push(hotspot::HotSpot { n }.case());
    }
    for &n in &srad::Srad::PAPER_SIZES {
        cases.push(srad::Srad { n }.case());
    }
    cases.push(stassuij::Stassuij::paper().case());
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_paper_cases() {
        let cases = paper_cases();
        assert_eq!(cases.len(), 10);
        let apps: Vec<&str> = cases.iter().map(|c| c.app).collect();
        assert_eq!(apps.iter().filter(|a| **a == "CFD").count(), 3);
        assert_eq!(apps.iter().filter(|a| **a == "HotSpot").count(), 3);
        assert_eq!(apps.iter().filter(|a| **a == "SRAD").count(), 3);
        assert_eq!(apps.iter().filter(|a| **a == "Stassuij").count(), 1);
    }

    #[test]
    fn all_cases_validate_and_have_kernels() {
        for c in paper_cases() {
            assert!(!c.program.kernels.is_empty(), "{} has no kernels", c.app);
            for k in &c.program.kernels {
                assert!(k.parallel_tasks() > 0);
            }
        }
    }
}
