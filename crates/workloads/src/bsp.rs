//! Bulk-synchronous execution semantics: why the kernel splits exist.
//!
//! The paper notes that CFD's "two kernels are separated in order to
//! enforce global synchronization so that an array can be consumed before
//! it is updated" (§IV-B), and SRAD's two kernels have a producer/consumer
//! dependence on the coefficient array. A GPU kernel boundary is the only
//! global barrier available, so the kernel decomposition *is* the
//! synchronization structure — and the data usage analyzer's notion of
//! "kernel sequence" rests on it.
//!
//! This module validates those semantics functionally: executing each
//! workload as bulk-synchronous steps (all reads of a phase see the
//! pre-phase state) matches the reference implementation, while the
//! *fused* variant — updating in place without the barrier, as a
//! single-kernel port would — produces different (wrong) results. That
//! divergence is the empirical justification for the kernel splits the
//! skeletons declare.

use crate::srad;

/// SRAD executed the wrong way: coefficient computation and image update
/// fused into one in-place sweep, so later pixels consume *updated*
/// neighbours and freshly written coefficients — what a single-kernel GPU
/// port without a global barrier would race into (here made deterministic
/// by sweeping in row-major order).
pub fn srad_fused_inplace(img: &mut [f32], n: usize, q0sqr: f32) {
    let mut coeff = vec![1.0f32; n * n];
    for r in 1..n - 1 {
        for c in 1..n - 1 {
            // Phase-1 math for this pixel (using possibly-updated img!).
            let jc = img[r * n + c];
            let dn = img[(r - 1) * n + c] - jc;
            let ds = img[(r + 1) * n + c] - jc;
            let dw = img[r * n + c - 1] - jc;
            let de = img[r * n + c + 1] - jc;
            let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
            let l = (dn + ds + dw + de) / jc;
            let num = 0.5 * g2 - (1.0 / 16.0) * l * l;
            let den = 1.0 + 0.25 * l;
            let qsqr = num / (den * den);
            let d = (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr));
            coeff[r * n + c] = (1.0 / (1.0 + d)).clamp(0.0, 1.0);
            // Phase-2 update immediately (south/east coefficients not yet
            // computed this sweep — they hold stale values).
            let cn = coeff[r * n + c];
            let cs = coeff[(r + 1) * n + c];
            let cw = coeff[r * n + c];
            let ce = coeff[r * n + c + 1];
            img[r * n + c] = jc + 0.25 * srad::LAMBDA * (cn * dn + cs * ds + cw * dw + ce * de);
        }
    }
}

/// One properly synchronized SRAD iteration (the two-kernel structure).
pub fn srad_bsp_step(img: &mut [f32], n: usize) {
    let (mean, var) = srad::roi_stats(img, n);
    let q0sqr = var / (mean * mean);
    let mut coeff = vec![0.0f32; n * n];
    srad::prep(img, &mut coeff, n, q0sqr);
    srad::update(img, &coeff, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfd::{self, FlowState, Mesh, NVAR};
    use crate::hotspot::{self, HotSpot, ThermalParams};
    use crate::srad::Srad;

    /// HotSpot: the ping-pong (separate output array) is load-bearing.
    /// Updating the grid in place changes results, because north/west
    /// neighbours would already hold time-step t+1 values.
    #[test]
    fn hotspot_in_place_update_diverges() {
        let hs = HotSpot { n: 64 };
        let (temp, power) = hs.initial_state();
        let p = ThermalParams::default();

        let mut proper = vec![0.0f32; 64 * 64];
        hotspot::step_seq(&temp, &power, &mut proper, 64, &p);

        // In-place (wrong) variant.
        let mut fused = temp.clone();
        for r in 1..63 {
            for c in 1..63 {
                let t = fused[r * 64 + c];
                let tn = fused[(r - 1) * 64 + c];
                let ts = fused[(r + 1) * 64 + c];
                let tw = fused[r * 64 + c - 1];
                let te = fused[r * 64 + c + 1];
                fused[r * 64 + c] = t + p.step_div_cap
                    * (power[r * 64 + c]
                        + p.ry * (tn + ts - 2.0 * t)
                        + p.rx * (tw + te - 2.0 * t)
                        + p.rz * (p.amb - t));
            }
        }
        let max_diff = proper
            .iter()
            .zip(&fused)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff > 1e-4,
            "in-place update did not diverge ({max_diff})"
        );
    }

    /// SRAD: fusing the two kernels (no barrier between coefficient
    /// production and consumption) produces a different image — the reason
    /// the skeleton declares two kernels with a flow dependence.
    #[test]
    fn srad_fused_kernels_diverge() {
        let s = Srad { n: 64 };
        let reference = {
            let mut img = s.initial_image();
            srad_bsp_step(&mut img, 64);
            img
        };
        let fused = {
            let mut img = s.initial_image();
            let (mean, var) = srad::roi_stats(&img, 64);
            srad_fused_inplace(&mut img, 64, var / (mean * mean));
            img
        };
        let max_diff = reference
            .iter()
            .zip(&fused)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff > 1e-3, "fused SRAD did not diverge ({max_diff})");
        // And repeated proper steps stay stable (sanity).
        let mut img = s.initial_image();
        for _ in 0..5 {
            srad_bsp_step(&mut img, 64);
        }
        assert!(img.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    /// CFD: updating `variables` while other elements still need to read
    /// neighbour state (fusing compute_flux with time_step) changes the
    /// result — the global synchronization the paper's kernel split
    /// enforces.
    #[test]
    fn cfd_fused_flux_timestep_diverges() {
        let nel = 2048;
        let mesh = Mesh::synthetic(nel, 3);
        let mut sf = vec![0.0f32; nel];

        // Proper: flux for everyone, barrier, then update.
        let mut proper = FlowState::initial(nel);
        let mut fluxes = vec![0.0f32; NVAR * nel];
        cfd::compute_step_factor(&proper, &mesh.areas, &mut sf);
        cfd::compute_flux(&proper, &mesh, &mut fluxes);
        cfd::time_step(&mut proper, &sf, &fluxes);

        // Fused: update each element as soon as its flux is known, so
        // later elements read already-advanced neighbours. Sweep a window
        // across the density discontinuity (the flow is locally uniform
        // elsewhere, where fluxes vanish and fusion is coincidentally
        // harmless).
        let mut fused = FlowState::initial(nel);
        cfd::compute_step_factor(&fused, &mesh.areas, &mut sf);
        let window = (nel / 3 - 32)..(nel / 3 + 32);
        for i in window.clone() {
            let mut one = vec![0.0f32; NVAR * nel];
            // Reuse the library flux routine on the *current* (partially
            // updated) state, then apply just element i's update.
            cfd::compute_flux(&fused, &mesh, &mut one);
            for v in 0..NVAR {
                fused.vars[v * nel + i] -= sf[i] * one[v * nel + i];
            }
        }
        let mut max_diff = 0.0f32;
        for i in window {
            for v in 0..NVAR {
                max_diff = max_diff.max((proper.vars[v * nel + i] - fused.vars[v * nel + i]).abs());
            }
        }
        assert!(max_diff > 1e-6, "fused CFD did not diverge ({max_diff})");
    }

    /// The analyzer agrees with the BSP structure: SRAD's `coeff` flows
    /// across the kernel boundary on the device, which is only sound
    /// because the boundary is a global barrier.
    #[test]
    fn analyzer_relies_on_kernel_barriers() {
        let s = Srad { n: 256 };
        let plan = gpp_datausage::analyze(&s.program(), &s.hints());
        // coeff never crosses the bus precisely because kernel 1 finishes
        // (barrier) before kernel 2 starts.
        assert!(plan.all().all(|t| t.name != "coeff"));
    }
}
