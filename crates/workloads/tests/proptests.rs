//! Property tests for the workload numerics: the physical/algebraic laws
//! each algorithm must satisfy regardless of input.

use gpp_workloads::hotspot::{self, ThermalParams};
use gpp_workloads::stassuij::{self, Csr};
use gpp_workloads::{cfd, srad};
use proptest::prelude::*;

fn small_grid(seed: u64, n: usize) -> (Vec<f32>, Vec<f32>) {
    // Deterministic pseudo-random temperature/power fields.
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f32) / (u32::MAX >> 1) as f32
    };
    let temp = (0..n * n).map(|_| 70.0 + 30.0 * next()).collect();
    let power = (0..n * n).map(|_| 0.5 * next()).collect();
    (temp, power)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// HotSpot's update is linear in (temp, power): superposition holds.
    /// step(t1 + t2, p1 + p2) == step(t1, p1) + step(t2, p2) − baseline
    /// correction for the affine ambient term.
    #[test]
    fn hotspot_update_is_affine(seed in 0u64..500) {
        let n = 16;
        let p = ThermalParams::default();
        let (t1, p1) = small_grid(seed, n);
        let (t2, p2) = small_grid(seed ^ 0xdead, n);

        let run = |t: &[f32], pw: &[f32]| {
            let mut out = vec![0.0f32; n * n];
            hotspot::step_seq(t, pw, &mut out, n, &p);
            out
        };
        // Affine map: f(x) = A x + b. Then f(x1) + f(x2) − f(x̄) with
        // x̄ = (x1 + x2) − x12 tests linearity of A: use the identity
        // f(x1 + x2 − x0) = f(x1) + f(x2) − f(x0).
        let (t0, p0) = small_grid(seed ^ 0xbeef, n);
        let t_combo: Vec<f32> =
            (0..n * n).map(|k| t1[k] + t2[k] - t0[k]).collect();
        let p_combo: Vec<f32> =
            (0..n * n).map(|k| p1[k] + p2[k] - p0[k]).collect();
        let lhs = run(&t_combo, &p_combo);
        let (r1, r2, r0) = (run(&t1, &p1), run(&t2, &p2), run(&t0, &p0));
        for k in 0..n * n {
            let rhs = r1[k] + r2[k] - r0[k];
            prop_assert!((lhs[k] - rhs).abs() < 1e-3, "cell {k}: {} vs {rhs}", lhs[k]);
        }
    }

    /// HotSpot parallel == sequential on arbitrary fields.
    #[test]
    fn hotspot_par_matches_seq(seed in 0u64..500, n in 8usize..48) {
        let (temp, power) = small_grid(seed, n);
        let p = ThermalParams::default();
        let mut a = vec![0.0f32; n * n];
        let mut b = vec![0.0f32; n * n];
        hotspot::step_seq(&temp, &power, &mut a, n, &p);
        hotspot::step_par(&temp, &power, &mut b, n, &p);
        prop_assert_eq!(a, b);
    }

    /// SRAD coefficients stay in [0, 1] for any positive image.
    #[test]
    fn srad_coefficients_normalized(seed in 0u64..200) {
        let n = 32;
        let (img, _) = small_grid(seed, n);
        let (mean, var) = srad::roi_stats(&img, n);
        let mut coeff = vec![0.0f32; n * n];
        srad::prep(&img, &mut coeff, n, (var / (mean * mean)).max(1e-6));
        prop_assert!(coeff.iter().all(|c| (0.0..=1.0).contains(c)));
    }

    /// Stassuij's product is linear in the sparse operator: scaling every
    /// value scales the output.
    #[test]
    fn stassuij_linear_in_operator(seed in 0u64..100, scale in 1.0f64..5.0) {
        let csr = Csr::synthetic(4, seed);
        let mut scaled = csr.clone();
        for v in &mut scaled.vals {
            *v *= scale;
        }
        let b = stassuij::synthetic_dense(seed ^ 7);
        let mut c1 = vec![(0.0, 0.0); stassuij::N * stassuij::M];
        let mut c2 = vec![(0.0, 0.0); stassuij::N * stassuij::M];
        stassuij::spmm_par(&csr, &b, &mut c1);
        stassuij::spmm_par(&scaled, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x.0 * scale - y.0).abs() < 1e-9);
            prop_assert!((x.1 * scale - y.1).abs() < 1e-9);
        }
    }

    /// CFD: uniform states are fixed points on any synthetic mesh seed.
    #[test]
    fn cfd_uniform_fixed_point_any_mesh(seed in 0u64..100) {
        let nel = 1024;
        let mesh = cfd::Mesh::synthetic(nel, seed);
        let mut state = cfd::FlowState::uniform(nel);
        let before = state.vars.clone();
        let mut sf = vec![0.0; nel];
        let mut fluxes = vec![0.0; cfd::NVAR * nel];
        cfd::iterate(&mut state, &mesh, &mut sf, &mut fluxes);
        for (a, b) in state.vars.iter().zip(&before) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// CSR generation invariants across seeds and densities.
    #[test]
    fn csr_invariants(seed in 0u64..300, nnz_per_row in 2usize..12) {
        let csr = Csr::synthetic(nnz_per_row, seed);
        prop_assert_eq!(csr.row_ptr.len(), stassuij::N + 1);
        prop_assert_eq!(*csr.row_ptr.last().unwrap() as usize, csr.nnz());
        prop_assert!(csr.row_ptr.windows(2).all(|w| w[0] < w[1]),
            "every row must be non-empty");
        // Columns sorted and deduplicated within each row.
        for r in 0..stassuij::N {
            let row = &csr.col_idx[csr.row_ptr[r] as usize..csr.row_ptr[r + 1] as usize];
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
