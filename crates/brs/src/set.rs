//! Sets of bounded regular sections with exact union semantics for dense
//! sections.
//!
//! The paper's analysis needs the `UNION` of all read-but-not-written
//! sections (host→device traffic) and the `UNION` of all written sections
//! (device→host traffic), with exact element counts so that transfer sizes —
//! and hence transfer-time predictions — are correct. A single regular
//! section cannot represent an arbitrary union, so [`SectionSet`] maintains a
//! list of **pairwise-disjoint** sections and counts elements by summing.

use crate::section::Section;

/// A union of bounded regular sections over one array.
///
/// Invariant: the stored sections are pairwise disjoint, so
/// [`element_count`](SectionSet::element_count) is an exact sum.
///
/// Dense sections are handled exactly. Inserting a **strided** section
/// falls back to inserting its dense bounding box (a documented
/// over-approximation, safe for transfer sizing — see crate docs); the
/// fallback is observable via [`SectionSet::is_exact`].
#[derive(Debug, Clone, PartialEq)]
pub struct SectionSet {
    ndims: usize,
    parts: Vec<Section>,
    exact: bool,
}

impl SectionSet {
    /// An empty set over arrays of `ndims` dimensions.
    pub fn empty(ndims: usize) -> Self {
        SectionSet {
            ndims,
            parts: Vec::new(),
            exact: true,
        }
    }

    /// A set containing one section.
    pub fn from_section(s: Section) -> Self {
        let mut set = SectionSet::empty(s.ndims());
        set.insert(s);
        set
    }

    /// Dimensionality of member sections.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.ndims
    }

    /// The disjoint pieces making up the union.
    #[inline]
    pub fn parts(&self) -> &[Section] {
        &self.parts
    }

    /// True if no element is in the set.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// False if any operation had to over-approximate (strided insert or
    /// strided subtraction); counts are then upper bounds.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Inserts a section, keeping parts disjoint (`UNION`).
    ///
    /// Dense sections are decomposed exactly. A strided section is widened
    /// to its dense bounding box first, marking the set inexact — the
    /// Havlak–Kennedy merge direction, a superset.
    pub fn insert(&mut self, s: Section) {
        assert_eq!(s.ndims(), self.ndims, "section dimensionality mismatch");
        if s.is_empty() {
            return;
        }
        let s = if s.is_dense() {
            s
        } else {
            self.exact = false;
            densify(&s)
        };
        // Insert s minus everything already present; pieces stay disjoint.
        let mut incoming = vec![s];
        for existing in &self.parts {
            let mut next = Vec::with_capacity(incoming.len());
            for piece in incoming {
                next.extend(piece.subtract_dense(existing));
            }
            incoming = next;
            if incoming.is_empty() {
                return;
            }
        }
        self.parts.extend(incoming);
    }

    /// Unions another set into this one.
    pub fn union_with(&mut self, other: &SectionSet) {
        for p in &other.parts {
            self.insert(p.clone());
        }
        self.exact &= other.exact;
    }

    /// Removes every element of `s` from the set.
    ///
    /// Exact for dense `s`; a strided `s` is *shrunk to nothing removed*
    /// (i.e. the subtraction is skipped and the set marked inexact) because
    /// removing a bounding box would under-approximate, which is unsafe for
    /// transfer sizing.
    pub fn subtract_section(&mut self, s: &Section) {
        assert_eq!(s.ndims(), self.ndims, "section dimensionality mismatch");
        if s.is_empty() {
            return;
        }
        if !s.is_dense() {
            self.exact = false;
            return;
        }
        let mut next = Vec::with_capacity(self.parts.len());
        for p in std::mem::take(&mut self.parts) {
            next.extend(p.subtract_dense(s));
        }
        self.parts = next;
    }

    /// Removes every element of `other` from the set (same caveats as
    /// [`subtract_section`](SectionSet::subtract_section)).
    pub fn subtract(&mut self, other: &SectionSet) {
        for p in &other.parts {
            self.subtract_section(p);
        }
        self.exact &= other.exact;
    }

    /// True if the point lies in the union.
    pub fn contains_point(&self, point: &[i64]) -> bool {
        self.parts.iter().any(|p| p.contains_point(point))
    }

    /// True if the whole section `s` is covered by the union.
    ///
    /// Implemented as `s \ set == ∅`; exact for dense `s`.
    pub fn covers(&self, s: &Section) -> bool {
        if s.is_empty() {
            return true;
        }
        if !s.is_dense() {
            // Conservative: only report covered if the bounding box is.
            return self.covers(&densify(s));
        }
        let mut rest = vec![s.clone()];
        for p in &self.parts {
            let mut next = Vec::with_capacity(rest.len());
            for piece in rest {
                next.extend(piece.subtract_dense(p));
            }
            rest = next;
            if rest.is_empty() {
                return true;
            }
        }
        false
    }

    /// True if `s` overlaps any element of the union. Exact.
    pub fn overlaps(&self, s: &Section) -> bool {
        self.parts.iter().any(|p| p.overlaps(s))
    }

    /// Exact element count (an upper bound if [`is_exact`](Self::is_exact)
    /// is false).
    pub fn element_count(&self) -> u64 {
        self.parts.iter().map(Section::element_count).sum()
    }

    /// Byte count given the element width.
    pub fn byte_count(&self, elem_bytes: usize) -> u64 {
        self.element_count() * elem_bytes as u64
    }

    /// The bounding regular section of the whole set (useful when a single
    /// contiguous transfer is preferred over many small ones).
    pub fn bounding_section(&self) -> Section {
        let mut it = self.parts.iter();
        match it.next() {
            None => Section::empty(self.ndims),
            Some(first) => it.fold(first.clone(), |acc, p| acc.hull(p)),
        }
    }

    /// Number of disjoint pieces.
    pub fn piece_count(&self) -> usize {
        self.parts.len()
    }
}

impl std::fmt::Display for SectionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.parts.is_empty() {
            return write!(f, "∅");
        }
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Dense bounding box of a (possibly strided) section.
fn densify(s: &Section) -> Section {
    Section::new(
        s.dims()
            .iter()
            .map(|d| {
                if d.is_empty() {
                    crate::Interval::empty()
                } else {
                    crate::Interval::dense(d.lo(), d.hi())
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(b: &[(i64, i64)]) -> Section {
        Section::dense(b)
    }

    #[test]
    fn empty_set() {
        let s = SectionSet::empty(2);
        assert!(s.is_empty());
        assert_eq!(s.element_count(), 0);
        assert!(s.is_exact());
        assert_eq!(s.to_string(), "∅");
    }

    #[test]
    fn insert_disjoint_sums() {
        let mut s = SectionSet::empty(1);
        s.insert(sec(&[(0, 9)]));
        s.insert(sec(&[(20, 29)]));
        assert_eq!(s.element_count(), 20);
        assert_eq!(s.piece_count(), 2);
    }

    #[test]
    fn insert_overlapping_counts_once() {
        let mut s = SectionSet::empty(1);
        s.insert(sec(&[(0, 9)]));
        s.insert(sec(&[(5, 14)]));
        assert_eq!(s.element_count(), 15);
    }

    #[test]
    fn insert_contained_is_noop() {
        let mut s = SectionSet::empty(2);
        s.insert(sec(&[(0, 9), (0, 9)]));
        s.insert(sec(&[(2, 4), (3, 7)]));
        assert_eq!(s.element_count(), 100);
        assert_eq!(s.piece_count(), 1);
    }

    #[test]
    fn overlapping_2d_union_exact() {
        // Two 10x10 squares overlapping in a 5x5 corner: 100+100-25.
        let mut s = SectionSet::empty(2);
        s.insert(sec(&[(0, 9), (0, 9)]));
        s.insert(sec(&[(5, 14), (5, 14)]));
        assert_eq!(s.element_count(), 175);
        assert!(s.is_exact());
    }

    #[test]
    fn three_way_union_brute_force() {
        let boxes = [
            sec(&[(0, 6), (0, 6)]),
            sec(&[(4, 10), (2, 8)]),
            sec(&[(2, 12), (5, 5)]),
        ];
        let mut s = SectionSet::empty(2);
        for b in &boxes {
            s.insert(b.clone());
        }
        // Brute-force count over the bounding grid.
        let mut n = 0u64;
        for x in 0..=12i64 {
            for y in 0..=8i64 {
                if boxes.iter().any(|b| b.contains_point(&[x, y])) {
                    n += 1;
                }
            }
        }
        assert_eq!(s.element_count(), n);
    }

    #[test]
    fn subtract_section_exact() {
        let mut s = SectionSet::from_section(sec(&[(0, 9), (0, 9)]));
        s.subtract_section(&sec(&[(0, 9), (0, 4)]));
        assert_eq!(s.element_count(), 50);
        s.subtract_section(&sec(&[(0, 4), (0, 9)]));
        assert_eq!(s.element_count(), 25);
    }

    #[test]
    fn covers_detects_full_coverage_across_pieces() {
        let mut s = SectionSet::empty(1);
        s.insert(sec(&[(0, 4)]));
        s.insert(sec(&[(5, 9)]));
        assert!(s.covers(&sec(&[(2, 7)])));
        assert!(!s.covers(&sec(&[(8, 12)])));
        assert!(s.covers(&Section::empty(1)));
    }

    #[test]
    fn union_with_merges_sets() {
        let mut a = SectionSet::from_section(sec(&[(0, 9)]));
        let b = SectionSet::from_section(sec(&[(5, 19)]));
        a.union_with(&b);
        assert_eq!(a.element_count(), 20);
    }

    #[test]
    fn strided_insert_marks_inexact_and_overapproximates() {
        let strided = Section::new(vec![crate::Interval::new(0, 98, 2)]);
        let mut s = SectionSet::empty(1);
        s.insert(strided.clone());
        assert!(!s.is_exact());
        // Upper bound: bounding box has 99 elements >= true 50.
        assert!(s.element_count() >= strided.element_count());
        assert_eq!(s.element_count(), 99);
    }

    #[test]
    fn strided_subtract_is_skipped_for_safety() {
        let mut s = SectionSet::from_section(sec(&[(0, 99)]));
        let strided = Section::new(vec![crate::Interval::new(0, 98, 2)]);
        s.subtract_section(&strided);
        // Nothing removed (safe over-approximation), flagged inexact.
        assert_eq!(s.element_count(), 100);
        assert!(!s.is_exact());
    }

    #[test]
    fn bounding_section_hulls_everything() {
        let mut s = SectionSet::empty(2);
        s.insert(sec(&[(0, 1), (0, 1)]));
        s.insert(sec(&[(10, 11), (5, 6)]));
        assert_eq!(s.bounding_section(), sec(&[(0, 11), (0, 6)]));
    }

    #[test]
    fn contains_point_across_pieces() {
        let mut s = SectionSet::empty(1);
        s.insert(sec(&[(0, 2)]));
        s.insert(sec(&[(10, 12)]));
        assert!(s.contains_point(&[1]));
        assert!(s.contains_point(&[11]));
        assert!(!s.contains_point(&[5]));
    }

    #[test]
    fn scalar_sections_behave_as_single_elements() {
        let mut s = SectionSet::empty(0);
        s.insert(Section::scalar());
        assert_eq!(s.element_count(), 1);
        s.insert(Section::scalar()); // idempotent: same single point
        assert_eq!(s.element_count(), 1);
        assert!(s.covers(&Section::scalar()));
        s.subtract_section(&Section::scalar());
        assert!(s.is_empty());
    }

    #[test]
    fn overlaps_across_pieces() {
        let mut s = SectionSet::empty(1);
        s.insert(sec(&[(0, 4)]));
        s.insert(sec(&[(10, 14)]));
        assert!(s.overlaps(&sec(&[(3, 11)])));
        assert!(!s.overlaps(&sec(&[(5, 9)])));
    }

    #[test]
    fn insert_empty_is_noop() {
        let mut s = SectionSet::empty(3);
        s.insert(Section::empty(3));
        assert!(s.is_empty());
        assert!(s.is_exact());
    }
}
