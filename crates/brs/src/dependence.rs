//! Dependence classification between array accesses.
//!
//! GROPHECY uses section overlap plus access kinds to determine the
//! dependencies among BRSs (paper §III-B): a *flow* dependence (write→read)
//! means a later kernel consumes data produced by an earlier one on the
//! device, so that section need **not** cross the bus; *anti* and *output*
//! dependencies constrain kernel fusion and enforce the global
//! synchronization points that split multi-kernel applications like CFD.

use crate::{AccessKind, Section};

/// The classic dependence taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependenceKind {
    /// Write then read (true/RAW): the consumer needs the producer's data.
    Flow,
    /// Read then write (WAR): the write must not clobber a pending read.
    Anti,
    /// Write then write (WAW): ordering of stores matters.
    Output,
    /// Read then read: not a dependence, but reported for reuse analysis.
    Input,
}

impl DependenceKind {
    /// True for dependencies that require ordering (everything but Input).
    pub fn is_ordering(self) -> bool {
        !matches!(self, DependenceKind::Input)
    }
}

impl std::fmt::Display for DependenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DependenceKind::Flow => "flow",
            DependenceKind::Anti => "anti",
            DependenceKind::Output => "output",
            DependenceKind::Input => "input",
        };
        f.write_str(s)
    }
}

/// Classifies the dependence between an earlier access (`first`) and a later
/// access (`second`) to the *same array*, or `None` if their sections are
/// disjoint.
///
/// Section intersection is exact (see [`Section::intersect`]), so a `Some`
/// result is a genuine element-level overlap, not a conservative guess.
pub fn classify_dependence(
    first_kind: AccessKind,
    first_section: &Section,
    second_kind: AccessKind,
    second_section: &Section,
) -> Option<DependenceKind> {
    if !first_section.overlaps(second_section) {
        return None;
    }
    Some(match (first_kind, second_kind) {
        (AccessKind::Write, AccessKind::Read) => DependenceKind::Flow,
        (AccessKind::Read, AccessKind::Write) => DependenceKind::Anti,
        (AccessKind::Write, AccessKind::Write) => DependenceKind::Output,
        (AccessKind::Read, AccessKind::Read) => DependenceKind::Input,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(lo: i64, hi: i64) -> Section {
        Section::dense(&[(lo, hi)])
    }

    #[test]
    fn flow_dependence() {
        let d = classify_dependence(AccessKind::Write, &sec(0, 9), AccessKind::Read, &sec(5, 14));
        assert_eq!(d, Some(DependenceKind::Flow));
        assert!(d.unwrap().is_ordering());
    }

    #[test]
    fn anti_dependence() {
        let d = classify_dependence(AccessKind::Read, &sec(0, 9), AccessKind::Write, &sec(9, 20));
        assert_eq!(d, Some(DependenceKind::Anti));
    }

    #[test]
    fn output_dependence() {
        let d = classify_dependence(AccessKind::Write, &sec(0, 9), AccessKind::Write, &sec(0, 9));
        assert_eq!(d, Some(DependenceKind::Output));
    }

    #[test]
    fn input_is_not_ordering() {
        let d = classify_dependence(AccessKind::Read, &sec(0, 9), AccessKind::Read, &sec(0, 9));
        assert_eq!(d, Some(DependenceKind::Input));
        assert!(!d.unwrap().is_ordering());
    }

    #[test]
    fn disjoint_sections_no_dependence() {
        let d = classify_dependence(AccessKind::Write, &sec(0, 4), AccessKind::Read, &sec(5, 9));
        assert_eq!(d, None);
    }

    #[test]
    fn display_names() {
        assert_eq!(DependenceKind::Flow.to_string(), "flow");
        assert_eq!(DependenceKind::Anti.to_string(), "anti");
        assert_eq!(DependenceKind::Output.to_string(), "output");
        assert_eq!(DependenceKind::Input.to_string(), "input");
    }
}
